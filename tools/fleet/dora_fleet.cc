/**
 * @file
 * dora-fleet command-line driver: run a fleet campaign from a shell.
 *
 *   dora-fleet [--fleet-devices N] [--fleet-seed N]
 *              [--fleet-governors a,b,c] [--fleet-fault-incidence X]
 *              [--fleet-max-load S] [--fleet-journal STEM]
 *              [--fleet-checkpoint-interval N]
 *              [--fleet-report-quantiles q1,q2,...]
 *              [--fleet-replay DEV [--fleet-replay-governor NAME]]
 *              [--jobs N] [--workers N] [--lanes N] [--trace DIR]
 *
 * Prints the canonical fleetReportText() (hex-float, byte-comparable
 * across tier settings and resumes) followed by a human-readable
 * summary. --fleet-checkpoint-interval sets how many completed chunks
 * the supervisor absorbs between aggregate checkpoints (journaled
 * campaigns only); --fleet-report-quantiles appends one QUANTILES
 * line per governor with the requested PPW and load-time quantiles
 * straight from the campaign sketches. With --fleet-replay it instead
 * re-runs one device of the campaign alone and prints the cell's
 * measurement — bit-identical to what the full campaign produced for
 * that device.
 *
 * Every flag is routed through common/cli.hh, so a trailing flag with
 * a missing value is a fatal diagnostic, never silently ignored.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fleet/campaign.hh"

using namespace dora;

namespace
{

bool
needsModels(const std::string &name)
{
    return name == "DORA" || name == "DORA_no_lkg" || name == "EE" ||
        name == "DL";
}

std::vector<std::string>
splitGovernors(const std::string &text)
{
    std::vector<std::string> names;
    std::string current;
    for (char c : text) {
        if (c == ',') {
            if (!current.empty())
                names.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        names.push_back(current);
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);

    FleetCampaignConfig config;
    config.spec.devices = 1000;
    config.governors = {"ondemand", "performance"};
    config.jobs = benchJobs(argc, argv);
    config.workers = benchWorkers(argc, argv);
    config.lanes = benchLanes(argc, argv);

    if (const auto v = cliFlagValue(argc, argv, "--fleet-devices"))
        config.spec.devices = static_cast<size_t>(
            cliParseInt(*v, "--fleet-devices", 1, 10000000));
    if (const auto v = cliFlagValue(argc, argv, "--fleet-seed"))
        config.spec.seed = static_cast<uint64_t>(
            cliParseInt(*v, "--fleet-seed", 0, 1000000000));
    if (const auto v = cliFlagValue(argc, argv, "--fleet-governors")) {
        config.governors = splitGovernors(*v);
        if (config.governors.empty())
            fatal("--fleet-governors: empty governor list");
    }
    if (const auto v =
            cliFlagValue(argc, argv, "--fleet-fault-incidence"))
        config.spec.faultIncidence =
            cliParseDouble(*v, "--fleet-fault-incidence", 0.0, 1.0);
    if (const auto v = cliFlagValue(argc, argv, "--fleet-max-load"))
        config.base.maxLoadSec =
            cliParseDouble(*v, "--fleet-max-load", 0.1, 60.0);
    if (const auto v = cliFlagValue(argc, argv, "--fleet-journal"))
        config.journalStem = *v;
    if (const auto v =
            cliFlagValue(argc, argv, "--fleet-checkpoint-interval"))
        config.checkpointIntervalChunks = static_cast<unsigned>(
            cliParseInt(*v, "--fleet-checkpoint-interval", 1, 1000000));
    std::vector<double> report_quantiles;
    if (const auto v =
            cliFlagValue(argc, argv, "--fleet-report-quantiles")) {
        for (const std::string &piece : splitGovernors(*v))
            report_quantiles.push_back(cliParseDouble(
                piece, "--fleet-report-quantiles", 0.0, 1.0));
        if (report_quantiles.empty())
            fatal("--fleet-report-quantiles: empty quantile list");
    }

    if (std::any_of(config.governors.begin(), config.governors.end(),
                    needsModels))
        config.models = benchBundle();

    FleetEngine engine(config);

    if (const auto v = cliFlagValue(argc, argv, "--fleet-replay")) {
        const size_t device = static_cast<size_t>(cliParseInt(
            *v, "--fleet-replay", 0,
            static_cast<long>(config.spec.devices) - 1));
        std::string governor = config.governors.front();
        if (const auto g =
                cliFlagValue(argc, argv, "--fleet-replay-governor"))
            governor = *g;
        const DeviceSpec spec = sampleDevice(config.spec, device);
        std::printf("REPLAY device=%zu governor=%s label=%s "
                    "cohort=[%s]\n",
                    device, governor.c_str(),
                    spec.label(config.spec.seed).c_str(),
                    spec.cohort().c_str());
        const RunMeasurement m = engine.replayDevice(device, governor);
        std::fputs(runMeasurementText(m).c_str(), stdout);
        std::fputs("\n", stdout);
        return 0;
    }

    std::fprintf(stderr,
                 "[dora-fleet] campaign 0x%016llx: %zu devices x %zu "
                 "governors\n",
                 static_cast<unsigned long long>(
                     fleetCampaignHash(config)),
                 config.spec.devices, config.governors.size());

    const FleetReport report = engine.run();
    std::fputs(fleetReportText(report).c_str(), stdout);

    for (const FleetGovernorStats &g : report.byGovernor)
        std::printf("# %-12s meet-rate %5.1f%%  mean PPW %.4g  "
                    "p95 load %.3fs  censored %zu/%zu\n",
                    g.governor.c_str(), 100.0 * g.meetRate, g.meanPpw,
                    g.p95LoadSec, g.censored, g.devices);
    for (const FleetGovernorStats &g : report.byGovernor) {
        if (report_quantiles.empty())
            break;
        std::printf("QUANTILES governor=%s", g.governor.c_str());
        for (double q : report_quantiles)
            std::printf(" ppw_q%g=%.6g load_q%g=%.6g", q,
                        g.ppw.quantile(q), q, g.loadTime.quantile(q));
        std::printf("\n");
    }
    return 0;
}
