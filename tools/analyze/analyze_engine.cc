#include "analyze_engine.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <cstdio>
#include <map>
#include <regex>
#include <sstream>

namespace dora::analyze
{

namespace
{

// ---------------------------------------------------------------- //
// Small string helpers                                             //
// ---------------------------------------------------------------- //

bool
wordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/** Trim both ends and collapse internal whitespace runs to one ' '. */
std::string
collapseWs(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    bool pending = false;
    for (const char c : s) {
        if (isSpace(c)) {
            pending = !out.empty();
            continue;
        }
        if (pending) {
            out += ' ';
            pending = false;
        }
        out += c;
    }
    return out;
}

std::string
lastComponent(const std::string &qualified)
{
    const size_t pos = qualified.rfind("::");
    return pos == std::string::npos ? qualified
                                    : qualified.substr(pos + 2);
}

bool
hasPrefix(const std::string &path, const char *prefix)
{
    return path.rfind(prefix, 0) == 0;
}

bool
anyPrefix(const std::string &path,
          std::initializer_list<const char *> prefixes)
{
    for (const char *p : prefixes)
        if (hasPrefix(path, p))
            return true;
    return false;
}

/** `\b<name>\b` membership test without building a regex per query. */
bool
referencesIdentifier(const std::string &haystack, const std::string &id)
{
    size_t pos = 0;
    while ((pos = haystack.find(id, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !wordChar(haystack[pos - 1]);
        const size_t end = pos + id.size();
        const bool right_ok =
            end >= haystack.size() || !wordChar(haystack[end]);
        if (left_ok && right_ok)
            return true;
        pos = end;
    }
    return false;
}

// ---------------------------------------------------------------- //
// Scanner directives                                               //
// ---------------------------------------------------------------- //

/** Collect NOLINT / NOLINTNEXTLINE rule sets (dora-lint grammar). */
void
applyNolintDirectives(const std::string &comment_text, size_t line_idx,
                      ScannedUnit &unit)
{
    static const std::regex directive_re(
        R"(NOLINT(NEXTLINE)?(\(([^)]*)\))?)");
    for (auto it = std::sregex_iterator(comment_text.begin(),
                                        comment_text.end(),
                                        directive_re);
         it != std::sregex_iterator(); ++it) {
        const bool next_line = (*it)[1].matched;
        const size_t target = line_idx + (next_line ? 1 : 0);
        if (target >= unit.nolint.size())
            continue;
        if (!(*it)[2].matched) {
            unit.nolint[target].insert("*");
            continue;
        }
        std::string ids = (*it)[3].str();
        std::string id;
        std::istringstream stream(ids);
        while (std::getline(stream, id, ',')) {
            const size_t b = id.find_first_not_of(" \t");
            const size_t e = id.find_last_not_of(" \t");
            if (b == std::string::npos)
                continue;
            unit.nolint[target].insert(id.substr(b, e - b + 1));
        }
    }
}

/** Collect `dora:<name>(<reason>)` annotations from comment text. */
void
applyAnnotations(const std::string &comment_text, size_t line_idx,
                 ScannedUnit &unit)
{
    static const std::regex note_re(
        R"(dora:([A-Za-z][A-Za-z0-9-]*)\(([^)]*)\))");
    for (auto it = std::sregex_iterator(comment_text.begin(),
                                        comment_text.end(), note_re);
         it != std::sregex_iterator(); ++it) {
        if (line_idx >= unit.notes.size())
            continue;
        unit.notes[line_idx].push_back(
            Annotation{(*it)[1].str(), collapseWs((*it)[2].str())});
    }
}

} // namespace

bool
ScannedUnit::hasAnnotation(int line, const std::string &name) const
{
    for (int probe = line - 1; probe >= line - 2; --probe) {
        if (probe < 0 || static_cast<size_t>(probe) >= notes.size())
            continue;
        // The line above only counts when it is comment-only:
        // otherwise a trailing annotation on one member declaration
        // would silently bless the member declared right below it.
        if (probe == line - 2 &&
            static_cast<size_t>(probe) < code.size()) {
            const std::string &above = code[static_cast<size_t>(probe)];
            if (above.find_first_not_of(" \t") != std::string::npos)
                continue;
        }
        for (const Annotation &note : notes[probe])
            if (note.name == name && !note.arg.empty())
                return true;
    }
    return false;
}

ScannedUnit
scanUnit(std::string path, const std::string &content)
{
    ScannedUnit unit;
    unit.path = std::move(path);

    const size_t line_count = 1 +
        static_cast<size_t>(
            std::count(content.begin(), content.end(), '\n'));
    unit.code.reserve(line_count);
    unit.text.reserve(line_count);
    unit.nolint.assign(line_count + 1, {});
    unit.notes.assign(line_count + 1, {});
    unit.strings.assign(line_count + 1, {});

    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    std::string code_line, text_line, comment_line, raw_delim;
    size_t line_idx = 0;
    // In-flight string literal (may span lines for raw strings).
    size_t lit_line = 0, lit_col = 0;
    std::string lit_value;

    auto flush_line = [&]() {
        applyNolintDirectives(comment_line, line_idx, unit);
        applyAnnotations(comment_line, line_idx, unit);
        unit.code.push_back(code_line);
        unit.text.push_back(text_line);
        code_line.clear();
        text_line.clear();
        comment_line.clear();
        ++line_idx;
    };
    auto begin_literal = [&]() {
        lit_line = line_idx;
        lit_col = code_line.size();
        lit_value.clear();
    };
    auto end_literal = [&]() {
        if (lit_line < unit.strings.size())
            unit.strings[lit_line].push_back(StringLit{
                static_cast<int>(lit_line + 1), lit_col, lit_value});
    };

    const size_t n = content.size();
    for (size_t i = 0; i < n; ++i) {
        const char c = content[i];
        const char next = i + 1 < n ? content[i + 1] : '\0';
        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            flush_line();
            continue;
        }
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                code_line += "  ";
                text_line += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                code_line += "  ";
                text_line += "  ";
                ++i;
            } else if (c == '"' && i > 0 && content[i - 1] == 'R' &&
                       (i < 2 ||
                        !(std::isalnum(static_cast<unsigned char>(
                              content[i - 2])) ||
                          content[i - 2] == '_') ||
                        content[i - 2] == 'u' ||
                        content[i - 2] == 'U' ||
                        content[i - 2] == 'L' ||
                        content[i - 2] == '8')) {
                // R"delim( ... )delim" — capture the delimiter.
                state = State::RawString;
                begin_literal();
                code_line += '"';
                text_line += '"';
                raw_delim.clear();
                while (i + 1 < n && content[i + 1] != '(' &&
                       content[i + 1] != '\n') {
                    raw_delim += content[i + 1];
                    ++i;
                }
                if (i + 1 < n && content[i + 1] == '(')
                    ++i;
            } else if (c == '"') {
                state = State::String;
                begin_literal();
                code_line += '"';
                text_line += '"';
            } else if (c == '\'') {
                state = State::Char;
                code_line += '\'';
                text_line += '\'';
            } else {
                code_line += c;
                text_line += c;
            }
            break;
          case State::LineComment:
            comment_line += c;
            code_line += ' ';
            text_line += ' ';
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                code_line += "  ";
                text_line += "  ";
                ++i;
            } else {
                comment_line += c;
                code_line += ' ';
                text_line += ' ';
            }
            break;
          case State::String:
            if (c == '\\' && next != '\0' && next != '\n') {
                code_line += "  ";
                text_line += c;
                text_line += next;
                lit_value += c;
                lit_value += next;
                ++i;
            } else if (c == '"') {
                state = State::Code;
                code_line += '"';
                text_line += '"';
                end_literal();
            } else {
                code_line += ' ';
                text_line += c;
                lit_value += c;
            }
            break;
          case State::Char:
            if (c == '\\' && next != '\0' && next != '\n') {
                code_line += "  ";
                text_line += c;
                text_line += next;
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                code_line += '\'';
                text_line += '\'';
            } else {
                code_line += ' ';
                text_line += c;
            }
            break;
          case State::RawString: {
            // Close only on )delim" — otherwise blank the content.
            const std::string close = ")" + raw_delim + "\"";
            if (c == ')' &&
                content.compare(i, close.size(), close) == 0) {
                code_line += '"';
                text_line += '"';
                i += close.size() - 1;
                state = State::Code;
                end_literal();
            } else {
                code_line += ' ';
                text_line += c;
                lit_value += c;
            }
            break;
          }
        }
    }
    if (!code_line.empty() || !comment_line.empty())
        flush_line();
    while (unit.nolint.size() < unit.code.size())
        unit.nolint.push_back({});
    while (unit.notes.size() < unit.code.size())
        unit.notes.push_back({});
    while (unit.strings.size() < unit.code.size())
        unit.strings.push_back({});
    return unit;
}

// ---------------------------------------------------------------- //
// Structural parser                                                //
// ---------------------------------------------------------------- //

namespace
{

/**
 * Remove constructs that confuse statement classification: [[...]]
 * attributes, alignas(...), and UPPER_CASE macro invocations (thread-
 * safety annotations like DORA_GUARDED_BY(mu_), test macros).
 */
std::string
stripDeclNoise(const std::string &s)
{
    static const std::regex attr_re(R"(\[\[[^\]]*\]\])");
    static const std::regex alignas_re(R"(\balignas\s*\([^()]*\))");
    static const std::regex macro_re(
        R"(\b[A-Z][A-Z0-9_]{2,}\s*\([^()]*\))");
    std::string out = std::regex_replace(s, attr_re, " ");
    out = std::regex_replace(out, alignas_re, " ");
    std::string prev;
    // Repeat for nested macro arguments (rare, bounded).
    do {
        prev = out;
        out = std::regex_replace(out, macro_re, " ");
    } while (out != prev);
    return out;
}

/** Drop leading `template <...>` headers (possibly repeated). */
std::string
stripTemplateHeader(std::string s)
{
    for (;;) {
        if (s.rfind("template", 0) != 0)
            return s;
        size_t i = 8;
        while (i < s.size() && isSpace(s[i]))
            ++i;
        if (i >= s.size() || s[i] != '<')
            return s;
        int depth = 0;
        for (; i < s.size(); ++i) {
            if (s[i] == '<')
                ++depth;
            else if (s[i] == '>' && --depth == 0) {
                ++i;
                break;
            }
        }
        while (i < s.size() && isSpace(s[i]))
            ++i;
        s = s.substr(i);
    }
}

std::string
firstToken(const std::string &s)
{
    size_t b = 0;
    while (b < s.size() && !wordChar(s[b]))
        ++b;
    size_t e = b;
    while (e < s.size() && wordChar(s[e]))
        ++e;
    return s.substr(b, e - b);
}

/** True when s[i] starts the word "operator" read backwards from i. */
bool
endsWithOperatorKeyword(const std::string &s, size_t end)
{
    size_t k = end;
    while (k > 0 && isSpace(s[k - 1]))
        --k;
    return k >= 8 && s.compare(k - 8, 8, "operator") == 0 &&
        (k == 8 || !wordChar(s[k - 9]));
}

/**
 * First '(' at template-angle depth 0. "operator<"-style tokens do
 * not open an angle scope.
 */
size_t
findDeclParen(const std::string &s)
{
    int angle = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(' && angle == 0)
            return i;
        if (c == '<') {
            if (!endsWithOperatorKeyword(s, i) &&
                (i + 1 >= s.size() || s[i + 1] != '<') &&
                (i == 0 || s[i - 1] != '<'))
                ++angle;
        } else if (c == '>' && angle > 0) {
            --angle;
        }
    }
    return std::string::npos;
}

/**
 * Position of the first top-level plain `=` (an initializer), or
 * npos. Comparison/compound operators and `operator=` do not count.
 */
size_t
findInitEq(const std::string &s)
{
    int paren = 0, angle = 0, bracket = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '[')
            ++bracket;
        else if (c == ']')
            --bracket;
        else if (c == '<' && !endsWithOperatorKeyword(s, i))
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '=' && paren == 0 && angle == 0 && bracket == 0) {
            const char prev = i > 0 ? s[i - 1] : '\0';
            const char next = i + 1 < s.size() ? s[i + 1] : '\0';
            if (next == '=' ||
                std::string("=!<>+-*/%|&^").find(prev) !=
                    std::string::npos) {
                ++i;  // skip the operator pair
                continue;
            }
            if (endsWithOperatorKeyword(s, i))
                continue;
            return i;
        }
    }
    return std::string::npos;
}

/**
 * Trailing (possibly qualified) declarator name of @p s: `foo`,
 * `Class::foo`, `~Foo`, `Outer::operator==`. Empty when the tail is
 * not a name.
 */
std::string
trailingName(std::string s)
{
    while (!s.empty() && isSpace(s.back()))
        s.pop_back();
    if (s.empty())
        return "";
    const size_t end = s.size();
    size_t i = s.size();
    if (!wordChar(s[i - 1])) {
        // Possibly operator+, operator==, operator() ...
        size_t j = i;
        while (j > 0 && !wordChar(s[j - 1]) && !isSpace(s[j - 1]))
            --j;
        if (!endsWithOperatorKeyword(s, j))
            return "";
        size_t k = j;
        while (k > 0 && isSpace(s[k - 1]))
            --k;
        i = k - 8;
    } else {
        while (i > 0 && wordChar(s[i - 1]))
            --i;
        if (i > 0 && s[i - 1] == '~')
            --i;
        if (i < s.size() &&
            std::isdigit(static_cast<unsigned char>(s[i])))
            return "";
    }
    // Absorb leading Qualifier:: chains.
    while (i >= 2 && s[i - 1] == ':' && s[i - 2] == ':') {
        size_t j = i - 2;
        while (j > 0 && wordChar(s[j - 1]))
            --j;
        if (j == i - 2)
            break;
        i = j;
    }
    std::string name = s.substr(i, end - i);
    name.erase(std::remove_if(name.begin(), name.end(), isSpace),
               name.end());
    static const std::set<std::string> keywords = {
        "if",     "for",   "while", "switch", "catch", "return",
        "sizeof", "new",   "delete", "do",    "else",  "throw",
    };
    if (keywords.count(lastComponent(name)))
        return "";
    return name;
}

/** Text after the last top-level ')' of @p s ("" when no parens). */
std::string
tailAfterParams(const std::string &s)
{
    int depth = 0;
    size_t last_close = std::string::npos;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            last_close = i;
    }
    if (last_close == std::string::npos)
        return "";
    return collapseWs(s.substr(last_close + 1));
}

/** True when @p tail can legally follow a function's parameters. */
bool
validFunctionTail(const std::string &tail)
{
    if (tail.empty())
        return true;
    if (tail[0] == ':' || tail.rfind("->", 0) == 0)
        return true;
    std::istringstream in(tail);
    std::string tok;
    while (in >> tok)
        if (tok != "const" && tok != "noexcept" && tok != "override" &&
            tok != "final" && tok != "&" && tok != "&&")
            return false;
    return true;
}

/** Split on top-level commas (outside (), <>, []). */
std::vector<std::string>
splitTopLevel(const std::string &s)
{
    std::vector<std::string> out;
    int paren = 0, angle = 0, bracket = 0;
    std::string cur;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '[')
            ++bracket;
        else if (c == ']')
            --bracket;
        else if (c == '<' && !endsWithOperatorKeyword(s, i))
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        if (c == ',' && paren == 0 && angle == 0 && bracket == 0) {
            out.push_back(cur);
            cur.clear();
            continue;
        }
        cur += c;
    }
    out.push_back(cur);
    return out;
}

struct ParseScope
{
    enum Kind
    {
        Namespace,  //!< namespace / extern "C" block
        Struct,     //!< struct/class body: members are parsed
        Function,   //!< function body: text captured verbatim
        Init,       //!< brace initializer: skipped, statement kept
        Block,      //!< enum / unknown block: skipped and cleared
    };
    Kind kind;
    size_t index = 0;  //!< structs[] / functions[] slot
    int braces = 1;
};

/** Per-unit structural pass: fills model.structs / model.functions. */
void
parseUnit(const ScannedUnit &unit, TreeModel &model)
{
    std::vector<ParseScope> stack;
    std::string stmt;
    int stmt_line = 1;
    std::string body, body_text;
    int body_line = 1;
    std::string pending_class, pending_name;
    bool preprocessor = false;

    auto enclosingStruct = [&]() -> StructDecl * {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it)
            if (it->kind == ParseScope::Struct)
                return &model.structs[it->index];
        return nullptr;
    };

    auto classifyBrace = [&](int line_no) {
        const std::string s = collapseWs(
            stripTemplateHeader(collapseWs(stripDeclNoise(stmt))));
        const std::string tok = firstToken(s);
        StructDecl *outer = enclosingStruct();
        if (tok == "namespace" || tok == "extern") {
            stack.push_back({ParseScope::Namespace, 0, 1});
            stmt.clear();
            return;
        }
        if (tok == "enum" || tok == "union") {
            stack.push_back({ParseScope::Block, 0, 1});
            stmt.clear();
            return;
        }
        static const std::regex struct_re(
            R"(^(?:struct|class)\s+([A-Za-z_]\w*))");
        std::smatch m;
        if ((tok == "struct" || tok == "class") &&
            std::regex_search(s, m, struct_re)) {
            StructDecl decl;
            decl.name = outer ? outer->name + "::" + m[1].str()
                              : m[1].str();
            decl.path = unit.path;
            decl.line = stmt_line;
            model.structs.push_back(std::move(decl));
            stack.push_back(
                {ParseScope::Struct, model.structs.size() - 1, 1});
            stmt.clear();
            return;
        }
        if (findInitEq(s) != std::string::npos) {
            stack.push_back({ParseScope::Init, 0, 1});
            return;  // keep stmt: the declarator precedes the braces
        }
        const size_t paren = findDeclParen(s);
        if (paren != std::string::npos) {
            const std::string name = trailingName(s.substr(0, paren));
            if (!name.empty() && validFunctionTail(tailAfterParams(s))) {
                pending_name = lastComponent(name);
                pending_class = name.size() > pending_name.size()
                    ? name.substr(0,
                                  name.size() - pending_name.size() - 2)
                    : (outer ? outer->name : "");
                if (outer)
                    outer->methods.insert(pending_name);
                body.clear();
                body_text.clear();
                body_line = stmt_line;
                stack.push_back({ParseScope::Function, 0, 1});
                stmt.clear();
                return;
            }
        }
        if (outer) {
            stack.push_back({ParseScope::Init, 0, 1});
            return;  // NSDMI without '=': keep the declarator
        }
        stack.push_back({ParseScope::Block, 0, 1});
        stmt.clear();
        (void)line_no;
    };

    auto finishFunction = [&]() {
        FunctionDef def;
        def.className = pending_class;
        def.name = pending_name;
        def.path = unit.path;
        def.line = body_line;
        def.body = body;
        def.bodyText = body_text;
        model.functions.push_back(std::move(def));
        body.clear();
        body_text.clear();
    };

    auto classifyStructStatement = [&](StructDecl &decl, int end_line) {
        std::string s = collapseWs(stripDeclNoise(stmt));
        if (s.empty())
            return;
        const std::string tok = firstToken(s);
        static const std::set<std::string> skip = {
            "using",  "typedef", "friend", "static", "template",
            "struct", "class",   "enum",   "union",  "extern",
            "public", "private", "protected",
        };
        if (skip.count(tok))
            return;
        for (std::string chunk : splitTopLevel(s)) {
            const size_t eq = findInitEq(chunk);
            if (eq != std::string::npos)
                chunk = chunk.substr(0, eq);
            const size_t paren = findDeclParen(chunk);
            if (paren != std::string::npos) {
                const std::string name =
                    trailingName(chunk.substr(0, paren));
                if (!name.empty())
                    decl.methods.insert(lastComponent(name));
                continue;
            }
            // Strip trailing array extents and bitfield widths.
            static const std::regex array_re(R"((\s*\[[^\]]*\])+\s*$)");
            chunk = std::regex_replace(chunk, array_re, "");
            int angle = 0;
            for (size_t i = 0; i < chunk.size(); ++i) {
                const char c = chunk[i];
                if (c == '<')
                    ++angle;
                else if (c == '>' && angle > 0)
                    --angle;
                else if (c == ':' && angle == 0 &&
                         (i + 1 >= chunk.size() || chunk[i + 1] != ':') &&
                         (i == 0 || chunk[i - 1] != ':')) {
                    chunk = chunk.substr(0, i);
                    break;
                }
            }
            static const std::regex name_re(R"(([A-Za-z_]\w*)\s*$)");
            std::smatch m;
            if (!std::regex_search(chunk, m, name_re))
                continue;
            decl.members.push_back(
                MemberDecl{m[1].str(), stmt_line, end_line});
        }
    };

    for (size_t li = 0; li < unit.code.size(); ++li) {
        const std::string &line = unit.code[li];
        const std::string &tline = unit.text[li];
        const int line_no = static_cast<int>(li) + 1;

        if (!preprocessor) {
            const size_t first = line.find_first_not_of(" \t");
            if (first != std::string::npos && line[first] == '#') {
                preprocessor = !line.empty() && line.back() == '\\';
                continue;
            }
        } else {
            preprocessor = !line.empty() && line.back() == '\\';
            continue;
        }

        for (size_t ci = 0; ci < line.size(); ++ci) {
            const char c = line[ci];
            ParseScope *top = stack.empty() ? nullptr : &stack.back();

            if (top && top->kind == ParseScope::Function) {
                if (c == '{') {
                    ++top->braces;
                } else if (c == '}') {
                    if (--top->braces == 0) {
                        finishFunction();
                        stack.pop_back();
                        continue;
                    }
                }
                body += c;
                body_text += ci < tline.size() ? tline[ci] : c;
                continue;
            }
            if (top && (top->kind == ParseScope::Init ||
                        top->kind == ParseScope::Block)) {
                if (c == '{')
                    ++top->braces;
                else if (c == '}' && --top->braces == 0)
                    stack.pop_back();
                continue;
            }

            if (c == '{') {
                classifyBrace(line_no);
            } else if (c == '}') {
                if (!stack.empty())
                    stack.pop_back();
                stmt.clear();
            } else if (c == ';') {
                if (top && top->kind == ParseScope::Struct)
                    classifyStructStatement(model.structs[top->index],
                                            line_no);
                stmt.clear();
            } else if (c == ':' && top &&
                       top->kind == ParseScope::Struct) {
                const std::string s = collapseWs(stmt);
                if (s == "public" || s == "private" || s == "protected")
                    stmt.clear();
                else
                    stmt += c;
            } else {
                if (!isSpace(c) && collapseWs(stmt).empty())
                    stmt_line = line_no;
                stmt += c;
            }
        }
        ParseScope *top = stack.empty() ? nullptr : &stack.back();
        if (top && top->kind == ParseScope::Function) {
            body += '\n';
            body_text += '\n';
        } else {
            stmt += ' ';
        }
    }
}

} // namespace

TreeModel
buildModel(std::vector<ScannedUnit> units)
{
    TreeModel model;
    model.units = std::move(units);
    for (const ScannedUnit &unit : model.units)
        parseUnit(unit, model);
    return model;
}

// ---------------------------------------------------------------- //
// Serialized layouts                                               //
// ---------------------------------------------------------------- //

namespace
{

std::string
qualifiedName(const FunctionDef &f)
{
    return f.className.empty() ? f.name : f.className + "::" + f.name;
}

/**
 * Ordered serialization calls of a writer body: beginSection / put*
 * with whitespace-normalized arguments. Receiver objects (`w.`) are
 * dropped so renaming the writer variable is not a layout change.
 */
std::vector<std::string>
serializationOps(const std::string &body_text)
{
    static const std::regex op_re(
        R"((?:\b\w+\s*\.\s*)?\b(beginSection|put[A-Z]\w*)\s*\()");
    std::vector<std::string> ops;
    for (auto it = std::sregex_iterator(body_text.begin(),
                                        body_text.end(), op_re);
         it != std::sregex_iterator(); ++it) {
        const size_t arg_start =
            static_cast<size_t>(it->position(0) + it->length(0));
        int depth = 1;
        bool in_str = false, in_chr = false;
        size_t end = std::string::npos;
        for (size_t i = arg_start; i < body_text.size(); ++i) {
            const char c = body_text[i];
            if (in_str) {
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    in_str = false;
                continue;
            }
            if (in_chr) {
                if (c == '\\')
                    ++i;
                else if (c == '\'')
                    in_chr = false;
                continue;
            }
            if (c == '"')
                in_str = true;
            else if (c == '\'')
                in_chr = true;
            else if (c == '(')
                ++depth;
            else if (c == ')' && --depth == 0) {
                end = i;
                break;
            }
        }
        if (end == std::string::npos)
            continue;
        ops.push_back(
            (*it)[1].str() + "(" +
            collapseWs(body_text.substr(arg_start, end - arg_start)) +
            ")");
    }
    return ops;
}

/** Statement-level fingerprint for function-anchored formats. */
std::vector<std::string>
statementOps(const std::string &body_text)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false, in_chr = false;
    for (size_t i = 0; i < body_text.size(); ++i) {
        const char c = body_text[i];
        if (in_str || in_chr) {
            cur += c;
            if (c == '\\' && i + 1 < body_text.size())
                cur += body_text[++i];
            else if (in_str && c == '"')
                in_str = false;
            else if (in_chr && c == '\'')
                in_chr = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '\'')
            in_chr = true;
        else if (c == ';') {
            const std::string s = collapseWs(cur);
            if (!s.empty())
                out.push_back(s);
            cur.clear();
            continue;
        }
        cur += c;
    }
    const std::string s = collapseWs(cur);
    if (!s.empty())
        out.push_back(s);
    return out;
}

/** Formats not written through SnapshotWriter sections. */
struct AnchoredFormat
{
    const char *name;
    const char *file;          //!< the writer's TU
    const char *function;      //!< qualified writer name
    const char *versionFile;   //!< where the version token lives
    std::vector<const char *> versionPatterns;  //!< one capture each
};

const std::vector<AnchoredFormat> &
anchoredFormats()
{
    static const std::vector<AnchoredFormat> table = {
        {"wire-frame", "src/exec/proc/wire.cc", "encodeFrame",
         "src/exec/proc/wire.cc", {R"(kMagic\s*=\s*([^;]+);)"}},
        {"journal-header", "src/exec/proc/journal.cc", "encodeHeader",
         "src/exec/proc/journal.cc",
         {R"(kJournalMagic\s*=\s*([^;]+);)",
          R"(kJournalVersion\s*=\s*([^;]+);)"}},
        {"journal-record", "src/exec/proc/journal.cc", "encodeRecord",
         "src/exec/proc/journal.cc",
         {R"(kRecordMagic\s*=\s*([^;]+);)"}},
        {"model-bundle", "src/dora/model_bundle.cc",
         "ModelBundle::serialize", "src/dora/model_bundle.hh",
         {R"(kFormatVersion\s*=\s*([^;]+);)"}},
    };
    return table;
}

const ScannedUnit *
findUnit(const TreeModel &model, const std::string &path)
{
    for (const ScannedUnit &u : model.units)
        if (u.path == path)
            return &u;
    return nullptr;
}

std::string
joinedText(const ScannedUnit &unit)
{
    std::string out;
    for (const std::string &line : unit.text) {
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace

std::vector<LayoutRecord>
computeLayouts(const TreeModel &model, std::vector<Finding> *problems)
{
    std::vector<LayoutRecord> records;

    // Auto-discovered snapshot-section writers: a function calling
    // beginSection("tag", v) plus at least one put* is a writer (the
    // matching reader calls beginSection with get*s and is skipped).
    for (const FunctionDef &f : model.functions) {
        if (!hasPrefix(f.path, "src/"))
            continue;
        const std::vector<std::string> ops = serializationOps(f.bodyText);
        bool writes = false;
        for (const std::string &op : ops)
            if (op.rfind("put", 0) == 0)
                writes = true;
        if (!writes)
            continue;
        for (const std::string &op : ops) {
            if (op.rfind("beginSection(", 0) != 0)
                continue;
            const size_t q1 = op.find('"');
            const size_t q2 =
                q1 == std::string::npos ? q1 : op.find('"', q1 + 1);
            if (q2 == std::string::npos)
                continue;
            LayoutRecord rec;
            rec.name = "section:" + op.substr(q1 + 1, q2 - q1 - 1);
            rec.file = f.path;
            rec.function = qualifiedName(f);
            const size_t comma = op.find(',', q2);
            rec.version = comma == std::string::npos
                ? ""
                : collapseWs(op.substr(comma + 1,
                                       op.size() - comma - 2));
            rec.layout = ops;
            rec.line = f.line;
            records.push_back(std::move(rec));
        }
    }

    // Table-anchored formats (wire frames, journal, model bundle).
    // An anchor only applies when its TU is part of the scanned tree
    // (fixture trees do not contain them).
    for (const AnchoredFormat &fmt : anchoredFormats()) {
        const ScannedUnit *tu = findUnit(model, fmt.file);
        if (!tu)
            continue;
        LayoutRecord rec;
        rec.name = fmt.name;
        rec.file = fmt.file;
        rec.function = fmt.function;
        rec.line = 1;
        bool found = false;
        for (const FunctionDef &f : model.functions) {
            if (f.path != fmt.file || qualifiedName(f) != fmt.function)
                continue;
            const std::vector<std::string> ops =
                statementOps(f.bodyText);
            rec.layout.insert(rec.layout.end(), ops.begin(),
                              ops.end());
            rec.line = f.line;
            found = true;
        }
        if (!found) {
            if (problems)
                problems->push_back(Finding{
                    fmt.file, 1, "dora-ser-version",
                    std::string("anchored serialized format '") +
                        fmt.name + "': writer function " +
                        fmt.function +
                        " not found; update the anchor table in "
                        "tools/analyze/analyze_engine.cc"});
            continue;
        }
        const ScannedUnit *vu = findUnit(model, fmt.versionFile);
        const std::string vtext = vu ? joinedText(*vu) : "";
        std::string version;
        for (const char *pattern : fmt.versionPatterns) {
            std::smatch m;
            if (vu && std::regex_search(vtext, m,
                                        std::regex(pattern))) {
                if (!version.empty())
                    version += "|";
                version += collapseWs(m[1].str());
            } else if (problems) {
                problems->push_back(Finding{
                    fmt.versionFile, 1, "dora-ser-version",
                    std::string("anchored serialized format '") +
                        fmt.name + "': version token pattern '" +
                        pattern + "' not found in " + fmt.versionFile});
            }
        }
        rec.version = version;
        records.push_back(std::move(rec));
    }

    // Disambiguate duplicate names (same tag written by two
    // functions) so manifest keys stay stable.
    std::map<std::string, int> name_count;
    for (const LayoutRecord &rec : records)
        ++name_count[rec.name];
    for (LayoutRecord &rec : records)
        if (name_count[rec.name] > 1)
            rec.name += "#" + rec.function;

    std::sort(records.begin(), records.end(),
              [](const LayoutRecord &a, const LayoutRecord &b) {
                  return a.name < b.name;
              });
    return records;
}

// ---------------------------------------------------------------- //
// Manifest rendering / parsing                                     //
// ---------------------------------------------------------------- //

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** Strict parser for the JSON subset renderManifest emits. */
struct JsonCursor
{
    const std::string &s;
    size_t i = 0;
    std::string err;

    bool fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(i);
        return false;
    }
    void ws()
    {
        while (i < s.size() && isSpace(s[i]))
            ++i;
    }
    bool expect(char c)
    {
        ws();
        if (i >= s.size() || s[i] != c)
            return fail(std::string("expected '") + c + "'");
        ++i;
        return true;
    }
    bool peek(char c)
    {
        ws();
        return i < s.size() && s[i] == c;
    }
    bool parseString(std::string *out)
    {
        if (!expect('"'))
            return false;
        std::string value;
        while (i < s.size() && s[i] != '"') {
            char c = s[i++];
            if (c == '\\' && i < s.size()) {
                const char e = s[i++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u': {
                    if (i + 4 > s.size())
                        return fail("truncated \\u escape");
                    c = static_cast<char>(
                        std::stoul(s.substr(i, 4), nullptr, 16) & 0xff);
                    i += 4;
                    break;
                  }
                  default: c = e; break;
                }
            }
            value += c;
        }
        if (i >= s.size())
            return fail("unterminated string");
        ++i;
        if (out)
            *out = std::move(value);
        return true;
    }
    bool skipValue()
    {
        ws();
        if (i >= s.size())
            return fail("unexpected end of input");
        const char c = s[i];
        if (c == '"')
            return parseString(nullptr);
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++i;
            ws();
            if (peek(close)) {
                ++i;
                return true;
            }
            for (;;) {
                if (c == '{') {
                    if (!parseString(nullptr) || !expect(':'))
                        return false;
                }
                if (!skipValue())
                    return false;
                ws();
                if (peek(',')) {
                    ++i;
                    continue;
                }
                return expect(close);
            }
        }
        // number / true / false / null
        while (i < s.size() && (wordChar(s[i]) || s[i] == '-' ||
                                s[i] == '+' || s[i] == '.'))
            ++i;
        return true;
    }
};

} // namespace

std::string
renderManifest(const std::vector<LayoutRecord> &records)
{
    std::vector<LayoutRecord> sorted = records;
    std::sort(sorted.begin(), sorted.end(),
              [](const LayoutRecord &a, const LayoutRecord &b) {
                  return a.name < b.name;
              });
    std::ostringstream out;
    out << "{\n  \"format\": \"dora-serialized-layouts-v1\",\n"
        << "  \"formats\": [\n";
    for (size_t r = 0; r < sorted.size(); ++r) {
        const LayoutRecord &rec = sorted[r];
        out << "    {\n"
            << "      \"name\": \"" << jsonEscape(rec.name) << "\",\n"
            << "      \"file\": \"" << jsonEscape(rec.file) << "\",\n"
            << "      \"function\": \"" << jsonEscape(rec.function)
            << "\",\n"
            << "      \"version\": \"" << jsonEscape(rec.version)
            << "\",\n"
            << "      \"layout\": [";
        for (size_t i = 0; i < rec.layout.size(); ++i)
            out << (i ? ",\n                 " : "\n                 ")
                << "\"" << jsonEscape(rec.layout[i]) << "\"";
        out << "\n      ]\n    }" << (r + 1 < sorted.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

bool
parseManifest(const std::string &json,
              std::vector<LayoutRecord> *records, std::string *error)
{
    JsonCursor cur{json, 0, {}};
    records->clear();
    auto done = [&](bool ok) {
        if (!ok && error)
            *error = cur.err.empty() ? "malformed manifest" : cur.err;
        return ok;
    };
    if (!cur.expect('{'))
        return done(false);
    if (cur.peek('}'))
        return done(true);
    for (;;) {
        std::string key;
        if (!cur.parseString(&key) || !cur.expect(':'))
            return done(false);
        if (key != "formats") {
            if (!cur.skipValue())
                return done(false);
        } else {
            if (!cur.expect('['))
                return done(false);
            while (!cur.peek(']')) {
                if (!cur.expect('{'))
                    return done(false);
                LayoutRecord rec;
                while (!cur.peek('}')) {
                    std::string field;
                    if (!cur.parseString(&field) || !cur.expect(':'))
                        return done(false);
                    if (field == "name") {
                        if (!cur.parseString(&rec.name))
                            return done(false);
                    } else if (field == "file") {
                        if (!cur.parseString(&rec.file))
                            return done(false);
                    } else if (field == "function") {
                        if (!cur.parseString(&rec.function))
                            return done(false);
                    } else if (field == "version") {
                        if (!cur.parseString(&rec.version))
                            return done(false);
                    } else if (field == "layout") {
                        if (!cur.expect('['))
                            return done(false);
                        while (!cur.peek(']')) {
                            std::string op;
                            if (!cur.parseString(&op))
                                return done(false);
                            rec.layout.push_back(std::move(op));
                            if (cur.peek(','))
                                ++cur.i;
                        }
                        ++cur.i;  // ']'
                    } else {
                        if (!cur.skipValue())
                            return done(false);
                    }
                    if (cur.peek(','))
                        ++cur.i;
                }
                ++cur.i;  // '}'
                records->push_back(std::move(rec));
                if (cur.peek(','))
                    ++cur.i;
            }
            ++cur.i;  // ']'
        }
        if (cur.peek(',')) {
            ++cur.i;
            continue;
        }
        return done(cur.expect('}'));
    }
}

// ---------------------------------------------------------------- //
// Rules                                                            //
// ---------------------------------------------------------------- //

namespace
{

/**
 * dora-cov-hash: every field of a config struct under a hash
 * contract must be referenced by its hash function(s) or annotated
 * `// dora:hash-exclude(<reason>)`.
 */
struct HashContract
{
    const char *structName;
    std::vector<const char *> hashFunctions;
};

const std::vector<HashContract> &
hashContracts()
{
    static const std::vector<HashContract> table = {
        {"ExperimentConfig", {"experimentConfigHash"}},
        {"FleetSpec", {"fleetSpecText", "fleetSpecHash"}},
        {"TrainerConfig", {"trainingConfigHash"}},
    };
    return table;
}

void
ruleCovHash(const TreeModel &model, std::vector<Finding> &out)
{
    for (const HashContract &contract : hashContracts()) {
        std::string bodies;
        std::string fn_names;
        for (const char *fn : contract.hashFunctions) {
            for (const FunctionDef &f : model.functions)
                if (f.name == fn)
                    bodies += f.body + "\n";
            if (!fn_names.empty())
                fn_names += "/";
            fn_names += fn;
        }
        for (const StructDecl &decl : model.structs) {
            if (lastComponent(decl.name) != contract.structName)
                continue;
            const ScannedUnit *unit = findUnit(model, decl.path);
            if (bodies.empty()) {
                out.push_back(Finding{
                    decl.path, decl.line, "dora-cov-hash",
                    std::string("hash function ") + fn_names +
                        "() for " + contract.structName +
                        " not found in the scanned tree"});
                continue;
            }
            for (const MemberDecl &m : decl.members) {
                if (referencesIdentifier(bodies, m.name))
                    continue;
                bool annotated = false;
                for (int line = m.line; line <= m.endLine && unit;
                     ++line)
                    if (unit->hasAnnotation(line, "hash-exclude"))
                        annotated = true;
                if (annotated)
                    continue;
                out.push_back(Finding{
                    decl.path, m.line, "dora-cov-hash",
                    "field '" + m.name + "' of " +
                        contract.structName +
                        " is not folded into " + fn_names +
                        "(); fold it or annotate '// "
                        "dora:hash-exclude(<reason>)' — un-hashed "
                        "fields silently reuse stale caches"});
            }
        }
    }
}

/**
 * dora-cov-snapshot: every data member of a class that defines both
 * snapshot() and tryRestore() must appear in both bodies or carry
 * `// dora:snapshot-exclude(<reason>)`.
 */
void
ruleCovSnapshot(const TreeModel &model, std::vector<Finding> &out)
{
    for (const StructDecl &decl : model.structs) {
        if (!hasPrefix(decl.path, "src/"))
            continue;
        const std::string cls = lastComponent(decl.name);
        std::string snap_body, restore_body;
        for (const FunctionDef &f : model.functions) {
            if (lastComponent(f.className) != cls)
                continue;
            if (f.name == "snapshot")
                snap_body += f.body + "\n";
            else if (f.name == "tryRestore")
                restore_body += f.body + "\n";
        }
        const bool declares_both = decl.methods.count("snapshot") &&
            decl.methods.count("tryRestore");
        if (!declares_both || snap_body.empty() ||
            restore_body.empty())
            continue;
        const ScannedUnit *unit = findUnit(model, decl.path);
        for (const MemberDecl &m : decl.members) {
            const bool in_snap =
                referencesIdentifier(snap_body, m.name);
            const bool in_restore =
                referencesIdentifier(restore_body, m.name);
            if (in_snap && in_restore)
                continue;
            bool annotated = false;
            for (int line = m.line; line <= m.endLine && unit; ++line)
                if (unit->hasAnnotation(line, "snapshot-exclude"))
                    annotated = true;
            if (annotated)
                continue;
            const char *where = (!in_snap && !in_restore)
                ? "snapshot() or tryRestore()"
                : (!in_snap ? "snapshot()" : "tryRestore()");
            out.push_back(Finding{
                decl.path, m.line, "dora-cov-snapshot",
                "member '" + m.name + "' of " + cls +
                    " does not appear in " + where +
                    "; serialize it in both or annotate '// "
                    "dora:snapshot-exclude(<reason>)' — missing "
                    "members break resume/replay bit-identity"});
        }
    }
}

/**
 * dora-det-streamtag: RNG stream-tag literals (first argument of
 * Rng(...), .fork(...), hashLabel(...)) used at more than one call
 * site correlate streams that must be independent.
 */
struct TagSite
{
    size_t unitIdx;
    int line;
};

void
ruleDetStreamtag(const TreeModel &model, std::vector<Finding> &out)
{
    std::map<std::string, std::vector<TagSite>> sites;
    for (size_t ui = 0; ui < model.units.size(); ++ui) {
        const ScannedUnit &unit = model.units[ui];
        if (!anyPrefix(unit.path, {"src/", "bench/", "tools/fleet/"}))
            continue;
        for (size_t li = 0; li < unit.text.size(); ++li) {
            for (const StringLit &lit : unit.strings[li]) {
                if (lit.value.empty() ||
                    static_cast<size_t>(lit.line) != li + 1)
                    continue;
                std::string before =
                    unit.text[li].substr(0, lit.col);
                if (collapseWs(before).empty() && li > 0)
                    before = unit.text[li - 1] + " " + before;
                while (!before.empty() && isSpace(before.back()))
                    before.pop_back();
                if (before.empty() || before.back() != '(')
                    continue;
                before.pop_back();
                while (!before.empty() && isSpace(before.back()))
                    before.pop_back();
                // Identifier immediately before the '('.
                size_t w = before.size();
                while (w > 0 && wordChar(before[w - 1]))
                    --w;
                const std::string callee = before.substr(w);
                std::string rest = before.substr(0, w);
                while (!rest.empty() && isSpace(rest.back()))
                    rest.pop_back();
                bool is_site = false;
                if (callee == "hashLabel" || callee == "Rng") {
                    is_site = true;
                } else if (callee == "fork" && !rest.empty() &&
                           (rest.back() == '.' ||
                            (rest.size() >= 2 &&
                             rest.compare(rest.size() - 2, 2, "->") ==
                                 0))) {
                    is_site = true;
                } else if (!callee.empty()) {
                    // Named constructor: `Rng name("tag" ...)`.
                    size_t w2 = rest.size();
                    while (w2 > 0 && wordChar(rest[w2 - 1]))
                        --w2;
                    if (rest.substr(w2) == "Rng")
                        is_site = true;
                }
                if (is_site)
                    sites[lit.value].push_back(
                        TagSite{ui, static_cast<int>(li + 1)});
            }
        }
    }
    for (const auto &[tag, tag_sites] : sites) {
        if (tag_sites.size() < 2)
            continue;
        for (size_t i = 0; i < tag_sites.size(); ++i) {
            const TagSite &site = tag_sites[i];
            const ScannedUnit &unit = model.units[site.unitIdx];
            if (unit.hasAnnotation(site.line, "stream-tag-shared"))
                continue;
            const TagSite &other = tag_sites[i == 0 ? 1 : 0];
            out.push_back(Finding{
                unit.path, site.line, "dora-det-streamtag",
                "RNG stream tag \"" + tag + "\" is seeded at " +
                    std::to_string(tag_sites.size()) +
                    " call sites (also " +
                    model.units[other.unitIdx].path + ":" +
                    std::to_string(other.line) +
                    "); shared tags correlate streams that must be "
                    "independent — use a distinct tag or annotate "
                    "'// dora:stream-tag-shared(<reason>)'"});
        }
    }
}

/**
 * dora-ser-version: diff recomputed layouts against the checked-in
 * manifest; a layout change without a version-token change is the
 * PR 9 bug class.
 */
void
ruleSerVersion(const TreeModel &model, const std::string *manifestJson,
               std::vector<Finding> &out)
{
    std::vector<LayoutRecord> computed = computeLayouts(model, &out);
    if (!manifestJson) {
        if (!computed.empty())
            out.push_back(Finding{
                manifestRelPath(), 1, "dora-ser-version",
                "serialized-layout manifest is missing but the tree "
                "contains " +
                    std::to_string(computed.size()) +
                    " serialized formats; run dora-analyze "
                    "--regen-manifest"});
        return;
    }
    std::vector<LayoutRecord> recorded;
    std::string error;
    if (!parseManifest(*manifestJson, &recorded, &error)) {
        out.push_back(Finding{manifestRelPath(), 1,
                              "dora-ser-version",
                              "manifest is malformed (" + error +
                                  "); run dora-analyze "
                                  "--regen-manifest"});
        return;
    }
    std::map<std::string, const LayoutRecord *> by_name;
    for (const LayoutRecord &rec : recorded)
        by_name[rec.name] = &rec;
    std::set<std::string> seen;
    for (const LayoutRecord &c : computed) {
        seen.insert(c.name);
        const auto it = by_name.find(c.name);
        if (it == by_name.end()) {
            out.push_back(Finding{
                c.file, c.line, "dora-ser-version",
                "serialized format '" + c.name + "' (version " +
                    c.version +
                    ") is not declared in the manifest; review the "
                    "layout and run dora-analyze --regen-manifest"});
            continue;
        }
        const LayoutRecord &m = *it->second;
        if (c.layout != m.layout && c.version == m.version) {
            out.push_back(Finding{
                c.file, c.line, "dora-ser-version",
                "layout of '" + c.name +
                    "' changed but its version token is still " +
                    c.version +
                    "; old readers would mis-parse the new bytes — "
                    "bump the version and run dora-analyze "
                    "--regen-manifest"});
        } else if (c.layout != m.layout) {
            out.push_back(Finding{
                c.file, c.line, "dora-ser-version",
                "layout and version of '" + c.name + "' changed (" +
                    m.version + " -> " + c.version +
                    "); run dora-analyze --regen-manifest to bless "
                    "the new layout"});
        } else if (c.version != m.version) {
            out.push_back(Finding{
                c.file, c.line, "dora-ser-version",
                "version token of '" + c.name + "' changed " +
                    m.version + " -> " + c.version +
                    " without a layout change; run dora-analyze "
                    "--regen-manifest"});
        }
    }
    for (const LayoutRecord &m : recorded)
        if (!seen.count(m.name))
            out.push_back(Finding{
                manifestRelPath(), 1, "dora-ser-version",
                "manifest entry '" + m.name +
                    "' no longer matches any writer in the tree; run "
                    "dora-analyze --regen-manifest"});
}

/**
 * dora-cli-flag: a `--flag` literal in comparison position outside
 * the common/cli.hh helpers re-opens the silent-misconfiguration
 * class (missing values falling through to defaults).
 */
void
ruleCliFlag(const TreeModel &model, std::vector<Finding> &out)
{
    static const std::set<std::string> parse_callees = {
        "strcmp", "strncmp", "rfind", "find", "compare",
        "starts_with",
    };
    for (const ScannedUnit &unit : model.units) {
        if (!anyPrefix(unit.path, {"src/", "bench/", "tools/fleet/"}))
            continue;
        if (hasPrefix(unit.path, "src/common/cli."))
            continue;  // the helpers themselves
        for (size_t li = 0; li < unit.text.size(); ++li) {
            for (const StringLit &lit : unit.strings[li]) {
                if (lit.value.size() < 3 ||
                    lit.value.rfind("--", 0) != 0 ||
                    !std::isalpha(
                        static_cast<unsigned char>(lit.value[2])) ||
                    static_cast<size_t>(lit.line) != li + 1)
                    continue;
                const std::string &text = unit.text[li];
                std::string before = text.substr(0, lit.col);
                const size_t lit_end =
                    lit.col + lit.value.size() + 2;
                std::string after = lit_end < text.size()
                    ? text.substr(lit_end)
                    : "";
                while (!before.empty() && isSpace(before.back()))
                    before.pop_back();
                size_t a = 0;
                while (a < after.size() && isSpace(after[a]))
                    ++a;
                after = after.substr(a);
                bool compared = false;
                if (before.size() >= 2 &&
                    (before.compare(before.size() - 2, 2, "==") == 0 ||
                     before.compare(before.size() - 2, 2, "!=") == 0))
                    compared = true;
                if (after.rfind("==", 0) == 0 ||
                    after.rfind("!=", 0) == 0)
                    compared = true;
                if (!compared) {
                    // Callee of the innermost unclosed call.
                    int depth = 0;
                    for (size_t i = before.size(); i-- > 0;) {
                        const char c = before[i];
                        if (c == ')') {
                            ++depth;
                        } else if (c == '(') {
                            if (depth > 0) {
                                --depth;
                                continue;
                            }
                            size_t w = i;
                            while (w > 0 && isSpace(before[w - 1]))
                                --w;
                            size_t b = w;
                            while (b > 0 && wordChar(before[b - 1]))
                                --b;
                            compared = parse_callees.count(
                                           before.substr(b, w - b)) >
                                0;
                            break;
                        }
                    }
                }
                if (!compared)
                    continue;
                out.push_back(Finding{
                    unit.path, static_cast<int>(li + 1),
                    "dora-cli-flag",
                    "flag \"" + lit.value +
                        "\" is parsed by hand; route it through "
                        "cliFlagValue()/cliHasFlag() (common/cli.hh) "
                        "so missing values stay a fatal diagnostic "
                        "instead of a silent default"});
            }
        }
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"dora-cov-hash",
         "config struct fields must be folded into their hash "
         "function or annotated dora:hash-exclude(reason)"},
        {"dora-cov-snapshot",
         "members of classes with snapshot()/tryRestore() must "
         "round-trip through both or be annotated "
         "dora:snapshot-exclude(reason)"},
        {"dora-det-streamtag",
         "an RNG stream tag used at multiple call sites correlates "
         "streams; share only with dora:stream-tag-shared(reason)"},
        {"dora-ser-version",
         "serialized layouts must match tools/analyze/"
         "serialized_layouts.json; layout changes require a version "
         "bump (--regen-manifest to bless)"},
        {"dora-cli-flag",
         "--flag literals must be parsed via the common/cli.hh "
         "helpers, not by hand"},
    };
    return catalog;
}

std::vector<Finding>
analyzeModel(const TreeModel &model, const std::string *manifestJson)
{
    std::vector<Finding> raw;
    ruleCovHash(model, raw);
    ruleCovSnapshot(model, raw);
    ruleDetStreamtag(model, raw);
    ruleSerVersion(model, manifestJson, raw);
    ruleCliFlag(model, raw);

    std::map<std::string, const ScannedUnit *> by_path;
    for (const ScannedUnit &unit : model.units)
        by_path[unit.path] = &unit;

    std::vector<Finding> findings;
    for (Finding &finding : raw) {
        const auto it = by_path.find(finding.path);
        if (it != by_path.end()) {
            const size_t idx = static_cast<size_t>(finding.line) - 1;
            if (idx < it->second->nolint.size()) {
                const auto &suppressed = it->second->nolint[idx];
                if (suppressed.count("*") ||
                    suppressed.count(finding.rule))
                    continue;
            }
        }
        findings.push_back(std::move(finding));
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return findings;
}

// ---------------------------------------------------------------- //
// Tree entry points                                                //
// ---------------------------------------------------------------- //

const std::vector<std::string> &
defaultSubdirs()
{
    static const std::vector<std::string> dirs = {"src", "bench",
                                                  "tools"};
    return dirs;
}

const char *
manifestRelPath()
{
    return "tools/analyze/serialized_layouts.json";
}

TreeModel
loadTree(const std::string &repoRoot,
         const std::vector<std::string> &subdirs,
         std::vector<std::string> *scannedPaths)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    for (const auto &subdir : subdirs) {
        const fs::path root = fs::path(repoRoot) / subdir;
        if (!fs::exists(root))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            std::string rel = entry.path()
                                  .lexically_relative(repoRoot)
                                  .generic_string();
            // Golden-test fixtures are deliberate violations.
            if (rel.find("fixtures/") != std::string::npos)
                continue;
            paths.push_back(std::move(rel));
        }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<ScannedUnit> units;
    units.reserve(paths.size());
    for (const auto &rel : paths) {
        std::ifstream in(fs::path(repoRoot) / rel, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        units.push_back(scanUnit(rel, content.str()));
    }
    if (scannedPaths)
        *scannedPaths = std::move(paths);
    return buildModel(std::move(units));
}

std::vector<Finding>
analyzeTree(const std::string &repoRoot,
            const std::vector<std::string> &subdirs,
            std::vector<std::string> *scannedPaths)
{
    const TreeModel model = loadTree(repoRoot, subdirs, scannedPaths);
    const std::filesystem::path manifest_path =
        std::filesystem::path(repoRoot) / manifestRelPath();
    std::string manifest;
    bool have_manifest = false;
    if (std::filesystem::exists(manifest_path)) {
        std::ifstream in(manifest_path, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        manifest = content.str();
        have_manifest = true;
    }
    return analyzeModel(model, have_manifest ? &manifest : nullptr);
}

std::string
renderText(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    for (const auto &f : findings)
        out << f.path << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
    return out.str();
}

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    out << "[\n";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << "  {\"file\": \"" << jsonEscape(f.path)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"message\": \""
            << jsonEscape(f.message) << "\"}"
            << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.str();
}

} // namespace dora::analyze
