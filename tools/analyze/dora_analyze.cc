/**
 * @file
 * dora-analyze command-line driver.
 *
 *   dora-analyze [--repo DIR] [--json FILE] [--list-rules]
 *                [--regen-manifest [--allow-same-version]]
 *                [subdirs...]
 *
 * Walks src/ bench/ tools/ (or the given subdirs) under the repo
 * root, builds the cross-TU structural model (analyze_engine.hh),
 * applies the five coverage/version rules, prints findings as
 * `path:line: [rule-id] message`, optionally writes the JSON report,
 * and exits 1 if anything was found — which is how scripts/ci.sh
 * turns the rule set into a gate.
 *
 * --regen-manifest recomputes tools/analyze/serialized_layouts.json
 * from the tree. It refuses to bless a layout that changed while its
 * version token did not (that is exactly the bug the rule exists to
 * catch); pass --allow-same-version for cosmetic rewrites (e.g. a
 * renamed local fed to the same put calls) after review.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyze_engine.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--repo DIR] [--json FILE] [--list-rules]\n"
        "          [--regen-manifest [--allow-same-version]] "
        "[subdirs...]\n"
        "  --repo DIR          repository root to scan (default: .)\n"
        "  --json FILE         also write findings as a JSON report\n"
        "  --list-rules        print the rule catalog and exit\n"
        "  --regen-manifest    rewrite "
        "tools/analyze/serialized_layouts.json\n"
        "  --allow-same-version  bless a layout rewrite that kept its "
        "version\n"
        "  subdirs             repo-relative roots (default: src "
        "bench tools)\n",
        argv0);
    return 2;
}

std::string
readFile(const std::filesystem::path &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    *ok = in.good();
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

int
regenManifest(const std::string &repo,
              const std::vector<std::string> &subdirs,
              bool allow_same_version)
{
    namespace fs = std::filesystem;
    using dora::analyze::LayoutRecord;

    std::vector<dora::analyze::Finding> problems;
    const dora::analyze::TreeModel model =
        dora::analyze::loadTree(repo, subdirs);
    const std::vector<LayoutRecord> computed =
        dora::analyze::computeLayouts(model, &problems);
    if (!problems.empty()) {
        std::fputs(dora::analyze::renderText(problems).c_str(),
                   stderr);
        std::fprintf(stderr,
                     "dora-analyze: cannot regenerate the manifest "
                     "while format anchors are broken\n");
        return 2;
    }

    const fs::path manifest_path =
        fs::path(repo) / dora::analyze::manifestRelPath();
    if (fs::exists(manifest_path) && !allow_same_version) {
        bool ok = false;
        const std::string old_json = readFile(manifest_path, &ok);
        std::vector<LayoutRecord> recorded;
        std::string error;
        if (ok && dora::analyze::parseManifest(old_json, &recorded,
                                               &error)) {
            std::map<std::string, const LayoutRecord *> by_name;
            for (const LayoutRecord &rec : recorded)
                by_name[rec.name] = &rec;
            bool refused = false;
            for (const LayoutRecord &c : computed) {
                const auto it = by_name.find(c.name);
                if (it == by_name.end())
                    continue;
                if (c.layout != it->second->layout &&
                    c.version == it->second->version) {
                    std::fprintf(
                        stderr,
                        "dora-analyze: refusing to bless '%s': the "
                        "layout changed but the version token is "
                        "still %s\n",
                        c.name.c_str(), c.version.c_str());
                    refused = true;
                }
            }
            if (refused) {
                std::fprintf(
                    stderr,
                    "dora-analyze: bump the version token(s) first, "
                    "or pass --allow-same-version for a reviewed "
                    "cosmetic rewrite\n");
                return 2;
            }
        }
    }

    fs::create_directories(manifest_path.parent_path());
    std::ofstream out(manifest_path, std::ios::trunc);
    out << dora::analyze::renderManifest(computed);
    if (!out.good()) {
        std::fprintf(stderr,
                     "dora-analyze: cannot write manifest %s\n",
                     manifest_path.string().c_str());
        return 2;
    }
    std::fprintf(stderr,
                 "dora-analyze: wrote %zu format%s to %s\n",
                 computed.size(), computed.size() == 1 ? "" : "s",
                 manifest_path.string().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string repo = ".";
    std::string json_path;
    std::vector<std::string> subdirs;
    bool list_rules = false;
    bool regen = false;
    bool allow_same_version = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--repo" && i + 1 < argc) {
            repo = argv[++i];
        } else if (arg.rfind("--repo=", 0) == 0) {
            repo = arg.substr(7);
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--regen-manifest") {
            regen = true;
        } else if (arg == "--allow-same-version") {
            allow_same_version = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "dora-analyze: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            subdirs.push_back(arg);
        }
    }

    if (list_rules) {
        for (const auto &rule : dora::analyze::ruleCatalog())
            std::printf("%-22s %s\n", rule.id, rule.summary);
        return 0;
    }

    if (subdirs.empty())
        subdirs = dora::analyze::defaultSubdirs();

    if (regen)
        return regenManifest(repo, subdirs, allow_same_version);

    std::vector<std::string> scanned;
    const std::vector<dora::analyze::Finding> findings =
        dora::analyze::analyzeTree(repo, subdirs, &scanned);

    std::fputs(dora::analyze::renderText(findings).c_str(), stdout);

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::trunc);
        out << dora::analyze::renderJson(findings);
        if (!out.good()) {
            std::fprintf(
                stderr,
                "dora-analyze: cannot write JSON report to %s\n",
                json_path.c_str());
            return 2;
        }
    }

    std::fprintf(stderr, "dora-analyze: %zu finding%s in %zu files\n",
                 findings.size(), findings.size() == 1 ? "" : "s",
                 scanned.size());
    return findings.empty() ? 0 : 1;
}
