/**
 * @file
 * dora-analyze: a cross-TU structural analyzer for the DORA tree.
 *
 * dora-lint (tools/lint) matches single lines against regexes; a
 * whole class of past bugs is invisible at that granularity: a config
 * field added but never folded into the config hash (PR 3, PR 8), a
 * snapshot() member missing from tryRestore() (breaks proc-tier
 * resume bit-identity), two RNG streams accidentally seeded from the
 * same tag (the PR 3 page/corun correlation), and a serialized layout
 * edited without bumping its version token (the PR 9 "mre " bug
 * class). Proving those invariants needs a *structural* model of the
 * tree — which classes exist, which members they have, what each
 * function body references — joined across translation units.
 *
 * This engine builds exactly that model: each source file is scanned
 * comment/string-aware into parallel code/text views (scanUnit), then
 * a brace-tracking pass extracts struct/class declarations with data-
 * member lists and function definitions with captured bodies
 * (buildModel). Five rules run over the joined model:
 *
 *   dora-cov-hash      every field of ExperimentConfig / FleetSpec /
 *                      TrainerConfig is referenced by its hash
 *                      function or annotated
 *                      `// dora:hash-exclude(<reason>)`.
 *   dora-cov-snapshot  every data member of a class defining both
 *                      snapshot() and tryRestore() appears in both
 *                      bodies or is annotated
 *                      `// dora:snapshot-exclude(<reason>)`.
 *   dora-det-streamtag an RNG stream tag literal used at more than
 *                      one call site is a correlation hazard; each
 *                      deliberate share carries
 *                      `// dora:stream-tag-shared(<reason>)`.
 *   dora-ser-version   serialized layouts (snapshot sections, wire
 *                      frames, journal records, model-bundle text)
 *                      are recomputed and diffed against the
 *                      checked-in manifest
 *                      tools/analyze/serialized_layouts.json; a
 *                      layout change without a version-token change
 *                      is a finding. `--regen-manifest` blesses
 *                      intentional bumps.
 *   dora-cli-flag      a `--flag` literal compared outside the
 *                      common/cli.hh helpers re-opens the silent-
 *                      misconfiguration class PR 8 closed.
 *
 * Ergonomics follow dora-lint: stable rule ids, NOLINT(NEXTLINE)
 * suppression, `path:line: [rule] message` text plus `--json`
 * reports, exit 1 on findings, and a zero-findings self-scan in
 * tests/analyze. Like lint_engine, this library has no dependency on
 * dora_common so the binary and the golden tests share it.
 */

#ifndef DORA_TOOLS_ANALYZE_ENGINE_HH
#define DORA_TOOLS_ANALYZE_ENGINE_HH

#include <set>
#include <string>
#include <vector>

namespace dora::analyze
{

/** One rule violation at a specific source line. */
struct Finding
{
    std::string path;     //!< repo-relative, '/'-separated
    int line = 0;         //!< 1-based
    std::string rule;     //!< rule id, e.g. "dora-cov-hash"
    std::string message;  //!< human-readable explanation
};

/** Catalog entry for --list-rules and the docs table. */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** Every rule the engine knows, in stable (documentation) order. */
const std::vector<RuleInfo> &ruleCatalog();

/** A string literal with its position (for tags and layout args). */
struct StringLit
{
    int line = 0;       //!< 1-based
    size_t col = 0;     //!< 0-based column of the opening quote
    std::string value;  //!< raw source chars between the delimiters
};

/** A `dora:<name>(<arg>)` annotation found in a comment. */
struct Annotation
{
    std::string name;  //!< e.g. "hash-exclude"
    std::string arg;   //!< the reason text inside the parentheses
};

/**
 * A source file prepared for structural parsing: parallel per-line
 * views (identical lengths by construction) where `code` blanks both
 * comments and string contents while `text` blanks only comments —
 * rules that must *read* literals (stream tags, section tags) use
 * `text`, everything else matches against `code`. String literals and
 * comment annotations are indexed per line.
 */
struct ScannedUnit
{
    std::string path;
    std::vector<std::string> code;
    std::vector<std::string> text;
    std::vector<std::vector<StringLit>> strings;
    std::vector<std::vector<Annotation>> notes;
    /** Rule ids suppressed on each line; "*" suppresses all rules. */
    std::vector<std::set<std::string>> nolint;

    /**
     * True when @p line (1-based) carries annotation @p name with a
     * non-empty reason, on the line itself or the line above — the
     * two documented placements (trailing comment / preceding line).
     */
    bool hasAnnotation(int line, const std::string &name) const;
};

/** Scan one file. @p path must be repo-relative (rules scope by it). */
ScannedUnit scanUnit(std::string path, const std::string &content);

/** One data member of a struct/class declaration. */
struct MemberDecl
{
    std::string name;
    int line = 0;     //!< first line of the declaration statement
    int endLine = 0;  //!< line of the terminating ';'
};

/** One struct/class declaration with its member list. */
struct StructDecl
{
    std::string name;  //!< nesting-qualified, e.g. "Outer::Inner"
    std::string path;
    int line = 0;
    std::vector<MemberDecl> members;
    /** Names of member functions declared or defined in-class. */
    std::set<std::string> methods;
};

/** One function definition with its captured body. */
struct FunctionDef
{
    std::string className;  //!< "" for free functions
    std::string name;
    std::string path;
    int line = 0;          //!< line of the opening brace's statement
    std::string body;      //!< code view: strings blanked
    std::string bodyText;  //!< text view: strings preserved
};

/** The joined cross-TU model the rules run over. */
struct TreeModel
{
    std::vector<ScannedUnit> units;
    std::vector<StructDecl> structs;
    std::vector<FunctionDef> functions;
};

/** Parse every scanned unit into the cross-TU structural model. */
TreeModel buildModel(std::vector<ScannedUnit> units);

/**
 * One serialized format's recorded shape: the ordered serialization
 * calls (or statements, for function-anchored formats) plus the
 * version token guarding them. `name` is the stable manifest key.
 */
struct LayoutRecord
{
    std::string name;      //!< "section:<tag>" or a format name
    std::string file;
    std::string function;  //!< qualified writer function
    std::string version;   //!< version token text (e.g. "1", "0x...")
    std::vector<std::string> layout;  //!< normalized ordered ops
    int line = 0;  //!< writer anchor in the current tree (not stored)
};

/**
 * Recompute every serialized layout in the model: snapshot-section
 * writers are auto-discovered (a function that calls
 * beginSection("tag", v) and at least one put*), and the wire-frame /
 * journal / model-bundle writers are anchored by a built-in table.
 * Records are sorted by name; table anchors that no longer resolve
 * append findings to @p problems.
 */
std::vector<LayoutRecord> computeLayouts(const TreeModel &model,
                                         std::vector<Finding> *problems);

/** Render records as the canonical serialized_layouts.json text. */
std::string renderManifest(const std::vector<LayoutRecord> &records);

/**
 * Parse a manifest previously written by renderManifest (a strict
 * JSON subset). Returns false and sets @p error on malformed input.
 */
bool parseManifest(const std::string &json,
                   std::vector<LayoutRecord> *records,
                   std::string *error);

/**
 * Run all five rules over the model. @p manifestJson is the content
 * of serialized_layouts.json, or nullptr when the file is absent
 * (only a finding if the tree actually contains serialized formats).
 * Findings are NOLINT-filtered and sorted by (path, line, rule).
 */
std::vector<Finding> analyzeModel(const TreeModel &model,
                                  const std::string *manifestJson);

/**
 * Walk @p subdirs (repo-relative) under @p repoRoot and scan every
 * *.cc / *.hh file into a model. Paths containing a `fixtures`
 * component are skipped — they are deliberate violations used by the
 * golden tests. When @p scannedPaths is non-null the repo-relative
 * path of every scanned file is appended (sorted).
 */
TreeModel loadTree(const std::string &repoRoot,
                   const std::vector<std::string> &subdirs,
                   std::vector<std::string> *scannedPaths = nullptr);

/** Default scan roots: {"src", "bench", "tools"}. */
const std::vector<std::string> &defaultSubdirs();

/** Repo-relative manifest location. */
const char *manifestRelPath();

/**
 * loadTree + manifest load + analyzeModel: the whole gate in one
 * call, as scripts/ci.sh and the self-scan test run it.
 */
std::vector<Finding>
analyzeTree(const std::string &repoRoot,
            const std::vector<std::string> &subdirs,
            std::vector<std::string> *scannedPaths = nullptr);

/** `path:line: [rule] message` lines, one per finding. */
std::string renderText(const std::vector<Finding> &findings);

/** Machine-readable report: a JSON array of finding objects. */
std::string renderJson(const std::vector<Finding> &findings);

} // namespace dora::analyze

#endif // DORA_TOOLS_ANALYZE_ENGINE_HH
