/**
 * @file
 * dora-lint command-line driver.
 *
 *   dora-lint [--repo DIR] [--json FILE] [--list-rules] [subdirs...]
 *
 * Walks src/ tests/ bench/ (or the given subdirs) under the repo
 * root, applies every project-invariant rule (lint_engine.hh), prints
 * findings as `path:line: [rule-id] message`, optionally writes the
 * machine-readable JSON report, and exits 1 if anything was found —
 * which is how scripts/ci.sh turns the rule set into a gate.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint_engine.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--repo DIR] [--json FILE] [--list-rules] "
        "[subdirs...]\n"
        "  --repo DIR    repository root to scan (default: .)\n"
        "  --json FILE   also write findings as a JSON report\n"
        "  --list-rules  print the rule catalog and exit\n"
        "  subdirs       repo-relative roots (default: src tests "
        "bench tools/fleet)\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string repo = ".";
    std::string json_path;
    std::vector<std::string> subdirs;
    bool list_rules = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--repo" && i + 1 < argc) {
            repo = argv[++i];
        } else if (arg.rfind("--repo=", 0) == 0) {
            repo = arg.substr(7);
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "dora-lint: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            subdirs.push_back(arg);
        }
    }

    if (list_rules) {
        for (const auto &rule : dora::lint::ruleCatalog())
            std::printf("%-28s %s\n", rule.id, rule.summary);
        return 0;
    }

    if (subdirs.empty())
        subdirs = {"src", "tests", "bench", "tools/fleet"};

    std::vector<std::string> scanned;
    const std::vector<dora::lint::Finding> findings =
        dora::lint::lintTree(repo, subdirs, &scanned);

    std::fputs(dora::lint::renderText(findings).c_str(), stdout);

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::trunc);
        out << dora::lint::renderJson(findings);
        if (!out.good()) {
            std::fprintf(stderr,
                         "dora-lint: cannot write JSON report to %s\n",
                         json_path.c_str());
            return 2;
        }
    }

    std::fprintf(stderr, "dora-lint: %zu finding%s in %zu files\n",
                 findings.size(), findings.size() == 1 ? "" : "s",
                 scanned.size());
    return findings.empty() ? 0 : 1;
}
