/**
 * @file
 * dora-lint: a project-invariant lint engine for the DORA tree.
 *
 * The simulator's headline results are only reproducible while a set
 * of cross-cutting invariants holds: bit-identical artifacts at any
 * `--jobs`, no wall-clock or unseeded randomness inside simulation
 * code, mutex discipline on the little shared state the process has,
 * and guards that survive Release builds. This engine turns those
 * conventions (DESIGN.md §5e) into machine-checked rules.
 *
 * Model: every rule has a stable id (`dora-det-*`, `dora-conc-*`,
 * `dora-hyg-*`), a path scope (which of src/tests/bench it applies
 * to) and an allowlist of path prefixes where the construct is
 * legitimate (e.g. wall-clock reads are the *purpose* of src/exec
 * job timing and src/obs metrics). Sources are pre-scanned so that
 * comments and string-literal contents never trigger rules, and a
 * finding can be suppressed in place with
 *
 *     code;  // NOLINT(dora-rule-id): justification
 *     // NOLINTNEXTLINE(dora-rule-id): justification
 *
 * A bare `NOLINT` (no rule list) suppresses every rule on that line.
 * The engine is a plain library (no dependency on dora_common) so the
 * `dora-lint` binary and the tests/lint golden tests share it.
 */

#ifndef DORA_TOOLS_LINT_ENGINE_HH
#define DORA_TOOLS_LINT_ENGINE_HH

#include <set>
#include <string>
#include <vector>

namespace dora::lint
{

/** One rule violation at a specific source line. */
struct Finding
{
    std::string path;     //!< repo-relative, '/'-separated
    int line = 0;         //!< 1-based
    std::string rule;     //!< rule id, e.g. "dora-det-wallclock"
    std::string message;  //!< human-readable explanation
};

/** Catalog entry for --list-rules and the docs table. */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** Every rule the engine knows, in stable (documentation) order. */
const std::vector<RuleInfo> &ruleCatalog();

/**
 * A source file prepared for rule matching: per-line code text with
 * comments and string/char-literal contents blanked to spaces (line
 * structure preserved), plus per-line NOLINT suppression sets.
 */
struct ScannedFile
{
    std::string path;
    std::vector<std::string> code;
    /** Rule ids suppressed on each line; "*" suppresses all rules. */
    std::vector<std::set<std::string>> nolint;
    /**
     * Per-line flag: inside a `// dora:lane-kernel-begin` ..
     * `// dora:lane-kernel-end` region (the SIMD-friendly hot loops
     * of the lane-batched walk, DESIGN.md §5g). Marker lines are
     * included. dora-perf-lane-alias scopes its access-pattern
     * checks to these lines.
     */
    std::vector<char> laneKernel;
};

/**
 * Strip comments/literals (handling //, block comments, raw strings)
 * and collect NOLINT / NOLINTNEXTLINE directives. @p path must be the
 * repo-relative path — rules scope and allowlist by path prefix.
 */
ScannedFile scanSource(std::string path, const std::string &content);

/** Run every rule over one scanned file, appending findings. */
void lintFile(const ScannedFile &file, std::vector<Finding> &out);

/**
 * Walk @p subdirs (repo-relative, e.g. {"src","tests","bench"}) under
 * @p repoRoot, lint every *.cc / *.hh file, and return the findings
 * sorted by (path, line, rule). Paths under tests/lint/fixtures/ are
 * skipped — they are deliberate violations used by the golden tests.
 * When @p scannedPaths is non-null the repo-relative path of every
 * linted file is appended (sorted), for reporting.
 */
std::vector<Finding>
lintTree(const std::string &repoRoot,
         const std::vector<std::string> &subdirs,
         std::vector<std::string> *scannedPaths = nullptr);

/** `path:line: [rule] message` lines, one per finding. */
std::string renderText(const std::vector<Finding> &findings);

/** Machine-readable report: a JSON array of finding objects. */
std::string renderJson(const std::vector<Finding> &findings);

} // namespace dora::lint

#endif // DORA_TOOLS_LINT_ENGINE_HH
