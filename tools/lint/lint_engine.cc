#include "lint_engine.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace dora::lint
{

namespace
{

// ---------------------------------------------------------------- //
// Source preparation                                               //
// ---------------------------------------------------------------- //

/** Split comment text into NOLINT directives for the scanned file. */
void
applyNolintDirectives(const std::string &comment_text, size_t line_idx,
                      ScannedFile &file)
{
    // NOLINTNEXTLINE must be matched before NOLINT (shared prefix).
    static const std::regex directive_re(
        R"(NOLINT(NEXTLINE)?(\(([^)]*)\))?)");
    for (auto it = std::sregex_iterator(comment_text.begin(),
                                        comment_text.end(),
                                        directive_re);
         it != std::sregex_iterator(); ++it) {
        const bool next_line = (*it)[1].matched;
        const size_t target = line_idx + (next_line ? 1 : 0);
        if (target >= file.nolint.size())
            continue;
        if (!(*it)[2].matched) {
            file.nolint[target].insert("*");
            continue;
        }
        // Comma/space-separated rule ids inside the parentheses.
        std::string ids = (*it)[3].str();
        std::string id;
        std::istringstream stream(ids);
        while (std::getline(stream, id, ',')) {
            const size_t b = id.find_first_not_of(" \t");
            const size_t e = id.find_last_not_of(" \t");
            if (b == std::string::npos)
                continue;
            file.nolint[target].insert(id.substr(b, e - b + 1));
        }
    }
}

} // namespace

ScannedFile
scanSource(std::string path, const std::string &content)
{
    ScannedFile file;
    file.path = std::move(path);

    // Pre-split so NOLINTNEXTLINE on the final line has a slot to
    // target (and so nolint[] is sized before directives apply).
    size_t line_count = 1 +
        static_cast<size_t>(
            std::count(content.begin(), content.end(), '\n'));
    file.code.reserve(line_count);
    file.nolint.assign(line_count + 1, {});

    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    std::string code_line, comment_line, raw_delim;
    size_t line_idx = 0;
    bool lane_region = false;

    auto flush_line = [&]() {
        applyNolintDirectives(comment_line, line_idx, file);
        if (comment_line.find("dora:lane-kernel-begin") !=
            std::string::npos)
            lane_region = true;
        file.laneKernel.push_back(lane_region ? 1 : 0);
        if (comment_line.find("dora:lane-kernel-end") !=
            std::string::npos)
            lane_region = false;
        file.code.push_back(code_line);
        code_line.clear();
        comment_line.clear();
        ++line_idx;
    };

    const size_t n = content.size();
    for (size_t i = 0; i < n; ++i) {
        const char c = content[i];
        const char next = i + 1 < n ? content[i + 1] : '\0';
        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            flush_line();
            continue;
        }
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                code_line += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                code_line += "  ";
                ++i;
            } else if (c == '"' && i > 0 && content[i - 1] == 'R' &&
                       (i < 2 ||
                        !(std::isalnum(static_cast<unsigned char>(
                              content[i - 2])) ||
                          content[i - 2] == '_') ||
                        content[i - 2] == 'u' ||
                        content[i - 2] == 'U' ||
                        content[i - 2] == 'L' ||
                        content[i - 2] == '8')) {
                // R"delim( ... )delim" — capture the delimiter.
                state = State::RawString;
                code_line += '"';
                raw_delim.clear();
                while (i + 1 < n && content[i + 1] != '(' &&
                       content[i + 1] != '\n') {
                    raw_delim += content[i + 1];
                    ++i;
                }
                if (i + 1 < n && content[i + 1] == '(')
                    ++i;
            } else if (c == '"') {
                state = State::String;
                code_line += '"';
            } else if (c == '\'') {
                state = State::Char;
                code_line += '\'';
            } else {
                code_line += c;
            }
            break;
          case State::LineComment:
            comment_line += c;
            code_line += ' ';
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                code_line += "  ";
                ++i;
            } else {
                comment_line += c;
                code_line += ' ';
            }
            break;
          case State::String:
            if (c == '\\' && next != '\0' && next != '\n') {
                code_line += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Code;
                code_line += '"';
            } else {
                code_line += ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && next != '\0' && next != '\n') {
                code_line += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                code_line += '\'';
            } else {
                code_line += ' ';
            }
            break;
          case State::RawString: {
            // Close only on )delim" — otherwise blank the content.
            const std::string close = ")" + raw_delim + "\"";
            if (c == ')' && content.compare(i, close.size(), close) == 0) {
                code_line += '"';
                i += close.size() - 1;
                state = State::Code;
            } else {
                code_line += ' ';
            }
            break;
          }
        }
    }
    if (!code_line.empty() || !comment_line.empty())
        flush_line();
    while (file.nolint.size() < file.code.size())
        file.nolint.push_back({});
    return file;
}

namespace
{

// ---------------------------------------------------------------- //
// Path scoping helpers                                             //
// ---------------------------------------------------------------- //

bool
hasPrefix(const std::string &path, const char *prefix)
{
    return path.rfind(prefix, 0) == 0;
}

bool
hasSuffix(const std::string &path, const char *suffix)
{
    const size_t len = std::char_traits<char>::length(suffix);
    return path.size() >= len &&
        path.compare(path.size() - len, len, suffix) == 0;
}

bool
anyPrefix(const std::string &path,
          std::initializer_list<const char *> prefixes)
{
    for (const char *p : prefixes)
        if (hasPrefix(path, p))
            return true;
    return false;
}

bool
fileMentions(const ScannedFile &file, const char *token)
{
    for (const auto &line : file.code)
        if (line.find(token) != std::string::npos)
            return true;
    return false;
}

void
emitMatches(const ScannedFile &file, const std::regex &re,
            const char *rule, const char *message,
            std::vector<Finding> &out)
{
    for (size_t i = 0; i < file.code.size(); ++i)
        if (std::regex_search(file.code[i], re))
            out.push_back(Finding{file.path, static_cast<int>(i + 1),
                                  rule, message});
}

// ---------------------------------------------------------------- //
// Determinism rules                                                //
// ---------------------------------------------------------------- //

/** dora-det-rand: unseeded / process-global randomness. */
void
ruleDetRand(const ScannedFile &f, std::vector<Finding> &out)
{
    static const std::regex re(
        R"((^|[^\w])(std::)?(rand|srand|drand48|lrand48|mrand48|random)\s*\(|std::random_device)");
    emitMatches(f, re, "dora-det-rand",
                "unseeded/global randomness breaks bit-identical "
                "replay; derive a seeded stream from common/rng.hh",
                out);
}

/** The wall-clock token set shared by two rules. */
const std::regex &
wallClockRe()
{
    static const std::regex re(
        R"(system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime|timespec_get|__DATE__|__TIME__|__TIMESTAMP__|(^|[^\w.])(time|clock|localtime|gmtime|ctime|asctime|strftime|mktime)\s*\()");
    return re;
}

/** dora-det-wallclock: wall-clock reads inside simulation code. */
void
ruleDetWallclock(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!hasPrefix(f.path, "src/"))
        return;
    // Timing the *host* is the purpose of the execution engine's job
    // metrics and the obs layer; simulated components must derive all
    // time from tick arithmetic.
    if (anyPrefix(f.path, {"src/exec/", "src/obs/"}))
        return;
    emitMatches(f, wallClockRe(), "dora-det-wallclock",
                "wall-clock input in simulation code makes results "
                "machine/schedule-dependent; use simulated ticks "
                "(allowlisted: src/exec, src/obs)",
                out);
}

/** dora-det-unordered: iteration-order-dependent accumulation risk. */
void
ruleDetUnordered(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!hasPrefix(f.path, "src/"))
        return;
    if (anyPrefix(f.path, {"src/exec/", "src/obs/"}))
        return;
    static const std::regex re(
        R"(std::unordered_(map|set|multimap|multiset)\b)");
    emitMatches(f, re, "dora-det-unordered",
                "unordered-container iteration order is "
                "implementation-defined; result-producing code must "
                "use std::map / sorted vectors (or justify with "
                "NOLINT)",
                out);
}

/** dora-det-confighash: wall-clock near config-hash producers. */
void
ruleDetConfigHash(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!anyPrefix(f.path, {"src/", "bench/"}))
        return;
    if (!fileMentions(f, "ConfigHash"))
        return;
    for (size_t i = 0; i < f.code.size(); ++i)
        if (std::regex_search(f.code[i], wallClockRe()))
            out.push_back(Finding{
                f.path, static_cast<int>(i + 1), "dora-det-confighash",
                "wall-clock/date input in a file feeding "
                "experimentConfigHash/trainingConfigHash poisons "
                "cache keys and silently mixes incompatible runs"});
}

// ---------------------------------------------------------------- //
// Concurrency rules                                                //
// ---------------------------------------------------------------- //

/** dora-conc-global-state: mutable statics without synchronization. */
void
ruleConcGlobalState(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!hasPrefix(f.path, "src/"))
        return;
    static const std::regex static_re(R"((^|\s)(static)\s+)");
    static const std::regex global_re(
        R"((^|[^\w])g_\w+\s*(=[^=]|\{|;))");
    static const std::regex safe_re(
        R"(\b(const|constexpr|constinit|thread_local|once_flag)\b|atomic|[Mm]utex|GUARDED_BY)");
    static const std::regex reference_re(R"(static\s+[^=;(]*&)");
    for (size_t i = 0; i < f.code.size(); ++i) {
        // For `static` declarations analyze from the keyword onward
        // (a one-line function body may precede it); for g_ globals
        // analyze the whole line (the type, e.g. std::atomic, usually
        // precedes the name).
        std::smatch m;
        std::string stmt;
        if (std::regex_search(f.code[i], m, static_re))
            stmt = "static" + f.code[i].substr(
                static_cast<size_t>(m.position(2)) + 6);
        else if (std::regex_search(f.code[i], global_re))
            stmt = f.code[i];
        else
            continue;
        // Join continuation lines until the statement's shape is
        // decidable (`static Foo\n  bar(...);` spans two lines).
        for (size_t j = i + 1;
             j < f.code.size() && j < i + 4 &&
             stmt.find_first_of("(={;") == std::string::npos;
             ++j)
            stmt += " " + f.code[j];
        if (std::regex_search(stmt, safe_re))
            continue;
        if (std::regex_search(stmt, reference_re))
            continue;
        // A '(' before any '=' marks a function declaration/definition
        // (`static Foo bar(...)`), not a data definition.
        const size_t paren = stmt.find('(');
        const size_t eq = stmt.find('=');
        if (paren != std::string::npos &&
            (eq == std::string::npos || paren < eq))
            continue;
        out.push_back(Finding{
            f.path, static_cast<int>(i + 1), "dora-conc-global-state",
            "mutable file-scope/static state must be std::atomic, "
            "mutex-guarded (GUARDED_BY), or NOLINT-justified"});
    }
}

/** dora-conc-mutex-unannotated: header mutexes with no GUARDED_BY. */
void
ruleConcMutexUnannotated(const ScannedFile &f,
                         std::vector<Finding> &out)
{
    if (!hasPrefix(f.path, "src/") || !hasSuffix(f.path, ".hh"))
        return;
    static const std::regex member_re(
        R"((^|\s)(mutable\s+)?((std::)?(mutex|recursive_mutex|shared_mutex|timed_mutex)|(dora::)?Mutex)\s+\w+\s*;)");
    if (fileMentions(f, "GUARDED_BY"))
        return;
    emitMatches(f, member_re, "dora-conc-mutex-unannotated",
                "mutex member declared but no field in this header is "
                "GUARDED_BY it; annotate the guarded state "
                "(common/thread_annotations.hh) so clang "
                "-Wthread-safety can check the locking discipline",
                out);
}

// ---------------------------------------------------------------- //
// Hygiene rules                                                    //
// ---------------------------------------------------------------- //

/** dora-hyg-stream: direct console output from library code. */
void
ruleHygStream(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!hasPrefix(f.path, "src/"))
        return;
    // The log sink is the one place that may write to stderr.
    if (f.path == "src/common/logging.cc")
        return;
    static const std::regex re(
        R"(std::cout|std::cerr|std::clog|(^|[^\w])(printf|vprintf|fprintf|vfprintf|puts|fputs|putchar|fputc)\s*\()");
    emitMatches(f, re, "dora-hyg-stream",
                "library code must not write to the console directly; "
                "route through inform()/warn()/debugLog() "
                "(common/logging.hh) so output is serialized and "
                "rate-limited",
                out);
}

/** dora-hyg-catch-all: catch (...) that swallows silently. */
void
ruleHygCatchAll(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!anyPrefix(f.path, {"src/", "bench/"}))
        return;
    static const std::regex catch_re(R"(catch\s*\(\s*\.\.\.\s*\))");
    static const std::regex handled_re(
        R"(\bthrow\b|rethrow_exception|current_exception|\b(warn|fatal|panic|inform|debugLog|abort)\s*\(|std::exit)");
    for (size_t i = 0; i < f.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(f.code[i], m, catch_re))
            continue;
        // Collect the handler block: everything from the catch up to
        // the brace that balances the handler's opening '{', then
        // look for a rethrow or a log call inside it.
        std::string block;
        int depth = 0;
        bool entered = false, closed = false;
        size_t k = static_cast<size_t>(m.position(0)) + m.length(0);
        for (size_t j = i; j < f.code.size() && !closed; ++j, k = 0) {
            const std::string &code = f.code[j];
            for (; k < code.size() && !closed; ++k) {
                const char c = code[k];
                block += c;
                if (c == '{') {
                    ++depth;
                    entered = true;
                } else if (c == '}' && entered && --depth <= 0) {
                    closed = true;
                }
            }
            block += '\n';
        }
        if (!std::regex_search(block, handled_re))
            out.push_back(Finding{
                f.path, static_cast<int>(i + 1), "dora-hyg-catch-all",
                "catch (...) must rethrow, capture, or log the "
                "exception; silent swallowing hides injected faults "
                "and real bugs alike"});
    }
}

/** dora-hyg-assert: Release-compiled-out guards. */
void
ruleHygAssert(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!anyPrefix(f.path, {"src/", "bench/"}))
        return;
    static const std::regex re(R"((^|[^\w])assert\s*\()");
    emitMatches(f, re, "dora-hyg-assert",
                "assert() vanishes in Release builds (NDEBUG); "
                "invariant guards must use fatal()/panic() "
                "(common/logging.hh) so short sweeps and bad configs "
                "fail loudly everywhere",
                out);
}

// ---------------------------------------------------------------- //
// Robustness rules                                                  //
// ---------------------------------------------------------------- //

/** dora-rob-unchecked-try: discarded try*() fallible-call results. */
void
ruleRobUncheckedTry(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!anyPrefix(f.path, {"src/", "bench/"}))
        return;
    // A tryRestore/tryDeserialize-style call (the snapshot/journal
    // contract of common/snapshot.hh: failure is the return value,
    // never an exception) whose statement *starts* with the call —
    // optionally behind a (void) cast or an object expression — has
    // its verdict discarded. Calls feeding if/return/assignments
    // never start the statement, so they pass.
    static const std::regex call_re(
        R"(^\s*(\(\s*void\s*\)\s*)?(\w+\s*(::|\.|->)\s*)*try[A-Z]\w*\s*\()");
    for (size_t i = 0; i < f.code.size(); ++i) {
        if (!std::regex_search(f.code[i], call_re))
            continue;
        // Only a statement-initial call discards the result: the
        // previous non-blank code line must have ended a statement
        // or opened a block/control body. This also skips function
        // definitions (repo style puts the return type on the line
        // above the name).
        bool statement_start = true;
        for (size_t j = i; j-- > 0;) {
            const size_t last = f.code[j].find_last_not_of(" \t");
            if (last == std::string::npos)
                continue;
            const char c = f.code[j][last];
            statement_start =
                c == ';' || c == '{' || c == '}' || c == ')';
            break;
        }
        if (!statement_start)
            continue;
        out.push_back(Finding{
            f.path, static_cast<int>(i + 1), "dora-rob-unchecked-try",
            "a try*() call reports failure through its return value; "
            "discarding it turns corrupt snapshots/journals into "
            "silent state divergence — check the result (or NOLINT "
            "with justification)"});
    }
}

// ---------------------------------------------------------------- //
// Performance rules                                                 //
// ---------------------------------------------------------------- //

/** dora-perf-lane-alias: cache-hostile access in lane kernels. */
void
rulePerfLaneAlias(const ScannedFile &f, std::vector<Finding> &out)
{
    if (!anyPrefix(f.path, {"src/", "bench/"}))
        return;
    const bool has_region =
        std::find(f.laneKernel.begin(), f.laneKernel.end(), 1) !=
        f.laneKernel.end();
    if (!has_region)
        return;
    // Anywhere in a file with lane-kernel regions: std::vector<bool>
    // is a bit-packed proxy container — its elements are not
    // byte-addressable, which blocks vectorization and makes the
    // per-lane scratch buffers alias-hostile.
    static const std::regex vb_re(R"(std::vector<\s*bool\s*>)");
    emitMatches(f, vb_re, "dora-perf-lane-alias",
                "std::vector<bool> is bit-packed (proxy references, "
                "no byte addressing); lane-kernel files must use "
                "std::vector<uint8_t> or AlignedVec so the hot loops "
                "stay vectorizable",
                out);
    // Inside the marked regions: pointer-chasing member access and
    // bounds-checked indexing. The kernels must read flat SoA arrays
    // hoisted into locals before the loop (DESIGN.md §5g) — an `->`
    // re-loads through a pointer the compiler cannot prove
    // loop-invariant, and `.at()` adds a branch per element.
    static const std::regex alias_re(R"(->|\.\s*at\s*\()");
    for (size_t i = 0; i < f.code.size(); ++i) {
        if (i >= f.laneKernel.size() || !f.laneKernel[i])
            continue;
        if (std::regex_search(f.code[i], alias_re))
            out.push_back(Finding{
                f.path, static_cast<int>(i + 1),
                "dora-perf-lane-alias",
                "member access through a pointer (->) or "
                "bounds-checked indexing (.at) inside a lane-kernel "
                "region; hoist the field into a flat local array "
                "before the loop so the kernel stays alias-free and "
                "vectorizable"});
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"dora-det-rand",
         "no unseeded/global RNG (rand, srand, std::random_device)"},
        {"dora-det-wallclock",
         "no wall-clock reads in simulation code (allow: src/exec, "
         "src/obs)"},
        {"dora-det-unordered",
         "no std::unordered_* containers in result-producing code"},
        {"dora-det-confighash",
         "no wall-clock/date input in files feeding "
         "experiment/training config hashes"},
        {"dora-conc-global-state",
         "mutable static/global state must be atomic, mutex-guarded, "
         "or NOLINT-justified"},
        {"dora-conc-mutex-unannotated",
         "header mutex members need GUARDED_BY-annotated fields"},
        {"dora-hyg-stream",
         "no direct console writes from library code (log sink only)"},
        {"dora-hyg-catch-all",
         "no catch (...) that swallows without rethrow/log"},
        {"dora-hyg-assert",
         "no assert() guards (compiled out in Release); use "
         "fatal()/panic()"},
        {"dora-rob-unchecked-try",
         "no discarded try*() results (tryRestore/tryDeserialize "
         "report failure by return value)"},
        {"dora-perf-lane-alias",
         "no std::vector<bool> in lane-kernel files; no ->/.at() "
         "inside dora:lane-kernel regions"},
    };
    return catalog;
}

void
lintFile(const ScannedFile &file, std::vector<Finding> &out)
{
    std::vector<Finding> raw;
    ruleDetRand(file, raw);
    ruleDetWallclock(file, raw);
    ruleDetUnordered(file, raw);
    ruleDetConfigHash(file, raw);
    ruleConcGlobalState(file, raw);
    ruleConcMutexUnannotated(file, raw);
    ruleHygStream(file, raw);
    ruleHygCatchAll(file, raw);
    ruleHygAssert(file, raw);
    ruleRobUncheckedTry(file, raw);
    rulePerfLaneAlias(file, raw);

    for (auto &finding : raw) {
        const size_t idx = static_cast<size_t>(finding.line) - 1;
        if (idx < file.nolint.size()) {
            const auto &suppressed = file.nolint[idx];
            if (suppressed.count("*") || suppressed.count(finding.rule))
                continue;
        }
        out.push_back(std::move(finding));
    }
}

std::vector<Finding>
lintTree(const std::string &repoRoot,
         const std::vector<std::string> &subdirs,
         std::vector<std::string> *scannedPaths)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    for (const auto &subdir : subdirs) {
        const fs::path root = fs::path(repoRoot) / subdir;
        if (!fs::exists(root))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            std::string rel =
                entry.path().lexically_relative(repoRoot)
                    .generic_string();
            // Golden-test fixtures are deliberate violations.
            if (rel.find("tests/lint/fixtures/") != std::string::npos)
                continue;
            paths.push_back(std::move(rel));
        }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<Finding> findings;
    for (const auto &rel : paths) {
        std::ifstream in(fs::path(repoRoot) / rel, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        const ScannedFile file = scanSource(rel, content.str());
        lintFile(file, findings);
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    if (scannedPaths)
        *scannedPaths = std::move(paths);
    return findings;
}

std::string
renderText(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    for (const auto &f : findings)
        out << f.path << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
    return out.str();
}

std::string
renderJson(const std::vector<Finding> &findings)
{
    auto escape = [](const std::string &text) {
        std::string out;
        for (const char c : text) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    std::ostringstream out;
    out << "[\n";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << "  {\"file\": \"" << escape(f.path)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << escape(f.rule) << "\", \"message\": \""
            << escape(f.message) << "\"}"
            << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.str();
}

} // namespace dora::lint
