/**
 * @file
 * Tests for the observability layer: metrics-registry semantics,
 * warn-suppression surfacing, golden JSONL / Chrome trace renderings,
 * and byte-identity of every trace artifact across `--jobs` counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/comparison.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runner/workload.hh"

namespace dora
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(Metrics, CounterAddsAndResets)
{
    MetricCounter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeHoldsLastValue)
{
    MetricGauge g;
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramTracksMoments)
{
    MetricHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(1.0);
    h.record(4.0);
    h.record(16.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 21.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 16.0);
    // Power-of-two buckets offset by 32: ilogb(1)=0, ilogb(4)=2,
    // ilogb(16)=4.
    EXPECT_EQ(h.bucketCount(32), 1u);
    EXPECT_EQ(h.bucketCount(34), 1u);
    EXPECT_EQ(h.bucketCount(36), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, HistogramNonPositiveLandsInFirstBucket)
{
    MetricHistogram h;
    h.record(0.0);
    h.record(-7.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.bucketCount(0), 3u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Metrics, RegistryRefsAreStableAndSnapshotSorted)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    MetricCounter &b = reg.counter("obstest.bbb");
    MetricCounter &a = reg.counter("obstest.aaa");
    EXPECT_EQ(&reg.counter("obstest.bbb"), &b);
    a.add(1);
    b.add(2);
    const std::string snap = reg.snapshotText();
    const size_t pos_a = snap.find("counter obstest.aaa 1");
    const size_t pos_b = snap.find("counter obstest.bbb 2");
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_b, std::string::npos);
    EXPECT_LT(pos_a, pos_b);
    // Identical state renders to identical text.
    EXPECT_EQ(snap, reg.snapshotText());
}

TEST(Metrics, SnapshotSurfacesWarnSuppression)
{
    resetWarnSuppression();
    setLogLevel(LogLevel::Quiet);
    for (int i = 0; i < 9; ++i)
        warn("obs-test spam %d", i);
    setLogLevel(LogLevel::Normal);
    const std::string snap =
        MetricsRegistry::global().snapshotText();
    EXPECT_NE(snap.find("log.warn.suppressed{key=\"obs-test spam %d\"}"
                        " 4"),
              std::string::npos)
        << snap;
    EXPECT_NE(snap.find("log.warn.suppressed_total 4"),
              std::string::npos);
    resetWarnSuppression();
}

TEST(TraceValueJson, RendersEveryKind)
{
    EXPECT_EQ(TraceValue(uint64_t{7}).toJson(), "7");
    EXPECT_EQ(TraceValue(size_t{9}).toJson(), "9");
    EXPECT_EQ(TraceValue(-3).toJson(), "-3");
    EXPECT_EQ(TraceValue(true).toJson(), "true");
    EXPECT_EQ(TraceValue(false).toJson(), "false");
    EXPECT_EQ(TraceValue(0.5).toJson(), "0.5");
    EXPECT_EQ(TraceValue("plain").toJson(), "\"plain\"");
    EXPECT_EQ(TraceValue(std::string("q\"\\\n")).toJson(),
              "\"q\\\"\\\\\\n\"");
    EXPECT_EQ(
        TraceValue(std::numeric_limits<double>::infinity()).toJson(),
        "null");
}

TEST(RunTraceJsonl, GoldenRendering)
{
    RunTrace t("amazon+stream|DORA");
    t.setMeta("governor", "DORA");
    t.setMeta("page_salt", uint64_t{123});
    t.instant(1.5, "governor", "decide", {{"requested", size_t{3}}});
    t.begin(2.0, "page", "phase", {{"phase", "fetch"}});
    t.end(2.25, "page", "phase");
    t.complete(0.0, 2.0, "run", "warmup");
    const std::string expected =
        "{\"run\":\"amazon+stream|DORA\",\"meta\":{"
        "\"governor\":\"DORA\",\"page_salt\":123}}\n"
        "{\"run\":\"amazon+stream|DORA\",\"t\":1.5,\"ph\":\"i\","
        "\"cat\":\"governor\",\"name\":\"decide\","
        "\"args\":{\"requested\":3}}\n"
        "{\"run\":\"amazon+stream|DORA\",\"t\":2,\"ph\":\"B\","
        "\"cat\":\"page\",\"name\":\"phase\","
        "\"args\":{\"phase\":\"fetch\"}}\n"
        "{\"run\":\"amazon+stream|DORA\",\"t\":2.25,\"ph\":\"E\","
        "\"cat\":\"page\",\"name\":\"phase\"}\n"
        "{\"run\":\"amazon+stream|DORA\",\"t\":0,\"dur\":2,"
        "\"ph\":\"X\",\"cat\":\"run\",\"name\":\"warmup\"}\n";
    EXPECT_EQ(t.toJsonl(), expected);
    ASSERT_NE(t.meta("page_salt"), nullptr);
    EXPECT_EQ(t.meta("page_salt")->u, 123u);
    EXPECT_EQ(t.meta("absent"), nullptr);
}

TEST(TraceSessionFiles, SortedGoldenArtifacts)
{
    const std::string dir =
        ::testing::TempDir() + "obs_golden_session";
    TraceSession session(dir, "golden");
    // Submitted out of key order; finalize() must sort.
    RunTrace second("b|perf");
    second.setMeta("digest", "0x02");
    second.instant(0.25, "governor", "decide");
    session.submit(std::move(second));
    RunTrace first("a|perf");
    first.setMeta("digest", "0x01");
    first.complete(0.0, 0.5, "run", "window", {{"ticks", 500}});
    session.submit(std::move(first));
    EXPECT_EQ(session.runCount(), 2u);
    ASSERT_TRUE(session.finalize());

    const std::string events = slurp(dir + "/events.jsonl");
    const std::string expected_events =
        "{\"run\":\"a|perf\",\"meta\":{\"digest\":\"0x01\"}}\n"
        "{\"run\":\"a|perf\",\"t\":0,\"dur\":0.5,\"ph\":\"X\","
        "\"cat\":\"run\",\"name\":\"window\","
        "\"args\":{\"ticks\":500}}\n"
        "{\"run\":\"b|perf\",\"meta\":{\"digest\":\"0x02\"}}\n"
        "{\"run\":\"b|perf\",\"t\":0.25,\"ph\":\"i\","
        "\"cat\":\"governor\",\"name\":\"decide\"}\n";
    EXPECT_EQ(events, expected_events);

    const std::string chrome = slurp(dir + "/trace.json");
    const std::string expected_chrome =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"a|perf\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"b|perf\"}},\n"
        "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.000,"
        "\"dur\":500000.000,\"cat\":\"run\",\"name\":\"window\","
        "\"args\":{\"ticks\":500}},\n"
        "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":250000.000,"
        "\"s\":\"t\",\"cat\":\"governor\",\"name\":\"decide\"}\n"
        "]}\n";
    EXPECT_EQ(chrome, expected_chrome);

    const std::string manifest = slurp(dir + "/manifest.json");
    EXPECT_NE(manifest.find("\"schema\": \"dora-trace-v1\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"label\": \"golden\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"runs\": \"2\""), std::string::npos);
    EXPECT_NE(manifest.find("\"events\": \"2\""), std::string::npos);
    EXPECT_NE(manifest.find("\"measurement_digest\": \"0x"),
              std::string::npos);

    // Idempotent: finalizing again rewrites the same bytes.
    ASSERT_TRUE(session.finalize());
    EXPECT_EQ(slurp(dir + "/events.jsonl"), expected_events);
    EXPECT_EQ(slurp(dir + "/trace.json"), expected_chrome);
}

TEST(TraceSessionInstall, ActiveFollowsInstall)
{
    EXPECT_EQ(TraceSession::active(), nullptr);
    TraceSession session(::testing::TempDir() + "obs_install", "x");
    TraceSession::install(&session);
    EXPECT_EQ(TraceSession::active(), &session);
    TraceSession::install(nullptr);
    EXPECT_EQ(TraceSession::active(), nullptr);
}

TEST(ObsGuardFlag, InertWithoutFlag)
{
    const char *argv[] = {"bench", "--jobs", "2"};
    ObsGuard guard(3, const_cast<char **>(argv));
    EXPECT_FALSE(guard.enabled());
    EXPECT_EQ(TraceSession::active(), nullptr);
}

TEST(ObsGuardFlag, ParsesTraceFlagAndFinalizesOnExit)
{
    const std::string dir = ::testing::TempDir() + "obs_guard_out";
    const std::string flag = "--trace=" + dir;
    const char *argv[] = {"bench_fake", flag.c_str()};
    {
        ObsGuard guard(2, const_cast<char **>(argv));
        ASSERT_TRUE(guard.enabled());
        ASSERT_NE(TraceSession::active(), nullptr);
        EXPECT_EQ(TraceSession::active()->dir(), dir);
        RunTrace run("w|g");
        run.instant(0.0, "run", "marker");
        TraceSession::active()->submit(std::move(run));
    }
    EXPECT_EQ(TraceSession::active(), nullptr);
    EXPECT_NE(slurp(dir + "/events.jsonl").find("\"marker\""),
              std::string::npos);
    EXPECT_NE(slurp(dir + "/manifest.json")
                  .find("\"label\": \"bench_fake\""),
              std::string::npos);
}

/**
 * Robustness contract: a SIGTERM'd bench still lands its partial
 * trace, with a `truncated` marker naming the signal, and dies by
 * that signal (conventional exit status). Run in a forked child so
 * the kill cannot take the test runner with it.
 */
TEST(ObsGuardSignal, SigtermFlushesPartialTraceWithTruncatedMarker)
{
    const std::string dir =
        ::testing::TempDir() + "obs_guard_sigterm";
    std::filesystem::remove_all(dir);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        const std::string flag = "--trace=" + dir;
        const char *argv[] = {"bench_fake", flag.c_str()};
        ObsGuard guard(2, const_cast<char **>(argv));
        if (!guard.enabled())
            ::_exit(2);
        RunTrace run("w|g");
        run.instant(0.0, "run", "partial_marker");
        TraceSession::active()->submit(std::move(run));
        // Die mid-bench: the guard's handler must flush, then
        // re-raise so we exit by the signal, never reaching _exit.
        ::kill(::getpid(), SIGTERM);
        ::_exit(3);
    }

    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited normally with status " << status;
    EXPECT_EQ(WTERMSIG(status), SIGTERM);

    const std::string manifest = slurp(dir + "/manifest.json");
    EXPECT_NE(manifest.find("\"truncated\": \"signal 15\""),
              std::string::npos)
        << manifest;
    EXPECT_NE(slurp(dir + "/events.jsonl").find("\"partial_marker\""),
              std::string::npos);
}

/**
 * The acceptance contract of DESIGN.md §5c: with tracing enabled, a
 * parallel sweep produces the exact bytes of the serial sweep in all
 * three artifacts — the thread schedule never reaches the files.
 */
TEST(TraceDeterminism, ArtifactsByteIdenticalAcrossJobCounts)
{
    auto workloads = WorkloadSets::paperCombinations();
    workloads.resize(4);
    const std::vector<std::string> governors = {"interactive",
                                                "performance"};

    auto sweep = [&](unsigned jobs, const std::string &dir) {
        TraceSession session(dir, "determinism");
        TraceSession::install(&session);
        ComparisonHarness harness(ExperimentConfig{}, nullptr, jobs);
        harness.runAll(workloads, governors);
        TraceSession::install(nullptr);
        ASSERT_TRUE(session.finalize());
        EXPECT_EQ(session.runCount(),
                  workloads.size() * governors.size());
    };

    const std::string serial_dir =
        ::testing::TempDir() + "obs_jobs1";
    const std::string parallel_dir =
        ::testing::TempDir() + "obs_jobs4";
    sweep(1, serial_dir);
    sweep(4, parallel_dir);

    for (const char *file :
         {"/events.jsonl", "/trace.json", "/manifest.json"}) {
        const std::string a = slurp(serial_dir + file);
        const std::string b = slurp(parallel_dir + file);
        ASSERT_FALSE(a.empty()) << file;
        EXPECT_EQ(a, b) << file;
    }
    // The traces carry real content: every run has its measured
    // instant and at least one governor decision.
    const std::string events = slurp(serial_dir + "/events.jsonl");
    EXPECT_NE(events.find("\"name\":\"measured\""),
              std::string::npos);
    EXPECT_NE(events.find("\"name\":\"decide\""), std::string::npos);
    EXPECT_NE(events.find("\"digest\":\"0x"), std::string::npos);
}

} // namespace
} // namespace dora
