/**
 * @file
 * Supervisor robustness-ladder tests: crash retry, hang watchdog,
 * quarantine, graceful drain, journal resume. Crash injection uses
 * marker files in TempDir so a unit misbehaves on exactly its first
 * attempt (attempts land in different worker processes, so in-memory
 * state cannot carry the "already failed once" bit).
 */

#include "exec/proc/supervisor.hh"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <unistd.h>

namespace dora
{
namespace
{

std::string
expectedPayload(uint64_t unit)
{
    return "unit:" + std::to_string(unit * unit + 17);
}

class ProcSupervisorTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        stem_ = ::testing::TempDir() + "proc_sup_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name();
        journal_ = stem_ + ".jrn";
        marker_ = stem_ + ".marker";
        std::remove(journal_.c_str());
        std::remove(marker_.c_str());
    }

    void TearDown() override
    {
        std::remove(journal_.c_str());
        std::remove(marker_.c_str());
    }

    /** True the first time it is called (per marker file). */
    bool firstAttempt() const
    {
        if (std::ifstream(marker_).good())
            return false;
        std::ofstream(marker_).put('x');
        return true;
    }

    static ProcSweepConfig fastConfig(uint32_t workers)
    {
        ProcSweepConfig config;
        config.workers = workers;
        config.heartbeatIntervalSec = 0.05;
        config.retryBackoffSec = 0.01;
        return config;
    }

    void expectAllCorrect(const ProcSweepReport &report, uint64_t n)
    {
        ASSERT_TRUE(report.allCompleted());
        ASSERT_EQ(report.results.size(), n);
        for (uint64_t u = 0; u < n; ++u)
            EXPECT_EQ(report.results[u], expectedPayload(u))
                << "unit " << u;
    }

    std::string stem_, journal_, marker_;
};

TEST_F(ProcSupervisorTest, HealthySweepCompletesEveryUnit)
{
    for (const uint32_t workers : {1u, 4u}) {
        const ProcSweepReport report = runProcSweep(
            fastConfig(workers), 9, expectedPayload);
        expectAllCorrect(report, 9);
        EXPECT_EQ(report.unitsRun, 9u);
        EXPECT_EQ(report.workerCrashes, 0u);
        EXPECT_EQ(report.retries, 0u);
        EXPECT_FALSE(report.drained);
    }
}

TEST_F(ProcSupervisorTest, ZeroUnitsIsANoop)
{
    const ProcSweepReport report =
        runProcSweep(fastConfig(2), 0, expectedPayload);
    EXPECT_TRUE(report.allCompleted());
    EXPECT_EQ(report.unitsRun, 0u);
}

TEST_F(ProcSupervisorTest, CrashedWorkerIsRespawnedAndUnitRetried)
{
    const ProcUnitFn unit_fn = [this](uint64_t unit) {
        if (unit == 3 && firstAttempt())
            ::_exit(9);  // simulated crash mid-unit
        return expectedPayload(unit);
    };
    const ProcSweepReport report =
        runProcSweep(fastConfig(2), 6, unit_fn);
    expectAllCorrect(report, 6);
    EXPECT_GE(report.workerCrashes, 1u);
    EXPECT_GE(report.retries, 1u);
    EXPECT_TRUE(report.quarantined.empty());
}

TEST_F(ProcSupervisorTest, ThrowingUnitIsRetriedWithoutACrash)
{
    const ProcUnitFn unit_fn = [this](uint64_t unit) -> std::string {
        if (unit == 1 && firstAttempt())
            throw std::runtime_error("transient unit failure");
        return expectedPayload(unit);
    };
    const ProcSweepReport report =
        runProcSweep(fastConfig(1), 4, unit_fn);
    expectAllCorrect(report, 4);
    EXPECT_EQ(report.workerCrashes, 0u);  // worker survived the throw
    EXPECT_GE(report.retries, 1u);
}

TEST_F(ProcSupervisorTest, HungWorkerIsKilledByHeartbeatWatchdog)
{
    const ProcUnitFn unit_fn = [this](uint64_t unit) {
        if (unit == 2 && firstAttempt())
            ::kill(::getpid(), SIGSTOP);  // freezes heartbeats too
        return expectedPayload(unit);
    };
    ProcSweepConfig config = fastConfig(1);
    config.heartbeatTimeoutSec = 0.3;
    const ProcSweepReport report = runProcSweep(config, 4, unit_fn);
    expectAllCorrect(report, 4);
    EXPECT_GE(report.workerCrashes, 1u);
    EXPECT_GE(report.retries, 1u);
}

TEST_F(ProcSupervisorTest, SlowUnitIsKilledByUnitTimeout)
{
    const ProcUnitFn unit_fn = [this](uint64_t unit) {
        if (unit == 0 && firstAttempt())
            std::this_thread::sleep_for(std::chrono::seconds(30));
        return expectedPayload(unit);
    };
    ProcSweepConfig config = fastConfig(1);
    config.unitTimeoutSec = 0.4;
    const ProcSweepReport report = runProcSweep(config, 3, unit_fn);
    expectAllCorrect(report, 3);
    EXPECT_GE(report.workerCrashes, 1u);
}

TEST_F(ProcSupervisorTest, PoisonUnitIsQuarantinedNotFatal)
{
    const ProcUnitFn unit_fn = [](uint64_t unit) {
        if (unit == 2)
            ::_exit(7);  // poison: dies on every attempt
        return expectedPayload(unit);
    };
    ProcSweepConfig config = fastConfig(2);
    config.maxAttempts = 2;
    const ProcSweepReport report = runProcSweep(config, 5, unit_fn);
    EXPECT_FALSE(report.allCompleted());
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].unit, 2u);
    EXPECT_EQ(report.quarantined[0].attempts, 2u);
    EXPECT_FALSE(report.quarantined[0].lastError.empty());
    for (uint64_t u = 0; u < 5; ++u) {
        if (u == 2)
            continue;
        EXPECT_TRUE(report.completed[u]) << "unit " << u;
        EXPECT_EQ(report.results[u], expectedPayload(u));
    }
}

TEST_F(ProcSupervisorTest, JournalResumeSkipsCompletedUnits)
{
    // First campaign: unit 4 is poison with maxAttempts=1, so the
    // sweep ends with everything but unit 4 journaled.
    const ProcUnitFn poison_fn = [](uint64_t unit) {
        if (unit == 4)
            ::_exit(5);
        return expectedPayload(unit);
    };
    ProcSweepConfig config = fastConfig(2);
    config.maxAttempts = 1;
    config.journalPath = journal_;
    config.campaignHash = 0xfeedbeef;
    const ProcSweepReport first = runProcSweep(config, 6, poison_fn);
    EXPECT_EQ(first.quarantined.size(), 1u);
    EXPECT_EQ(first.unitsRun, 5u);

    // Second campaign over the same journal: only unit 4 runs; the
    // counter proves the other five came from the journal.
    const ProcSweepReport second =
        runProcSweep(config, 6, expectedPayload);
    expectAllCorrect(second, 6);
    EXPECT_EQ(second.unitsResumed, 5u);
    EXPECT_EQ(second.unitsRun, 1u);

    // Third open: fully resumed, zero work.
    const ProcSweepReport third = runProcSweep(
        config, 6,
        [](uint64_t) -> std::string { ::abort(); });
    expectAllCorrect(third, 6);
    EXPECT_EQ(third.unitsResumed, 6u);
    EXPECT_EQ(third.unitsRun, 0u);
}

TEST_F(ProcSupervisorTest, SigintDrainsInFlightAndJournalsProgress)
{
    const ProcUnitFn slow_fn = [](uint64_t unit) {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        return expectedPayload(unit);
    };
    ProcSweepConfig config = fastConfig(1);
    config.journalPath = journal_;
    config.campaignHash = 0xd5a1;

    std::thread interrupter([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        ::kill(::getpid(), SIGINT);
    });
    const ProcSweepReport drained =
        runProcSweep(config, 20, slow_fn);
    interrupter.join();

    EXPECT_TRUE(drained.drained);
    EXPECT_EQ(drained.drainSignal, SIGINT);
    EXPECT_FALSE(drained.allCompleted());
    EXPECT_GE(drained.unitsRun, 1u);

    // Resume finishes the campaign; drained units are not recomputed.
    const ProcSweepReport resumed =
        runProcSweep(config, 20, slow_fn);
    expectAllCorrect(resumed, 20);
    EXPECT_EQ(resumed.unitsResumed, drained.unitsRun);
    EXPECT_EQ(resumed.unitsRun, 20u - drained.unitsRun);
}

} // namespace
} // namespace dora
