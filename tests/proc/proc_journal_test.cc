/**
 * @file
 * Results-journal tests: resume, torn-tail truncation, cross-campaign
 * refusal, corruption detection.
 */

#include "exec/proc/journal.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace dora
{
namespace
{

class ProcJournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "proc_journal_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name() +
            ".jrn";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string readFile() const
    {
        std::ifstream in(path_, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

    void writeFile(const std::string &bytes) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    std::string path_;
};

TEST_F(ProcJournalTest, FreshJournalRoundTrips)
{
    {
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(path_, 0xc0ffee, 4)) << journal.error();
        EXPECT_TRUE(journal.loaded().empty());
        ASSERT_TRUE(journal.append(2, "unit two"));
        ASSERT_TRUE(journal.append(0, std::string("\x00nul", 4)));
        journal.close();
    }
    ResultsJournal journal;
    ASSERT_TRUE(journal.open(path_, 0xc0ffee, 4)) << journal.error();
    ASSERT_EQ(journal.loaded().size(), 2u);
    EXPECT_EQ(journal.loaded()[0].first, 2u);
    EXPECT_EQ(journal.loaded()[0].second, "unit two");
    EXPECT_EQ(journal.loaded()[1].first, 0u);
    EXPECT_EQ(journal.loaded()[1].second, std::string("\x00nul", 4));
    EXPECT_FALSE(journal.truncatedTail());
}

TEST_F(ProcJournalTest, TornTailIsTruncatedAtEveryCutPoint)
{
    std::string full;
    {
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(path_, 1, 4));
        ASSERT_TRUE(journal.append(0, "intact record"));
        journal.close();
        full = readFile();
    }
    const std::string one_record = full;
    {
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(path_, 1, 4));
        ASSERT_TRUE(journal.append(1, "torn record"));
        journal.close();
        full = readFile();
    }
    // Cut the second record at every possible point: the first record
    // must always survive, the torn one never.
    for (size_t cut = one_record.size() + 1; cut < full.size(); ++cut) {
        writeFile(full.substr(0, cut));
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(path_, 1, 4))
            << "cut=" << cut << ": " << journal.error();
        ASSERT_EQ(journal.loaded().size(), 1u) << "cut=" << cut;
        EXPECT_EQ(journal.loaded()[0].second, "intact record");
        EXPECT_TRUE(journal.truncatedTail()) << "cut=" << cut;
        // Appends continue from the truncated tail.
        ASSERT_TRUE(journal.append(1, "torn record"));
        journal.close();
        EXPECT_EQ(readFile(), full) << "cut=" << cut;
    }
}

TEST_F(ProcJournalTest, CorruptRecordPayloadDropsTail)
{
    std::string clean;
    {
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(path_, 1, 2));
        ASSERT_TRUE(journal.append(0, "first"));
        clean = readFile();
        ASSERT_TRUE(journal.append(1, "second"));
        journal.close();
    }
    std::string bytes = readFile();
    bytes[clean.size() + 13] ^= 0x01;  // a byte inside record 2
    writeFile(bytes);
    ResultsJournal journal;
    ASSERT_TRUE(journal.open(path_, 1, 2)) << journal.error();
    ASSERT_EQ(journal.loaded().size(), 1u);
    EXPECT_EQ(journal.loaded()[0].second, "first");
    EXPECT_TRUE(journal.truncatedTail());
}

TEST_F(ProcJournalTest, CrossCampaignResumeIsRefused)
{
    {
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(path_, 0xaaaa, 8));
        ASSERT_TRUE(journal.append(0, "x"));
        journal.close();
    }
    {
        ResultsJournal journal;
        EXPECT_FALSE(journal.open(path_, 0xbbbb, 8));  // wrong hash
        EXPECT_FALSE(journal.error().empty());
    }
    {
        ResultsJournal journal;
        EXPECT_FALSE(journal.open(path_, 0xaaaa, 9));  // wrong count
    }
    {
        // The refused opens must not have damaged the journal.
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(path_, 0xaaaa, 8)) << journal.error();
        ASSERT_EQ(journal.loaded().size(), 1u);
    }
}

TEST_F(ProcJournalTest, GarbageFileIsRefused)
{
    writeFile("this is not a journal at all, not even close........");
    ResultsJournal journal;
    EXPECT_FALSE(journal.open(path_, 1, 1));
    EXPECT_FALSE(journal.error().empty());
}

TEST_F(ProcJournalTest, AppendOnClosedJournalFails)
{
    ResultsJournal journal;
    EXPECT_FALSE(journal.append(0, "x"));
    EXPECT_FALSE(journal.error().empty());
}

} // namespace
} // namespace dora
