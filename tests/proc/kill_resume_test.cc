/**
 * @file
 * Crash-resilience acceptance tests for the process-level execution
 * tier (DESIGN.md §5f), driven through the real comparison harness:
 *
 *  - `--workers=N` is byte-identical to the in-process `--workers=0`
 *    path for N in {1, 4};
 *  - a worker SIGKILLed mid-unit is retried and the final aggregate is
 *    still byte-identical;
 *  - a supervisor SIGKILLed mid-campaign leaves a journal from which a
 *    rerun resumes, and the resumed aggregate is byte-identical.
 *
 * Identity is checked through runMeasurementText() (hex-float
 * rendering), so any single-ULP divergence fails. scripts/ci.sh runs
 * this binary in its `crash` stage.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/comparison.hh"
#include "obs/metrics.hh"
#include "workloads/kernel.hh"

namespace fs = std::filesystem;

namespace dora
{
namespace
{

/** Cheap kernel-only workloads (no page => short 1 s windows). */
std::vector<WorkloadSpec>
cheapWorkloads()
{
    return {
        WorkloadSets::kernelOnly(KernelCatalog::byName("kmeans")),
        WorkloadSets::kernelOnly(KernelCatalog::byName("srad2")),
        WorkloadSets::kernelOnly(KernelCatalog::byName("backprop")),
    };
}

/** Model-free governors so no training campaign is needed. */
const std::vector<std::string> kGovernors = {"interactive",
                                             "performance", "ondemand"};

/**
 * One string per cell, in grid order — the byte-identity aggregate.
 * @param workers    process-tier width (0 = in-process path)
 * @param stem       journal stem ("" disables journaling)
 */
std::vector<std::string>
campaignTexts(unsigned workers, const std::string &stem)
{
    ComparisonHarness harness(ExperimentConfig{}, nullptr, 2);
    if (workers > 0) {
        harness.setWorkers(workers);
        harness.setProcJournalStem(stem);
    }
    const auto records = harness.runAll(cheapWorkloads(), kGovernors);
    std::vector<std::string> texts;
    for (const auto &r : records)
        for (const auto &g : kGovernors)
            texts.push_back(runMeasurementText(r.measurement(g)));
    return texts;
}

/** Remove journal files left by a previous run of @p stem. */
void
clearJournals(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (!fs::exists(dir))
        return;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind(prefix, 0) == 0)
            fs::remove(entry.path());
}

/** The journal file for @p stem, or "" while none exists yet. */
std::string
findJournal(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (fs::exists(dir))
        for (const auto &entry : fs::directory_iterator(dir))
            if (entry.path().filename().string().rfind(prefix, 0) == 0)
                return entry.path().string();
    return "";
}

/** Direct children of this process, via /proc (Linux). */
std::vector<pid_t>
childPids()
{
    std::vector<pid_t> pids;
    DIR *proc = ::opendir("/proc");
    if (!proc)
        return pids;
    const pid_t self = ::getpid();
    while (const dirent *entry = ::readdir(proc)) {
        if (!std::isdigit(
                static_cast<unsigned char>(entry->d_name[0])))
            continue;
        std::ifstream stat("/proc/" + std::string(entry->d_name) +
                           "/stat");
        std::string pid_str, comm, state;
        pid_t ppid = -1;
        if (stat >> pid_str >> comm >> state >> ppid && ppid == self)
            pids.push_back(
                static_cast<pid_t>(std::atol(pid_str.c_str())));
    }
    ::closedir(proc);
    return pids;
}

std::string
uniqueStem(const char *name)
{
    return ::testing::TempDir() + "kill_resume_" + name;
}

TEST(KillResume, WorkerCountsAreByteIdentical)
{
    const auto baseline = campaignTexts(0, "");
    for (const unsigned workers : {1u, 4u}) {
        // Append (not char* + string&& operator+) to dodge a GCC 12
        // -Werror=restrict false positive in the inlined temporary.
        std::string name = "w";
        name += std::to_string(workers);
        const std::string stem = uniqueStem(name.c_str());
        clearJournals(stem);
        const auto proc = campaignTexts(workers, stem);
        ASSERT_EQ(proc.size(), baseline.size());
        for (size_t i = 0; i < baseline.size(); ++i)
            EXPECT_EQ(proc[i], baseline[i])
                << "workers=" << workers << " cell " << i;
        clearJournals(stem);
    }
}

TEST(KillResume, WorkerSigkillMidUnitStillByteIdentical)
{
    const std::string stem = uniqueStem("worker_kill");
    clearJournals(stem);
    const auto baseline = campaignTexts(0, "");
    const uint64_t crashes_before =
        MetricsRegistry::global().counter("proc.worker_crashes")
            .value();

    // The campaign runs in this process (it is the supervisor); a
    // watcher thread SIGKILLs the first worker subprocess it sees,
    // ~30 ms in — mid-first-unit at ~65 ms/cell.
    std::thread killer([] {
        for (int i = 0; i < 200; ++i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            if (i < 2)
                continue;  // let the first dispatches land
            const auto pids = childPids();
            if (!pids.empty()) {
                ::kill(pids.front(), SIGKILL);
                return;
            }
        }
    });
    const auto survived = campaignTexts(2, stem);
    killer.join();

    const uint64_t crashes_after =
        MetricsRegistry::global().counter("proc.worker_crashes")
            .value();
    EXPECT_GE(crashes_after, crashes_before + 1)
        << "the injected SIGKILL never hit a busy worker";
    ASSERT_EQ(survived.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i)
        EXPECT_EQ(survived[i], baseline[i]) << "cell " << i;
    clearJournals(stem);
}

TEST(KillResume, SupervisorSigkillThenJournalResumeByteIdentical)
{
    const std::string stem = uniqueStem("supervisor_kill");
    clearJournals(stem);
    const auto baseline = campaignTexts(0, "");

    // First attempt runs in a forked child so SIGKILL models a hard
    // supervisor death (no destructors, no drain).
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        campaignTexts(2, stem);
        ::_exit(0);
    }

    // Kill as soon as the journal holds at least one record (header
    // is 36 bytes), i.e. mid-campaign with real progress on disk.
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(60);
    std::string journal;
    while (std::chrono::steady_clock::now() < deadline) {
        journal = findJournal(stem);
        std::error_code ec;
        if (!journal.empty() && fs::file_size(journal, ec) > 36 && !ec)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_FALSE(journal.empty())
        << "campaign never journaled a record";
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);

    // Resume in-process: the journal must contribute completed cells
    // and the final aggregate must match the uninterrupted baseline.
    const uint64_t resumed_before =
        MetricsRegistry::global().counter("proc.units_resumed")
            .value();
    const auto resumed = campaignTexts(2, stem);
    const uint64_t resumed_after =
        MetricsRegistry::global().counter("proc.units_resumed")
            .value();
    EXPECT_GE(resumed_after, resumed_before + 1)
        << "rerun recomputed everything instead of resuming";
    ASSERT_EQ(resumed.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i)
        EXPECT_EQ(resumed[i], baseline[i]) << "cell " << i;
    clearJournals(stem);
}

} // namespace
} // namespace dora
