/**
 * @file
 * Frame codec tests: round trip, incremental parse, corruption.
 */

#include "exec/proc/wire.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace dora
{
namespace
{

Frame
makeFrame(FrameType type, uint64_t unit, uint32_t attempt,
          std::string payload)
{
    Frame f;
    f.type = type;
    f.unit = unit;
    f.attempt = attempt;
    f.payload = std::move(payload);
    return f;
}

TEST(ProcWire, RoundTripAllTypes)
{
    const FrameType types[] = {FrameType::Dispatch, FrameType::Result,
                               FrameType::Heartbeat,
                               FrameType::WorkerError,
                               FrameType::Shutdown};
    for (const FrameType type : types) {
        const Frame sent =
            makeFrame(type, 0x0123456789abcdefull, 7, "payload bytes");
        const std::string bytes = encodeFrame(sent);
        FrameParser parser;
        parser.feed(bytes.data(), bytes.size());
        Frame got;
        ASSERT_TRUE(parser.next(&got));
        EXPECT_EQ(got.type, sent.type);
        EXPECT_EQ(got.unit, sent.unit);
        EXPECT_EQ(got.attempt, sent.attempt);
        EXPECT_EQ(got.payload, sent.payload);
        EXPECT_FALSE(parser.next(&got));
        EXPECT_FALSE(parser.corrupted());
    }
}

TEST(ProcWire, EmptyAndLargePayloadsRoundTrip)
{
    const std::string large(1 << 20, '\xa5');
    for (const std::string &payload : {std::string(), large}) {
        const std::string bytes = encodeFrame(
            makeFrame(FrameType::Result, 3, 1, payload));
        FrameParser parser;
        parser.feed(bytes.data(), bytes.size());
        Frame got;
        ASSERT_TRUE(parser.next(&got));
        EXPECT_EQ(got.payload, payload);
    }
}

TEST(ProcWire, ByteAtATimeFeedReassembles)
{
    const std::string bytes = encodeFrame(
        makeFrame(FrameType::Result, 42, 2, "split across reads"));
    FrameParser parser;
    Frame got;
    for (size_t i = 0; i + 1 < bytes.size(); ++i) {
        parser.feed(bytes.data() + i, 1);
        EXPECT_FALSE(parser.next(&got));
    }
    parser.feed(bytes.data() + bytes.size() - 1, 1);
    ASSERT_TRUE(parser.next(&got));
    EXPECT_EQ(got.unit, 42u);
    EXPECT_EQ(got.payload, "split across reads");
}

TEST(ProcWire, BackToBackFramesBothDecode)
{
    std::string bytes =
        encodeFrame(makeFrame(FrameType::Result, 1, 1, "first"));
    bytes += encodeFrame(makeFrame(FrameType::Heartbeat, 2, 1, ""));
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    Frame a, b, c;
    ASSERT_TRUE(parser.next(&a));
    ASSERT_TRUE(parser.next(&b));
    EXPECT_EQ(a.payload, "first");
    EXPECT_EQ(b.type, FrameType::Heartbeat);
    EXPECT_FALSE(parser.next(&c));
}

TEST(ProcWire, FlippedPayloadBitIsTerminalCorruption)
{
    std::string bytes = encodeFrame(
        makeFrame(FrameType::Result, 9, 1, "checksummed payload"));
    bytes[bytes.size() - 12] ^= 0x01;  // payload byte, not checksum
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    Frame got;
    EXPECT_FALSE(parser.next(&got));
    EXPECT_TRUE(parser.corrupted());
    // Corruption is terminal: further feeds/next never recover.
    const std::string clean =
        encodeFrame(makeFrame(FrameType::Result, 10, 1, "ok"));
    parser.feed(clean.data(), clean.size());
    EXPECT_FALSE(parser.next(&got));
    EXPECT_TRUE(parser.corrupted());
}

TEST(ProcWire, BadMagicAndBadTypeAreCorruption)
{
    {
        std::string bytes =
            encodeFrame(makeFrame(FrameType::Result, 1, 1, "x"));
        bytes[0] ^= 0xff;
        FrameParser parser;
        parser.feed(bytes.data(), bytes.size());
        Frame got;
        EXPECT_FALSE(parser.next(&got));
        EXPECT_TRUE(parser.corrupted());
    }
    {
        std::string bytes =
            encodeFrame(makeFrame(FrameType::Result, 1, 1, "x"));
        bytes[4] = 0x7f;  // not a FrameType
        FrameParser parser;
        parser.feed(bytes.data(), bytes.size());
        Frame got;
        EXPECT_FALSE(parser.next(&got));
        EXPECT_TRUE(parser.corrupted());
    }
}

TEST(ProcWire, OversizedLengthIsCorruptionNotAllocation)
{
    std::string bytes =
        encodeFrame(makeFrame(FrameType::Result, 1, 1, "x"));
    const uint32_t huge = kMaxFramePayload + 1;
    std::memcpy(bytes.data() + 17, &huge, sizeof(huge));
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    Frame got;
    EXPECT_FALSE(parser.next(&got));
    EXPECT_TRUE(parser.corrupted());
}

} // namespace
} // namespace dora
