/**
 * @file
 * Unit tests for the unit-conversion helpers.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace dora
{
namespace
{

TEST(Units, FrequencyConversions)
{
    EXPECT_DOUBLE_EQ(mhzToHz(2265.6), 2.2656e9);
    EXPECT_DOUBLE_EQ(mhzToGhz(2265.6), 2.2656);
    EXPECT_DOUBLE_EQ(mhzToHz(0.0), 0.0);
}

TEST(Units, TimeConversions)
{
    EXPECT_DOUBLE_EQ(secToMs(1.5), 1500.0);
    EXPECT_DOUBLE_EQ(msToSec(250.0), 0.25);
    EXPECT_DOUBLE_EQ(msToSec(secToMs(0.123)), 0.123);
}

TEST(Units, ClampTo)
{
    EXPECT_DOUBLE_EQ(clampTo(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(clampTo(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clampTo(11.0, 0.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(clampTo(0.0, 0.0, 0.0), 0.0);
}

TEST(Units, Lerp)
{
    EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(lerp(-4.0, 4.0, 0.5), 0.0);
}

TEST(Units, CacheLineConstant)
{
    EXPECT_EQ(kCacheLineBytes, 64u);
}

} // namespace
} // namespace dora
