/**
 * @file
 * Unit tests for the snapshot buffer primitives: typed round trips,
 * checksum validation, and mismatch/corruption rejection.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/snapshot.hh"

namespace dora
{
namespace
{

TEST(Snapshot, ScalarRoundTrip)
{
    SnapshotWriter w;
    w.beginSection("test", 3);
    w.putU8(0xAB);
    w.putU32(0xDEADBEEF);
    w.putU64(0x0123456789ABCDEFull);
    w.putDouble(-0.1);
    w.putBool(true);
    w.putSize(42);
    w.putString("hello");
    const std::string bytes = w.finish();

    SnapshotReader r(bytes);
    ASSERT_TRUE(r.checksumOk());
    ASSERT_TRUE(r.beginSection("test", 3));
    uint8_t u8;
    uint32_t u32;
    uint64_t u64;
    double d;
    bool b;
    size_t sz;
    std::string s;
    ASSERT_TRUE(r.getU8(&u8));
    ASSERT_TRUE(r.getU32(&u32));
    ASSERT_TRUE(r.getU64(&u64));
    ASSERT_TRUE(r.getDouble(&d));
    ASSERT_TRUE(r.getBool(&b));
    ASSERT_TRUE(r.getSize(&sz));
    ASSERT_TRUE(r.getString(&s));
    EXPECT_EQ(u8, 0xAB);
    EXPECT_EQ(u32, 0xDEADBEEFu);
    EXPECT_EQ(u64, 0x0123456789ABCDEFull);
    EXPECT_DOUBLE_EQ(d, -0.1);
    EXPECT_TRUE(b);
    EXPECT_EQ(sz, 42u);
    EXPECT_EQ(s, "hello");
    EXPECT_TRUE(r.atEnd());
}

TEST(Snapshot, VectorRoundTripIncludingEmpty)
{
    SnapshotWriter w;
    w.beginSection("vect", 1);
    w.putDoubles({1.5, -2.25, 0.0});
    w.putU64s({});
    w.putU32s({7, 8});
    const std::string bytes = w.finish();

    SnapshotReader r(bytes);
    ASSERT_TRUE(r.checksumOk());
    ASSERT_TRUE(r.beginSection("vect", 1));
    std::vector<double> ds;
    std::vector<uint64_t> u64s;
    std::vector<uint32_t> u32s;
    ASSERT_TRUE(r.getDoubles(&ds));
    ASSERT_TRUE(r.getU64s(&u64s));
    ASSERT_TRUE(r.getU32s(&u32s));
    EXPECT_EQ(ds, (std::vector<double>{1.5, -2.25, 0.0}));
    EXPECT_TRUE(u64s.empty());
    EXPECT_EQ(u32s, (std::vector<uint32_t>{7, 8}));
    EXPECT_TRUE(r.atEnd());
}

TEST(Snapshot, DoubleBitPatternIsExact)
{
    // Denormals, signed zero, huge magnitudes: the raw-bits encoding
    // must reproduce each exactly, not via a decimal round trip.
    const std::vector<double> values = {5e-324, -0.0, 1e308,
                                        0.1 + 0.2};
    SnapshotWriter w;
    w.beginSection("bits", 1);
    w.putDoubles(values);
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    ASSERT_TRUE(r.beginSection("bits", 1));
    std::vector<double> back;
    ASSERT_TRUE(r.getDoubles(&back));
    ASSERT_EQ(back.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(std::memcmp(&back[i], &values[i], sizeof(double)), 0);
}

TEST(Snapshot, TypeMismatchFailsAndLeavesOutUntouched)
{
    SnapshotWriter w;
    w.beginSection("type", 1);
    w.putU32(5);
    const std::string bytes = w.finish();

    SnapshotReader r(bytes);
    ASSERT_TRUE(r.beginSection("type", 1));
    uint64_t u64 = 99;
    EXPECT_FALSE(r.getU64(&u64));  // wrote u32, asked for u64
    EXPECT_EQ(u64, 99u);
    // A failed read does not consume; the right-typed read still works.
    uint32_t u32 = 0;
    EXPECT_TRUE(r.getU32(&u32));
    EXPECT_EQ(u32, 5u);
}

TEST(Snapshot, SectionTagAndVersionMismatchRejected)
{
    SnapshotWriter w;
    w.beginSection("soc ", 2);
    const std::string bytes = w.finish();

    SnapshotReader wrong_tag(bytes);
    EXPECT_FALSE(wrong_tag.beginSection("mem ", 2));
    SnapshotReader wrong_version(bytes);
    EXPECT_FALSE(wrong_version.beginSection("soc ", 1));
    SnapshotReader ok(bytes);
    EXPECT_TRUE(ok.beginSection("soc ", 2));
}

TEST(Snapshot, CorruptionDetectedByChecksum)
{
    SnapshotWriter w;
    w.beginSection("corr", 1);
    w.putU64(123456789);
    std::string bytes = w.finish();
    ASSERT_TRUE(SnapshotReader(bytes).checksumOk());

    std::string flipped = bytes;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
    EXPECT_FALSE(SnapshotReader(flipped).checksumOk());
}

TEST(Snapshot, TruncationDetected)
{
    SnapshotWriter w;
    w.beginSection("trnc", 1);
    w.putU64(1);
    w.putU64(2);
    const std::string bytes = w.finish();

    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        SnapshotReader r(bytes.substr(0, cut));
        EXPECT_FALSE(r.checksumOk()) << "cut at " << cut;
    }
}

TEST(Snapshot, ExhaustionFailsCleanly)
{
    SnapshotWriter w;
    w.beginSection("exha", 1);
    w.putU8(1);
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    ASSERT_TRUE(r.beginSection("exha", 1));
    uint8_t v;
    ASSERT_TRUE(r.getU8(&v));
    EXPECT_TRUE(r.atEnd());
    EXPECT_FALSE(r.getU8(&v));  // nothing left but the checksum
}

} // namespace
} // namespace dora
