/**
 * @file
 * Unit tests for the logging helpers (level gating and fatal/panic
 * exit behaviour).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace dora
{
namespace
{

class LoggingTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogLevel(LogLevel::Normal); }
};

TEST_F(LoggingTest, LevelRoundTrips)
{
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Normal);
    EXPECT_EQ(logLevel(), LogLevel::Normal);
}

TEST_F(LoggingTest, InformAndWarnWriteToStderr)
{
    ::testing::internal::CaptureStderr();
    inform("hello %d", 42);
    warn("careful %s", "now");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: hello 42"), std::string::npos);
    EXPECT_NE(out.find("warn: careful now"), std::string::npos);
}

TEST_F(LoggingTest, QuietSuppressesInformNotWarn)
{
    setLogLevel(LogLevel::Quiet);
    ::testing::internal::CaptureStderr();
    inform("should vanish");
    warn("should stay");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("should vanish"), std::string::npos);
    EXPECT_NE(out.find("should stay"), std::string::npos);
}

TEST_F(LoggingTest, DebugOnlyAtVerbose)
{
    ::testing::internal::CaptureStderr();
    debugLog("hidden");
    setLogLevel(LogLevel::Verbose);
    debugLog("shown");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("hidden"), std::string::npos);
    EXPECT_NE(out.find("debug: shown"), std::string::npos);
}

TEST_F(LoggingTest, RepeatedWarnIsRateLimited)
{
    resetWarnSuppression();
    ::testing::internal::CaptureStderr();
    for (int i = 0; i < 8; ++i)
        warn("flaky sensor %d", i);
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    // The first warnEmitLimit() instances print; the last printed one
    // carries the suppression notice; the rest are counted silently.
    size_t emitted = 0;
    for (size_t pos = 0;
         (pos = out.find("warn: flaky sensor", pos)) !=
         std::string::npos;
         ++pos)
        ++emitted;
    EXPECT_EQ(emitted, warnEmitLimit());
    EXPECT_NE(out.find("suppressed and counted"), std::string::npos);

    const auto entries = warnSuppressionEntries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].key, "flaky sensor %d");
    EXPECT_EQ(entries[0].emitted, warnEmitLimit());
    EXPECT_EQ(entries[0].suppressed, 8 - warnEmitLimit());
    EXPECT_EQ(warnSuppressedTotal(), 8 - warnEmitLimit());
    resetWarnSuppression();
    EXPECT_TRUE(warnSuppressionEntries().empty());
    EXPECT_EQ(warnSuppressedTotal(), 0u);
}

TEST_F(LoggingTest, DistinctWarnKeysDoNotShareBudget)
{
    resetWarnSuppression();
    ::testing::internal::CaptureStderr();
    for (int i = 0; i < 4; ++i) {
        warn("key-a %d", i);
        warn("key-b %d", i);
    }
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("suppressed"), std::string::npos);
    EXPECT_EQ(warnSuppressedTotal(), 0u);
    resetWarnSuppression();
}

TEST_F(LoggingTest, FatalExitsWithOneDeathTest)
{
    EXPECT_EXIT(fatal("bad config %d", 7),
                ::testing::ExitedWithCode(1), "fatal: bad config 7");
}

TEST_F(LoggingTest, PanicAbortsDeathTest)
{
    EXPECT_DEATH(panic("invariant %s broken", "x"),
                 "panic: invariant x broken");
}

} // namespace
} // namespace dora
