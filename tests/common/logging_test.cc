/**
 * @file
 * Unit tests for the logging helpers (level gating and fatal/panic
 * exit behaviour).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace dora
{
namespace
{

class LoggingTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogLevel(LogLevel::Normal); }
};

TEST_F(LoggingTest, LevelRoundTrips)
{
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Normal);
    EXPECT_EQ(logLevel(), LogLevel::Normal);
}

TEST_F(LoggingTest, InformAndWarnWriteToStderr)
{
    ::testing::internal::CaptureStderr();
    inform("hello %d", 42);
    warn("careful %s", "now");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: hello 42"), std::string::npos);
    EXPECT_NE(out.find("warn: careful now"), std::string::npos);
}

TEST_F(LoggingTest, QuietSuppressesInformNotWarn)
{
    setLogLevel(LogLevel::Quiet);
    ::testing::internal::CaptureStderr();
    inform("should vanish");
    warn("should stay");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("should vanish"), std::string::npos);
    EXPECT_NE(out.find("should stay"), std::string::npos);
}

TEST_F(LoggingTest, DebugOnlyAtVerbose)
{
    ::testing::internal::CaptureStderr();
    debugLog("hidden");
    setLogLevel(LogLevel::Verbose);
    debugLog("shown");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("hidden"), std::string::npos);
    EXPECT_NE(out.find("debug: shown"), std::string::npos);
}

TEST_F(LoggingTest, FatalExitsWithOneDeathTest)
{
    EXPECT_EXIT(fatal("bad config %d", 7),
                ::testing::ExitedWithCode(1), "fatal: bad config 7");
}

TEST_F(LoggingTest, PanicAbortsDeathTest)
{
    EXPECT_DEATH(panic("invariant %s broken", "x"),
                 "panic: invariant x broken");
}

} // namespace
} // namespace dora
