/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace dora
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, LabelSeedingIsStable)
{
    Rng a("page:amazon"), b("page:amazon"), c("page:imdb");
    EXPECT_EQ(a.next(), b.next());
    Rng a2("page:amazon");
    EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(10);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(12);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(14);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, BurstLengthBounds)
{
    Rng rng(16);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t len = rng.burstLength(0.9, 32);
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, 32u);
    }
}

TEST(Rng, BurstLengthMeanMatchesGeometric)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.burstLength(0.5, 1 << 20));
    // E[len] = 1/(1-p) = 2 for p = 0.5.
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ForkIsDeterministicAndIndependent)
{
    Rng a(99), b(99);
    Rng fa = a.fork("x");
    Rng fb = b.fork("x");
    EXPECT_EQ(fa.next(), fb.next());

    Rng c(99);
    Rng fc = c.fork("y");
    Rng fd = Rng(99).fork("x");
    EXPECT_NE(fc.next(), fd.next());
}

TEST(Rng, HashLabelStable)
{
    EXPECT_EQ(hashLabel("abc"), hashLabel("abc"));
    EXPECT_NE(hashLabel("abc"), hashLabel("abd"));
    EXPECT_NE(hashLabel(""), hashLabel("a"));
}

} // namespace
} // namespace dora
