/**
 * @file
 * Unit tests for the text-table / CSV emitter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace dora
{
namespace
{

TEST(FormatFixed, Precision)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(3.0, 0), "3");
    EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

TEST(TextTable, AlignedOutputContainsAllCells)
{
    TextTable t({"name", "value"});
    t.beginRow();
    t.add("alpha");
    t.add(1.25, 2);
    t.beginRow();
    t.add("b");
    t.add(int64_t{42});

    std::ostringstream out;
    t.print(out);
    const std::string s = out.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.25"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, CsvEscapesCommasAndQuotes)
{
    TextTable t({"a", "b"});
    t.beginRow();
    t.add("x,y");
    t.add("say \"hi\"");
    std::ostringstream out;
    t.printCsv(out);
    EXPECT_NE(out.str().find("\"x,y\""), std::string::npos);
    EXPECT_NE(out.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvHeaderFirst)
{
    TextTable t({"h1", "h2"});
    t.beginRow();
    t.add("v1");
    t.add("v2");
    std::ostringstream out;
    t.printCsv(out);
    EXPECT_EQ(out.str().rfind("h1,h2\n", 0), 0u);
}

TEST(TextTable, ShortRowPadsOnPrint)
{
    TextTable t({"a", "b", "c"});
    t.beginRow();
    t.add("only");
    std::ostringstream out;
    t.print(out);  // must not crash; missing cells blank
    EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(TextTable, WriteCsvFailsOnBadPath)
{
    TextTable t({"a"});
    EXPECT_FALSE(t.writeCsv("/nonexistent-dir-xyz/file.csv"));
}

TEST(PrintBanner, ContainsTitle)
{
    std::ostringstream out;
    printBanner(out, "Fig. 1");
    EXPECT_NE(out.str().find("== Fig. 1 =="), std::string::npos);
}

} // namespace
} // namespace dora
