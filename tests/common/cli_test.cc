/**
 * @file
 * Tests for the shared CLI/env parsing helpers (common/cli.hh) and
 * the silent-misconfiguration regressions they fix:
 *
 *  - a trailing flag with a missing value (`bench --lanes`) used to be
 *    silently ignored by the --lanes/--jobs/--trace parsers; it must
 *    now exit fatally with a diagnostic naming the flag;
 *  - an empty-but-set environment variable (`export DORA_LANES=`) used
 *    to behave exactly like an unset one; it must now warn (once,
 *    rate-limited) and then fall back.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/lanes.hh"
#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/trace.hh"

namespace dora
{
namespace
{

/** Owns argv storage so tests can write literal command lines. */
class Argv
{
  public:
    explicit Argv(std::initializer_list<const char *> args)
        : strings_(args.begin(), args.end())
    {
        for (auto &s : strings_)
            pointers_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(pointers_.size()); }
    char **argv() { return pointers_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> pointers_;
};

/** Scoped setenv/unsetenv that restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name)) {
            hadOld_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

TEST(CliFlagValue, AbsentFlagReturnsNullopt)
{
    Argv args({"bench", "--other", "7"});
    EXPECT_FALSE(
        cliFlagValue(args.argc(), args.argv(), "--lanes").has_value());
}

TEST(CliFlagValue, SeparatedAndInlineSpellings)
{
    Argv separated({"bench", "--lanes", "8"});
    EXPECT_EQ(cliFlagValue(separated.argc(), separated.argv(),
                           "--lanes"),
              "8");

    Argv inlined({"bench", "--lanes=16"});
    EXPECT_EQ(cliFlagValue(inlined.argc(), inlined.argv(), "--lanes"),
              "16");
}

TEST(CliFlagValue, LastOccurrenceWins)
{
    // Wrapper scripts append overrides, so later flags must shadow
    // earlier ones in both spellings.
    Argv args({"bench", "--lanes", "2", "--lanes=4", "--lanes", "6"});
    EXPECT_EQ(cliFlagValue(args.argc(), args.argv(), "--lanes"), "6");
}

TEST(CliFlagValue, PrefixIsNotAMatch)
{
    // --lanes must not swallow --lanes-foo (and vice versa).
    Argv args({"bench", "--lanes-foo", "3"});
    EXPECT_FALSE(
        cliFlagValue(args.argc(), args.argv(), "--lanes").has_value());
}

using CliDeath = ::testing::Test;

TEST(CliDeath, TrailingFlagWithoutValueIsFatal)
{
    Argv args({"bench", "--lanes"});
    EXPECT_EXIT(cliFlagValue(args.argc(), args.argv(), "--lanes"),
                ::testing::ExitedWithCode(1), "--lanes: missing value");
}

// The three historical offenders: each parser silently ignored a
// trailing flag before they were routed through cliFlagValue().

TEST(CliDeath, TrailingLanesFlagIsFatal)
{
    Argv args({"bench", "--lanes"});
    EXPECT_EXIT(laneCountFromArgs(args.argc(), args.argv()),
                ::testing::ExitedWithCode(1), "--lanes: missing value");
}

TEST(CliDeath, TrailingJobsFlagIsFatal)
{
    Argv args({"bench", "--jobs"});
    EXPECT_EXIT(jobCountFromArgs(args.argc(), args.argv()),
                ::testing::ExitedWithCode(1), "--jobs: missing value");
}

TEST(CliDeath, TrailingTraceFlagIsFatal)
{
    Argv args({"bench", "--trace"});
    EXPECT_EXIT(ObsGuard(args.argc(), args.argv()),
                ::testing::ExitedWithCode(1), "--trace: missing value");
}

TEST(CliDeath, MalformedIntIsFatal)
{
    EXPECT_EXIT(cliParseInt("4x", "--lanes", 1, 4096),
                ::testing::ExitedWithCode(1), "--lanes");
    EXPECT_EXIT(cliParseInt("", "--jobs", 1, 1024),
                ::testing::ExitedWithCode(1), "--jobs");
}

TEST(CliDeath, OutOfRangeIntIsFatal)
{
    EXPECT_EXIT(cliParseInt("0", "--lanes", 1, 4096),
                ::testing::ExitedWithCode(1), "--lanes");
    EXPECT_EXIT(cliParseInt("5000", "--lanes", 1, 4096),
                ::testing::ExitedWithCode(1), "--lanes");
}

TEST(CliDeath, MalformedDoubleIsFatal)
{
    EXPECT_EXIT(cliParseDouble("fast", "--fleet-fault-incidence", 0.0,
                               1.0),
                ::testing::ExitedWithCode(1), "--fleet-fault-incidence");
    EXPECT_EXIT(cliParseDouble("1.5", "--fleet-fault-incidence", 0.0,
                               1.0),
                ::testing::ExitedWithCode(1), "--fleet-fault-incidence");
}

TEST(CliParse, AcceptsValuesInsideRange)
{
    EXPECT_EQ(cliParseInt("8", "--lanes", 1, 4096), 8);
    EXPECT_EQ(cliParseInt("1", "--jobs", 1, 1024), 1);
    EXPECT_DOUBLE_EQ(cliParseDouble("0.25", "--x", 0.0, 1.0), 0.25);
}

TEST(EnvNonEmpty, SetValuePassesThrough)
{
    ScopedEnv env("DORA_CLI_TEST_VAR", "17");
    const char *value = envNonEmpty("DORA_CLI_TEST_VAR");
    ASSERT_NE(value, nullptr);
    EXPECT_STREQ(value, "17");
}

TEST(EnvNonEmpty, UnsetReturnsNullWithoutWarning)
{
    ScopedEnv env("DORA_CLI_TEST_VAR", nullptr);
    resetWarnSuppression();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(envNonEmpty("DORA_CLI_TEST_VAR"), nullptr);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(EnvNonEmpty, EmptyButSetWarnsAndFallsBack)
{
    ScopedEnv env("DORA_CLI_TEST_VAR", "");
    resetWarnSuppression();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(envNonEmpty("DORA_CLI_TEST_VAR"), nullptr);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("DORA_CLI_TEST_VAR"), std::string::npos) << err;
    EXPECT_NE(err.find("empty"), std::string::npos) << err;
}

TEST(EnvNonEmpty, EmptyWarningIsRateLimited)
{
    ScopedEnv env("DORA_CLI_TEST_VAR", "");
    resetWarnSuppression();
    ::testing::internal::CaptureStderr();
    for (uint64_t i = 0; i < warnEmitLimit() + 10; ++i)
        EXPECT_EQ(envNonEmpty("DORA_CLI_TEST_VAR"), nullptr);
    const std::string err = ::testing::internal::GetCapturedStderr();
    size_t lines = 0;
    for (char c : err)
        lines += (c == '\n');
    // The sink prints warnEmitLimit() warnings plus one final
    // "suppressing further repeats" notice.
    EXPECT_LE(lines, warnEmitLimit() + 1);
    EXPECT_GE(warnSuppressedTotal(), 10u);
    resetWarnSuppression();
}

TEST(EnvNonEmpty, EmptyLanesVarFallsBackToOneLane)
{
    // End-to-end: `export DORA_LANES=` must behave like unset (one
    // lane), not crash, not pick a stale value.
    ScopedEnv env("DORA_LANES", "");
    resetWarnSuppression();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(defaultLaneCount(), 1u);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("DORA_LANES"), std::string::npos) << err;
    resetWarnSuppression();
}

TEST(EnvNonEmpty, EmptyJobsVarFallsBackToHardware)
{
    ScopedEnv env("DORA_JOBS", "");
    resetWarnSuppression();
    ::testing::internal::CaptureStderr();
    EXPECT_GE(defaultJobCount(), 1u);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("DORA_JOBS"), std::string::npos) << err;
    resetWarnSuppression();
}

} // namespace
} // namespace dora
