/**
 * @file
 * Harness utilities plus the end-to-end integration test: train a
 * reduced model bundle against the simulator, then drive DORA and
 * verify the paper's qualitative claims on live workloads.
 */

#include <gtest/gtest.h>

#include <memory>

#include "browser/page_corpus.hh"
#include "dora/trainer.hh"
#include "harness/comparison.hh"

namespace dora
{
namespace
{

ComparisonRecord
fabricatedRecord(double base_ppw, double dora_ppw, bool dora_meets,
                 bool dora_censored = false,
                 bool base_censored = false)
{
    ComparisonRecord r;
    RunMeasurement base;
    base.ppw = base_censored ? 0.0 : base_ppw;
    base.meetsDeadline = !base_censored;
    base.censored = base_censored;
    RunMeasurement dora;
    dora.ppw = dora_censored ? 0.0 : dora_ppw;
    dora.meetsDeadline = dora_meets;
    dora.censored = dora_censored;
    r.setMeasurement("interactive", base);
    r.setMeasurement("DORA", dora);
    return r;
}

TEST(GovernorRegistry, DenseIdsRoundTrip)
{
    ASSERT_GE(governorCount(), 5u);
    EXPECT_EQ(governorIndex("interactive"), 0u);
    for (size_t i = 0; i < governorCount(); ++i)
        EXPECT_EQ(governorIndex(governorName(i)), i);
}

TEST(ComparisonRecord, FlatStorageTracksPresence)
{
    ComparisonRecord r;
    EXPECT_FALSE(r.hasMeasurement(governorIndex("DORA")));
    RunMeasurement m;
    m.ppw = 0.5;
    r.setMeasurement("DORA", m);
    EXPECT_TRUE(r.hasMeasurement(governorIndex("DORA")));
    EXPECT_FALSE(r.hasMeasurement(governorIndex("EE")));
    EXPECT_DOUBLE_EQ(r.measurement("DORA").ppw, 0.5);
    // Overwrites keep a single slot per governor.
    m.ppw = 0.75;
    r.setMeasurement(governorIndex("DORA"), m);
    EXPECT_DOUBLE_EQ(r.measurement("DORA").ppw, 0.75);
}

TEST(ComparisonRecord, NormalizesAgainstInteractive)
{
    const auto r = fabricatedRecord(0.2, 0.25, true);
    EXPECT_DOUBLE_EQ(r.normalizedPpw("interactive"), 1.0);
    EXPECT_DOUBLE_EQ(r.normalizedPpw("DORA"), 1.25);
}

TEST(HarnessStats, MeanAndMeetRate)
{
    std::vector<ComparisonRecord> records;
    records.push_back(fabricatedRecord(0.2, 0.22, true));
    records.push_back(fabricatedRecord(0.2, 0.26, true));
    records.push_back(fabricatedRecord(0.2, 0.20, false));
    EXPECT_NEAR(meanNormalizedPpw(records, "DORA"), 1.1333, 1e-3);
    EXPECT_NEAR(deadlineMeetRate(records, "DORA"), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(deadlineMeetRate(records, "interactive"), 1.0);
}

TEST(HarnessStats, EmptyRecordsAreZero)
{
    EXPECT_DOUBLE_EQ(meanNormalizedPpw({}, "DORA"), 0.0);
    EXPECT_DOUBLE_EQ(deadlineMeetRate({}, "DORA"), 0.0);
}

TEST(HarnessStats, CensoredRunsAreCountedNotAveraged)
{
    // Two clean records averaging 1.2, one record whose DORA run is
    // censored (PPW 0 — a flag, not a score), one whose interactive
    // baseline is censored (no denominator exists). Both censored
    // records must leave the mean untouched and show up in the count.
    std::vector<ComparisonRecord> records;
    records.push_back(fabricatedRecord(0.2, 0.22, true));
    records.push_back(fabricatedRecord(0.2, 0.26, true));
    records.push_back(fabricatedRecord(0.2, 0.0, false,
                                       /*dora_censored=*/true));
    records.push_back(fabricatedRecord(0.2, 0.24, true,
                                       /*dora_censored=*/false,
                                       /*base_censored=*/true));
    EXPECT_NEAR(meanNormalizedPpw(records, "DORA"), 1.2, 1e-12);
    EXPECT_EQ(censoredCount(records, "DORA"), 2u);
    // A censored DORA run provably missed the deadline, so the meet
    // rate keeps the full denominator: 3 of 4.
    EXPECT_NEAR(deadlineMeetRate(records, "DORA"), 3.0 / 4.0, 1e-12);
}

TEST(HarnessStats, AllCensoredMeansZero)
{
    std::vector<ComparisonRecord> records;
    records.push_back(fabricatedRecord(0.2, 0.0, false, true));
    EXPECT_DOUBLE_EQ(meanNormalizedPpw(records, "DORA"), 0.0);
    EXPECT_EQ(censoredCount(records, "DORA"), 1u);
}

TEST(OfflineOpt, ShortSweepIsFatal)
{
    // A sweep shorter than the OPP table once returned a silent
    // default-constructed measurement; it must now fail loudly.
    ComparisonHarness harness(ExperimentConfig{}, nullptr, 1);
    std::vector<RunMeasurement> sweep(3);
    EXPECT_EXIT(harness.pickOfflineOpt(sweep),
                ::testing::ExitedWithCode(1),
                "pickOfflineOpt: sweep covers 3 OPPs");
}

TEST(OfflineOpt, PicksBestMeetingPpwOrFastestFallback)
{
    ComparisonHarness harness(ExperimentConfig{}, nullptr, 1);
    const size_t opps = harness.runner().freqTable().size();
    std::vector<RunMeasurement> sweep(opps);
    for (size_t f = 0; f < opps; ++f) {
        sweep[f].ppw = 1.0 + 0.1 * static_cast<double>(f);
        sweep[f].meetsDeadline = (f == 2 || f == 5);
    }
    const RunMeasurement best = harness.pickOfflineOpt(sweep);
    EXPECT_EQ(best.governor, "offline_opt");
    EXPECT_DOUBLE_EQ(best.ppw, 1.5);
    // No OPP meets the deadline -> flat-out fallback.
    for (auto &m : sweep)
        m.meetsDeadline = false;
    const RunMeasurement fallback = harness.pickOfflineOpt(sweep);
    EXPECT_DOUBLE_EQ(
        fallback.ppw,
        sweep[harness.runner().freqTable().maxIndex()].ppw);
}

TEST(ComparisonHarness, PaperGovernorList)
{
    const auto &names = ComparisonHarness::paperGovernors();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names.front(), "interactive");
    EXPECT_EQ(names.back(), "DORA");
}

/**
 * End-to-end integration: reduced-size training, then live DORA runs.
 * This is the complete paper pipeline (characterize -> fit -> govern)
 * compressed to a handful of workloads so it stays test-sized.
 */
class EndToEnd : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        TrainerConfig config;
        config.maxTrainingWorkloads = 18;
        config.trainingFreqIndices = {0, 1, 4, 7, 9, 11, 13};
        config.chamberAmbientsC = {15.0, 35.0, 55.0};
        Trainer trainer(config);
        bundle_ = std::make_shared<const ModelBundle>(trainer.train());
        report_ = trainer.report();
    }

    static std::shared_ptr<const ModelBundle> bundle_;
    static TrainingReport report_;
};

std::shared_ptr<const ModelBundle> EndToEnd::bundle_;
TrainingReport EndToEnd::report_;

TEST_F(EndToEnd, TrainingProducesReadyBundle)
{
    ASSERT_TRUE(bundle_->ready());
    EXPECT_TRUE(bundle_->leakageFitted);
    EXPECT_EQ(report_.numMeasurements, 18u * 7u);
    EXPECT_TRUE(report_.leakageConverged);
    EXPECT_LT(report_.leakageRmseW, 0.1);
    EXPECT_LT(report_.timeTrainMeanPctErr, 0.10);
    EXPECT_LT(report_.powerTrainMeanPctErr, 0.05);
}

TEST_F(EndToEnd, DoraMeetsFeasibleDeadline)
{
    ComparisonHarness harness(ExperimentConfig{}, bundle_);
    // amazon trains in the reduced set (first workloads are the
    // earliest corpus pages) — but DORA must work on any page; use a
    // mid-complexity one under medium interference.
    const auto w = WorkloadSets::combo(PageCorpus::byName("amazon"),
                                       MemIntensity::Medium);
    const RunMeasurement dora = harness.runOne(w, "DORA");
    EXPECT_TRUE(dora.pageFinished);
    EXPECT_TRUE(dora.meetsDeadline);
}

TEST_F(EndToEnd, DoraBeatsInteractiveOnEnergyEfficiency)
{
    ComparisonHarness harness(ExperimentConfig{}, bundle_);
    const auto w = WorkloadSets::combo(PageCorpus::byName("amazon"),
                                       MemIntensity::Medium);
    const RunMeasurement base = harness.runOne(w, "interactive");
    const RunMeasurement dora = harness.runOne(w, "DORA");
    EXPECT_GT(dora.ppw, 1.03 * base.ppw);
}

TEST_F(EndToEnd, DoraRunsFlatOutWhenDeadlineInfeasible)
{
    ComparisonHarness harness(ExperimentConfig{}, bundle_);
    const auto w = WorkloadSets::combo(
        PageCorpus::byName("aliexpress"), MemIntensity::High);
    const RunMeasurement dora = harness.runOne(w, "DORA");
    EXPECT_FALSE(dora.meetsDeadline);
    // Flat out: mean frequency pinned at (or next to) the top OPP.
    EXPECT_GT(dora.meanFreqMhz, 2100.0);
}

TEST_F(EndToEnd, EeViolatesDeadlineSomewhereDoraDoesNot)
{
    ComparisonHarness harness(ExperimentConfig{}, bundle_);
    const auto w = WorkloadSets::combo(PageCorpus::byName("espn"),
                                       MemIntensity::Medium);
    const RunMeasurement ee = harness.runOne(w, "EE");
    const RunMeasurement dora = harness.runOne(w, "DORA");
    EXPECT_FALSE(ee.meetsDeadline);
    EXPECT_TRUE(dora.meetsDeadline);
}

TEST_F(EndToEnd, OfflineOptIsNoWorseThanInteractive)
{
    ComparisonHarness harness(ExperimentConfig{}, bundle_);
    const auto w = WorkloadSets::combo(PageCorpus::byName("msn"),
                                       MemIntensity::Low);
    const RunMeasurement base = harness.runOne(w, "interactive");
    const RunMeasurement opt = harness.offlineOpt(w);
    EXPECT_GE(opt.ppw, 0.99 * base.ppw);
    EXPECT_TRUE(opt.meetsDeadline);
}

} // namespace
} // namespace dora
