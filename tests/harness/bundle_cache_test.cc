/**
 * @file
 * BundleCacheLock tests, including the stale-lock regression: a lock
 * holder that forks (the exec/proc tier does) and then dies leaves the
 * flock held by the inherited file description; acquisition must
 * detect the dead holder and break the lock instead of blocking
 * forever.
 */

#include "harness/bundle_cache.hh"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

namespace dora
{
namespace
{

class BundleCacheLockTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        cache_ = ::testing::TempDir() + "bundle_cache_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name();
        lockPath_ = cache_ + ".lock";
        std::remove(lockPath_.c_str());
    }

    void TearDown() override { std::remove(lockPath_.c_str()); }

    /** flock(LOCK_NB) verdict from an independent file description. */
    bool lockIsContended() const
    {
        const int fd =
            ::open(lockPath_.c_str(), O_RDWR | O_CLOEXEC, 0644);
        if (fd < 0)
            return false;
        const bool contended =
            ::flock(fd, LOCK_EX | LOCK_NB) != 0 && errno == EWOULDBLOCK;
        if (!contended)
            ::flock(fd, LOCK_UN);
        ::close(fd);
        return contended;
    }

    std::string cache_, lockPath_;
};

TEST_F(BundleCacheLockTest, AcquireRecordsHolderAndReleases)
{
    {
        BundleCacheLock lock(cache_);
        EXPECT_TRUE(lock.held());
        EXPECT_EQ(BundleCacheLock::readHolderPid(lockPath_),
                  static_cast<int>(::getpid()));
        EXPECT_TRUE(lockIsContended());
    }
    // Destructor released the lock: a fresh acquire succeeds at once.
    BundleCacheLock again(cache_);
    EXPECT_TRUE(again.held());
}

TEST_F(BundleCacheLockTest, StaleLockFromDeadHolderIsBroken)
{
    int pid_pipe[2];
    ASSERT_EQ(::pipe(pid_pipe), 0);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: take the lock, fork a grandchild that inherits the
        // flocked file description, then die without releasing. The
        // grandchild keeps the description open, so the flock stays
        // held on behalf of a pid that no longer exists — exactly
        // what a crashed bench with live proc-tier workers leaves
        // behind.
        ::close(pid_pipe[0]);
        BundleCacheLock lock(cache_);
        if (!lock.held())
            ::_exit(2);
        const pid_t grandchild = ::fork();
        if (grandchild < 0)
            ::_exit(3);
        if (grandchild == 0) {
            ::close(pid_pipe[1]);
            for (int i = 0; i < 300; ++i)
                ::usleep(100 * 1000);  // outlive the whole test
            ::_exit(0);
        }
        const ssize_t w =
            ::write(pid_pipe[1], &grandchild, sizeof(grandchild));
        ::_exit(w == sizeof(grandchild) ? 0 : 4);
    }

    ::close(pid_pipe[1]);
    pid_t grandchild = -1;
    ASSERT_EQ(::read(pid_pipe[0], &grandchild, sizeof(grandchild)),
              static_cast<ssize_t>(sizeof(grandchild)));
    ::close(pid_pipe[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "lock-holder child failed: status " << status;

    // The holder is dead, yet the lock is still held (grandchild's
    // inherited fd) and records the dead holder's pid.
    ASSERT_TRUE(lockIsContended());
    EXPECT_EQ(BundleCacheLock::readHolderPid(lockPath_),
              static_cast<int>(child));

    // Regression: without stale-lock recovery this blocked forever.
    BundleCacheLock lock(cache_);
    EXPECT_TRUE(lock.held());
    EXPECT_EQ(BundleCacheLock::readHolderPid(lockPath_),
              static_cast<int>(::getpid()));

    ::kill(grandchild, SIGKILL);
}

TEST_F(BundleCacheLockTest, WaitsForALiveHolder)
{
    // A live holder must NOT be broken: the second acquirer blocks
    // until release, then takes over.
    BundleCacheLock *first = new BundleCacheLock(cache_);
    ASSERT_TRUE(first->held());

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        delete first;  // releases the lock
    });
    // Same process but an independent file description: flock treats
    // it as a separate acquirer (descriptions, not processes, own
    // flock locks), and the recorded holder pid is alive, so this
    // waits for the release instead of breaking the lock.
    BundleCacheLock second(cache_);
    releaser.join();
    EXPECT_TRUE(second.held());
}

} // namespace
} // namespace dora
