/**
 * @file
 * End-to-end tolerance test: the default adaptive sampling + macro-tick
 * path must reproduce exact-ticks measurements within the documented
 * 1 % contract on a representative browser + co-runner workload.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "browser/page_corpus.hh"
#include "common/exact_ticks.hh"
#include "runner/experiment.hh"
#include "runner/workload.hh"
#include "workloads/kernel.hh"

namespace dora
{
namespace
{

/** Restore the process-wide default (adaptive) on scope exit. */
struct ModeGuard
{
    ~ModeGuard() { setExactTicksMode(false); }
};

double
relDelta(double exact, double adaptive)
{
    if (exact == 0.0)
        return adaptive == 0.0 ? 0.0 : 1.0;
    return std::abs(adaptive - exact) / std::abs(exact);
}

RunMeasurement
measure(const WorkloadSpec &workload, bool exact)
{
    setExactTicksMode(exact);
    ExperimentRunner runner;
    return runner.runAtFrequency(workload,
                                 runner.freqTable().maxIndex());
}

TEST(AdaptiveVsExact, PinnedFrequencyRunWithinOnePercent)
{
    ModeGuard guard;
    const WorkloadSpec workload = WorkloadSets::combo(
        PageCorpus::byName("amazon"), MemIntensity::Medium);
    const RunMeasurement e = measure(workload, true);
    const RunMeasurement a = measure(workload, false);

    EXPECT_EQ(e.censored, a.censored);
    EXPECT_EQ(e.meetsDeadline, a.meetsDeadline);
    EXPECT_EQ(e.pageFinished, a.pageFinished);
    ASSERT_FALSE(e.censored);
    EXPECT_LE(relDelta(e.loadTimeSec, a.loadTimeSec), 0.01)
        << "exact " << e.loadTimeSec << " s vs adaptive "
        << a.loadTimeSec << " s";
    EXPECT_LE(relDelta(e.ppw, a.ppw), 0.01)
        << "exact " << e.ppw << " vs adaptive " << a.ppw;
    EXPECT_LE(relDelta(e.energyJ, a.energyJ), 0.01);
}

TEST(AdaptiveVsExact, KernelOnlyMpkiStaysInBand)
{
    ModeGuard guard;
    const WorkloadSpec workload =
        WorkloadSets::kernelOnly(KernelCatalog::byName("bfs"));
    const RunMeasurement e = measure(workload, true);
    const RunMeasurement a = measure(workload, false);
    // MPKI drives the paper's Low/Medium/High classification; the
    // adaptive path may not move a kernel across a band edge.
    EXPECT_EQ(classifyMpki(e.meanL2Mpki), classifyMpki(a.meanL2Mpki))
        << "exact " << e.meanL2Mpki << " vs adaptive " << a.meanL2Mpki;
    EXPECT_LE(relDelta(e.ppw, a.ppw), 0.01);
}

} // namespace
} // namespace dora
