/**
 * @file
 * Tests for the run observability extensions: decision traces,
 * per-OPP frequency residency, power breakdown means, and the
 * custom-co-runner entry point.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "browser/page_corpus.hh"
#include "runner/experiment.hh"
#include "workloads/phased_corun_task.hh"

namespace dora
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    ExperimentRunner runner_;
};

TEST_F(TraceTest, ResidencySumsToWindow)
{
    const auto w = WorkloadSets::combo(PageCorpus::byName("amazon"),
                                       MemIntensity::Medium);
    InteractiveGovernor g;
    const RunMeasurement m = runner_.run(w, g);
    ASSERT_EQ(m.freqResidencySec.size(), runner_.freqTable().size());
    const double total = std::accumulate(m.freqResidencySec.begin(),
                                         m.freqResidencySec.end(), 0.0);
    EXPECT_NEAR(total, m.loadTimeSec, 2.0 * runner_.config().dtSec);
}

TEST_F(TraceTest, FixedRunResidesAtOneOpp)
{
    const auto w = WorkloadSets::combo(PageCorpus::byName("alipay"),
                                       MemIntensity::Low);
    const RunMeasurement m = runner_.runAtFrequency(w, 5);
    for (size_t f = 0; f < m.freqResidencySec.size(); ++f) {
        if (f == 5)
            EXPECT_GT(m.freqResidencySec[f], 0.0);
        else
            EXPECT_DOUBLE_EQ(m.freqResidencySec[f], 0.0);
    }
}

TEST_F(TraceTest, DecisionsCoverTheWindowAtTheInterval)
{
    const auto w = WorkloadSets::combo(PageCorpus::byName("amazon"),
                                       MemIntensity::Medium);
    InteractiveGovernor g;
    const RunMeasurement m = runner_.run(w, g);
    ASSERT_FALSE(m.decisions.empty());
    // Window decisions only, ordered, spaced by >= the interval.
    for (size_t i = 1; i < m.decisions.size(); ++i) {
        EXPECT_GT(m.decisions[i].tSec, m.decisions[i - 1].tSec);
        EXPECT_GE(m.decisions[i].tSec - m.decisions[i - 1].tSec,
                  g.decisionIntervalSec() - 1e-9);
    }
    const double expected = m.loadTimeSec / g.decisionIntervalSec();
    EXPECT_NEAR(static_cast<double>(m.decisions.size()), expected,
                expected * 0.25 + 2.0);
}

TEST_F(TraceTest, BreakdownMeansSumToMeanPower)
{
    const auto w = WorkloadSets::combo(PageCorpus::byName("amazon"),
                                       MemIntensity::High);
    const RunMeasurement m = runner_.runAtFrequency(w, 10);
    EXPECT_NEAR(m.meanBreakdown.total(), m.meanPowerW,
                0.02 * m.meanPowerW);
    EXPECT_GT(m.meanBreakdown.baseline, 1.0);
    EXPECT_GT(m.meanBreakdown.coreDynamic, 0.1);
    EXPECT_GT(m.meanBreakdown.leakage, 0.05);
    EXPECT_GT(m.meanBreakdown.dram, 0.01);
}

TEST_F(TraceTest, CustomCorunTaskDrivesInterference)
{
    const WebPage &page = PageCorpus::byName("reddit");
    // Phase flip mid-load: the second half must push MPKI up.
    std::vector<CorunPhase> schedule = {
        {&KernelCatalog::byName("kmeans"),
         runner_.config().warmupSec + 0.4},
        {&KernelCatalog::byName("backprop"), 0.0},
    };
    PhasedCorunTask corun(schedule, 9);
    FixedGovernor g(runner_.freqTable().maxIndex());
    const RunMeasurement m = runner_.runCustom(
        &page, &corun, "reddit+phased", g,
        runner_.freqTable().maxIndex());
    EXPECT_TRUE(m.pageFinished);

    // MPKI seen by early decisions is low; late decisions see the
    // high-intensity kernel.
    ASSERT_GE(m.decisions.size(), 6u);
    const auto &first = m.decisions[1];  // skip the t=load-start edge
    const auto &last = m.decisions.back();
    EXPECT_GT(last.l2Mpki, first.l2Mpki + 3.0);
}

TEST_F(TraceTest, PageAloneViaCustomEntryPoint)
{
    const WebPage &page = PageCorpus::byName("alipay");
    FixedGovernor g(runner_.freqTable().maxIndex());
    const RunMeasurement m = runner_.runCustom(
        &page, nullptr, "alipay+alone", g,
        runner_.freqTable().maxIndex());
    EXPECT_TRUE(m.pageFinished);
    EXPECT_DOUBLE_EQ(m.meanCorunUtil, 0.0);  // core 2 stayed idle
}

} // namespace
} // namespace dora
