/**
 * @file
 * Tests for the workload sets and the ExperimentRunner measurement
 * protocol.
 */

#include <gtest/gtest.h>

#include <set>

#include "browser/page_corpus.hh"
#include "runner/experiment.hh"
#include "runner/workload.hh"

namespace dora
{
namespace
{

TEST(WorkloadSets, FiftyFourPaperCombinations)
{
    const auto all = WorkloadSets::paperCombinations();
    EXPECT_EQ(all.size(), 54u);  // 18 pages x 3 intensity classes
    for (const auto &w : all) {
        ASSERT_NE(w.page, nullptr);
        ASSERT_NE(w.kernel, nullptr);
    }
}

TEST(WorkloadSets, InclusiveNeutralSplit)
{
    EXPECT_EQ(WorkloadSets::webpageInclusive().size(), 42u);
    EXPECT_EQ(WorkloadSets::webpageNeutral().size(), 12u);
}

TEST(WorkloadSets, EachPageGetsOneKernelPerClass)
{
    for (const auto &page : PageCorpus::all()) {
        std::set<MemIntensity> classes;
        for (const auto &w : WorkloadSets::paperCombinations())
            if (w.page == &page)
                classes.insert(w.kernel->expectedClass);
        EXPECT_EQ(classes.size(), 3u) << page.name;
    }
}

TEST(WorkloadSets, RotationCoversMultipleKernels)
{
    std::set<std::string> used;
    for (const auto &w : WorkloadSets::paperCombinations())
        used.insert(w.kernel->name);
    // The hash rotation should pull in most of the 9 kernels.
    EXPECT_GE(used.size(), 6u);
}

TEST(WorkloadSets, LabelsAreDescriptive)
{
    const auto w =
        WorkloadSets::combo(PageCorpus::byName("amazon"),
                            MemIntensity::High);
    EXPECT_NE(w.label().find("amazon+"), std::string::npos);
    EXPECT_EQ(WorkloadSets::alone(PageCorpus::byName("msn")).label(),
              "msn+alone");
}

TEST(WorkloadSets, ComboIsDeterministic)
{
    const auto a =
        WorkloadSets::combo(PageCorpus::byName("cnn"),
                            MemIntensity::Medium);
    const auto b =
        WorkloadSets::combo(PageCorpus::byName("cnn"),
                            MemIntensity::Medium);
    EXPECT_EQ(a.kernel, b.kernel);
}

class RunnerTest : public ::testing::Test
{
  protected:
    ExperimentRunner runner_;
};

TEST_F(RunnerTest, FixedFrequencyRunProducesFullMeasurement)
{
    const auto w = WorkloadSets::combo(PageCorpus::byName("alipay"),
                                       MemIntensity::Low);
    const RunMeasurement m =
        runner_.runAtFrequency(w, runner_.freqTable().maxIndex());
    EXPECT_TRUE(m.pageFinished);
    EXPECT_TRUE(m.meetsDeadline);
    EXPECT_GT(m.loadTimeSec, 0.05);
    EXPECT_GT(m.meanPowerW, 1.0);
    EXPECT_GT(m.energyJ, 0.0);
    EXPECT_NEAR(m.ppw, 1.0 / (m.loadTimeSec * m.meanPowerW), 1e-9);
    EXPECT_GT(m.meanTempC, runner_.config().ambientC);
    EXPECT_NEAR(m.meanFreqMhz, 2265.6, 1.0);
    EXPECT_EQ(m.governor, "fixed");
}

TEST_F(RunnerTest, RunsAreDeterministic)
{
    const auto w = WorkloadSets::combo(PageCorpus::byName("alipay"),
                                       MemIntensity::Medium);
    const RunMeasurement a = runner_.runAtFrequency(w, 10);
    const RunMeasurement b = runner_.runAtFrequency(w, 10);
    EXPECT_DOUBLE_EQ(a.loadTimeSec, b.loadTimeSec);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_DOUBLE_EQ(a.meanL2Mpki, b.meanL2Mpki);
}

TEST_F(RunnerTest, InterferenceShowsUpInMeasurements)
{
    const WebPage &page = PageCorpus::byName("reddit");
    const RunMeasurement alone = runner_.runAtFrequency(
        WorkloadSets::alone(page), runner_.freqTable().maxIndex());
    const RunMeasurement high = runner_.runAtFrequency(
        WorkloadSets::combo(page, MemIntensity::High),
        runner_.freqTable().maxIndex());
    EXPECT_GT(high.loadTimeSec, 1.05 * alone.loadTimeSec);
    EXPECT_GT(high.meanL2Mpki, alone.meanL2Mpki + 1.0);
    EXPECT_GT(high.meanCorunUtil, 0.5);
    EXPECT_LT(alone.meanCorunUtil, 0.05);
}

TEST_F(RunnerTest, DeadlineFlagRespectsConfig)
{
    const auto w = WorkloadSets::combo(
        PageCorpus::byName("aliexpress"), MemIntensity::High);
    ExperimentConfig config;
    config.deadlineSec = 3.0;
    ExperimentRunner strict(config);
    const RunMeasurement m =
        strict.runAtFrequency(w, strict.freqTable().maxIndex());
    EXPECT_TRUE(m.pageFinished);
    EXPECT_FALSE(m.meetsDeadline);  // aliexpress+high misses 3 s
}

TEST_F(RunnerTest, UnfinishedPageIsCensoredWithZeroPpw)
{
    // A load wall far shorter than any real load time: the page
    // cannot finish, so the measurement is censored — loadTimeSec is
    // the window (a lower bound), PPW is the 0 flag, and the deadline
    // provably cannot have been met.
    const auto w = WorkloadSets::combo(PageCorpus::byName("espn"),
                                       MemIntensity::High);
    ExperimentConfig config;
    config.maxLoadSec = 0.05;
    ExperimentRunner walled(config);
    const RunMeasurement m =
        walled.runAtFrequency(w, walled.freqTable().maxIndex());
    EXPECT_FALSE(m.pageFinished);
    EXPECT_TRUE(m.censored);
    EXPECT_DOUBLE_EQ(m.ppw, 0.0);
    EXPECT_NEAR(m.loadTimeSec, config.maxLoadSec,
                2.0 * config.dtSec);
    EXPECT_FALSE(m.meetsDeadline);
    EXPECT_GT(m.meanPowerW, 0.0);  // energy was still spent
    // The censored flag is part of the measurement identity.
    RunMeasurement uncensored = m;
    uncensored.censored = false;
    EXPECT_NE(runMeasurementDigest(m),
              runMeasurementDigest(uncensored));
}

TEST_F(RunnerTest, KernelOnlyRunIsNotCensored)
{
    // No page means nothing to censor: the fixed measurement window
    // ending with pageFinished == false is the intended design.
    const auto w = WorkloadSets::kernelOnly(
        KernelCatalog::byName("backprop"));
    const RunMeasurement m =
        runner_.runAtFrequency(w, runner_.freqTable().maxIndex());
    EXPECT_FALSE(m.pageFinished);
    EXPECT_FALSE(m.censored);
    EXPECT_GT(m.ppw, 0.0);
}

TEST_F(RunnerTest, GovernorSwitchesAreCounted)
{
    const auto w = WorkloadSets::combo(PageCorpus::byName("amazon"),
                                       MemIntensity::Medium);
    InteractiveGovernor g;
    const RunMeasurement m = runner_.run(w, g);
    EXPECT_GT(m.freqSwitches, 0u);
    EXPECT_EQ(m.governor, "interactive");
}

TEST_F(RunnerTest, KernelOnlyRunUsesMeasureWindow)
{
    const auto w = WorkloadSets::kernelOnly(
        KernelCatalog::byName("backprop"));
    const RunMeasurement m =
        runner_.runAtFrequency(w, runner_.freqTable().maxIndex());
    EXPECT_FALSE(m.pageFinished);
    EXPECT_NEAR(m.loadTimeSec, runner_.config().measureSec,
                2.0 * runner_.config().dtSec);
    EXPECT_GT(m.meanL2Mpki, 7.0);
}

TEST_F(RunnerTest, IdleCharacterizationSpansConditions)
{
    const auto samples =
        runner_.idleCharacterization({15.0, 45.0}, 0.5, 0.3);
    EXPECT_GE(samples.size(), 28u);  // >= one per ambient x OPP
    double min_v = 1e9, max_v = 0.0, min_t = 1e9, max_t = 0.0;
    for (const auto &s : samples) {
        min_v = std::min(min_v, s.voltage);
        max_v = std::max(max_v, s.voltage);
        min_t = std::min(min_t, s.tempC);
        max_t = std::max(max_t, s.tempC);
        EXPECT_GT(s.powerW, 1.0);  // baseline is always there
    }
    EXPECT_LT(min_v, 0.82);
    EXPECT_GT(max_v, 1.0);
    EXPECT_GT(max_t - min_t, 20.0);  // ambient sweep visible
}

} // namespace
} // namespace dora
