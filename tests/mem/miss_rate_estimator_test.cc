/**
 * @file
 * Unit tests for the adaptive miss-rate reuse layer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "mem/address_stream.hh"
#include "mem/miss_rate_estimator.hh"

namespace dora
{
namespace
{

/** A stream whose warm-up floor is met by the first walk. */
AddressStreamSpec
tinySpec()
{
    AddressStreamSpec spec;
    spec.workingSetBytes = 64 * 64;  // 64 lines
    return spec;
}

MissRateEstimatorConfig
fastConfig()
{
    MissRateEstimatorConfig config;
    config.refreshTicks = 8;
    config.convergeTicks = 2;
    config.maxEntries = 4;
    return config;
}

std::vector<MemSampleRequest>
requestFor(AddressStream &stream, uint32_t samples = 512)
{
    MemSampleRequest req;
    req.core = 0;
    req.stream = &stream;
    req.samples = samples;
    return {req};
}

std::vector<MemSampleResult>
resultsWith(double l1, double l2, uint32_t samples = 512)
{
    MemSampleResult r;
    r.core = 0;
    r.l1MissRate = l1;
    r.l2LocalMissRate = l2;
    r.samplesIssued = samples;
    return {r};
}

/** Feed identical walk results until the estimator starts reusing. */
int
driveToConvergence(MissRateEstimator &est, AddressStream &stream,
                   double l1 = 0.3, double l2 = 0.2, int limit = 64)
{
    int walks = 0;
    for (int i = 0; i < limit; ++i) {
        if (!est.beginTick(requestFor(stream), 0, 8))
            return walks;
        est.store(resultsWith(l1, l2));
        ++walks;
    }
    return -1;  // never converged
}

TEST(MissRateEstimator, DisabledAlwaysWalks)
{
    MissRateEstimatorConfig config = fastConfig();
    config.enabled = false;
    MissRateEstimator est(config, false);
    AddressStream stream(tinySpec(), 0, Rng(1));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(est.beginTick(requestFor(stream), 0, 8));
    EXPECT_EQ(est.reusedTicks(), 0u);
}

TEST(MissRateEstimator, ForceDisabledOverridesConfig)
{
    MissRateEstimator est(fastConfig(), /*force_disabled=*/true);
    EXPECT_FALSE(est.enabled());
    AddressStream stream(tinySpec(), 0, Rng(2));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(est.beginTick(requestFor(stream), 0, 8));
}

TEST(MissRateEstimator, ConvergesThenServesCachedRates)
{
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(tinySpec(), 0, Rng(3));
    const int walks = driveToConvergence(est, stream, 0.37, 0.11);
    ASSERT_GT(walks, 0);
    std::vector<MemSampleResult> served;
    est.fill(served);
    ASSERT_EQ(served.size(), 1u);
    EXPECT_DOUBLE_EQ(served[0].l1MissRate, 0.37);
    EXPECT_DOUBLE_EQ(served[0].l2LocalMissRate, 0.11);
    EXPECT_GT(est.reusedTicks(), 0u);
}

TEST(MissRateEstimator, RefreshWalksEveryRefreshTicks)
{
    MissRateEstimatorConfig config = fastConfig();
    MissRateEstimator est(config, false);
    AddressStream stream(tinySpec(), 0, Rng(4));
    ASSERT_GT(driveToConvergence(est, stream), 0);
    // driveToConvergence consumed the first reused tick; count the
    // rest until the next requested walk: the refresh cadence.
    int reuses = 1;
    for (int i = 0; i < 100; ++i) {
        if (est.beginTick(requestFor(stream), 0, 8)) {
            est.store(resultsWith(0.3, 0.2));
            break;
        }
        ++reuses;
    }
    EXPECT_EQ(reuses, static_cast<int>(config.refreshTicks));
}

TEST(MissRateEstimator, OppChangeStartsNewPhase)
{
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(tinySpec(), 0, Rng(5));
    ASSERT_GT(driveToConvergence(est, stream), 0);
    // New OPP index -> unknown signature -> walk.
    EXPECT_TRUE(est.beginTick(requestFor(stream), 1, 8));
    est.store(resultsWith(0.3, 0.2));
    EXPECT_EQ(est.cachedPhases(), 2u);
    // Returning to the old OPP: the phase is cached but dormant, so a
    // re-validation walk is required before reuse resumes.
    EXPECT_TRUE(est.beginTick(requestFor(stream), 0, 8));
}

TEST(MissRateEstimator, OppSiblingSeedsInstantConvergence)
{
    // A converged phase that reappears under a new OPP index with
    // agreeing rates must converge off the sibling in ONE walk — the
    // whole point of seeding (a DVFS decision does not cool caches).
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(tinySpec(), 0, Rng(12));
    ASSERT_GT(driveToConvergence(est, stream, 0.30, 0.20), 0);
    ASSERT_TRUE(est.beginTick(requestFor(stream), 1, 8));
    est.store(resultsWith(0.30, 0.20));
    EXPECT_EQ(est.seededPhases(), 1u);
    // Seeded entry serves reuse on the very next tick.
    EXPECT_FALSE(est.beginTick(requestFor(stream), 1, 8));
}

TEST(MissRateEstimator, OppSiblingDisagreementFallsBackToDense)
{
    // Rates far outside the sibling's noise: seeding must NOT adopt
    // them — the new phase takes the ordinary dense-sampling ladder.
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(tinySpec(), 0, Rng(13));
    ASSERT_GT(driveToConvergence(est, stream, 0.30, 0.20), 0);
    ASSERT_TRUE(est.beginTick(requestFor(stream), 1, 8));
    est.store(resultsWith(0.80, 0.70));
    EXPECT_EQ(est.seededPhases(), 0u);
    // Unconverged: the next tick must still walk.
    EXPECT_TRUE(est.beginTick(requestFor(stream), 1, 8));
}

TEST(MissRateEstimator, ColdStreamNeverSeedsFromSibling)
{
    // The warm-up floor gates seeding exactly like ordinary
    // convergence: a still-cold stream under a new OPP keeps walking
    // even when its early rates happen to match the sibling's.
    AddressStreamSpec big;
    big.workingSetBytes = 32ull << 20;  // far beyond a few walks
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(big, 0, Rng(14));
    ASSERT_TRUE(est.beginTick(requestFor(stream, 128), 0, 8));
    est.store(resultsWith(0.5, 0.5, 128));
    // Force-converge the opp-0 entry is impossible while cold, so
    // fabricate the sibling scenario via a second cold install: no
    // seed may fire in either direction.
    ASSERT_TRUE(est.beginTick(requestFor(stream, 128), 1, 8));
    est.store(resultsWith(0.5, 0.5, 128));
    EXPECT_EQ(est.seededPhases(), 0u);
    EXPECT_TRUE(est.beginTick(requestFor(stream, 128), 1, 8));
}

TEST(MissRateEstimator, ReshapeStartsNewPhase)
{
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(tinySpec(), 0, Rng(6));
    ASSERT_GT(driveToConvergence(est, stream), 0);
    stream.reshape(tinySpec());  // bumps generation, same shape
    EXPECT_TRUE(est.beginTick(requestFor(stream), 0, 8));
}

TEST(MissRateEstimator, InvalidateDropsAllPhases)
{
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(tinySpec(), 0, Rng(7));
    ASSERT_GT(driveToConvergence(est, stream), 0);
    est.invalidate();
    EXPECT_EQ(est.cachedPhases(), 0u);
    EXPECT_EQ(est.invalidations(), 1u);
    EXPECT_TRUE(est.beginTick(requestFor(stream), 0, 8));
}

TEST(MissRateEstimator, RevalidationDemotesDriftedPhase)
{
    MissRateEstimatorConfig config = fastConfig();
    MissRateEstimator est(config, false);
    AddressStream stream(tinySpec(), 0, Rng(8));
    ASSERT_GT(driveToConvergence(est, stream, 0.30, 0.20), 0);
    // Reuse until the refresh walk, then answer it with rates far
    // outside the sampling noise of the cached ones.
    for (int i = 0; i < 100; ++i) {
        if (est.beginTick(requestFor(stream), 0, 8)) {
            est.store(resultsWith(0.80, 0.70));
            break;
        }
    }
    EXPECT_EQ(est.demotions(), 1u);
    // Demoted: back to dense sampling until re-converged.
    EXPECT_TRUE(est.beginTick(requestFor(stream), 0, 8));
}

TEST(MissRateEstimator, EntriesBoundedByLru)
{
    MissRateEstimatorConfig config = fastConfig();
    config.maxEntries = 2;
    MissRateEstimator est(config, false);
    AddressStream stream(tinySpec(), 0, Rng(9));
    for (uint64_t opp = 0; opp < 5; ++opp) {
        ASSERT_TRUE(est.beginTick(requestFor(stream), opp, 8));
        est.store(resultsWith(0.3, 0.2));
        EXPECT_LE(est.cachedPhases(), 2u);
    }
}

TEST(MissRateEstimator, ColdLargeStreamKeepsWalking)
{
    // A working set far larger than the warm-up floor can cover in a
    // few ticks: identical checkpoint results must NOT freeze the
    // phase while the modeled caches are still filling.
    AddressStreamSpec big;
    big.workingSetBytes = 32ull << 20;  // 524288 lines >> L2
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(big, 0, Rng(10));
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(est.beginTick(requestFor(stream, 128), 0, 8))
            << "froze a cold phase at tick " << i;
        est.store(resultsWith(0.5, 0.5, 128));
    }
    EXPECT_EQ(est.reusedTicks(), 0u);
}

TEST(MissRateEstimator, ResetClearsStateAndCounters)
{
    MissRateEstimator est(fastConfig(), false);
    AddressStream stream(tinySpec(), 0, Rng(11));
    ASSERT_GT(driveToConvergence(est, stream), 0);
    est.reset();
    EXPECT_EQ(est.cachedPhases(), 0u);
    EXPECT_EQ(est.reusedTicks(), 0u);
    EXPECT_EQ(est.sampledTicks(), 0u);
    EXPECT_TRUE(est.beginTick(requestFor(stream), 0, 8));
}

} // namespace
} // namespace dora
