/**
 * @file
 * Unit tests for the cache replacement policies (LRU / tree-PLRU /
 * random).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache_model.hh"

namespace dora
{
namespace
{

CacheConfig
cacheWith(ReplacementPolicy policy, uint32_t size_kb = 1,
          uint32_t ways = 4)
{
    CacheConfig c;
    c.name = "repl";
    c.sizeBytes = size_kb * 1024ull;
    c.associativity = ways;
    c.lineBytes = 64;
    c.policy = policy;
    return c;
}

TEST(ReplacementPolicyName, AllNamed)
{
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Lru), "lru");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::TreePlru),
                 "tree-plru");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Random),
                 "random");
}

TEST(TreePlru, MruIsProtected)
{
    // 4 sets, 4 ways; lines 0,4,8,12 map to set 0.
    CacheModel cache(cacheWith(ReplacementPolicy::TreePlru));
    cache.access(0, 0);
    cache.access(4, 0);
    cache.access(8, 0);
    cache.access(12, 0);
    cache.access(0, 0);   // 0 is MRU
    cache.access(16, 0);  // forces an eviction: must not evict 0
    EXPECT_TRUE(cache.access(0, 0));
}

TEST(TreePlru, FillsInvalidWaysFirst)
{
    CacheModel cache(cacheWith(ReplacementPolicy::TreePlru));
    for (uint64_t i = 0; i < 4; ++i)
        cache.access(i * 4, 0);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(cache.access(i * 4, 0));
}

TEST(TreePlru, ApproximatesLruOnSequentialConflict)
{
    // Repeated round-robin over ways+1 conflicting lines thrashes under
    // any recency-based policy; every access should miss under LRU and
    // mostly miss under tree-PLRU.
    CacheModel lru(cacheWith(ReplacementPolicy::Lru));
    CacheModel plru(cacheWith(ReplacementPolicy::TreePlru));
    uint64_t lru_miss = 0, plru_miss = 0;
    for (int round = 0; round < 100; ++round) {
        for (uint64_t i = 0; i < 5; ++i) {
            lru_miss += lru.access(i * 4, 0) ? 0 : 1;
            plru_miss += plru.access(i * 4, 0) ? 0 : 1;
        }
    }
    EXPECT_EQ(lru_miss, 500u);      // classic LRU thrash
    EXPECT_GT(plru_miss, 250u);     // PLRU thrashes most of the time
}

TEST(Random, IsDeterministicAcrossInstances)
{
    CacheModel a(cacheWith(ReplacementPolicy::Random));
    CacheModel b(cacheWith(ReplacementPolicy::Random));
    Rng rng(5);
    uint64_t hits_a = 0, hits_b = 0;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t line = rng.below(64);
        hits_a += a.access(line, 0) ? 1 : 0;
    }
    Rng rng2(5);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t line = rng2.below(64);
        hits_b += b.access(line, 0) ? 1 : 0;
    }
    EXPECT_EQ(hits_a, hits_b);
}

TEST(Random, BreaksLruThrash)
{
    // The same round-robin pattern that defeats LRU gets *some* hits
    // under random replacement — the classic argument for it.
    CacheModel rnd(cacheWith(ReplacementPolicy::Random));
    uint64_t hits = 0;
    for (int round = 0; round < 200; ++round)
        for (uint64_t i = 0; i < 5; ++i)
            hits += rnd.access(i * 4, 0) ? 1 : 0;
    EXPECT_GT(hits, 50u);
}

TEST(TreePlru, RejectsNonPowerOfTwoAssociativityDeathTest)
{
    CacheConfig c = cacheWith(ReplacementPolicy::TreePlru);
    c.sizeBytes = 3 * 64 * 8;  // 3-way
    c.associativity = 3;
    EXPECT_EXIT({ CacheModel cache(c); (void)cache; },
                ::testing::ExitedWithCode(1), "tree-PLRU");
}

/** Hit-rate ordering property across policies on a loopy workload. */
class PolicySweep : public ::testing::TestWithParam<ReplacementPolicy>
{
};

TEST_P(PolicySweep, ResidentWorkingSetEventuallyHits)
{
    CacheModel cache(cacheWith(GetParam(), 4, 4));  // 4 KB, 64 lines
    // 32-line working set, fits with room to spare.
    for (int round = 0; round < 50; ++round)
        for (uint64_t i = 0; i < 32; ++i)
            cache.access(i, 0);
    const CacheStats st = cache.stats(0);
    const double hit_rate = 1.0 -
        static_cast<double>(st.misses) /
            static_cast<double>(st.accesses);
    EXPECT_GT(hit_rate, 0.9) << replacementPolicyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(ReplacementPolicy::Lru,
                                           ReplacementPolicy::TreePlru,
                                           ReplacementPolicy::Random));

} // namespace
} // namespace dora
