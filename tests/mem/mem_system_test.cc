/**
 * @file
 * Unit and integration tests for the composed memory hierarchy —
 * including the emergent shared-L2 interference that the whole paper
 * rests on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "mem/address_stream.hh"
#include "mem/mem_system.hh"

namespace dora
{
namespace
{

MemSystemConfig
smallConfig()
{
    MemSystemConfig c;
    c.numCores = 2;
    c.l1.sizeBytes = 4 * 1024;
    c.l2.sizeBytes = 64 * 1024;
    return c;
}

AddressStream
makeStream(uint64_t ws_bytes, uint64_t base, double hot = 0.0,
           const char *seed = "s")
{
    AddressStreamSpec spec;
    spec.workingSetBytes = ws_bytes;
    spec.hotFraction = hot;
    spec.hotSetFraction = 0.05;
    spec.burstContinueProb = 0.0;
    return AddressStream(spec, base, Rng(seed));
}

TEST(MemSystem, ZeroSampleRequestsYieldZeroRates)
{
    MemSystem mem(smallConfig());
    std::vector<MemSampleRequest> reqs(2);
    reqs[0].core = 0;
    reqs[1].core = 1;
    const auto results = mem.tickSample(reqs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_DOUBLE_EQ(results[0].l1MissRate, 0.0);
    EXPECT_DOUBLE_EQ(results[1].l2LocalMissRate, 0.0);
}

TEST(MemSystem, TinyWorkingSetHitsInL1AfterWarmup)
{
    MemSystem mem(smallConfig());
    auto stream = makeStream(1024, 0);  // 16 lines; fits the 4 KB L1
    std::vector<MemSampleRequest> reqs(1);
    reqs[0] = MemSampleRequest{0, &stream, 2000};
    mem.tickSample(reqs);  // warm
    const auto results = mem.tickSample(reqs);
    EXPECT_LT(results[0].l1MissRate, 0.02);
}

TEST(MemSystem, L2ResidentWorkingSetMissesL1HitsL2)
{
    MemSystem mem(smallConfig());
    // 32 KB: far over the 4 KB L1, inside the 64 KB L2.
    auto stream = makeStream(32 * 1024, 0);
    std::vector<MemSampleRequest> reqs(1);
    reqs[0] = MemSampleRequest{0, &stream, 4000};
    mem.tickSample(reqs);
    mem.tickSample(reqs);
    const auto results = mem.tickSample(reqs);
    EXPECT_GT(results[0].l1MissRate, 0.5);
    EXPECT_LT(results[0].l2LocalMissRate, 0.1);
}

TEST(MemSystem, HugeWorkingSetMissesL2)
{
    MemSystem mem(smallConfig());
    auto stream = makeStream(1024 * 1024, 0);  // 16x the L2
    std::vector<MemSampleRequest> reqs(1);
    reqs[0] = MemSampleRequest{0, &stream, 4000};
    mem.tickSample(reqs);
    const auto results = mem.tickSample(reqs);
    EXPECT_GT(results[0].l2LocalMissRate, 0.8);
}

TEST(MemSystem, SharedL2InterferenceIsEmergent)
{
    // Core 0 runs an L2-resident victim; measure its L2 miss rate with
    // and without a streaming aggressor on core 1.
    auto victim_solo = [] {
        MemSystem mem(smallConfig());
        auto victim = makeStream(24 * 1024, 0, 0.0, "victim");
        std::vector<MemSampleRequest> reqs(1);
        reqs[0] = MemSampleRequest{0, &victim, 2000};
        for (int warm = 0; warm < 3; ++warm)
            mem.tickSample(reqs);
        double miss = 0.0;
        for (int i = 0; i < 5; ++i)
            miss += mem.tickSample(reqs)[0].l2LocalMissRate;
        return miss / 5.0;
    }();

    auto victim_corun = [] {
        MemSystem mem(smallConfig());
        auto victim = makeStream(24 * 1024, 0, 0.0, "victim");
        auto aggressor =
            makeStream(1024 * 1024, 1 << 20, 0.0, "aggressor");
        std::vector<MemSampleRequest> reqs(2);
        reqs[0] = MemSampleRequest{0, &victim, 2000};
        reqs[1] = MemSampleRequest{1, &aggressor, 4000};
        for (int warm = 0; warm < 3; ++warm)
            mem.tickSample(reqs);
        double miss = 0.0;
        for (int i = 0; i < 5; ++i)
            miss += mem.tickSample(reqs)[0].l2LocalMissRate;
        return miss / 5.0;
    }();

    EXPECT_LT(victim_solo, 0.15);
    EXPECT_GT(victim_corun, victim_solo + 0.2);
}

TEST(MemSystem, CommitScalesCounters)
{
    MemSystem mem(smallConfig());
    MemSampleResult result;
    result.core = 0;
    result.l1MissRate = 0.5;
    result.l2LocalMissRate = 0.4;
    mem.commitScaled(0, 10000.0, result);
    const CoreMemCounters &c = mem.coreCounters(0);
    EXPECT_DOUBLE_EQ(c.l1Accesses, 10000.0);
    EXPECT_DOUBLE_EQ(c.l1Misses, 5000.0);
    EXPECT_DOUBLE_EQ(c.l2Accesses, 5000.0);
    EXPECT_DOUBLE_EQ(c.l2Misses, 2000.0);
}

TEST(MemSystem, CommitFeedsDramDemand)
{
    MemSystem mem(smallConfig());
    MemSampleResult result;
    result.core = 0;
    result.l1MissRate = 1.0;
    result.l2LocalMissRate = 1.0;
    mem.commitScaled(0, 1000.0, result);
    mem.endTick(1e-3, 800.0);
    EXPECT_GT(mem.dramUtilization(), 0.0);
}

TEST(MemSystem, TotalCountersSumCores)
{
    MemSystem mem(smallConfig());
    MemSampleResult result;
    result.l1MissRate = 0.1;
    result.l2LocalMissRate = 0.1;
    mem.commitScaled(0, 100.0, result);
    mem.commitScaled(1, 300.0, result);
    EXPECT_DOUBLE_EQ(mem.totalCounters().l1Accesses, 400.0);
}

TEST(MemSystem, ResetClearsEverything)
{
    MemSystem mem(smallConfig());
    auto stream = makeStream(32 * 1024, 0);
    std::vector<MemSampleRequest> reqs(1);
    reqs[0] = MemSampleRequest{0, &stream, 2000};
    mem.tickSample(reqs);
    MemSampleResult r;
    r.l1MissRate = 1.0;
    r.l2LocalMissRate = 1.0;
    mem.commitScaled(0, 100.0, r);
    mem.reset();
    EXPECT_DOUBLE_EQ(mem.coreCounters(0).l1Accesses, 0.0);
    EXPECT_EQ(mem.l2().totalStats().accesses, 0u);
    EXPECT_DOUBLE_EQ(mem.dramUtilization(), 0.0);
}

TEST(MemSystem, DefaultConfigMatchesTableII)
{
    MemSystemConfig c;
    EXPECT_EQ(c.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(c.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(c.l2.associativity, 8u);
    EXPECT_EQ(c.numCores, 4u);
}

} // namespace
} // namespace dora
