/**
 * @file
 * Unit tests for the synthetic address-stream generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "common/units.hh"
#include "mem/address_stream.hh"

namespace dora
{
namespace
{

AddressStreamSpec
basicSpec()
{
    AddressStreamSpec spec;
    spec.workingSetBytes = 1 << 20;  // 16384 lines
    spec.hotFraction = 0.5;
    spec.hotSetFraction = 0.05;
    spec.burstContinueProb = 0.5;
    return spec;
}

TEST(AddressStream, StaysInsideWorkingSet)
{
    const AddressStreamSpec spec = basicSpec();
    const uint64_t base = 1000000;
    const uint64_t ws_lines = spec.workingSetBytes / kCacheLineBytes;
    AddressStream stream(spec, base, Rng(1));
    for (int i = 0; i < 100000; ++i) {
        const uint64_t line = stream.next();
        EXPECT_GE(line, base);
        EXPECT_LT(line, base + ws_lines);
    }
}

TEST(AddressStream, DeterministicForSameSeed)
{
    const AddressStreamSpec spec = basicSpec();
    AddressStream a(spec, 0, Rng(7));
    AddressStream b(spec, 0, Rng(7));
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(AddressStream, HotSetAbsorbsHotFraction)
{
    AddressStreamSpec spec = basicSpec();
    spec.hotFraction = 0.8;
    spec.hotSetFraction = 0.01;
    spec.burstContinueProb = 0.0;  // isolate the region choice
    const uint64_t ws_lines = spec.workingSetBytes / kCacheLineBytes;
    const uint64_t hot_lines = static_cast<uint64_t>(
        static_cast<double>(ws_lines) * spec.hotSetFraction);
    AddressStream stream(spec, 0, Rng(2));
    int hot = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (stream.next() < hot_lines)
            ++hot;
    // Hot draws land in the hot range; a few cold draws land there too.
    EXPECT_GT(static_cast<double>(hot) / n, 0.78);
}

TEST(AddressStream, BurstsAreSequential)
{
    AddressStreamSpec spec = basicSpec();
    spec.burstContinueProb = 0.95;
    spec.burstCap = 64;
    AddressStream stream(spec, 0, Rng(3));
    uint64_t prev = stream.next();
    int sequential = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const uint64_t cur = stream.next();
        if (cur == prev + 1)
            ++sequential;
        prev = cur;
    }
    // With p=0.95 the stream is overwhelmingly sequential.
    EXPECT_GT(static_cast<double>(sequential) / n, 0.85);
}

TEST(AddressStream, NoBurstsWhenDisabled)
{
    AddressStreamSpec spec = basicSpec();
    spec.burstContinueProb = 0.0;
    AddressStream stream(spec, 0, Rng(4));
    uint64_t prev = stream.next();
    int sequential = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const uint64_t cur = stream.next();
        if (cur == prev + 1)
            ++sequential;
        prev = cur;
    }
    EXPECT_LT(static_cast<double>(sequential) / n, 0.01);
}

TEST(AddressStream, ReshapeChangesWorkingSet)
{
    AddressStreamSpec spec = basicSpec();
    AddressStream stream(spec, 0, Rng(5));
    AddressStreamSpec small = spec;
    small.workingSetBytes = 64 * kCacheLineBytes;
    stream.reshape(small);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(stream.next(), 64u);
}

TEST(AddressStream, CoversWorkingSetEventually)
{
    AddressStreamSpec spec;
    spec.workingSetBytes = 256 * kCacheLineBytes;
    spec.hotFraction = 0.0;
    spec.hotSetFraction = 0.1;
    spec.burstContinueProb = 0.0;
    AddressStream stream(spec, 0, Rng(6));
    std::map<uint64_t, int> seen;
    for (int i = 0; i < 20000; ++i)
        ++seen[stream.next()];
    EXPECT_EQ(seen.size(), 256u);
}

TEST(AddressStream, WrapStaysInRangeUnderHeavyBursting)
{
    // Tiny working set + near-certain burst continuation: the cursor
    // wraps constantly, exercising the conditional-wrap fast path that
    // replaced the per-access modulo.
    AddressStreamSpec spec;
    spec.workingSetBytes = 16 * kCacheLineBytes;
    spec.hotFraction = 0.3;
    spec.hotSetFraction = 0.25;
    spec.burstContinueProb = 0.99;
    spec.burstCap = 64;
    const uint64_t base = 5000;
    AddressStream stream(spec, base, Rng(21));
    uint64_t prev = stream.next();
    int wraps = 0;
    for (int i = 0; i < 50000; ++i) {
        const uint64_t cur = stream.next();
        ASSERT_GE(cur, base);
        ASSERT_LT(cur, base + 16);
        // Within a burst the only legal discontinuity is the wrap to
        // the base line from the last line of the working set.
        if (cur < prev && cur == base && prev == base + 15)
            ++wraps;
        prev = cur;
    }
    EXPECT_GT(wraps, 100);  // the wrap path actually ran
}

TEST(AddressStream, StreamIdentityAndGenerations)
{
    const AddressStreamSpec spec = basicSpec();
    AddressStream a(spec, 0, Rng(22));
    AddressStream b(spec, 0, Rng(22));
    // Ids are process-unique even for identically-built streams.
    EXPECT_NE(a.streamId(), b.streamId());
    EXPECT_EQ(a.generation(), 0u);
    const uint64_t id = a.streamId();
    a.reshape(spec);
    EXPECT_EQ(a.streamId(), id);  // identity survives reshape
    EXPECT_EQ(a.generation(), 1u);
    a.reshape(spec);
    EXPECT_EQ(a.generation(), 2u);
}

/** Property sweep: every spec shape keeps addresses in range. */
class AddressStreamSpecSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(AddressStreamSpecSweep, AddressesAlwaysInRange)
{
    const auto [hot, hot_set, burst] = GetParam();
    AddressStreamSpec spec;
    spec.workingSetBytes = 512 * 1024;
    spec.hotFraction = hot;
    spec.hotSetFraction = hot_set;
    spec.burstContinueProb = burst;
    const uint64_t ws_lines = spec.workingSetBytes / kCacheLineBytes;
    AddressStream stream(spec, 777, Rng(hashLabel("sweep")));
    for (int i = 0; i < 20000; ++i) {
        const uint64_t line = stream.next();
        EXPECT_GE(line, 777u);
        EXPECT_LT(line, 777u + ws_lines);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AddressStreamSpecSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 0.95),
                       ::testing::Values(0.001, 0.05, 1.0),
                       ::testing::Values(0.0, 0.5, 0.97)));

} // namespace
} // namespace dora
