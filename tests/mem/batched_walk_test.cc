/**
 * @file
 * Bit-identity proof for the batched walk kernel (DESIGN.md §5g): a
 * MemSystem running walkBatched() must be indistinguishable — rates,
 * stats, cache arrays, stream RNG state, everything — from one running
 * the per-access reference walk on the same request sequence.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/snapshot.hh"
#include "mem/address_stream.hh"
#include "mem/mem_system.hh"

namespace dora
{
namespace
{

AddressStreamSpec
burstySpec(uint64_t ws_bytes)
{
    AddressStreamSpec spec;
    spec.workingSetBytes = ws_bytes;
    spec.hotFraction = 0.6;
    spec.hotSetFraction = 0.05;
    spec.burstContinueProb = 0.7;
    spec.burstCap = 32;
    return spec;
}

/** Full serialized state: caches, DRAM, counters, and both streams. */
std::string
stateBytes(const MemSystem &mem,
           const std::vector<std::unique_ptr<AddressStream>> &streams)
{
    SnapshotWriter w;
    mem.snapshot(w);
    for (const auto &s : streams)
        s->snapshot(w);
    return w.finish();
}

struct Rig
{
    MemSystem mem;
    std::vector<std::unique_ptr<AddressStream>> streams;

    explicit Rig(const MemSystemConfig &config, bool batched)
        : mem(config)
    {
        mem.setBatchedWalk(batched);
        for (uint32_t c = 0; c < config.numCores; ++c)
            streams.push_back(std::make_unique<AddressStream>(
                burstySpec((c + 1) * 48 * 1024), c * (1u << 20),
                Rng(1234567u + c)));
    }
};

void
expectIdenticalWalks(const MemSystemConfig &config)
{
    Rig legacy(config, false);
    Rig batched(config, true);

    // Stream ids differ between the rigs (process-global counter), so
    // compare snapshots against a same-rig baseline through an id-free
    // probe: rates + per-requestor stats + owned lines, every tick,
    // plus RNG/cursor state via each stream's own draw continuation.
    std::vector<MemSampleRequest> reqs_a(config.numCores);
    std::vector<MemSampleRequest> reqs_b(config.numCores);
    std::vector<MemSampleResult> res_a;
    std::vector<MemSampleResult> res_b;
    // Varying per-core sample counts, including idle (0) cores and a
    // tail where only one stream stays live deep into the round-robin.
    const uint32_t plans[6][4] = {{400, 333, 0, 57},  {0, 0, 0, 0},
                                  {900, 11, 222, 64}, {8, 8, 8, 8},
                                  {1, 1000, 3, 0},    {511, 0, 513, 129}};
    for (const auto &plan : plans) {
        for (uint32_t c = 0; c < config.numCores; ++c) {
            reqs_a[c] = MemSampleRequest{c, legacy.streams[c].get(),
                                         plan[c % 4]};
            reqs_b[c] = MemSampleRequest{c, batched.streams[c].get(),
                                         plan[c % 4]};
        }
        legacy.mem.tickSample(reqs_a, res_a);
        batched.mem.tickSample(reqs_b, res_b);
        ASSERT_EQ(res_a.size(), res_b.size());
        for (size_t i = 0; i < res_a.size(); ++i) {
            EXPECT_EQ(res_a[i].l1MissRate, res_b[i].l1MissRate);
            EXPECT_EQ(res_a[i].l2LocalMissRate,
                      res_b[i].l2LocalMissRate);
            EXPECT_EQ(res_a[i].samplesIssued, res_b[i].samplesIssued);
        }
        for (uint32_t c = 0; c < config.numCores; ++c) {
            const CacheStats &a1 = legacy.mem.l1(c).stats(0);
            const CacheStats &b1 = batched.mem.l1(c).stats(0);
            EXPECT_EQ(a1.accesses, b1.accesses);
            EXPECT_EQ(a1.misses, b1.misses);
            EXPECT_EQ(a1.selfEvictions, b1.selfEvictions);
            EXPECT_EQ(a1.interferenceEvictions,
                      b1.interferenceEvictions);
            EXPECT_EQ(legacy.mem.l1(c).ownedLines(0),
                      batched.mem.l1(c).ownedLines(0));
            const CacheStats &a2 = legacy.mem.l2().stats(c);
            const CacheStats &b2 = batched.mem.l2().stats(c);
            EXPECT_EQ(a2.accesses, b2.accesses);
            EXPECT_EQ(a2.misses, b2.misses);
            EXPECT_EQ(a2.selfEvictions, b2.selfEvictions);
            EXPECT_EQ(a2.interferenceEvictions,
                      b2.interferenceEvictions);
            EXPECT_EQ(legacy.mem.l2().ownedLines(c),
                      batched.mem.l2().ownedLines(c));
        }
    }
    // Generator states must have advanced identically: the next draws
    // from each pair of streams agree.
    for (uint32_t c = 0; c < config.numCores; ++c)
        for (int i = 0; i < 64; ++i)
            EXPECT_EQ(legacy.streams[c]->next(),
                      batched.streams[c]->next());
}

TEST(BatchedWalk, BitIdenticalToReferenceWalkDefaultGeometry)
{
    MemSystemConfig config;  // MSM8974 defaults: 8-way L2 (SIMD probe)
    config.l1.sizeBytes = 4 * 1024;
    config.l2.sizeBytes = 64 * 1024;
    expectIdenticalWalks(config);
}

TEST(BatchedWalk, BitIdenticalToReferenceWalkScalarGeometry)
{
    MemSystemConfig config;
    config.l1.sizeBytes = 4 * 1024;
    config.l2.sizeBytes = 48 * 1024;
    config.l2.associativity = 6;  // non-8-way: scalar probe loop
    expectIdenticalWalks(config);
}

TEST(BatchedWalk, NonLruPolicyFallsBackToReferenceWalk)
{
    MemSystemConfig config;
    config.l1.sizeBytes = 4 * 1024;
    config.l2.sizeBytes = 64 * 1024;
    config.l2.policy = ReplacementPolicy::Random;
    // Identical because the batched rig silently takes the reference
    // path — the point is that enabling the knob is always safe.
    expectIdenticalWalks(config);
}

TEST(BatchedWalk, NextRunsMatchesPerAccessNext)
{
    AddressStream a(burstySpec(96 * 1024), 7000, Rng(99u));
    AddressStream b(burstySpec(96 * 1024), 7000, Rng(99u));
    std::vector<uint64_t> got(4096);
    // Mixed chunk sizes so run boundaries land mid-burst, at burst
    // starts, and across working-set wraps.
    const uint32_t chunks[] = {1, 7, 64, 1000, 3, 3021};
    size_t off = 0;
    for (uint32_t n : chunks) {
        a.nextRuns(got.data() + off, n);
        off += n;
    }
    for (size_t i = 0; i < off; ++i)
        EXPECT_EQ(got[i], b.next()) << "index " << i;
    // Residual state identical too: next draws continue in lockstep.
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

/** Snapshot round-trip still byte-stable with the kernel enabled. */
TEST(BatchedWalk, SnapshotAgreesAfterBatchedTicks)
{
    MemSystemConfig config;
    config.l1.sizeBytes = 4 * 1024;
    config.l2.sizeBytes = 64 * 1024;
    Rig rig(config, true);
    std::vector<MemSampleRequest> reqs(config.numCores);
    for (uint32_t c = 0; c < config.numCores; ++c)
        reqs[c] = MemSampleRequest{c, rig.streams[c].get(), 700};
    std::vector<MemSampleResult> res;
    rig.mem.tickSample(reqs, res);
    const std::string bytes = stateBytes(rig.mem, rig.streams);

    SnapshotReader r(bytes);
    MemSystem restored(config);
    ASSERT_TRUE(restored.tryRestore(r));
    SnapshotWriter w;
    restored.snapshot(w);
    for (const auto &s : rig.streams)
        ASSERT_TRUE(s->tryRestore(r));
    for (const auto &s : rig.streams)
        s->snapshot(w);
    EXPECT_EQ(w.finish(), bytes);
}

} // namespace
} // namespace dora
