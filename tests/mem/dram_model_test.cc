/**
 * @file
 * Unit tests for the DRAM bandwidth/queueing model.
 */

#include <gtest/gtest.h>

#include "mem/dram_model.hh"

namespace dora
{
namespace
{

TEST(DramModel, UnloadedLatencyIsBase)
{
    DramModel dram{DramConfig{}};
    dram.endTick(1e-3, 800.0);
    EXPECT_DOUBLE_EQ(dram.effectiveLatencyNs(),
                     dram.config().baseLatencyNs);
    EXPECT_DOUBLE_EQ(dram.utilization(), 0.0);
}

TEST(DramModel, CapacityScalesWithBusFrequency)
{
    DramModel dram{DramConfig{}};
    EXPECT_DOUBLE_EQ(dram.capacityBytesPerSec(800.0),
                     2.0 * dram.capacityBytesPerSec(400.0));
}

TEST(DramModel, LatencyGrowsWithUtilization)
{
    DramModel dram{DramConfig{}};
    const double cap = dram.capacityBytesPerSec(800.0) * 1e-3;

    dram.addDemand(cap * 0.2);
    dram.endTick(1e-3, 800.0);
    const double lat20 = dram.effectiveLatencyNs();

    dram.addDemand(cap * 0.8);
    dram.endTick(1e-3, 800.0);
    const double lat80 = dram.effectiveLatencyNs();

    EXPECT_GT(lat20, dram.config().baseLatencyNs);
    EXPECT_GT(lat80, 1.5 * lat20);
}

TEST(DramModel, UtilizationIsCapped)
{
    DramModel dram{DramConfig{}};
    dram.addDemand(1e12);
    dram.endTick(1e-3, 800.0);
    EXPECT_LE(dram.utilization(), dram.config().maxUtilization);
    EXPECT_GT(dram.effectiveLatencyNs(), dram.config().baseLatencyNs);
}

TEST(DramModel, SameDemandLowerBusIsSlower)
{
    DramModel a{DramConfig{}}, b{DramConfig{}};
    const double demand = 2e6;  // bytes in one tick
    a.addDemand(demand);
    a.endTick(1e-3, 800.0);
    b.addDemand(demand);
    b.endTick(1e-3, 333.0);
    EXPECT_GT(b.utilization(), a.utilization());
    EXPECT_GT(b.effectiveLatencyNs(), a.effectiveLatencyNs());
}

TEST(DramModel, EnergyTracksBytesPlusBackground)
{
    DramConfig config;
    DramModel dram(config);
    dram.endTick(1e-3, 800.0);
    const double idle = dram.lastTickEnergyJ();
    EXPECT_NEAR(idle, config.backgroundPowerW * 1e-3, 1e-12);

    dram.addDemand(1e6);
    dram.endTick(1e-3, 800.0);
    EXPECT_NEAR(dram.lastTickEnergyJ() - idle,
                1e6 * config.energyPerByteNj * 1e-9, 1e-12);
}

TEST(DramModel, DemandClearsEachTick)
{
    DramModel dram{DramConfig{}};
    dram.addDemand(5e6);
    dram.endTick(1e-3, 800.0);
    const double util1 = dram.utilization();
    dram.endTick(1e-3, 800.0);
    EXPECT_GT(util1, 0.0);
    EXPECT_DOUBLE_EQ(dram.utilization(), 0.0);
}

TEST(DramModel, TotalBytesAccumulates)
{
    DramModel dram{DramConfig{}};
    dram.addDemand(100.0);
    dram.endTick(1e-3, 800.0);
    dram.addDemand(200.0);
    dram.endTick(1e-3, 800.0);
    EXPECT_DOUBLE_EQ(dram.totalBytes(), 300.0);
    dram.reset();
    EXPECT_DOUBLE_EQ(dram.totalBytes(), 0.0);
    EXPECT_DOUBLE_EQ(dram.effectiveLatencyNs(),
                     dram.config().baseLatencyNs);
}

} // namespace
} // namespace dora
