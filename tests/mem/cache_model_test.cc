/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"

namespace dora
{
namespace
{

CacheConfig
tinyCache(uint32_t size_kb = 1, uint32_t ways = 2,
          uint32_t requestors = 1)
{
    CacheConfig c;
    c.name = "test";
    c.sizeBytes = size_kb * 1024ull;
    c.associativity = ways;
    c.lineBytes = 64;
    c.numRequestors = requestors;
    return c;
}

TEST(CacheModel, Geometry)
{
    CacheModel cache(tinyCache(2, 4));
    // 2 KB / 64 B = 32 lines / 4 ways = 8 sets.
    EXPECT_EQ(cache.numSets(), 8u);
}

TEST(CacheModel, FirstAccessMissesThenHits)
{
    CacheModel cache(tinyCache());
    EXPECT_FALSE(cache.access(100, 0));
    EXPECT_TRUE(cache.access(100, 0));
    EXPECT_TRUE(cache.access(100, 0));
    EXPECT_EQ(cache.stats(0).accesses, 3u);
    EXPECT_EQ(cache.stats(0).misses, 1u);
}

TEST(CacheModel, DistinctSetsDontConflict)
{
    CacheModel cache(tinyCache(1, 2));  // 8 sets
    // Lines 0..7 map to distinct sets.
    for (uint64_t line = 0; line < 8; ++line)
        EXPECT_FALSE(cache.access(line, 0));
    for (uint64_t line = 0; line < 8; ++line)
        EXPECT_TRUE(cache.access(line, 0));
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    CacheModel cache(tinyCache(1, 2));  // 8 sets, 2 ways
    // Three lines mapping to set 0: 0, 8, 16.
    cache.access(0, 0);
    cache.access(8, 0);
    cache.access(0, 0);   // 0 is now MRU
    cache.access(16, 0);  // evicts 8 (LRU)
    EXPECT_TRUE(cache.access(0, 0));
    EXPECT_TRUE(cache.access(16, 0));
    EXPECT_FALSE(cache.access(8, 0));  // was evicted
}

TEST(CacheModel, AssociativityHoldsConflictingLines)
{
    CacheModel cache(tinyCache(1, 4));  // 4 sets, 4 ways
    // Four lines in set 0 all fit.
    for (uint64_t i = 0; i < 4; ++i)
        cache.access(i * 4, 0);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(cache.access(i * 4, 0));
}

TEST(CacheModel, InterferenceEvictionAttribution)
{
    CacheModel cache(tinyCache(1, 2, 2));  // 8 sets, 2 ways, 2 requestors
    cache.access(0, 0);
    cache.access(8, 0);
    // Requestor 1 storms set 0 and evicts requestor 0's lines.
    cache.access(16, 1);
    cache.access(24, 1);
    EXPECT_EQ(cache.stats(0).interferenceEvictions, 2u);
    EXPECT_EQ(cache.stats(0).selfEvictions, 0u);
}

TEST(CacheModel, SelfEvictionAttribution)
{
    CacheModel cache(tinyCache(1, 2, 2));
    cache.access(0, 0);
    cache.access(8, 0);
    cache.access(16, 0);  // evicts own line
    EXPECT_EQ(cache.stats(0).selfEvictions, 1u);
    EXPECT_EQ(cache.stats(0).interferenceEvictions, 0u);
}

TEST(CacheModel, SharedHitTransfersOwnership)
{
    CacheModel cache(tinyCache(1, 2, 2));
    cache.access(0, 0);
    EXPECT_TRUE(cache.access(0, 1));  // hit on the other core's line
    // Now owned by requestor 1: eviction charged to it.
    cache.access(8, 0);
    cache.access(16, 0);  // evicts line 0 (LRU), owned by requestor 1
    EXPECT_EQ(cache.stats(1).interferenceEvictions, 1u);
}

TEST(CacheModel, TotalStatsAggregate)
{
    CacheModel cache(tinyCache(1, 2, 2));
    cache.access(0, 0);
    cache.access(1, 1);
    cache.access(0, 0);
    const CacheStats total = cache.totalStats();
    EXPECT_EQ(total.accesses, 3u);
    EXPECT_EQ(total.misses, 2u);
}

TEST(CacheModel, MissRateHelper)
{
    CacheStats st;
    EXPECT_DOUBLE_EQ(st.missRate(), 0.0);
    st.accesses = 4;
    st.misses = 1;
    EXPECT_DOUBLE_EQ(st.missRate(), 0.25);
}

TEST(CacheModel, FlushInvalidatesButKeepsStats)
{
    CacheModel cache(tinyCache());
    cache.access(5, 0);
    cache.flush();
    EXPECT_FALSE(cache.access(5, 0));
    EXPECT_EQ(cache.stats(0).accesses, 2u);
    EXPECT_EQ(cache.stats(0).misses, 2u);
}

TEST(CacheModel, ResetStatsKeepsContents)
{
    CacheModel cache(tinyCache());
    cache.access(5, 0);
    cache.resetStats();
    EXPECT_EQ(cache.stats(0).accesses, 0u);
    EXPECT_TRUE(cache.access(5, 0));  // still resident
}

TEST(CacheModel, OccupancyFraction)
{
    CacheModel cache(tinyCache(1, 2, 2));  // 16 lines capacity
    for (uint64_t i = 0; i < 4; ++i)
        cache.access(i, 0);
    for (uint64_t i = 4; i < 8; ++i)
        cache.access(i, 1);
    EXPECT_DOUBLE_EQ(cache.occupancyFraction(0), 4.0 / 16.0);
    EXPECT_DOUBLE_EQ(cache.occupancyFraction(1), 4.0 / 16.0);
}

TEST(CacheModel, OccupancyCounterMatchesScan)
{
    // Random multi-requestor traffic with ownership transfers,
    // evictions and a flush: the O(1) per-requestor occupancy counters
    // must agree with a full directory scan at every checkpoint.
    CacheModel cache(tinyCache(1, 2, 4));  // 16 lines, 4 requestors
    uint64_t state = 0x2545F4914F6CDD1Dull;
    auto next = [&state]() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state;
    };
    auto check_all = [&cache](int step) {
        for (uint32_t r = 0; r < 4; ++r)
            ASSERT_DOUBLE_EQ(cache.occupancyFraction(r),
                             cache.occupancyFractionScan(r))
                << "requestor " << r << " at step " << step;
    };
    for (int step = 0; step < 2000; ++step) {
        cache.access(next() % 64, static_cast<uint32_t>(next() % 4));
        if (step % 37 == 0)
            check_all(step);
    }
    check_all(2000);
    cache.flush();
    for (uint32_t r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(cache.occupancyFraction(r), 0.0);
        EXPECT_DOUBLE_EQ(cache.occupancyFractionScan(r), 0.0);
    }
}

/** Property sweep over geometries: hit rate of a resident set is 1. */
class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometrySweep, ResidentWorkingSetAlwaysHits)
{
    const auto [size_kb, ways] = GetParam();
    CacheModel cache(tinyCache(size_kb, ways));
    const uint64_t lines = size_kb * 1024ull / 64;
    // Touch exactly the capacity, round-robin across sets: fits.
    for (uint64_t i = 0; i < lines; ++i)
        cache.access(i, 0);
    for (uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.access(i, 0)) << "line " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Combine(::testing::Values(1u, 4u, 16u, 64u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

} // namespace
} // namespace dora
