/**
 * @file
 * System-level property sweeps (parameterized): invariants that must
 * hold across the workload space, independent of calibration details.
 */

#include <gtest/gtest.h>

#include "browser/page_corpus.hh"
#include "runner/experiment.hh"

namespace dora
{
namespace
{

/** Load time is monotonically non-increasing in core frequency. */
class FrequencyMonotonicity
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FrequencyMonotonicity, LoadTimeFallsWithFrequency)
{
    ExperimentRunner runner;
    const WorkloadSpec w = WorkloadSets::combo(
        PageCorpus::byName(GetParam()), MemIntensity::Medium);
    double prev = 1e18;
    for (size_t f : {0ul, 4ul, 9ul, 13ul}) {
        const RunMeasurement m = runner.runAtFrequency(w, f);
        EXPECT_LT(m.loadTimeSec, prev * 1.005)
            << GetParam() << " at OPP " << f;
        prev = m.loadTimeSec;
    }
}

INSTANTIATE_TEST_SUITE_P(Pages, FrequencyMonotonicity,
                         ::testing::Values("alipay", "twitter", "amazon",
                                           "reddit", "espn"));

/** Interference never speeds a page up, at any intensity. */
class InterferenceMonotonicity
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(InterferenceMonotonicity, CorunNeverHelps)
{
    ExperimentRunner runner;
    const WebPage &page = PageCorpus::byName(GetParam());
    const size_t fmax = runner.freqTable().maxIndex();
    const double alone =
        runner.runAtFrequency(WorkloadSets::alone(page), fmax)
            .loadTimeSec;
    for (MemIntensity cls : {MemIntensity::Low, MemIntensity::Medium,
                             MemIntensity::High}) {
        const double with_corun =
            runner
                .runAtFrequency(WorkloadSets::combo(page, cls), fmax)
                .loadTimeSec;
        EXPECT_GE(with_corun, alone * 0.995)
            << GetParam() << " + " << memIntensityName(cls);
    }
}

INSTANTIATE_TEST_SUITE_P(Pages, InterferenceMonotonicity,
                         ::testing::Values("alipay", "cnn", "imgur"));

/** Whole-device power always exceeds the baseline floor and stays
 *  within a sane phone envelope. */
class PowerEnvelope : public ::testing::TestWithParam<size_t>
{
};

TEST_P(PowerEnvelope, PowerWithinPhoneEnvelope)
{
    ExperimentRunner runner;
    const WorkloadSpec w = WorkloadSets::combo(
        PageCorpus::byName("reddit"), MemIntensity::High);
    const RunMeasurement m = runner.runAtFrequency(w, GetParam());
    EXPECT_GT(m.meanPowerW, runner.config().power.baselineW);
    EXPECT_LT(m.meanPowerW, 9.0);  // a phone, not a laptop
    EXPECT_GT(m.meanTempC, runner.config().ambientC);
    EXPECT_LT(m.peakTempC, 106.0);  // junction clamp honored
}

INSTANTIATE_TEST_SUITE_P(Opps, PowerEnvelope,
                         ::testing::Values(0u, 5u, 9u, 13u));

/** Energy accounting closes: ppw == 1/(t * P) == 1/E. */
TEST(EnergyAccounting, PpwIdentities)
{
    ExperimentRunner runner;
    const RunMeasurement m = runner.runAtFrequency(
        WorkloadSets::combo(PageCorpus::byName("msn"),
                            MemIntensity::Low),
        8);
    EXPECT_NEAR(m.ppw * m.energyJ, 1.0, 1e-9);
    EXPECT_NEAR(m.meanPowerW * m.loadTimeSec, m.energyJ,
                1e-6 * m.energyJ);
}

} // namespace
} // namespace dora
