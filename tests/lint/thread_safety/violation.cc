/**
 * @file
 * Negative-compile fixture: reads and writes a GUARDED_BY field
 * without holding its mutex. Under clang with -Wthread-safety
 * -Werror this translation unit MUST fail to compile; the ctest
 * driver (check_thread_safety.cmake) asserts exactly that, proving
 * the annotations in src/common/thread_annotations.hh are live and
 * not silently compiled away.
 */

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace
{

class Account
{
  public:
    void
    deposit(long amount)
    {
        balance_ += amount; // write without acquiring mutex_
    }

    long
    balance() const
    {
        return balance_; // read without acquiring mutex_
    }

  private:
    mutable dora::Mutex mutex_;
    long balance_ GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Account account;
    account.deposit(1);
    return account.balance() == 1 ? 0 : 1;
}
