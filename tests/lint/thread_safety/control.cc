/**
 * @file
 * Control fixture for the negative-compile check: identical shape to
 * violation.cc but every access to the GUARDED_BY field holds the
 * mutex through a MutexLock. This file MUST compile cleanly under
 * clang -Wthread-safety -Werror; if it does not, the failure seen on
 * violation.cc would prove nothing (the flags themselves could be
 * broken).
 */

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace
{

class Account
{
  public:
    void
    deposit(long amount)
    {
        dora::MutexLock lock(mutex_);
        balance_ += amount;
    }

    long
    balance() const
    {
        dora::MutexLock lock(mutex_);
        return balance_;
    }

  private:
    mutable dora::Mutex mutex_;
    long balance_ GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Account account;
    account.deposit(1);
    return account.balance() == 1 ? 0 : 1;
}
