/**
 * @file
 * Tests for the dora-lint rule engine (tools/lint/lint_engine.hh):
 * scanner unit tests, one golden-file suite per rule (positive hit,
 * allowlisted path, NOLINT suppression — fixtures are real files
 * under tests/lint/fixtures/<rule>/ with repo-like virtual paths),
 * and a self-scan asserting the shipped tree is clean, which is the
 * same zero-findings contract scripts/ci.sh enforces.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint_engine.hh"

namespace fs = std::filesystem;
using dora::lint::Finding;
using dora::lint::ScannedFile;
using dora::lint::scanSource;

namespace
{

std::string
repoRoot()
{
    return DORA_SOURCE_DIR;
}

/** Lint a single in-memory file under a virtual repo path. */
std::vector<Finding>
lintText(const std::string &virtual_path, const std::string &content)
{
    std::vector<Finding> findings;
    dora::lint::lintFile(scanSource(virtual_path, content), findings);
    return findings;
}

/** "path:line:rule" rendering used to diff against expect.txt. */
std::vector<std::string>
keysOf(const std::vector<Finding> &findings)
{
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const auto &f : findings)
        keys.push_back(f.path + ":" + std::to_string(f.line) + ":" +
                       f.rule);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

// ------------------------------------------------------------------ //
// Scanner: comment / string stripping and NOLINT collection          //
// ------------------------------------------------------------------ //

TEST(LintScanner, StripsCommentsAndStringLiterals)
{
    const ScannedFile f = scanSource(
        "src/sim/x.cc",
        "int a; // rand() here is comment\n"
        "const char *s = \"rand()\";\n"
        "/* rand() in block\n   more rand() */ int b;\n");
    ASSERT_EQ(f.code.size(), 4u);
    EXPECT_EQ(f.code[0].find("rand"), std::string::npos);
    EXPECT_EQ(f.code[1].find("rand"), std::string::npos);
    EXPECT_NE(f.code[1].find("const char *s"), std::string::npos);
    EXPECT_EQ(f.code[2].find("rand"), std::string::npos);
    EXPECT_NE(f.code[3].find("int b;"), std::string::npos);
}

TEST(LintScanner, RawStringContentsAreBlanked)
{
    const ScannedFile f = scanSource(
        "src/sim/x.cc",
        "const char *re = R\"(time( rand( )\" ;\n"
        "int after = 1;\n");
    EXPECT_EQ(f.code[0].find("time("), std::string::npos);
    EXPECT_EQ(f.code[0].find("rand("), std::string::npos);
    EXPECT_NE(f.code[1].find("after"), std::string::npos);
}

TEST(LintScanner, EscapedQuoteStaysInsideString)
{
    const ScannedFile f = scanSource(
        "src/sim/x.cc",
        "const char *s = \"a\\\"rand()\\\"b\";\nint tail = 2;\n");
    EXPECT_EQ(f.code[0].find("rand"), std::string::npos);
    EXPECT_NE(f.code[1].find("tail"), std::string::npos);
}

TEST(LintScanner, CollectsNolintAndNolintNextline)
{
    const ScannedFile f = scanSource(
        "src/sim/x.cc",
        "int a; // NOLINT(dora-det-rand, dora-hyg-assert)\n"
        "// NOLINTNEXTLINE(dora-det-wallclock)\n"
        "int b;\n"
        "int c; // NOLINT\n");
    EXPECT_TRUE(f.nolint[0].count("dora-det-rand"));
    EXPECT_TRUE(f.nolint[0].count("dora-hyg-assert"));
    EXPECT_TRUE(f.nolint[2].count("dora-det-wallclock"));
    EXPECT_TRUE(f.nolint[3].count("*"));
    EXPECT_TRUE(f.nolint[1].empty());
}

// ------------------------------------------------------------------ //
// Rule engine spot checks (virtual paths, in-memory sources)         //
// ------------------------------------------------------------------ //

TEST(LintRules, CatalogHasUniqueStableIds)
{
    std::set<std::string> ids;
    for (const auto &rule : dora::lint::ruleCatalog())
        EXPECT_TRUE(ids.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
    EXPECT_EQ(ids.size(), 11u);
}

TEST(LintRules, WallclockScopesToSimulationCode)
{
    const std::string clock_use =
        "#include <chrono>\n"
        "double t() { return std::chrono::steady_clock::now()"
        ".time_since_epoch().count(); }\n";
    EXPECT_EQ(lintText("src/sim/a.cc", clock_use).size(), 1u);
    EXPECT_TRUE(lintText("src/exec/a.cc", clock_use).empty());
    EXPECT_TRUE(lintText("src/obs/a.cc", clock_use).empty());
    EXPECT_TRUE(lintText("bench/a.cc", clock_use).empty());
    EXPECT_TRUE(lintText("tests/sim/a.cc", clock_use).empty());
}

TEST(LintRules, StaticFunctionDeclarationsAreNotGlobalState)
{
    const std::string decls =
        "class T {\n"
        "    static T make();\n"
        "    static std::vector<int>\n"
        "    split(const std::string &text);\n"
        "};\n"
        "static int helper(int x) { return x; }\n";
    EXPECT_TRUE(lintText("src/sim/a.hh", decls).empty());
}

TEST(LintRules, MutableStaticIsFlaggedEvenMidLine)
{
    const auto findings = lintText(
        "src/sim/a.cc",
        "void tick() { static double last; last += 1.0; }\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-conc-global-state");
}

TEST(LintRules, GuardedAndAtomicGlobalsPass)
{
    EXPECT_TRUE(lintText("src/sim/a.cc",
                         "std::atomic<int> g_n{0};\n"
                         "Mutex g_mu;\n"
                         "std::map<int, int> g_m GUARDED_BY(g_mu);\n")
                    .empty());
}

TEST(LintRules, ConfigHashRuleNeedsBothTokens)
{
    const std::string clock_only =
        "double t() { return time(nullptr); }\n";
    const std::string both =
        "unsigned long experimentConfigHash();\n" + clock_only;
    EXPECT_TRUE(lintText("bench/a.cc", clock_only).empty());
    const auto findings = lintText("bench/a.cc", both);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-det-confighash");
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRules, SnprintfIsNotAStreamWrite)
{
    EXPECT_TRUE(
        lintText("src/sim/a.cc",
                 "void f(char *b) { std::snprintf(b, 4, \"x\"); }\n")
            .empty());
}

TEST(LintRules, CatchAllAcceptsRethrowAcrossLines)
{
    const std::string ok =
        "void g() {\n"
        "    try { r(); } catch (...) {\n"
        "        cleanup();\n"
        "        throw;\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(lintText("src/sim/a.cc", ok).empty());
    const std::string bad =
        "void g() {\n"
        "    try { r(); } catch (...) {\n"
        "        cleanup();\n"
        "    }\n"
        "}\n";
    const auto findings = lintText("src/sim/a.cc", bad);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-hyg-catch-all");
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRules, UncheckedTryFlagsStatementInitialCallsOnly)
{
    const std::string bad =
        "void f(SnapshotReader &r, Sim &sim) {\n"
        "    sim.tryRestore(r);\n"
        "}\n";
    const auto findings = lintText("src/sim/a.cc", bad);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-rob-unchecked-try");
    EXPECT_EQ(findings[0].line, 2);

    const std::string ok =
        "bool f(SnapshotReader &r, Sim &sim) {\n"
        "    const bool warm =\n"
        "        sim.tryRestore(r);\n"
        "    if (!tryDeserialize(t, &s))\n"
        "        return false;\n"
        "    return warm && sim.tryRestore(r);\n"
        "}\n"
        "bool\n"
        "tryRestoreAll(SnapshotReader &r)\n"
        "{\n"
        "    return r.atEnd();\n"
        "}\n";
    EXPECT_TRUE(lintText("src/sim/a.cc", ok).empty());
    // Out of scope: tests may exercise failure paths however they
    // like.
    EXPECT_TRUE(lintText("tests/sim/a.cc", bad).empty());
}

TEST(LintRules, JsonReportIsWellFormedAndOrdered)
{
    std::vector<Finding> findings = {
        {"src/b.cc", 2, "dora-det-rand", "m\"sg"},
        {"src/a.cc", 9, "dora-hyg-assert", "msg"},
    };
    const std::string json = dora::lint::renderJson(findings);
    EXPECT_NE(json.find("\"file\": \"src/b.cc\""), std::string::npos);
    EXPECT_NE(json.find("\\\"sg"), std::string::npos);
    EXPECT_EQ(json.front(), '[');
}

// ------------------------------------------------------------------ //
// Golden-file fixtures: one directory per rule                       //
// ------------------------------------------------------------------ //

namespace
{

/** Lint every fixture file under @p rule_dir with its virtual path. */
std::vector<std::string>
lintFixtureDir(const fs::path &rule_dir)
{
    std::vector<Finding> findings;
    std::vector<fs::path> files;
    for (const auto &entry :
         fs::recursive_directory_iterator(rule_dir))
        if (entry.is_regular_file() &&
            entry.path().filename() != "expect.txt")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        const std::string virtual_path =
            path.lexically_relative(rule_dir).generic_string();
        dora::lint::lintFile(scanSource(virtual_path, content.str()),
                             findings);
    }
    return keysOf(findings);
}

std::vector<std::string>
readExpect(const fs::path &expect_path)
{
    std::ifstream in(expect_path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

class LintGolden : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(LintGolden, FixtureFindingsMatchExpectFile)
{
    const fs::path rule_dir =
        fs::path(repoRoot()) / "tests/lint/fixtures" / GetParam();
    ASSERT_TRUE(fs::exists(rule_dir)) << rule_dir;
    ASSERT_TRUE(fs::exists(rule_dir / "expect.txt")) << rule_dir;
    EXPECT_EQ(lintFixtureDir(rule_dir),
              readExpect(rule_dir / "expect.txt"));
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintGolden,
    ::testing::Values("dora-det-rand", "dora-det-wallclock",
                      "dora-det-unordered", "dora-det-confighash",
                      "dora-conc-global-state",
                      "dora-conc-mutex-unannotated", "dora-hyg-stream",
                      "dora-hyg-catch-all", "dora-hyg-assert",
                      "dora-rob-unchecked-try",
                      "dora-perf-lane-alias"),
    [](const auto &info) {
        std::string name = info.param;
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(LintGoldenCoverage, EveryRuleHasAFixtureDirectory)
{
    const fs::path fixtures =
        fs::path(repoRoot()) / "tests/lint/fixtures";
    for (const auto &rule : dora::lint::ruleCatalog())
        EXPECT_TRUE(fs::is_directory(fixtures / rule.id))
            << "missing fixture dir for " << rule.id;
}

// ------------------------------------------------------------------ //
// Self-scan: the shipped tree must be clean                          //
// ------------------------------------------------------------------ //

TEST(LintSelfScan, ShippedTreeHasZeroFindings)
{
    std::vector<std::string> scanned;
    const auto findings = dora::lint::lintTree(
        repoRoot(), {"src", "tests", "bench", "tools/fleet"},
        &scanned);
    EXPECT_GT(scanned.size(), 100u)
        << "self-scan walked suspiciously few files — wrong root?";
    EXPECT_TRUE(findings.empty())
        << "tree is not lint-clean:\n"
        << dora::lint::renderText(findings);
}

TEST(LintSelfScan, FixtureFilesAreExcludedFromTreeWalks)
{
    std::vector<std::string> scanned;
    dora::lint::lintTree(repoRoot(), {"tests"}, &scanned);
    for (const auto &path : scanned)
        EXPECT_EQ(path.find("tests/lint/fixtures/"),
                  std::string::npos)
            << path;
}
