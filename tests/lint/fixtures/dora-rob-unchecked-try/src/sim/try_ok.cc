// Fixture: checked try*() results and look-alikes that must pass.
#include "common/logging.hh"
#include "common/snapshot.hh"

struct State
{
    bool tryRestore(dora::SnapshotReader &r);
};

bool
restoreChecked(dora::SnapshotReader &r, State &state)
{
    if (!state.tryRestore(r))
        return false;
    const bool ok =
        state.tryRestore(r);
    bool also_ok = state.tryRestore(r) && r.atEnd();
    if (!ok || !also_ok)
        dora::fatal("restore failed");
    return state.tryRestore(r);
}

bool
State::tryRestore(dora::SnapshotReader &r)
{
    return r.atEnd();
}

void
lowercaseIsNotFallible(dora::Mutex &mu)
{
    // try_lock is the std naming convention, not the snapshot
    // contract; a dedicated clang warning covers it.
    while (!mu.try_lock()) {
    }
    mu.unlock();
}
