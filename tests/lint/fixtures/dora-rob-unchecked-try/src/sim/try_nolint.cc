// Fixture: justified suppressions must silence the rule.
#include "common/snapshot.hh"

struct State
{
    bool tryRestore(dora::SnapshotReader &r);
};

void
restoreBestEffort(dora::SnapshotReader &r, State &state)
{
    // Best-effort warm-start: a stale snapshot just means a cold
    // start, so the verdict is intentionally irrelevant here.
    // NOLINTNEXTLINE(dora-rob-unchecked-try)
    state.tryRestore(r);
    state.tryRestore(r);  // NOLINT(dora-rob-unchecked-try)
}
