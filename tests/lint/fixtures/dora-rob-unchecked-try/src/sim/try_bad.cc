// Fixture: discarded try*() results the rule must flag.
#include "common/snapshot.hh"

struct State
{
    bool tryRestore(dora::SnapshotReader &r);
};

void
restoreAll(dora::SnapshotReader &r, State &state, State *other)
{
    state.tryRestore(r);
    other->tryRestore(r);
    (void)state.tryRestore(r);
    if (r.checksumOk())
        state.tryRestore(r);
}

bool
tryRestoreFreeStanding(dora::SnapshotReader &r)
{
    return r.atEnd();
}

void
freeCall(dora::SnapshotReader &r)
{
    tryRestoreFreeStanding(r);
}
