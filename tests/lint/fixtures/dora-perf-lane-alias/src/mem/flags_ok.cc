// Fixture: std::vector<bool> is fine in files without lane kernels.
#include <vector>
std::vector<bool> palette() { return {}; }
