// Fixture: suppressed by an inline justification.
struct Stream { unsigned hits; };
void bump(Stream *s)
{
    // dora:lane-kernel-begin
    // NOLINTNEXTLINE(dora-perf-lane-alias): fixture
    s->hits += 1;
    // dora:lane-kernel-end
}
