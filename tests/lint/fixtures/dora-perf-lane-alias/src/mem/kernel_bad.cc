// Fixture: AoS member access and bit-packed flags in a lane kernel.
#include <vector>
struct Stream { unsigned hits; };
void drain(Stream *s, std::vector<unsigned> &idx)
{
    std::vector<bool> seen(idx.size());
    // dora:lane-kernel-begin
    for (unsigned i = 0; i < idx.size(); ++i) {
        s->hits += idx.at(i);
        seen[i] = true;
    }
    // dora:lane-kernel-end
}
