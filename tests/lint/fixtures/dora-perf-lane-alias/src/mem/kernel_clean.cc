// Fixture: flat SoA indexing inside the region passes, and member
// access outside any region is untouched.
struct Stream { unsigned hits; };
void drain(Stream *s, const unsigned *idx, unsigned *tags, unsigned n)
{
    unsigned hits = s->hits;
    // dora:lane-kernel-begin
    for (unsigned i = 0; i < n; ++i)
        hits += tags[idx[i]];
    // dora:lane-kernel-end
    s->hits = hits;
}
