// Fixture: wall-clock read inside simulation code.
#include <chrono>
double now() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
