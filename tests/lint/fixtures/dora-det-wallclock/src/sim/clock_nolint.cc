// Fixture: suppressed with NOLINTNEXTLINE.
#include <ctime>
long stamp() {
    // NOLINTNEXTLINE(dora-det-wallclock)
    return time(nullptr);
}
