// Fixture: allowlisted path — host timing is src/exec's job.
#include <chrono>
double now() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
