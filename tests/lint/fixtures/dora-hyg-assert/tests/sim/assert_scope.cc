// Fixture: tests are out of scope for the assert rule.
#include <cassert>
void check(int sweeps) { assert(sweeps > 3); }
