// Fixture: suppressed (documented debug-only probe).
#include <cassert>
void check(int n) { assert(n > 0); } // NOLINT(dora-hyg-assert): fixture
