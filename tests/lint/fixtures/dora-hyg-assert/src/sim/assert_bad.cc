// Fixture: Release builds compile this guard away.
#include <cassert>
void check(int sweeps) { assert(sweeps > 3); }
