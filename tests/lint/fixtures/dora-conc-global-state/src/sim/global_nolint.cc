// Fixture: justified single-threaded registration table.
// NOLINTNEXTLINE(dora-conc-global-state)
int g_registrations = 0;
