// Fixture: every static here is safe.
#include <atomic>
std::atomic<int> g_flag{0};
const int g_limit = 3;
constexpr double kStep = 0.5;
struct Helper { static Helper make(); };
static int squared(int x) { return x * x; }
