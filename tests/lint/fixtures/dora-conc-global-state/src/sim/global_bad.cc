// Fixture: unsynchronized mutable statics.
int g_tickCount = 0;
void tick() { static double lastValue; lastValue += 1.0; }
