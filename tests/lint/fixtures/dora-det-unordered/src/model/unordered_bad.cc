// Fixture: iteration-order-dependent accumulation risk.
#include <unordered_map>
std::unordered_map<int, double> g_sums; // declaration line flags
