// Fixture: justified use (keyed lookup only, never iterated).
#include <unordered_set>
// NOLINTNEXTLINE(dora-det-unordered)
std::unordered_set<int> g_seen;
