// Fixture: allowlisted path — obs never feeds result tables.
#include <unordered_map>
std::unordered_map<int, double> g_sums;
