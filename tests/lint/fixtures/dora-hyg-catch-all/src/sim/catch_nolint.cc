// Fixture: justified swallow (probing an optional backend).
void risky();
bool available() {
    try {
        risky();
        return true;
    } catch (...) { // NOLINT(dora-hyg-catch-all): fixture
        return false;
    }
}
