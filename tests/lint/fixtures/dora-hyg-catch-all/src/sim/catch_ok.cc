// Fixture: handler logs and rethrows.
void warn(const char *fmt, ...);
void risky();
void guard() {
    try {
        risky();
    } catch (...) {
        warn("risky failed");
        throw;
    }
}
