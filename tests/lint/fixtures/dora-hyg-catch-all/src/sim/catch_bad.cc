// Fixture: silent swallow.
void risky();
void guard() {
    try {
        risky();
    } catch (...) {
        // nothing: the fault vanishes
    }
}
