// Fixture: suppressed one-off diagnostic.
#include <cstdio>
void report(int n) {
    printf("%d\n", n); // NOLINT(dora-hyg-stream): fixture
}
