// Fixture: the log sink itself is the one allowlisted writer.
#include <cstdio>
void sinkWrite(const char *line) { std::fprintf(stderr, "%s\n", line); }
