// Fixture: unseeded RNG in simulation code (positive hits).
int noise() { return rand(); }
#include <random>
std::random_device g_entropy; // also dora-conc-global-state exempt: matches det-rand line
