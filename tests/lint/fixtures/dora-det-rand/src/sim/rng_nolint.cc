// Fixture: suppressed by an inline justification.
int noise() { return rand(); } // NOLINT(dora-det-rand): fixture
