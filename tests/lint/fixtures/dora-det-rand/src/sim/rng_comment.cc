// Fixture: rand() and std::random_device in comments/strings only.
/* calling rand() here would be bad */
const char *kDoc = "never call srand( in simulation code";
int seeded() { return 4; }
