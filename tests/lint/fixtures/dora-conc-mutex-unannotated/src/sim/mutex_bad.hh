// Fixture: mutex member but nothing is GUARDED_BY it.
#include <mutex>
class Cache {
    std::mutex mutex_;
    int hits_ = 0;
};
