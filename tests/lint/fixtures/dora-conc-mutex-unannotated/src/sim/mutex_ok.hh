// Fixture: annotated guarded field satisfies the rule.
#include "common/mutex.hh"
class Cache {
    dora::Mutex mutex_;
    int hits_ GUARDED_BY(mutex_) = 0;
};
