// Fixture: justified unannotated mutex.
#include <mutex>
class Cache {
    std::mutex mutex_; // NOLINT(dora-conc-mutex-unannotated): fixture
    int hits_ = 0;
};
