// Fixture: wall-clock is fine in bench files that do not touch the
// config hash (benches measure host speedups on purpose).
#include <chrono>
double wall() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
