// Fixture: suppressed wall-clock near the config hash.
#include <chrono>
unsigned long experimentConfigHash();
double salt() {
    // NOLINTNEXTLINE(dora-det-confighash)
    return std::chrono::system_clock::now().time_since_epoch().count();
}
