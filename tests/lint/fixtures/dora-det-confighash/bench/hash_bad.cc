// Fixture: wall-clock token in a file feeding the config hash.
#include <chrono>
unsigned long experimentConfigHash();
double salt() {
    return std::chrono::system_clock::now().time_since_epoch().count();
}
