/**
 * @file
 * Deterministic fuzz smoke tests for every deserializer that accepts
 * bytes from outside the process: snapshot restore paths
 * (QuantileSketch, RunningStat), FleetShardAggregate blobs, the
 * supervisor/worker wire-frame parser, the results journal, run-
 * measurement payloads, and ModelBundle text blobs.
 *
 * The contract under test is uniform: feed a corrupted input and the
 * decoder must return failure (or truncate, for the journal) without
 * crashing, hanging, or reading out of bounds. Two corpora per
 * target, both seeded from a fixed Rng so failures replay exactly:
 *
 *   - single-bit flips of a valid serialized blob (the torn-write /
 *     cosmic-ray shape checksums exist to catch), and
 *   - random byte strings of assorted lengths (the desynced-stream
 *     shape).
 *
 * These run in the normal ctest suite and therefore also under
 * scripts/run_sanitized_tests.sh, where ASan/UBSan turn any silent
 * out-of-bounds read into a hard failure.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/snapshot.hh"
#include "dora/model_bundle.hh"
#include "exec/proc/journal.hh"
#include "exec/proc/wire.hh"
#include "fleet/aggregate.hh"
#include "runner/experiment.hh"
#include "runner/measurement_io.hh"
#include "stats/quantile_sketch.hh"
#include "stats/running_stat.hh"

namespace dora
{
namespace
{

std::string
randomBytes(Rng &rng, size_t n)
{
    std::string bytes(n, '\0');
    for (size_t i = 0; i < n; ++i)
        bytes[i] = static_cast<char>(rng.below(256));
    return bytes;
}

std::string
flipBit(const std::string &blob, size_t bit)
{
    std::string mutant = blob;
    mutant[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    return mutant;
}

/**
 * Every single-bit mutant of @p blob, sampled down to @p max_mutants
 * when the blob is large; always includes truncations at a few
 * lengths (torn writes are prefixes, not bit flips).
 */
std::vector<std::string>
mutantCorpus(const std::string &blob, Rng &rng,
             size_t max_mutants = 4096)
{
    std::vector<std::string> corpus;
    const size_t bits = blob.size() * 8;
    if (bits <= max_mutants) {
        for (size_t bit = 0; bit < bits; ++bit)
            corpus.push_back(flipBit(blob, bit));
    } else {
        for (size_t i = 0; i < max_mutants; ++i)
            corpus.push_back(flipBit(blob, rng.below(bits)));
    }
    for (size_t cut = 0; cut < 8; ++cut)
        corpus.push_back(blob.substr(0, rng.below(blob.size() + 1)));
    corpus.push_back("");
    return corpus;
}

RunMeasurement
sampleMeasurement(Rng &rng)
{
    RunMeasurement m;
    m.workload = "amazon/kernel:bfs";
    m.governor = "dora";
    m.loadTimeSec = rng.uniform(0.5, 8.0);
    m.pageFinished = rng.chance(0.9);
    m.meetsDeadline = rng.chance(0.7);
    m.censored = !m.pageFinished;
    m.energyJ = rng.uniform(1.0, 30.0);
    return m;
}

} // namespace

// ------------------------------------------------------------------ //
// Snapshot restore paths                                              //
// ------------------------------------------------------------------ //

TEST(FuzzSmoke, QuantileSketchRestoreSurvivesCorruption)
{
    Rng rng("fuzz:sketch");
    QuantileSketch seed;
    for (int i = 0; i < 500; ++i)
        seed.push(rng.uniform(0.0, 10.0));
    SnapshotWriter w;
    seed.snapshot(w);
    const std::string blob = w.finish();

    // The pristine blob must still round-trip.
    {
        SnapshotReader r(blob);
        QuantileSketch restored;
        ASSERT_TRUE(r.checksumOk());
        ASSERT_TRUE(restored.tryRestore(r));
    }
    for (const std::string &mutant : mutantCorpus(blob, rng)) {
        SnapshotReader r(mutant);
        QuantileSketch victim;
        if (!victim.tryRestore(r)) {
            // Rejected: victim must still be usable.
            victim.push(1.0);
        }
    }
    for (int i = 0; i < 256; ++i) {
        const std::string junk = randomBytes(rng, rng.below(512));
        SnapshotReader r(junk);
        QuantileSketch victim;
        EXPECT_FALSE(victim.tryRestore(r)) << "junk blob accepted";
    }
}

TEST(FuzzSmoke, RunningStatRestoreSurvivesCorruption)
{
    Rng rng("fuzz:runningstat");
    RunningStat seed;
    for (int i = 0; i < 100; ++i)
        seed.push(rng.gaussian(5.0, 2.0));
    SnapshotWriter w;
    seed.snapshot(w);
    const std::string blob = w.finish();

    for (const std::string &mutant : mutantCorpus(blob, rng)) {
        SnapshotReader r(mutant);
        RunningStat victim;
        (void)victim.tryRestore(r);
        victim.push(1.0);
    }
    for (int i = 0; i < 256; ++i) {
        SnapshotReader r(randomBytes(rng, rng.below(256)));
        RunningStat victim;
        EXPECT_FALSE(victim.tryRestore(r));
    }
}

// ------------------------------------------------------------------ //
// Fleet aggregate blobs                                               //
// ------------------------------------------------------------------ //

TEST(FuzzSmoke, FleetAggregateDeserializeSurvivesCorruption)
{
    Rng rng("fuzz:aggregate");
    FleetShardAggregate seed = FleetShardAggregate::forChunk(2, 0);
    for (uint64_t device = 0; device < 4; ++device)
        for (size_t gov = 0; gov < 2; ++gov)
            seed.pushCell(gov, device % 2 ? "hot" : "cold", gov == 0,
                          sampleMeasurement(rng));
    const std::string blob = seed.serialize();

    FleetShardAggregate restored;
    ASSERT_TRUE(restored.tryDeserialize(blob));
    EXPECT_EQ(restored.digest(), seed.digest());

    for (const std::string &mutant : mutantCorpus(blob, rng)) {
        FleetShardAggregate victim;
        (void)victim.tryDeserialize(mutant);
    }
    for (int i = 0; i < 256; ++i) {
        FleetShardAggregate victim;
        EXPECT_FALSE(
            victim.tryDeserialize(randomBytes(rng, rng.below(1024))));
    }
}

// ------------------------------------------------------------------ //
// Wire frames                                                         //
// ------------------------------------------------------------------ //

TEST(FuzzSmoke, FrameParserSurvivesCorruptedFrames)
{
    Rng rng("fuzz:wire");
    Frame frame;
    frame.type = FrameType::Result;
    frame.unit = 42;
    frame.attempt = 2;
    frame.payload = randomBytes(rng, 200);
    const std::string wire = encodeFrame(frame);

    // Pristine frame round-trips.
    {
        FrameParser parser;
        parser.feed(wire.data(), wire.size());
        Frame out;
        ASSERT_TRUE(parser.next(&out));
        EXPECT_EQ(out.unit, frame.unit);
        EXPECT_EQ(out.payload, frame.payload);
        EXPECT_FALSE(parser.corrupted());
    }
    for (const std::string &mutant : mutantCorpus(wire, rng)) {
        FrameParser parser;
        parser.feed(mutant.data(), mutant.size());
        Frame out;
        // Drain until exhaustion; a flipped bit either corrupts the
        // stream or (flips inside the payload cannot be distinguished
        // from data by magic alone) fails the checksum — both paths
        // must terminate.
        while (parser.next(&out)) {
        }
    }
    for (int i = 0; i < 128; ++i) {
        FrameParser parser;
        const std::string junk = randomBytes(rng, rng.below(2048));
        // Fragmented delivery: pipes hand the parser arbitrary chunks.
        size_t pos = 0;
        while (pos < junk.size()) {
            const size_t n =
                std::min(junk.size() - pos, 1 + rng.below(97));
            parser.feed(junk.data() + pos, n);
            pos += n;
            Frame out;
            while (parser.next(&out)) {
            }
        }
    }
}

TEST(FuzzSmoke, FrameParserByteAtATimeMatchesBulkFeed)
{
    Rng rng("fuzz:wire2");
    std::string stream;
    for (uint64_t unit = 0; unit < 5; ++unit) {
        Frame f;
        f.type = FrameType::Heartbeat;
        f.unit = unit;
        f.attempt = 1;
        f.payload = randomBytes(rng, rng.below(64));
        stream += encodeFrame(f);
    }
    FrameParser parser;
    uint64_t decoded = 0;
    for (char byte : stream) {
        parser.feed(&byte, 1);
        Frame out;
        while (parser.next(&out)) {
            EXPECT_EQ(out.unit, decoded);
            ++decoded;
        }
    }
    EXPECT_EQ(decoded, 5u);
    EXPECT_FALSE(parser.corrupted());
}

// ------------------------------------------------------------------ //
// Results journal                                                     //
// ------------------------------------------------------------------ //

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(FuzzSmoke, JournalOpenSurvivesCorruptedFiles)
{
    Rng rng("fuzz:journal");
    const std::string dir = ::testing::TempDir();
    const std::string golden = dir + "fuzz_journal_golden.bin";
    const std::string victim = dir + "fuzz_journal_victim.bin";
    constexpr uint64_t kHash = 0xD0DAD0DAull;
    constexpr uint64_t kUnits = 16;

    std::remove(golden.c_str());
    {
        ResultsJournal journal;
        ASSERT_TRUE(journal.open(golden, kHash, kUnits));
        ASSERT_TRUE(journal.append(0, "alpha"));
        ASSERT_TRUE(journal.append(1, randomBytes(rng, 64)));
        ASSERT_TRUE(journal.append(2, "gamma"));
    }
    const std::string blob = slurp(golden);
    ASSERT_FALSE(blob.empty());

    // 160 random single-bit flips: open() must either refuse (header
    // damage), or succeed having dropped/truncated damaged records —
    // and an accepted journal must still take appends.
    for (int i = 0; i < 160; ++i) {
        spit(victim, flipBit(blob, rng.below(blob.size() * 8)));
        ResultsJournal journal;
        if (journal.open(victim, kHash, kUnits)) {
            EXPECT_LE(journal.loaded().size(), 3u);
            EXPECT_TRUE(journal.append(3, "delta"));
        } else {
            EXPECT_FALSE(journal.error().empty());
        }
    }
    // Truncations: every prefix is at worst a torn tail.
    for (int i = 0; i < 32; ++i) {
        spit(victim, blob.substr(0, rng.below(blob.size() + 1)));
        ResultsJournal journal;
        (void)journal.open(victim, kHash, kUnits);
    }
    // Random garbage files.
    for (int i = 0; i < 32; ++i) {
        spit(victim, randomBytes(rng, rng.below(512)));
        ResultsJournal journal;
        (void)journal.open(victim, kHash, kUnits);
    }
    std::remove(golden.c_str());
    std::remove(victim.c_str());
}

// ------------------------------------------------------------------ //
// Run-measurement payloads and model-bundle text                      //
// ------------------------------------------------------------------ //

TEST(FuzzSmoke, RunMeasurementDecodeSurvivesCorruption)
{
    Rng rng("fuzz:measurement");
    const std::string blob =
        serializeRunMeasurement(sampleMeasurement(rng));
    RunMeasurement round_trip;
    ASSERT_TRUE(tryDeserializeRunMeasurement(blob, &round_trip));

    for (const std::string &mutant : mutantCorpus(blob, rng)) {
        RunMeasurement out;
        (void)tryDeserializeRunMeasurement(mutant, &out);
    }
    for (int i = 0; i < 256; ++i) {
        RunMeasurement out;
        (void)tryDeserializeRunMeasurement(
            randomBytes(rng, rng.below(256)), &out);
    }
}

TEST(FuzzSmoke, ModelBundleDeserializeSurvivesCorruption)
{
    Rng rng("fuzz:bundle");
    const std::string blob = ModelBundle().serialize();
    ASSERT_FALSE(blob.empty());

    for (const std::string &mutant : mutantCorpus(blob, rng)) {
        std::string diagnostic;
        const ModelBundle out =
            ModelBundle::deserialize(mutant, &diagnostic);
        // A mutated blob that parses must also have validated; a
        // rejected one must say why.
        if (!out.ready()) {
            EXPECT_FALSE(diagnostic.empty());
        }
    }
    for (int i = 0; i < 128; ++i) {
        std::string diagnostic;
        const ModelBundle out = ModelBundle::deserialize(
            randomBytes(rng, rng.below(2048)), &diagnostic);
        EXPECT_FALSE(out.ready());
    }
}

} // namespace dora
