/**
 * @file
 * QuantileSketch property suite (DESIGN.md §5i):
 *
 *  - exact mode reproduces EmpiricalCdf's nearest-rank quantiles
 *    bit-for-bit;
 *  - compacted mode keeps every quantile's rank error inside a small
 *    fraction of N on assorted random distributions;
 *  - merging exact shards — any contiguous split of one sample
 *    stream — folds to bit-identical sketch state;
 *  - the compacted campaign fold is canonical: folding exact chunks
 *    of ANY width equals pushing every sample one at a time;
 *  - snapshot round-trips restore bit-identical state (the aggregate
 *    checkpoint path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/snapshot.hh"
#include "stats/cdf.hh"
#include "stats/quantile_sketch.hh"

namespace dora
{
namespace
{

/** Assorted shapes: uniform, gaussian, heavy-tail, and clustered. */
std::vector<double>
drawSamples(uint64_t seed, size_t n, int shape)
{
    Rng rng(seed);
    std::vector<double> xs;
    xs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        switch (shape) {
          case 0:
            xs.push_back(rng.uniform());
            break;
          case 1:
            xs.push_back(rng.gaussian(5.0, 2.0));
            break;
          case 2:
            xs.push_back(std::exp(rng.gaussian(0.0, 1.5)));
            break;
          default:
            // Two tight clusters: quantiles jump across the gap.
            xs.push_back((rng.uniform() < 0.7 ? 1.0 : 100.0) +
                         0.01 * rng.uniform());
            break;
        }
    }
    return xs;
}

/** Rank of @p value in @p sorted (count of samples <= value). */
size_t
rankOf(const std::vector<double> &sorted, double value)
{
    return static_cast<size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), value) -
        sorted.begin());
}

TEST(QuantileSketch, EmptyAndSingle)
{
    QuantileSketch s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(s.exact());
    s.push(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.quantile(0.0), 42.0);
    EXPECT_EQ(s.quantile(0.5), 42.0);
    EXPECT_EQ(s.quantile(1.0), 42.0);
}

TEST(QuantileSketch, ExactModeMatchesEmpiricalCdf)
{
    for (int shape = 0; shape < 4; ++shape) {
        const std::vector<double> xs =
            drawSamples(11 + shape, 500, shape);
        QuantileSketch sketch;
        EmpiricalCdf cdf;
        for (double x : xs) {
            sketch.push(x);
            cdf.push(x);
        }
        cdf.seal();
        ASSERT_TRUE(sketch.exact());
        for (double q :
             {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0})
            EXPECT_EQ(sketch.quantile(q), cdf.quantile(q))
                << "shape " << shape << " q " << q;
    }
}

TEST(QuantileSketch, RankErrorBoundedOnRandomDistributions)
{
    const size_t n = 20000;
    for (int shape = 0; shape < 4; ++shape) {
        std::vector<double> xs = drawSamples(29 + shape, n, shape);
        QuantileSketch sketch;
        for (double x : xs)
            sketch.push(x);
        EXPECT_FALSE(sketch.exact());
        EXPECT_EQ(sketch.count(), n);

        std::vector<double> sorted = xs;
        std::sort(sorted.begin(), sorted.end());
        // MRL-style analysis for k=200, n=20k gives ~1.7% worst-case
        // rank error; 4% leaves slack without losing the property.
        const double tol = 0.04 * static_cast<double>(n);
        for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
            const double v = sketch.quantile(q);
            const double target = q * static_cast<double>(n);
            const double got =
                static_cast<double>(rankOf(sorted, v));
            EXPECT_NEAR(got, target, tol)
                << "shape " << shape << " q " << q;
        }
    }
}

TEST(QuantileSketch, ExactShardSplitsMergeBitIdentically)
{
    const std::vector<double> xs = drawSamples(47, 800, 1);
    QuantileSketch whole;
    for (double x : xs)
        whole.push(x);
    ASSERT_TRUE(whole.exact());

    Rng splits(13);
    for (int trial = 0; trial < 8; ++trial) {
        QuantileSketch folded;
        size_t at = 0;
        while (at < xs.size()) {
            const size_t len = 1 +
                static_cast<size_t>(splits.uniform() * 200.0);
            QuantileSketch shard;
            for (size_t i = at; i < std::min(at + len, xs.size()); ++i)
                shard.push(xs[i]);
            folded.merge(shard);
            at += len;
        }
        EXPECT_EQ(folded.stateBytes(), whole.stateBytes())
            << "trial " << trial;
    }
}

TEST(QuantileSketch, CompactedFoldIsCanonical)
{
    // The campaign invariant: folding exact chunks of ANY width into
    // a (compacting) prefix equals pushing every sample one at a
    // time — the state is a pure function of the global sample order.
    const std::vector<double> xs = drawSamples(59, 5000, 2);
    QuantileSketch one_by_one;
    for (double x : xs)
        one_by_one.push(x);
    EXPECT_FALSE(one_by_one.exact());

    for (const size_t width : {137u, 512u, 1000u}) {
        QuantileSketch folded;
        for (size_t at = 0; at < xs.size(); at += width) {
            QuantileSketch chunk;
            for (size_t i = at; i < std::min(at + width, xs.size());
                 ++i)
                chunk.push(xs[i]);
            ASSERT_TRUE(chunk.exact());
            folded.merge(chunk);
        }
        EXPECT_EQ(folded.stateBytes(), one_by_one.stateBytes())
            << "chunk width " << width;
    }
}

TEST(QuantileSketch, SnapshotRoundTripPreservesState)
{
    for (const size_t n : {10u, 5000u}) {  // exact and compacted
        const std::vector<double> xs = drawSamples(71, n, 3);
        QuantileSketch sketch;
        for (double x : xs)
            sketch.push(x);

        SnapshotWriter w;
        sketch.snapshot(w);
        const std::string bytes = w.finish();
        SnapshotReader r(bytes);
        ASSERT_TRUE(r.checksumOk());
        QuantileSketch restored;
        ASSERT_TRUE(restored.tryRestore(r));
        EXPECT_EQ(restored.stateBytes(), sketch.stateBytes());

        // The checkpoint-resume shape: a restored prefix must keep
        // folding new exact chunks exactly like the original.
        QuantileSketch tail;
        for (double x : drawSamples(73, 100, 0))
            tail.push(x);
        sketch.merge(tail);
        restored.merge(tail);
        EXPECT_EQ(restored.stateBytes(), sketch.stateBytes());
    }
}

TEST(QuantileSketchDeath, BadConfigAndEmptyQuantilePanic)
{
    EXPECT_DEATH(QuantileSketch(4), "k");
    QuantileSketch s;
    EXPECT_DEATH(s.quantile(0.5), "empty");
}

TEST(EmpiricalCdf, MeanSurvivesAdversarialMagnitudes)
{
    // Regression: mean() used naive left-to-right summation; with a
    // huge/tiny magnitude mix the small terms vanished entirely
    // (catastrophic absorption), so the mean came back 0. The
    // Neumaier-compensated sum keeps them.
    EmpiricalCdf cdf;
    cdf.push(1e16);
    for (int i = 0; i < 100; ++i)
        cdf.push(1.0);
    cdf.push(-1e16);
    cdf.seal();
    EXPECT_DOUBLE_EQ(cdf.mean(), 100.0 / 102.0);
}

} // namespace
} // namespace dora
