/**
 * @file
 * Unit tests for RunningStat, EmpiricalCdf, and Histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "exec/thread_pool.hh"
#include "stats/cdf.hh"
#include "stats/running_stat.hh"

namespace dora
{
namespace
{

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    RunningStat a, b, both;
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        (i % 2 ? a : b).push(x);
        both.push(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), both.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), both.min());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.push(1.0);
    a.push(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStat b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.push(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(EmpiricalCdf, FractionAtOrBelow)
{
    EmpiricalCdf cdf;
    cdf.push({1.0, 2.0, 3.0, 4.0});
    cdf.seal();
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(99.0), 1.0);
}

TEST(EmpiricalCdf, Quantiles)
{
    EmpiricalCdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.push(static_cast<double>(i));
    cdf.seal();
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.9), 90.0);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
    EXPECT_DOUBLE_EQ(cdf.mean(), 50.5);
}

TEST(EmpiricalCdf, SeriesIsMonotone)
{
    EmpiricalCdf cdf;
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        cdf.push(rng.gaussian());
    cdf.seal();
    const auto series = cdf.series(20);
    ASSERT_EQ(series.size(), 20u);
    for (size_t i = 1; i < series.size(); ++i) {
        EXPECT_LE(series[i - 1].first, series[i].first);
        EXPECT_LE(series[i - 1].second, series[i].second);
    }
    EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(EmpiricalCdf, PushAfterSealUnsealsAndResealResorts)
{
    EmpiricalCdf cdf;
    EXPECT_TRUE(cdf.sealed()); // an empty CDF is trivially sorted
    cdf.push(2.0);
    EXPECT_FALSE(cdf.sealed());
    cdf.seal();
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(2.0), 1.0);
    cdf.push(1.0);
    EXPECT_FALSE(cdf.sealed());
    cdf.seal();
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
}

TEST(EmpiricalCdfDeath, UnsealedQueryPanics)
{
    EmpiricalCdf cdf;
    cdf.push(2.0);
    cdf.push(1.0);
    EXPECT_DEATH(cdf.quantile(0.5), "unsealed");
    EXPECT_DEATH(cdf.min(), "unsealed");
    EXPECT_DEATH(cdf.fractionAtOrBelow(1.5), "unsealed");
    EXPECT_DEATH(cdf.series(4), "unsealed");
}

// TSan regression for the lazy-sort-under-const race this API replaced:
// one sealed CDF queried concurrently from parallelMap workers must be
// a pure read. (The test name matches the ParallelMap pattern in
// scripts/run_sanitized_tests.sh so it runs in the TSan leg.)
TEST(ParallelMapCdf, SealedSharedQueriesAreRaceFree)
{
    EmpiricalCdf cdf;
    Rng rng(11);
    for (int i = 0; i < 4096; ++i)
        cdf.push(rng.gaussian());
    cdf.seal();

    const auto p95 = parallelMap<double>(
        64,
        [&](size_t i) {
            const double q = static_cast<double>(i % 100) / 100.0;
            (void)cdf.fractionAtOrBelow(q);
            (void)cdf.min();
            (void)cdf.max();
            return cdf.quantile(0.95);
        },
        4);
    for (double v : p95)
        EXPECT_DOUBLE_EQ(v, cdf.quantile(0.95));
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.push(0.5);    // bin 0
    h.push(9.99);   // bin 9
    h.push(-5.0);   // clamps to bin 0
    h.push(50.0);   // clamps to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, UniformFill)
{
    Histogram h(0.0, 1.0, 4);
    Rng rng(21);
    for (int i = 0; i < 40000; ++i)
        h.push(rng.uniform());
    for (int b = 0; b < 4; ++b)
        EXPECT_NEAR(static_cast<double>(h.binCount(b)), 10000.0, 400.0);
}

} // namespace
} // namespace dora
