/**
 * @file
 * Tests for the fault-injection subsystem: the signal cache, the
 * injector's determinism and strict no-op guarantee, the thermal
 * throttle shim, the harness actuator-retry path, and the hardened
 * governors' handling of degenerate GovernorView inputs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "browser/page_corpus.hh"
#include "fault/fault_injector.hh"
#include "fault/signal_cache.hh"
#include "fault/thermal_throttle.hh"
#include "governor/governor.hh"
#include "runner/experiment.hh"

namespace dora
{
namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SignalCache, ServesFreshValue)
{
    SignalCache cache(0.5);
    cache.push(1.0, 5.0);
    EXPECT_TRUE(cache.fresh(1.2));
    EXPECT_DOUBLE_EQ(cache.value(1.2, 9.0), 5.0);
    EXPECT_DOUBLE_EQ(cache.ageSec(1.2), 0.2);
}

TEST(SignalCache, ExactlyAtStalenessBoundaryIsFresh)
{
    // The deadline is inclusive: a value whose age equals the
    // staleness window is still served (now - last == staleness).
    // This is the boundary a <-vs-<= regression would flip.
    SignalCache cache(0.5);
    cache.push(1.0, 5.0);
    EXPECT_TRUE(cache.fresh(1.5));
    EXPECT_DOUBLE_EQ(cache.value(1.5, 9.0), 5.0);
    EXPECT_DOUBLE_EQ(cache.ageSec(1.5), cache.stalenessSec());
    // One tick past the boundary falls back.
    EXPECT_FALSE(cache.fresh(1.5 + 1e-9));
    EXPECT_DOUBLE_EQ(cache.value(1.5 + 1e-9, 9.0), 9.0);
}

TEST(SignalCache, StaleValueFallsBack)
{
    SignalCache cache(0.5);
    cache.push(1.0, 5.0);
    EXPECT_FALSE(cache.fresh(1.6));
    EXPECT_DOUBLE_EQ(cache.value(1.6, 9.0), 9.0);
}

TEST(SignalCache, EmptyCacheIsStale)
{
    SignalCache cache(0.5);
    EXPECT_FALSE(cache.fresh(0.0));
    EXPECT_DOUBLE_EQ(cache.value(0.0, 7.0), 7.0);
    EXPECT_TRUE(std::isinf(cache.ageSec(0.0)));
}

TEST(SignalCache, ResetForgets)
{
    SignalCache cache(0.5);
    cache.push(1.0, 5.0);
    cache.reset();
    EXPECT_FALSE(cache.fresh(1.0));
    EXPECT_DOUBLE_EQ(cache.value(1.0, 3.0), 3.0);
}

TEST(FaultSchedule, DefaultAndCannedSchedules)
{
    EXPECT_TRUE(FaultSchedule::none().empty());
    EXPECT_TRUE(FaultSchedule().empty());
    EXPECT_FALSE(FaultSchedule::sensorDropout(1).empty());
    EXPECT_FALSE(FaultSchedule::stuckSensor(1).empty());
    EXPECT_FALSE(FaultSchedule::noisySensor(1).empty());
    EXPECT_FALSE(FaultSchedule::actuatorReject(1).empty());
    EXPECT_FALSE(FaultSchedule::thermalEmergency(1).empty());
    EXPECT_FALSE(FaultSchedule::combined(1).empty());
}

GovernorView
sampleView(const FreqTable &table, double now)
{
    GovernorView view;
    view.nowSec = now;
    view.freqIndex = 5;
    view.freqTable = &table;
    view.totalUtilization = 0.73;
    view.browserUtilization = 0.61;
    view.corunUtilization = 0.42;
    view.l2Mpki = 3.14;
    view.temperatureC = 51.5;
    view.deadlineSec = 3.0;
    return view;
}

TEST(FaultInjector, EmptyScheduleIsStrictNoOp)
{
    const FreqTable table = FreqTable::msm8974();
    FaultInjector injector(FaultSchedule::none());
    EXPECT_FALSE(injector.enabled());

    GovernorView view = sampleView(table, 2.0);
    const GovernorView before = view;
    injector.conditionView(view);
    EXPECT_DOUBLE_EQ(view.totalUtilization, before.totalUtilization);
    EXPECT_DOUBLE_EQ(view.browserUtilization,
                     before.browserUtilization);
    EXPECT_DOUBLE_EQ(view.corunUtilization, before.corunUtilization);
    EXPECT_DOUBLE_EQ(view.l2Mpki, before.l2Mpki);
    EXPECT_DOUBLE_EQ(view.temperatureC, before.temperatureC);

    EXPECT_TRUE(injector.actuatorAccepts(2.0, 9, 5));
    EXPECT_DOUBLE_EQ(injector.ambientDeltaC(2.0), 0.0);
    EXPECT_EQ(injector.counters().sensorDrops, 0u);
    EXPECT_EQ(injector.counters().actuatorRejects, 0u);
    EXPECT_EQ(injector.counters().thermalSpikes, 0u);
}

TEST(FaultInjector, SameSeedSameFaultStream)
{
    const FreqTable table = FreqTable::msm8974();
    FaultInjector a(FaultSchedule::combined(7));
    FaultInjector b(FaultSchedule::combined(7));
    for (int i = 0; i < 50; ++i) {
        const double now = 0.1 * i;
        GovernorView va = sampleView(table, now);
        GovernorView vb = sampleView(table, now);
        va.l2Mpki = vb.l2Mpki = 1.0 + i;
        a.conditionView(va);
        b.conditionView(vb);
        EXPECT_DOUBLE_EQ(va.l2Mpki, vb.l2Mpki) << i;
        EXPECT_DOUBLE_EQ(va.totalUtilization, vb.totalUtilization)
            << i;
        EXPECT_DOUBLE_EQ(va.temperatureC, vb.temperatureC) << i;
        EXPECT_EQ(a.actuatorAccepts(now, 9, 5),
                  b.actuatorAccepts(now, 9, 5))
            << i;
        EXPECT_DOUBLE_EQ(a.ambientDeltaC(now), b.ambientDeltaC(now))
            << i;
    }
}

TEST(FaultInjector, ResetReplaysTheSameStream)
{
    const FreqTable table = FreqTable::msm8974();
    FaultInjector injector(FaultSchedule::combined(11));
    std::vector<double> first;
    for (int i = 0; i < 30; ++i) {
        GovernorView v = sampleView(table, 0.1 * i);
        injector.conditionView(v);
        first.push_back(v.l2Mpki);
        first.push_back(v.totalUtilization);
    }
    injector.reset();
    EXPECT_EQ(injector.counters().sensorDrops, 0u);
    for (int i = 0; i < 30; ++i) {
        GovernorView v = sampleView(table, 0.1 * i);
        injector.conditionView(v);
        EXPECT_DOUBLE_EQ(v.l2Mpki, first[2 * i]) << i;
        EXPECT_DOUBLE_EQ(v.totalUtilization, first[2 * i + 1]) << i;
    }
}

TEST(FaultInjector, AllDropsServeFailSafeDefaults)
{
    // Drop probability 1 means no reading is ever cached: the consumer
    // must get the conservative defaults (full load, zero MPKI, hot
    // die), not garbage or stale zeros.
    const FreqTable table = FreqTable::msm8974();
    FaultSchedule schedule;
    schedule.sensorDropProb = 1.0;
    FaultInjector injector(schedule);
    GovernorView view = sampleView(table, 1.0);
    injector.conditionView(view);
    EXPECT_DOUBLE_EQ(view.totalUtilization,
                     FaultInjector::kFallbackUtilization);
    EXPECT_DOUBLE_EQ(view.l2Mpki, FaultInjector::kFallbackL2Mpki);
    EXPECT_DOUBLE_EQ(view.temperatureC,
                     FaultInjector::kFallbackTemperatureC);
    EXPECT_GT(injector.counters().sensorDrops, 0u);
    EXPECT_GT(injector.counters().staleFallbacks, 0u);
}

TEST(FaultInjector, StuckSensorLatchesItsValue)
{
    const FreqTable table = FreqTable::msm8974();
    FaultSchedule schedule;
    schedule.sensorStuckProb = 1.0;
    schedule.sensorStuckDurationSec = 0.5;
    FaultInjector injector(schedule);

    GovernorView v0 = sampleView(table, 0.0);
    v0.l2Mpki = 5.0;
    injector.conditionView(v0);
    EXPECT_DOUBLE_EQ(v0.l2Mpki, 5.0);  // latched at the true value

    GovernorView v1 = sampleView(table, 0.2);
    v1.l2Mpki = 50.0;
    injector.conditionView(v1);
    EXPECT_DOUBLE_EQ(v1.l2Mpki, 5.0);  // still serving the latch
    EXPECT_GT(injector.counters().sensorStuckIntervals, 0u);
}

TEST(FaultInjector, ActuatorRejectAllRefusesChanges)
{
    FaultSchedule schedule;
    schedule.actuatorRejectProb = 1.0;
    FaultInjector injector(schedule);
    EXPECT_FALSE(injector.actuatorAccepts(1.0, 9, 5));
    // Writing the current index is free on the real path too.
    EXPECT_TRUE(injector.actuatorAccepts(1.0, 5, 5));
    EXPECT_EQ(injector.counters().actuatorRejects, 1u);
}

TEST(FaultInjector, ThermalSpikeWindows)
{
    FaultSchedule schedule;
    schedule.thermalSpikeProb = 1.0;
    schedule.thermalSpikeDeltaC = 30.0;
    schedule.thermalSpikeDurationSec = 1.0;
    FaultInjector injector(schedule);
    EXPECT_DOUBLE_EQ(injector.ambientDeltaC(0.0), 30.0);
    EXPECT_DOUBLE_EQ(injector.ambientDeltaC(0.5), 30.0);
    EXPECT_EQ(injector.counters().thermalSpikes, 1u);
    // Past the window a new spike is drawn (probability 1 here).
    EXPECT_DOUBLE_EQ(injector.ambientDeltaC(1.5), 30.0);
    EXPECT_EQ(injector.counters().thermalSpikes, 2u);
}

class ThermalThrottleTest : public ::testing::Test
{
  protected:
    ThermalThrottleTest() : table_(FreqTable::msm8974()) {}

    GovernorView viewAt(double temp_c)
    {
        GovernorView view;
        view.freqIndex = table_.maxIndex();
        view.freqTable = &table_;
        view.temperatureC = temp_c;
        return view;
    }

    FreqTable table_;
};

TEST_F(ThermalThrottleTest, CeilingIndexRespectsCeiling)
{
    PerformanceGovernor inner;
    ThermalThrottleShim shim(inner);
    const size_t ceiling = shim.ceilingIndex(table_);
    EXPECT_LE(table_.opp(ceiling).coreMhz, shim.config().ceilingMhz);
    EXPECT_LT(ceiling, table_.maxIndex());
}

TEST_F(ThermalThrottleTest, HysteresisTripsAndReleases)
{
    PerformanceGovernor inner;
    ThermalThrottleShim shim(inner);
    const size_t ceiling = shim.ceilingIndex(table_);

    // Below critical: the inner decision passes through.
    EXPECT_EQ(shim.decideFrequencyIndex(viewAt(84.0)),
              table_.maxIndex());
    EXPECT_FALSE(shim.throttled());

    // At/past critical: clamped.
    EXPECT_EQ(shim.decideFrequencyIndex(viewAt(86.0)), ceiling);
    EXPECT_TRUE(shim.throttled());
    EXPECT_EQ(shim.interventions(), 1u);

    // In the hysteresis band (80..85): the clamp is held.
    EXPECT_EQ(shim.decideFrequencyIndex(viewAt(82.0)), ceiling);
    EXPECT_TRUE(shim.throttled());

    // A non-finite reading holds the previous (tripped) state.
    EXPECT_EQ(shim.decideFrequencyIndex(viewAt(kNan)), ceiling);
    EXPECT_TRUE(shim.throttled());

    // Below the release point: free again.
    EXPECT_EQ(shim.decideFrequencyIndex(viewAt(79.0)),
              table_.maxIndex());
    EXPECT_FALSE(shim.throttled());
    EXPECT_EQ(shim.interventions(), 1u);
}

TEST_F(ThermalThrottleTest, KeepsInnerNameAndInterval)
{
    InteractiveGovernor inner;
    ThermalThrottleShim shim(inner);
    EXPECT_EQ(shim.name(), "interactive");
    EXPECT_DOUBLE_EQ(shim.decisionIntervalSec(),
                     inner.decisionIntervalSec());
}

/** A broken governor that ignores the table bounds. */
class RogueGovernor : public Governor
{
  public:
    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override { return 0.1; }
    size_t decideFrequencyIndex(const GovernorView &) override
    {
        return 999;
    }

  private:
    std::string name_ = "rogue";
};

class FaultRunnerTest : public ::testing::Test
{
  protected:
    ExperimentRunner runner_;
};

TEST_F(FaultRunnerTest, EmptyScheduleRunsBitIdentical)
{
    // The acceptance bar for the whole subsystem: attaching an
    // injector with an all-zero schedule must reproduce the fault-free
    // measurement bit for bit.
    const auto w = WorkloadSets::combo(PageCorpus::byName("alipay"),
                                       MemIntensity::Low);
    InteractiveGovernor clean;
    const RunMeasurement a = runner_.run(w, clean);

    FaultInjector injector(FaultSchedule::none());
    runner_.setFaultInjector(&injector);
    InteractiveGovernor faulty;
    const RunMeasurement b = runner_.run(w, faulty);
    runner_.setFaultInjector(nullptr);

    EXPECT_DOUBLE_EQ(a.loadTimeSec, b.loadTimeSec);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_DOUBLE_EQ(a.meanFreqMhz, b.meanFreqMhz);
    EXPECT_DOUBLE_EQ(a.meanTempC, b.meanTempC);
    EXPECT_EQ(a.freqSwitches, b.freqSwitches);
}

TEST_F(FaultRunnerTest, ActuatorRejectAllStillCompletes)
{
    FaultSchedule schedule;
    schedule.seed = 3;
    schedule.actuatorRejectProb = 1.0;
    FaultInjector injector(schedule);
    runner_.setFaultInjector(&injector);
    // The SoC starts at the top OPP; a pinned request for the bottom
    // one is refused forever. The 0.1 s decision interval leaves room
    // for the full 3-attempt retry ladder between decisions.
    FixedGovernor governor(0);
    const auto w =
        WorkloadSets::kernelOnly(KernelCatalog::byName("backprop"));
    const RunMeasurement m = runner_.run(w, governor);
    runner_.setFaultInjector(nullptr);

    EXPECT_GT(m.energyJ, 0.0);
    // Every change was refused: the SoC never left its initial OPP and
    // the retry budget was exhausted at least once.
    EXPECT_EQ(m.freqSwitches, 0u);
    EXPECT_GT(injector.counters().actuatorRejects, 0u);
    EXPECT_GT(injector.counters().actuatorRetries, 0u);
    EXPECT_GT(injector.counters().actuatorGiveUps, 0u);
}

TEST_F(FaultRunnerTest, ThermalEmergencyTripsShimAndHoldsCeiling)
{
    FaultSchedule schedule;
    schedule.seed = 5;
    schedule.thermalSpikeProb = 1.0;
    schedule.thermalSpikeDeltaC = 40.0;
    schedule.thermalSpikeDurationSec = 30.0;
    FaultInjector injector(schedule);
    runner_.setFaultInjector(&injector);

    PerformanceGovernor inner;
    ThermalThrottleShim shim(inner);
    const auto w = WorkloadSets::combo(PageCorpus::byName("amazon"),
                                       MemIntensity::Medium);
    const RunMeasurement m = runner_.run(w, shim);
    runner_.setFaultInjector(nullptr);

    EXPECT_GT(injector.counters().thermalSpikes, 0u);
    EXPECT_GT(shim.interventions(), 0u);
    // The trip itself may fall inside the warmup; within the window
    // the die must at least sit in the hysteresis band.
    EXPECT_GT(m.peakTempC,
              shim.config().criticalC - shim.config().hysteresisC);
    // At every decision taken at or past critical, the granted OPP
    // must sit at or under the throttle ceiling.
    const FreqTable &table = runner_.freqTable();
    for (const auto &d : m.decisions) {
        if (d.temperatureC >= shim.config().criticalC) {
            EXPECT_LE(table.opp(d.freqIndex).coreMhz,
                      shim.config().ceilingMhz)
                << "at t=" << d.tSec;
        }
    }
}

TEST_F(FaultRunnerTest, OutOfRangeDecisionIsClamped)
{
    RogueGovernor rogue;
    const auto w =
        WorkloadSets::kernelOnly(KernelCatalog::byName("kmeans"));
    const RunMeasurement m = runner_.run(w, rogue);
    const FreqTable &table = runner_.freqTable();
    ASSERT_FALSE(m.decisions.empty());
    for (const auto &d : m.decisions)
        EXPECT_LE(d.freqIndex, table.maxIndex());
    // The clamp pins the rogue request to the top OPP.
    EXPECT_NEAR(m.meanFreqMhz, table.opp(table.maxIndex()).coreMhz,
                1.0);
}

class GovernorEdgeTest : public ::testing::Test
{
  protected:
    GovernorEdgeTest() : table_(FreqTable::msm8974()) {}

    GovernorView viewWithUtil(double util)
    {
        GovernorView view;
        view.nowSec = 1.0;
        view.freqIndex = 6;
        view.freqTable = &table_;
        view.totalUtilization = util;
        return view;
    }

    FreqTable table_;
};

TEST_F(GovernorEdgeTest, InteractiveTreatsNonFiniteUtilAsFullLoad)
{
    InteractiveGovernor nan_gov, inf_gov, full_gov;
    const size_t from_nan =
        nan_gov.decideFrequencyIndex(viewWithUtil(kNan));
    const size_t from_inf =
        inf_gov.decideFrequencyIndex(viewWithUtil(kInf));
    const size_t from_full =
        full_gov.decideFrequencyIndex(viewWithUtil(1.0));
    EXPECT_EQ(from_nan, from_full);
    EXPECT_EQ(from_inf, from_full);
    EXPECT_LE(from_nan, table_.maxIndex());
}

TEST_F(GovernorEdgeTest, InteractiveTreatsNegativeUtilAsIdle)
{
    InteractiveGovernor neg_gov, idle_gov;
    const size_t from_neg =
        neg_gov.decideFrequencyIndex(viewWithUtil(-0.3));
    const size_t from_idle =
        idle_gov.decideFrequencyIndex(viewWithUtil(0.0));
    EXPECT_EQ(from_neg, from_idle);
}

TEST_F(GovernorEdgeTest, OndemandSanitizesUtil)
{
    OndemandGovernor nan_gov, full_gov, neg_gov, idle_gov;
    EXPECT_EQ(nan_gov.decideFrequencyIndex(viewWithUtil(kNan)),
              full_gov.decideFrequencyIndex(viewWithUtil(1.0)));
    EXPECT_EQ(neg_gov.decideFrequencyIndex(viewWithUtil(-1.0)),
              idle_gov.decideFrequencyIndex(viewWithUtil(0.0)));
}

TEST_F(GovernorEdgeTest, ExtremeTemperaturesStayInRange)
{
    // Temperature does not drive the utilization governors, but an
    // extreme (yet finite) reading must never break the decision.
    for (double temp : {-40.0, 150.0}) {
        InteractiveGovernor gov;
        GovernorView view = viewWithUtil(0.5);
        view.temperatureC = temp;
        EXPECT_LE(gov.decideFrequencyIndex(view), table_.maxIndex())
            << temp;
    }
}

TEST_F(GovernorEdgeTest, ZeroSignalsProduceValidDecision)
{
    InteractiveGovernor gov;
    GovernorView view = viewWithUtil(0.0);
    view.l2Mpki = 0.0;
    view.temperatureC = 0.0;
    EXPECT_LE(gov.decideFrequencyIndex(view), table_.maxIndex());
}

} // namespace
} // namespace dora
