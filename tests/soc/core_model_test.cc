/**
 * @file
 * Unit tests for the CPI-based core timing model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/address_stream.hh"
#include "soc/core_model.hh"

namespace dora
{
namespace
{

TEST(ComputeCpi, PerfectMemoryGivesBaseCpi)
{
    EXPECT_DOUBLE_EQ(
        computeCpi(1.2, 0.3, 0.0, 0.0, 9.0, 90.0, 2.0, 2265.6), 1.2);
}

TEST(ComputeCpi, StallTermMatchesHandComputation)
{
    // refs=0.4, l1mr=0.5, l2 local mr=0.25, l2=10ns, dram=100ns, mlp=2,
    // f=1000 MHz -> 1 cycle/ns.
    // miss service = 10 + 0.25*100/2 = 22.5 ns -> stall = 0.4*0.5*22.5
    // = 4.5 cycles/instr.
    EXPECT_DOUBLE_EQ(
        computeCpi(1.0, 0.4, 0.5, 0.25, 10.0, 100.0, 2.0, 1000.0), 5.5);
}

TEST(ComputeCpi, StallGrowsWithFrequency)
{
    const double lo = computeCpi(1.0, 0.3, 0.2, 0.5, 9.0, 90.0, 2.0,
                                 300.0);
    const double hi = computeCpi(1.0, 0.3, 0.2, 0.5, 9.0, 90.0, 2.0,
                                 2265.6);
    EXPECT_GT(hi, lo);
    // The *time* per instruction (cpi/f) still shrinks with f.
    EXPECT_LT(hi / 2265.6, lo / 300.0);
}

TEST(ComputeCpi, MlpDiscountsDramOnly)
{
    const double serial = computeCpi(1.0, 0.3, 0.5, 1.0, 0.0, 100.0,
                                     1.0, 1000.0);
    const double overlapped = computeCpi(1.0, 0.3, 0.5, 1.0, 0.0, 100.0,
                                         4.0, 1000.0);
    EXPECT_NEAR(serial - 1.0, 4.0 * (overlapped - 1.0), 1e-9);
}

class CoreModelTest : public ::testing::Test
{
  protected:
    CoreModelTest()
        : core_(0, CoreTimingConfig{}), mem_(makeMemConfig()),
          stream_(makeSpec(), 0, Rng(1))
    {
    }

    static MemSystemConfig makeMemConfig()
    {
        MemSystemConfig c;
        c.numCores = 1;
        return c;
    }

    static AddressStreamSpec makeSpec()
    {
        AddressStreamSpec spec;
        spec.workingSetBytes = 64 * 1024;
        return spec;
    }

    TaskDemand activeDemand()
    {
        TaskDemand d;
        d.active = true;
        d.baseCpi = 1.0;
        d.memRefsPerInstr = 0.3;
        d.mlp = 2.0;
        d.dutyCycle = 1.0;
        d.activityFactor = 0.5;
        d.stream = &stream_;
        return d;
    }

    CoreModel core_;
    MemSystem mem_;
    AddressStream stream_;
};

TEST_F(CoreModelTest, InactiveDemandPlansNoSamples)
{
    TaskDemand d;
    d.active = false;
    const auto req = core_.planTick(d, 1e-3, 2265.6);
    EXPECT_EQ(req.samples, 0u);
}

TEST_F(CoreModelTest, SampleCountRespectsBounds)
{
    TaskDemand d = activeDemand();
    const CoreTimingConfig config;
    const auto req = core_.planTick(d, 1e-3, 2265.6);
    EXPECT_GE(req.samples, config.minSamples);
    EXPECT_LE(req.samples, config.maxSamples);
}

TEST_F(CoreModelTest, SampleCountScalesWithIntensity)
{
    TaskDemand heavy = activeDemand();
    heavy.memRefsPerInstr = 0.4;
    TaskDemand light = activeDemand();
    light.memRefsPerInstr = 0.01;
    const auto req_heavy = core_.planTick(heavy, 1e-3, 2265.6);
    const auto req_light = core_.planTick(light, 1e-3, 2265.6);
    EXPECT_GT(req_heavy.samples, req_light.samples);
}

TEST_F(CoreModelTest, FinishTickRetiresInstructions)
{
    TaskDemand d = activeDemand();
    MemSampleResult sample;
    sample.l1MissRate = 0.0;
    sample.l2LocalMissRate = 0.0;
    const TickResult r = core_.finishTick(d, sample, 1e-3, 1000.0, mem_);
    // 1e6 cycles at CPI 1.0.
    EXPECT_NEAR(r.instructions, 1e6, 1.0);
    EXPECT_DOUBLE_EQ(r.utilization, 1.0);
    EXPECT_NEAR(core_.totalInstructions(), 1e6, 1.0);
    EXPECT_NEAR(core_.totalBusySeconds(), 1e-3, 1e-12);
}

TEST_F(CoreModelTest, BudgetCapsInstructionsAndUtilization)
{
    TaskDemand d = activeDemand();
    d.instrBudget = 1e5;  // a tenth of the tick's capacity
    MemSampleResult sample;
    const TickResult r = core_.finishTick(d, sample, 1e-3, 1000.0, mem_);
    EXPECT_NEAR(r.instructions, 1e5, 1.0);
    EXPECT_NEAR(r.utilization, 0.1, 1e-6);
}

TEST_F(CoreModelTest, DutyCycleScalesWork)
{
    TaskDemand d = activeDemand();
    d.dutyCycle = 0.5;
    MemSampleResult sample;
    const TickResult r = core_.finishTick(d, sample, 1e-3, 1000.0, mem_);
    EXPECT_NEAR(r.instructions, 5e5, 1.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.5);
}

TEST_F(CoreModelTest, MissRatesRaiseCpi)
{
    TaskDemand d = activeDemand();
    MemSampleResult clean, dirty;
    dirty.l1MissRate = 0.3;
    dirty.l2LocalMissRate = 0.5;
    const TickResult fast =
        core_.finishTick(d, clean, 1e-3, 2265.6, mem_);
    const TickResult slow =
        core_.finishTick(d, dirty, 1e-3, 2265.6, mem_);
    EXPECT_GT(slow.cpi, fast.cpi);
    EXPECT_LT(slow.instructions, fast.instructions);
}

TEST_F(CoreModelTest, InactiveFinishIsZero)
{
    TaskDemand d;
    d.active = false;
    MemSampleResult sample;
    const TickResult r = core_.finishTick(d, sample, 1e-3, 1000.0, mem_);
    EXPECT_DOUBLE_EQ(r.instructions, 0.0);
    EXPECT_DOUBLE_EQ(r.utilization, 0.0);
}

TEST_F(CoreModelTest, ResetClearsCounters)
{
    TaskDemand d = activeDemand();
    MemSampleResult sample;
    core_.finishTick(d, sample, 1e-3, 1000.0, mem_);
    core_.reset();
    EXPECT_DOUBLE_EQ(core_.totalInstructions(), 0.0);
    EXPECT_DOUBLE_EQ(core_.totalBusySeconds(), 0.0);
}

} // namespace
} // namespace dora
