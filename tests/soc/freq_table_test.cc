/**
 * @file
 * Unit tests for the DVFS operating-point table.
 */

#include <gtest/gtest.h>

#include "soc/freq_table.hh"

namespace dora
{
namespace
{

TEST(FreqTable, Msm8974HasFourteenOpps)
{
    const FreqTable table = FreqTable::msm8974();
    EXPECT_EQ(table.size(), 14u);  // paper Section IV-A
    EXPECT_NEAR(table.opp(0).coreMhz, 300.0, 1e-9);
    EXPECT_NEAR(table.opp(table.maxIndex()).coreMhz, 2265.6, 1e-9);
}

TEST(FreqTable, OppsAreAscendingInEverything)
{
    const FreqTable table = FreqTable::msm8974();
    for (size_t i = 1; i < table.size(); ++i) {
        EXPECT_GT(table.opp(i).coreMhz, table.opp(i - 1).coreMhz);
        EXPECT_GE(table.opp(i).voltage, table.opp(i - 1).voltage);
        EXPECT_GE(table.opp(i).busMhz, table.opp(i - 1).busMhz);
    }
}

TEST(FreqTable, VoltageRangeIsKraitLike)
{
    const FreqTable table = FreqTable::msm8974();
    EXPECT_NEAR(table.opp(0).voltage, 0.78, 0.03);
    EXPECT_NEAR(table.opp(table.maxIndex()).voltage, 1.04, 0.02);
}

TEST(FreqTable, NearestIndex)
{
    const FreqTable table = FreqTable::msm8974();
    EXPECT_EQ(table.nearestIndex(300.0), 0u);
    EXPECT_EQ(table.nearestIndex(1.0), 0u);
    EXPECT_EQ(table.nearestIndex(99999.0), table.maxIndex());
    EXPECT_NEAR(table.opp(table.nearestIndex(960.0)).coreMhz, 960.0,
                1e-9);
    EXPECT_NEAR(table.opp(table.nearestIndex(940.0)).coreMhz, 960.0,
                1e-9);
}

TEST(FreqTable, PaperSweepCoversEightPoints)
{
    const FreqTable table = FreqTable::msm8974();
    const auto sweep = table.paperSweepIndices();
    EXPECT_EQ(sweep.size(), 8u);
    // First and last sweep points match the paper's axis extremes.
    EXPECT_NEAR(table.opp(sweep.front()).coreMhz, 729.6, 1e-9);
    EXPECT_NEAR(table.opp(sweep.back()).coreMhz, 2265.6, 1e-9);
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i], sweep[i - 1]);
}

TEST(FreqTable, FourBusFrequencyGroups)
{
    const FreqTable table = FreqTable::msm8974();
    const auto buses = table.busFrequencies();
    EXPECT_EQ(buses.size(), 4u);  // the piece-wise model groups
    size_t covered = 0;
    for (double bus : buses)
        covered += table.indicesForBus(bus).size();
    EXPECT_EQ(covered, table.size());
}

TEST(FreqTable, IndicesForBusAreConsistent)
{
    const FreqTable table = FreqTable::msm8974();
    for (double bus : table.busFrequencies())
        for (size_t idx : table.indicesForBus(bus))
            EXPECT_DOUBLE_EQ(table.opp(idx).busMhz, bus);
}

TEST(FreqTable, CustomTableValidation)
{
    std::vector<OperatingPoint> opps = {
        {500.0, 0.8, 200.0},
        {1000.0, 0.9, 400.0},
    };
    FreqTable table(opps);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.minIndex(), 0u);
    EXPECT_EQ(table.maxIndex(), 1u);
}

} // namespace
} // namespace dora
