/**
 * @file
 * Unit tests for the SoC assembly: DVFS actuation, switch penalties,
 * perf snapshots.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/address_stream.hh"
#include "soc/soc.hh"

namespace dora
{
namespace
{

class SocTest : public ::testing::Test
{
  protected:
    SocTest()
        : soc_(Soc::nexus5()),
          stream_(makeSpec(), 0, Rng(1))
    {
    }

    static AddressStreamSpec makeSpec()
    {
        AddressStreamSpec spec;
        spec.workingSetBytes = 64 * 1024;
        return spec;
    }

    std::vector<TaskDemand> idleDemands()
    {
        return std::vector<TaskDemand>(soc_.numCores());
    }

    std::vector<TaskDemand> busyDemands()
    {
        auto demands = idleDemands();
        demands[0].active = true;
        demands[0].baseCpi = 1.0;
        demands[0].memRefsPerInstr = 0.2;
        demands[0].stream = &stream_;
        return demands;
    }

    Soc soc_;
    AddressStream stream_;
};

TEST_F(SocTest, StartsAtMaxFrequency)
{
    EXPECT_EQ(soc_.frequencyIndex(), soc_.freqTable().maxIndex());
    EXPECT_NEAR(soc_.operatingPoint().coreMhz, 2265.6, 1e-9);
}

TEST_F(SocTest, TickAdvancesTime)
{
    soc_.tick(idleDemands(), 1e-3);
    soc_.tick(idleDemands(), 1e-3);
    EXPECT_NEAR(soc_.elapsedSeconds(), 2e-3, 1e-12);
}

TEST_F(SocTest, SummaryCarriesOperatingPoint)
{
    soc_.setFrequencyIndex(0);
    const auto summary = soc_.tick(idleDemands(), 1e-3);
    EXPECT_NEAR(summary.coreMhz, 300.0, 1e-9);
    EXPECT_NEAR(summary.busMhz, 200.0, 1e-9);
    EXPECT_GT(summary.voltage, 0.7);
}

TEST_F(SocTest, RepeatedSetSameIndexIsFree)
{
    soc_.setFrequencyIndex(soc_.frequencyIndex());
    EXPECT_EQ(soc_.switchCount(), 0u);
}

TEST_F(SocTest, SwitchChargesPenaltyOnNextTick)
{
    auto demands = busyDemands();
    const auto before = soc_.tick(demands, 1e-3);
    soc_.setFrequencyIndex(soc_.frequencyIndex() - 1);
    soc_.setFrequencyIndex(soc_.frequencyIndex() + 1);  // two switches
    EXPECT_EQ(soc_.switchCount(), 2u);
    const auto after = soc_.tick(demands, 1e-3);
    // Same frequency as before, but the stall haircut cut utilization.
    EXPECT_LT(after.perCore[0].utilization,
              before.perCore[0].utilization);
    EXPECT_GT(after.switchEnergyJ, 0.0);
    EXPECT_NEAR(soc_.switchStallSeconds(),
                2.0 * soc_.config().freqSwitchPenaltySec, 1e-12);
}

TEST_F(SocTest, PenaltyIsOneShot)
{
    auto demands = busyDemands();
    soc_.setFrequencyIndex(3);
    soc_.tick(demands, 1e-3);  // absorbs the stall
    const auto clean = soc_.tick(demands, 1e-3);
    EXPECT_DOUBLE_EQ(clean.perCore[0].utilization, 1.0);
    EXPECT_DOUBLE_EQ(clean.switchEnergyJ, 0.0);
}

TEST_F(SocTest, PerfSnapshotAggregates)
{
    auto demands = busyDemands();
    soc_.tick(demands, 1e-3);
    const PerfSnapshot snap = soc_.perfSnapshot();
    EXPECT_GT(snap.totalInstructions, 0.0);
    EXPECT_EQ(snap.coreInstructions.size(), soc_.numCores());
    EXPECT_GT(snap.coreBusySeconds[0], 0.0);
    EXPECT_DOUBLE_EQ(snap.coreBusySeconds[1], 0.0);
    EXPECT_NEAR(snap.seconds, 1e-3, 1e-12);
}

TEST_F(SocTest, ResetRestoresPristineState)
{
    auto demands = busyDemands();
    soc_.tick(demands, 1e-3);
    soc_.setFrequencyIndex(2);
    soc_.reset();
    EXPECT_EQ(soc_.frequencyIndex(), soc_.freqTable().maxIndex());
    EXPECT_EQ(soc_.switchCount(), 0u);
    EXPECT_DOUBLE_EQ(soc_.elapsedSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(soc_.perfSnapshot().totalInstructions, 0.0);
}

TEST_F(SocTest, LowerFrequencyRetiresFewerInstructions)
{
    auto demands = busyDemands();
    soc_.setFrequencyIndex(soc_.freqTable().maxIndex());
    soc_.tick(demands, 1e-3);  // absorb switch-free start
    const auto fast = soc_.tick(demands, 1e-3);

    soc_.reset();
    soc_.setFrequencyIndex(0);
    soc_.tick(demands, 1e-3);
    const auto slow = soc_.tick(demands, 1e-3);

    EXPECT_GT(fast.perCore[0].instructions,
              2.0 * slow.perCore[0].instructions);
}

} // namespace
} // namespace dora
