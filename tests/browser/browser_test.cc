/**
 * @file
 * Unit tests for the page corpus, render cost model, and page-load
 * phase machinery.
 */

#include <gtest/gtest.h>

#include "browser/page_corpus.hh"
#include "browser/page_load.hh"
#include "browser/render_cost.hh"
#include "power/device_power.hh"
#include "sim/simulator.hh"

namespace dora
{
namespace
{

TEST(PageCorpus, HasEighteenPages)
{
    EXPECT_EQ(PageCorpus::all().size(), 18u);
}

TEST(PageCorpus, TrainTestSplitIsFourteenFour)
{
    EXPECT_EQ(PageCorpus::trainingSet().size(), 14u);
    EXPECT_EQ(PageCorpus::testSet().size(), 4u);
}

TEST(PageCorpus, TableIIIClassCounts)
{
    int low = 0, high = 0;
    for (const auto &page : PageCorpus::all())
        (page.expectedClass == PageComplexity::Low ? low : high)++;
    EXPECT_EQ(low, 12);   // Table III: 12 low-intensity pages
    EXPECT_EQ(high, 6);   // and 6 high-intensity pages
}

TEST(PageCorpus, ByNameFindsEveryPage)
{
    for (const auto &page : PageCorpus::all())
        EXPECT_EQ(&PageCorpus::byName(page.name), &page);
}

TEST(PageCorpus, FeaturesArePositive)
{
    for (const auto &page : PageCorpus::all()) {
        EXPECT_GT(page.features.domNodes, 0.0) << page.name;
        EXPECT_GT(page.features.classAttrs, 0.0) << page.name;
        EXPECT_GT(page.features.hrefAttrs, 0.0) << page.name;
        EXPECT_GT(page.features.aTags, 0.0) << page.name;
        EXPECT_GT(page.features.divTags, 0.0) << page.name;
        EXPECT_GT(page.contentBytes, 1e5) << page.name;
        EXPECT_GT(page.scriptWeight, 0.1) << page.name;
    }
}

TEST(RenderCost, FivePhasesInOrder)
{
    const RenderCostModel cost;
    const auto phases = cost.phases(PageCorpus::byName("amazon"));
    ASSERT_EQ(phases.size(), 5u);
    EXPECT_EQ(phases[0].name, "parse");
    EXPECT_EQ(phases[1].name, "style");
    EXPECT_EQ(phases[2].name, "script");
    EXPECT_EQ(phases[3].name, "layout");
    EXPECT_EQ(phases[4].name, "paint");
}

TEST(RenderCost, WorkIsMonotoneInComplexity)
{
    const RenderCostModel cost;
    EXPECT_GT(cost.totalInstructions(PageCorpus::byName("aliexpress")),
              cost.totalInstructions(PageCorpus::byName("reddit")));
    EXPECT_GT(cost.totalInstructions(PageCorpus::byName("reddit")),
              cost.totalInstructions(PageCorpus::byName("alipay")));
}

TEST(RenderCost, InteractionTermMakesStyleSuperlinear)
{
    RenderCostModel cost;
    WebPage small = PageCorpus::byName("alipay");
    WebPage doubled = small;
    doubled.features.domNodes *= 2.0;
    doubled.features.classAttrs *= 2.0;
    const double w1 = cost.phases(small)[1].instructions;
    const double w2 = cost.phases(doubled)[1].instructions;
    EXPECT_GT(w2, 2.0 * w1);  // nodes x classAttrs product term
}

TEST(RenderCost, PhaseParametersAreSane)
{
    const RenderCostModel cost;
    for (const auto &page : PageCorpus::all()) {
        for (const auto &phase : cost.phases(page)) {
            EXPECT_GT(phase.instructions, 0.0) << page.name;
            EXPECT_GE(phase.parallelFraction, 0.0);
            EXPECT_LE(phase.parallelFraction, 1.0);
            EXPECT_GT(phase.baseCpi, 0.0);
            EXPECT_GT(phase.refsPerInstr, 0.0);
            EXPECT_GE(phase.mlp, 1.0);
            EXPECT_GE(phase.stream.workingSetBytes, 64u * 1024);
        }
    }
}

TEST(HtmlBytes, GrowsWithFeatures)
{
    WebPageFeatures small{100, 50, 10, 10, 30};
    WebPageFeatures big{1000, 500, 100, 100, 300};
    EXPECT_GT(htmlBytes(big), htmlBytes(small));
}

class PageLoadTest : public ::testing::Test
{
  protected:
    PageLoadTest()
        : soc_(Soc::nexus5()),
          power_(DevicePowerConfig{}, LeakageModel::msm8974Truth()),
          sim_(soc_, power_, SimConfig{}),
          load_(PageCorpus::byName("alipay"), RenderCostModel{}, 1)
    {
        sim_.bindTask(0, &load_.mainTask());
        sim_.bindTask(1, &load_.helperTask());
    }

    Soc soc_;
    DevicePower power_;
    Simulator sim_;
    PageLoad load_;
};

TEST_F(PageLoadTest, CompletesAndReportsLoadTime)
{
    sim_.runUntil([&] { return load_.finished(); });
    ASSERT_TRUE(load_.finished());
    EXPECT_GT(load_.loadTimeSec(), 0.05);
    EXPECT_LT(load_.loadTimeSec(), 1.0);  // alipay is tiny
}

TEST_F(PageLoadTest, PhaseNamesProgress)
{
    EXPECT_EQ(load_.currentPhaseName(), "parse");
    sim_.runUntil([&] { return load_.finished(); });
    EXPECT_EQ(load_.currentPhaseName(), "done");
}

TEST_F(PageLoadTest, BothThreadsDoWork)
{
    sim_.runUntil([&] { return load_.finished(); });
    EXPECT_GT(soc_.core(0).totalInstructions(), 0.0);
    EXPECT_GT(soc_.core(1).totalInstructions(), 0.0);
    // Main executes the serial share too, so it does strictly more.
    EXPECT_GT(soc_.core(0).totalInstructions(),
              soc_.core(1).totalInstructions());
}

TEST_F(PageLoadTest, WorkConservation)
{
    sim_.runUntil([&] { return load_.finished(); });
    const RenderCostModel cost;
    const double expected =
        cost.totalInstructions(PageCorpus::byName("alipay"));
    const double executed = soc_.core(0).totalInstructions() +
        soc_.core(1).totalInstructions();
    EXPECT_NEAR(executed, expected, 0.01 * expected);
}

TEST_F(PageLoadTest, ResetRestartsCleanly)
{
    sim_.runUntil([&] { return load_.finished(); });
    const double first = load_.loadTimeSec();
    sim_.reset();
    EXPECT_FALSE(load_.finished());
    sim_.runUntil([&] { return load_.finished(); });
    // Deterministic simulation: identical load time on the rerun.
    EXPECT_NEAR(load_.loadTimeSec(), first, 1e-9);
}

TEST_F(PageLoadTest, SlowerClockMeansSlowerLoad)
{
    sim_.runUntil([&] { return load_.finished(); });
    const double fast = load_.loadTimeSec();
    sim_.reset();
    soc_.setFrequencyIndex(0);
    sim_.runUntil([&] { return load_.finished(); });
    EXPECT_GT(load_.loadTimeSec(), 1.5 * fast);
}

TEST(PageLoadStandalone, HeavierPageLoadsSlower)
{
    auto run = [](const std::string &name) {
        Soc soc = Soc::nexus5();
        DevicePower power(DevicePowerConfig{},
                          LeakageModel::msm8974Truth());
        Simulator sim(soc, power, SimConfig{});
        PageLoad load(PageCorpus::byName(name), RenderCostModel{}, 2);
        sim.bindTask(0, &load.mainTask());
        sim.bindTask(1, &load.helperTask());
        sim.runUntil([&] { return load.finished(); });
        return load.loadTimeSec();
    };
    EXPECT_GT(run("aliexpress"), run("amazon"));
}

} // namespace
} // namespace dora
