/**
 * @file
 * Unit tests for the Levenberg-Marquardt fitter, including recovery of
 * the Liao leakage parameters from synthetic measurements — the
 * methodology behind the paper's leakage model (Section III-B).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "model/gauss_newton.hh"
#include "power/leakage.hh"

namespace dora
{
namespace
{

TEST(GaussNewton, FitsExponentialDecay)
{
    // y = a * exp(b * x), truth a=2, b=-0.5.
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.1 * i;
        xs.push_back(x);
        ys.push_back(2.0 * std::exp(-0.5 * x));
    }
    auto residual = [&](const std::vector<double> &p, size_t i) {
        return ys[i] - p[0] * std::exp(p[1] * xs[i]);
    };
    const auto result =
        fitGaussNewton(residual, xs.size(), {1.0, -0.1});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.params[0], 2.0, 1e-6);
    EXPECT_NEAR(result.params[1], -0.5, 1e-6);
    EXPECT_LT(result.sse, 1e-12);
}

TEST(GaussNewton, HandlesNoisyData)
{
    Rng rng(77);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = 0.05 * i;
        xs.push_back(x);
        ys.push_back(3.0 * std::exp(-0.8 * x) +
                     rng.gaussian(0.0, 0.005));
    }
    auto residual = [&](const std::vector<double> &p, size_t i) {
        return ys[i] - p[0] * std::exp(p[1] * xs[i]);
    };
    const auto result =
        fitGaussNewton(residual, xs.size(), {1.0, -0.1});
    EXPECT_NEAR(result.params[0], 3.0, 0.02);
    EXPECT_NEAR(result.params[1], -0.8, 0.02);
}

TEST(GaussNewton, LinearProblemOneHop)
{
    // Linear residuals: converges essentially immediately.
    std::vector<double> xs = {0, 1, 2, 3, 4};
    auto residual = [&](const std::vector<double> &p, size_t i) {
        return (2.0 + 3.0 * xs[i]) - (p[0] + p[1] * xs[i]);
    };
    const auto result = fitGaussNewton(residual, xs.size(), {0.0, 0.0});
    EXPECT_NEAR(result.params[0], 2.0, 1e-9);
    EXPECT_NEAR(result.params[1], 3.0, 1e-9);
    EXPECT_LE(result.iterations, 10u);
}

TEST(GaussNewton, RecoversLiaoLeakageParameters)
{
    // Generate (v, T, P) samples from the ground-truth leakage physics
    // plus a constant idle offset, then fit the 7-parameter model the
    // Trainer uses. Recovery of the *predictions* (not necessarily the
    // exact parameters — the form is sloppy) must be tight.
    const LeakageModel truth = LeakageModel::msm8974Truth();
    const double offset = 1.2;
    struct Sample
    {
        double v, t, p;
    };
    std::vector<Sample> samples;
    for (double v : {0.78, 0.85, 0.92, 1.0, 1.08})
        for (double t = 15.0; t <= 75.0; t += 5.0)
            samples.push_back({v, t, offset + truth.power(v, t)});

    auto residual = [&](const std::vector<double> &p, size_t i) {
        const LeakageModel model(LeakageParams::fromArray(
            {p[0], p[1], p[2], p[3], p[4], p[5]}));
        return samples[i].p -
            (p[6] + model.power(samples[i].v, samples[i].t));
    };
    GaussNewtonOptions options;
    options.maxIterations = 400;
    const auto result = fitGaussNewton(
        residual, samples.size(),
        {0.30, 0.05, 600.0, -4200.0, 2.5, -2.5, 1.0}, options);

    const double rmse = std::sqrt(
        result.sse / static_cast<double>(samples.size()));
    EXPECT_LT(rmse, 0.01);  // predictions within 10 mW on average

    // Spot-check the fitted model at a held-out condition.
    const LeakageModel fitted(LeakageParams::fromArray(
        {result.params[0], result.params[1], result.params[2],
         result.params[3], result.params[4], result.params[5]}));
    const double pred = result.params[6] + fitted.power(0.95, 52.5);
    const double want = offset + truth.power(0.95, 52.5);
    EXPECT_NEAR(pred, want, 0.03);
}

TEST(GaussNewton, StopsAtLocalOptimumWithoutDescent)
{
    // Residual independent of parameters: immediate convergence.
    auto residual = [](const std::vector<double> &, size_t) {
        return 1.0;
    };
    const auto result = fitGaussNewton(residual, 10, {0.5});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.sse, 10.0, 1e-12);
}

} // namespace
} // namespace dora
