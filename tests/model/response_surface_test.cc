/**
 * @file
 * Unit tests for the Eq. (2)-(4) response surfaces and the piece-wise
 * wrapper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "model/piecewise.hh"
#include "model/response_surface.hh"

namespace dora
{
namespace
{

Dataset
syntheticData(int n, uint64_t seed,
              const std::function<double(double, double, double)> &f)
{
    Dataset data;
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double a = rng.uniform(0.0, 10.0);
        const double b = rng.uniform(-5.0, 5.0);
        const double c = rng.uniform(1.0, 3.0);
        data.add({a, b, c}, f(a, b, c));
    }
    return data;
}

TEST(Dataset, TracksSizeAndDims)
{
    Dataset d;
    EXPECT_EQ(d.size(), 0u);
    EXPECT_EQ(d.dims(), 0u);
    d.add({1.0, 2.0}, 3.0);
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(d.dims(), 2u);
}

TEST(ResponseSurface, TermCounts)
{
    // Table I has 9 independent variables.
    EXPECT_EQ(ResponseSurface(SurfaceKind::Linear, 9).termCount(), 10u);
    EXPECT_EQ(ResponseSurface(SurfaceKind::Interaction, 9).termCount(),
              10u + 36u);
    EXPECT_EQ(ResponseSurface(SurfaceKind::Quadratic, 9).termCount(),
              10u + 45u);
}

TEST(ResponseSurface, LinearRecoversLinearTruth)
{
    const auto data = syntheticData(
        200, 1, [](double a, double b, double c) {
            return 3.0 + 2.0 * a - 1.5 * b + 0.5 * c;
        });
    ResponseSurface s(SurfaceKind::Linear, 3);
    ASSERT_TRUE(s.fit(data));
    EXPECT_NEAR(s.predict({5.0, 0.0, 2.0}), 14.0, 1e-6);
    EXPECT_LT(s.evaluate(data).meanAbsPctError, 1e-8);
}

TEST(ResponseSurface, InteractionCapturesCrossTerm)
{
    const auto data = syntheticData(
        300, 2, [](double a, double b, double c) {
            return 1.0 + a + 0.3 * a * b + 0.1 * b * c;
        });
    ResponseSurface linear(SurfaceKind::Linear, 3);
    ResponseSurface inter(SurfaceKind::Interaction, 3);
    ASSERT_TRUE(linear.fit(data));
    ASSERT_TRUE(inter.fit(data));
    EXPECT_LT(inter.evaluate(data).rmse,
              0.01 * linear.evaluate(data).rmse);
}

TEST(ResponseSurface, QuadraticCapturesSquares)
{
    const auto data = syntheticData(
        300, 3, [](double a, double b, double) {
            return 2.0 + a * a - 0.5 * b * b;
        });
    ResponseSurface inter(SurfaceKind::Interaction, 3);
    ResponseSurface quad(SurfaceKind::Quadratic, 3);
    ASSERT_TRUE(inter.fit(data));
    ASSERT_TRUE(quad.fit(data));
    EXPECT_LT(quad.evaluate(data).rmse, 0.01 * inter.evaluate(data).rmse);
}

TEST(ResponseSurface, ConstantColumnIsHarmless)
{
    Dataset data;
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        const double a = rng.uniform(0, 1);
        data.add({a, 7.0}, 2.0 * a);  // second feature constant
    }
    ResponseSurface s(SurfaceKind::Interaction, 2);
    ASSERT_TRUE(s.fit(data, 1e-6));
    EXPECT_NEAR(s.predict({0.5, 7.0}), 1.0, 1e-3);
}

TEST(ResponseSurface, MetricsReportErrors)
{
    Dataset data;
    data.add({1.0}, 10.0);
    data.add({2.0}, 20.0);
    data.add({3.0}, 30.0);
    ResponseSurface s(SurfaceKind::Linear, 1);
    ASSERT_TRUE(s.fit(data));
    const FitMetrics m = s.evaluate(data);
    EXPECT_EQ(m.count, 3u);
    EXPECT_LT(m.meanAbsPctError, 1e-9);
    EXPECT_EQ(s.absPctErrors(data).size(), 3u);
}

TEST(ResponseSurface, SerializeRoundTrip)
{
    const auto data = syntheticData(
        100, 5, [](double a, double b, double c) {
            return a + 2.0 * b - c;
        });
    ResponseSurface s(SurfaceKind::Interaction, 3);
    ASSERT_TRUE(s.fit(data));
    const ResponseSurface t =
        ResponseSurface::deserialize(s.serialize());
    EXPECT_TRUE(t.trained());
    EXPECT_EQ(t.kind(), SurfaceKind::Interaction);
    const std::vector<double> x = {3.0, 1.0, 2.0};
    EXPECT_NEAR(t.predict(x), s.predict(x), 1e-12);
}

TEST(SurfaceKindName, AllNamed)
{
    EXPECT_STREQ(surfaceKindName(SurfaceKind::Linear), "linear");
    EXPECT_STREQ(surfaceKindName(SurfaceKind::Interaction),
                 "interaction");
    EXPECT_STREQ(surfaceKindName(SurfaceKind::Quadratic), "quadratic");
}

TEST(PiecewiseSurface, RoutesToNearestGroup)
{
    PiecewiseSurface pw(SurfaceKind::Linear, 1);
    Dataset lo, hi;
    for (int i = 0; i < 20; ++i) {
        lo.add({static_cast<double>(i)}, 1.0 * i);
        hi.add({static_cast<double>(i)}, 10.0 * i);
    }
    ASSERT_TRUE(pw.fitGroup(200.0, lo));
    ASSERT_TRUE(pw.fitGroup(800.0, hi));
    EXPECT_TRUE(pw.trained());
    EXPECT_NEAR(pw.predict({5.0}, 210.0), 5.0, 1e-6);
    EXPECT_NEAR(pw.predict({5.0}, 790.0), 50.0, 1e-6);
    // Nearest-group fallback for unseen keys.
    EXPECT_NEAR(pw.predict({5.0}, 300.0), 5.0, 1e-6);
}

TEST(PiecewiseSurface, RefitReplacesGroup)
{
    PiecewiseSurface pw(SurfaceKind::Linear, 1);
    Dataset d1, d2;
    for (int i = 0; i < 10; ++i) {
        d1.add({static_cast<double>(i)}, 1.0 * i);
        d2.add({static_cast<double>(i)}, 2.0 * i);
    }
    ASSERT_TRUE(pw.fitGroup(200.0, d1));
    ASSERT_TRUE(pw.fitGroup(200.0, d2));
    EXPECT_EQ(pw.groupKeys().size(), 1u);
    EXPECT_NEAR(pw.predict({4.0}, 200.0), 8.0, 1e-6);
}

TEST(PiecewiseSurface, SerializeRoundTrip)
{
    PiecewiseSurface pw(SurfaceKind::Linear, 2);
    Dataset d;
    Rng rng(6);
    for (int i = 0; i < 30; ++i) {
        const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
        d.add({a, b}, 3.0 * a - b);
    }
    ASSERT_TRUE(pw.fitGroup(333.0, d));
    ASSERT_TRUE(pw.fitGroup(800.0, d));
    const PiecewiseSurface copy =
        PiecewiseSurface::deserialize(pw.serialize());
    EXPECT_TRUE(copy.trained());
    EXPECT_EQ(copy.groupKeys().size(), 2u);
    EXPECT_NEAR(copy.predict({0.5, 0.5}, 333.0),
                pw.predict({0.5, 0.5}, 333.0), 1e-12);
}

/** Property sweep: every kind fits its own representable truth. */
class SurfaceKindSweep : public ::testing::TestWithParam<SurfaceKind>
{
};

TEST_P(SurfaceKindSweep, FitsRepresentableTruthExactly)
{
    const SurfaceKind kind = GetParam();
    const auto data = syntheticData(
        400, 7, [kind](double a, double b, double c) {
            double y = 1.0 + a - b + 0.5 * c;
            if (kind != SurfaceKind::Linear)
                y += 0.2 * a * b;
            if (kind == SurfaceKind::Quadratic)
                y += 0.1 * c * c;
            return y;
        });
    ResponseSurface s(kind, 3);
    ASSERT_TRUE(s.fit(data));
    EXPECT_LT(s.evaluate(data).rmse, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SurfaceKindSweep,
                         ::testing::Values(SurfaceKind::Linear,
                                           SurfaceKind::Interaction,
                                           SurfaceKind::Quadratic));

} // namespace
} // namespace dora
