/**
 * @file
 * Unit tests for k-fold cross-validation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/cross_validation.hh"

namespace dora
{
namespace
{

Dataset
noisyLinearData(int n, uint64_t seed, double noise_sd)
{
    Dataset data;
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double a = rng.uniform(-2.0, 2.0);
        const double b = rng.uniform(-2.0, 2.0);
        data.add({a, b},
                 5.0 + 2.0 * a - b + rng.gaussian(0.0, noise_sd));
    }
    return data;
}

TEST(CrossValidation, CleanDataHasTinyError)
{
    const auto data = noisyLinearData(100, 1, 0.0);
    const CvResult r =
        crossValidate(SurfaceKind::Linear, data, 5, 1e-9);
    EXPECT_EQ(r.folds, 5u);
    EXPECT_EQ(r.samples, 100u);
    EXPECT_LT(r.meanAbsPctError, 1e-6);
}

TEST(CrossValidation, IsDeterministic)
{
    const auto data = noisyLinearData(80, 2, 0.05);
    const CvResult a =
        crossValidate(SurfaceKind::Linear, data, 4, 1e-6, 7);
    const CvResult b =
        crossValidate(SurfaceKind::Linear, data, 4, 1e-6, 7);
    EXPECT_DOUBLE_EQ(a.meanAbsPctError, b.meanAbsPctError);
    EXPECT_DOUBLE_EQ(a.maxAbsPctError, b.maxAbsPctError);
}

TEST(CrossValidation, DetectsOverfitOfRichSurface)
{
    // Few samples, noisy: the quadratic surface overfits relative to
    // the linear one on linear truth, and CV must expose that.
    const auto data = noisyLinearData(24, 3, 0.3);
    const CvResult lin =
        crossValidate(SurfaceKind::Linear, data, 6, 1e-6);
    const CvResult quad =
        crossValidate(SurfaceKind::Quadratic, data, 6, 1e-6);
    EXPECT_LT(lin.meanAbsPctError, quad.meanAbsPctError);
}

TEST(CrossValidation, KIsClamped)
{
    const auto data = noisyLinearData(8, 4, 0.01);
    const CvResult r =
        crossValidate(SurfaceKind::Linear, data, 100, 1e-6);
    EXPECT_EQ(r.folds, 8u);  // clamped to n
}

TEST(SelectRidgeByCv, PrefersShrinkageWhenOverparameterized)
{
    // 9-feature interaction surface on 40 noisy samples: large ridge
    // must beat (near-)zero ridge in CV error.
    Dataset data;
    Rng rng(5);
    for (int i = 0; i < 40; ++i) {
        std::vector<double> x(9);
        for (double &v : x)
            v = rng.uniform(-1.0, 1.0);
        data.add(x, 1.0 + x[0] - 0.5 * x[1] + rng.gaussian(0.0, 0.1));
    }
    const auto [ridge, result] = selectRidgeByCv(
        SurfaceKind::Interaction, data, 5, {1e-9, 0.5});
    EXPECT_DOUBLE_EQ(ridge, 0.5);
    EXPECT_GT(result.samples, 0u);
}

} // namespace
} // namespace dora
