/**
 * @file
 * Unit tests for the dense linear algebra helpers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/linalg.hh"

namespace dora
{
namespace
{

TEST(Matrix, AtReadsWhatWasWritten)
{
    Matrix m(2, 3);
    m.at(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
}

TEST(Matrix, GramIsSymmetric)
{
    Matrix m(3, 2);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(1, 0) = 3;
    m.at(1, 1) = 4;
    m.at(2, 0) = 5;
    m.at(2, 1) = 6;
    const Matrix g = m.gram();
    EXPECT_DOUBLE_EQ(g.at(0, 0), 35.0);
    EXPECT_DOUBLE_EQ(g.at(0, 1), 44.0);
    EXPECT_DOUBLE_EQ(g.at(1, 0), 44.0);
    EXPECT_DOUBLE_EQ(g.at(1, 1), 56.0);
}

TEST(Matrix, TimesAndTransposeTimes)
{
    Matrix m(2, 2);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(1, 0) = 3;
    m.at(1, 1) = 4;
    const auto y = m.times({1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    const auto z = m.transposeTimes({1.0, 1.0});
    EXPECT_DOUBLE_EQ(z[0], 4.0);
    EXPECT_DOUBLE_EQ(z[1], 6.0);
}

TEST(SolveLinearSystem, KnownSolution)
{
    Matrix a(2, 2);
    a.at(0, 0) = 2;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 3;
    std::vector<double> x;
    ASSERT_TRUE(solveLinearSystem(a, {5.0, 10.0}, x));
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting)
{
    // Zero on the initial pivot position; succeeds only with pivoting.
    Matrix a(2, 2);
    a.at(0, 0) = 0;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 0;
    std::vector<double> x;
    ASSERT_TRUE(solveLinearSystem(a, {2.0, 3.0}, x));
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, DetectsSingular)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 2;
    a.at(1, 1) = 4;
    std::vector<double> x;
    EXPECT_FALSE(solveLinearSystem(a, {1.0, 2.0}, x));
}

TEST(SolveLinearSystem, LargerRandomSystemRoundTrips)
{
    const size_t n = 12;
    Rng rng(33);
    Matrix a(n, n);
    std::vector<double> truth(n);
    for (size_t i = 0; i < n; ++i) {
        truth[i] = rng.uniform(-2.0, 2.0);
        for (size_t j = 0; j < n; ++j)
            a.at(i, j) = rng.uniform(-1.0, 1.0);
        a.at(i, i) += 4.0;  // diagonally dominant => well-conditioned
    }
    const std::vector<double> b = a.times(truth);
    std::vector<double> x;
    ASSERT_TRUE(solveLinearSystem(a, b, x));
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], truth[i], 1e-9);
}

TEST(SolveLeastSquares, RecoversExactCoefficients)
{
    // y = 2 + 3*x over 10 points, design = [1, x].
    Matrix design(10, 2);
    std::vector<double> y(10);
    for (int i = 0; i < 10; ++i) {
        design.at(i, 0) = 1.0;
        design.at(i, 1) = i;
        y[static_cast<size_t>(i)] = 2.0 + 3.0 * i;
    }
    const auto c = solveLeastSquares(design, y);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NEAR(c[0], 2.0, 1e-8);
    EXPECT_NEAR(c[1], 3.0, 1e-8);
}

TEST(SolveLeastSquares, OverdeterminedNoisyFit)
{
    Rng rng(44);
    Matrix design(200, 3);
    std::vector<double> y(200);
    for (size_t i = 0; i < 200; ++i) {
        const double x1 = rng.uniform(-1, 1);
        const double x2 = rng.uniform(-1, 1);
        design.at(i, 0) = 1.0;
        design.at(i, 1) = x1;
        design.at(i, 2) = x2;
        y[i] = 1.0 - 2.0 * x1 + 0.5 * x2 + rng.gaussian(0.0, 0.01);
    }
    const auto c = solveLeastSquares(design, y);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c[0], 1.0, 0.01);
    EXPECT_NEAR(c[1], -2.0, 0.01);
    EXPECT_NEAR(c[2], 0.5, 0.01);
}

TEST(SolveLeastSquares, RidgeShrinksCollinearCoefficients)
{
    // Two identical columns: only ridge makes the system solvable.
    Matrix design(20, 2);
    std::vector<double> y(20);
    for (size_t i = 0; i < 20; ++i) {
        design.at(i, 0) = static_cast<double>(i);
        design.at(i, 1) = static_cast<double>(i);
        y[i] = 2.0 * static_cast<double>(i);
    }
    const auto c = solveLeastSquares(design, y, 1e-6);
    ASSERT_EQ(c.size(), 2u);
    // Weight split evenly across the duplicated columns.
    EXPECT_NEAR(c[0], 1.0, 1e-3);
    EXPECT_NEAR(c[1], 1.0, 1e-3);
}

} // namespace
} // namespace dora
