/**
 * @file
 * Unit tests for the phase-changing co-runner.
 */

#include <gtest/gtest.h>

#include "workloads/phased_corun_task.hh"

namespace dora
{
namespace
{

std::vector<CorunPhase>
lowThenHigh(double first_sec, double second_sec = 0.0)
{
    return {
        {&KernelCatalog::byName("kmeans"), first_sec},
        {&KernelCatalog::byName("backprop"), second_sec},
    };
}

TEST(PhasedCorunTask, NameListsSegments)
{
    PhasedCorunTask task(lowThenHigh(0.5), 1);
    EXPECT_EQ(task.name(), "phased(kmeans,backprop)");
    EXPECT_FALSE(task.finished());
}

TEST(PhasedCorunTask, SegmentsSwitchAtBoundaries)
{
    PhasedCorunTask task(lowThenHigh(0.5), 1);
    task.demand(1.0);  // anchors the schedule start at t=1.0
    EXPECT_EQ(task.phaseIndexAt(1.0), 0u);
    EXPECT_EQ(task.phaseIndexAt(1.49), 0u);
    EXPECT_EQ(task.phaseIndexAt(1.51), 1u);
    // Open-ended tail: stays in segment 1 forever.
    EXPECT_EQ(task.phaseIndexAt(100.0), 1u);
}

TEST(PhasedCorunTask, DemandTracksActiveKernel)
{
    PhasedCorunTask task(lowThenHigh(0.5), 1);
    const TaskDemand early = task.demand(0.0);
    const TaskDemand late = task.demand(2.0);
    const KernelSpec &kmeans = KernelCatalog::byName("kmeans");
    const KernelSpec &backprop = KernelCatalog::byName("backprop");
    EXPECT_DOUBLE_EQ(early.memRefsPerInstr, kmeans.refsPerInstr);
    EXPECT_DOUBLE_EQ(late.memRefsPerInstr, backprop.refsPerInstr);
    EXPECT_NE(early.stream, late.stream);  // distinct address spaces
}

TEST(PhasedCorunTask, BoundedScheduleWrapsAround)
{
    std::vector<CorunPhase> schedule = {
        {&KernelCatalog::byName("kmeans"), 0.2},
        {&KernelCatalog::byName("backprop"), 0.3},
    };
    PhasedCorunTask task(schedule, 2);
    task.demand(0.0);
    EXPECT_EQ(task.phaseIndexAt(0.1), 0u);
    EXPECT_EQ(task.phaseIndexAt(0.3), 1u);
    // Cycle length 0.5: wraps.
    EXPECT_EQ(task.phaseIndexAt(0.6), 0u);
    EXPECT_EQ(task.phaseIndexAt(0.85), 1u);
}

TEST(PhasedCorunTask, ResetReanchorsSchedule)
{
    PhasedCorunTask task(lowThenHigh(0.5), 3);
    task.demand(0.0);
    EXPECT_EQ(task.phaseIndexAt(2.0), 1u);
    task.reset();
    task.demand(5.0);  // new anchor
    EXPECT_EQ(task.phaseIndexAt(5.2), 0u);
}

} // namespace
} // namespace dora
