/**
 * @file
 * Unit and integration tests for the co-run kernel catalog, including
 * the Table III MPKI classification property.
 */

#include <gtest/gtest.h>

#include "runner/experiment.hh"
#include "workloads/corun_task.hh"
#include "workloads/kernel.hh"

namespace dora
{
namespace
{

TEST(KernelCatalog, HasNineKernels)
{
    EXPECT_EQ(KernelCatalog::all().size(), 9u);
}

TEST(KernelCatalog, TableIIIClassCounts)
{
    EXPECT_EQ(KernelCatalog::byClass(MemIntensity::Low).size(), 4u);
    EXPECT_EQ(KernelCatalog::byClass(MemIntensity::Medium).size(), 3u);
    EXPECT_EQ(KernelCatalog::byClass(MemIntensity::High).size(), 2u);
}

TEST(KernelCatalog, ByNameFindsAll)
{
    for (const auto &kernel : KernelCatalog::all())
        EXPECT_EQ(&KernelCatalog::byName(kernel.name), &kernel);
}

TEST(KernelCatalog, RepresentativesMatchClass)
{
    for (MemIntensity cls : {MemIntensity::Low, MemIntensity::Medium,
                             MemIntensity::High})
        EXPECT_EQ(KernelCatalog::representative(cls).expectedClass, cls);
}

TEST(ClassifyMpki, Bands)
{
    EXPECT_EQ(classifyMpki(0.0), MemIntensity::Low);
    EXPECT_EQ(classifyMpki(0.99), MemIntensity::Low);
    EXPECT_EQ(classifyMpki(1.0), MemIntensity::Medium);
    EXPECT_EQ(classifyMpki(7.0), MemIntensity::Medium);
    EXPECT_EQ(classifyMpki(7.01), MemIntensity::High);
    EXPECT_EQ(classifyMpki(50.0), MemIntensity::High);
}

TEST(MemIntensityName, AllNamed)
{
    EXPECT_STREQ(memIntensityName(MemIntensity::None), "none");
    EXPECT_STREQ(memIntensityName(MemIntensity::Low), "low");
    EXPECT_STREQ(memIntensityName(MemIntensity::Medium), "medium");
    EXPECT_STREQ(memIntensityName(MemIntensity::High), "high");
}

TEST(CorunTask, NeverFinishesAndDemandsForever)
{
    CorunTask task(KernelCatalog::byName("kmeans"), 0);
    EXPECT_FALSE(task.finished());
    const TaskDemand d = task.demand(0.0);
    EXPECT_TRUE(d.active);
    EXPECT_EQ(d.instrBudget, 0.0);  // endless
    EXPECT_NE(d.stream, nullptr);
}

TEST(CorunTask, AccumulatesAndResets)
{
    CorunTask task(KernelCatalog::byName("kmeans"), 0);
    TickResult r;
    r.instructions = 1000.0;
    task.advance(r, 1e-3);
    EXPECT_DOUBLE_EQ(task.instructionsRetired(), 1000.0);
    task.reset();
    EXPECT_DOUBLE_EQ(task.instructionsRetired(), 0.0);
}

/**
 * Table III property: every kernel's measured solo L2 MPKI lands in
 * its declared class band. This is the classification the tab03 bench
 * reprints.
 */
class KernelClassification
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KernelClassification, SoloMpkiLandsInDeclaredBand)
{
    const KernelSpec &spec = KernelCatalog::byName(GetParam());
    ExperimentRunner runner;
    const RunMeasurement m = runner.runAtFrequency(
        WorkloadSets::kernelOnly(spec),
        runner.freqTable().maxIndex());
    EXPECT_EQ(classifyMpki(m.meanL2Mpki), spec.expectedClass)
        << spec.name << " measured MPKI " << m.meanL2Mpki;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelClassification,
    ::testing::Values("srad", "heartwall", "kmeans", "hotspot", "srad2",
                      "bfs", "b+tree", "backprop", "nw"));

} // namespace
} // namespace dora
