/**
 * @file
 * End-to-end determinism of the parallel experiment engine: the same
 * comparison run at jobs=1 (exact legacy serial path) and jobs=4 must
 * produce bit-identical RunMeasurement vectors — including when a
 * non-zero fault-injection schedule is active on the signal path.
 *
 * Identity is checked through runMeasurementText(), which renders
 * every double as a hex float, so any single-ULP divergence fails.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault_injector.hh"
#include "fault/fault_schedule.hh"
#include "harness/comparison.hh"
#include "workloads/kernel.hh"

namespace dora
{
namespace
{

/** Three cheap kernel-only workloads (no page => short 1 s windows). */
std::vector<WorkloadSpec>
cheapWorkloads()
{
    return {
        WorkloadSets::kernelOnly(KernelCatalog::byName("kmeans")),
        WorkloadSets::kernelOnly(KernelCatalog::byName("srad2")),
        WorkloadSets::kernelOnly(KernelCatalog::byName("backprop")),
    };
}

/** Model-free governors so no training campaign is needed. */
const std::vector<std::string> kGovernors = {"interactive", "ondemand"};

std::vector<std::string>
comparisonTexts(unsigned jobs, FaultInjector *injector)
{
    ComparisonHarness harness(ExperimentConfig{}, nullptr, jobs);
    if (injector)
        harness.runner().setFaultInjector(injector);
    const auto records = harness.runAll(cheapWorkloads(), kGovernors);
    std::vector<std::string> texts;
    for (const auto &r : records)
        for (const auto &g : kGovernors)
            texts.push_back(runMeasurementText(r.measurement(g)));
    return texts;
}

TEST(ParallelDeterminism, FaultFreeComparisonBitIdentical)
{
    const auto serial = comparisonTexts(1, nullptr);
    const auto parallel = comparisonTexts(4, nullptr);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
}

TEST(ParallelDeterminism, FaultedComparisonBitIdentical)
{
    // A non-trivial schedule: sensor + actuator + thermal faults all
    // active. The harness clones the schedule into per-job injectors;
    // because injectors reset their deterministic stream at the start
    // of every run, the clones must reproduce the serial measurements
    // exactly.
    const FaultSchedule schedule = FaultSchedule::combined(1234);
    FaultInjector serial_injector(schedule);
    FaultInjector parallel_injector(schedule);

    const auto serial = comparisonTexts(1, &serial_injector);
    const auto parallel = comparisonTexts(4, &parallel_injector);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;

    // The schedule must actually have fired: a faulted interactive run
    // differs from the fault-free one (otherwise this test would be
    // vacuous).
    const auto clean = comparisonTexts(1, nullptr);
    bool any_difference = false;
    for (size_t i = 0; i < serial.size(); ++i)
        any_difference = any_difference || serial[i] != clean[i];
    EXPECT_TRUE(any_difference)
        << "combined fault schedule was a no-op on every cell";
}

TEST(ParallelDeterminism, OfflineOptBitIdenticalAndOrderInvariant)
{
    const auto workloads = cheapWorkloads();
    ComparisonHarness serial(ExperimentConfig{}, nullptr, 1);
    ComparisonHarness parallel(ExperimentConfig{}, nullptr, 4);

    const auto serial_one = serial.offlineOpt(workloads[0]);
    const auto parallel_one = parallel.offlineOpt(workloads[0]);
    EXPECT_EQ(runMeasurementText(serial_one),
              runMeasurementText(parallel_one));

    // offlineOptMany must match per-workload offlineOpt exactly.
    const auto many = parallel.offlineOptMany(workloads);
    ASSERT_EQ(many.size(), workloads.size());
    EXPECT_EQ(runMeasurementText(many[0]),
              runMeasurementText(serial_one));
    for (size_t w = 1; w < workloads.size(); ++w)
        EXPECT_EQ(runMeasurementText(many[w]),
                  runMeasurementText(serial.offlineOpt(workloads[w])));
}

TEST(ParallelDeterminism, DigestMatchesTextEquality)
{
    RunMeasurement a;
    a.workload = "w";
    a.ppw = 0.25;
    RunMeasurement b = a;
    EXPECT_EQ(runMeasurementDigest(a), runMeasurementDigest(b));
    // A single-ULP change must change the digest.
    b.ppw = std::nextafter(b.ppw, 1.0);
    EXPECT_NE(runMeasurementDigest(a), runMeasurementDigest(b));
}

} // namespace
} // namespace dora
