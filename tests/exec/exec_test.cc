/**
 * @file
 * Unit tests for the parallel execution primitives: deterministic
 * result ordering, exception propagation, job-count resolution, and
 * pool reuse across batches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "exec/thread_pool.hh"

namespace dora
{
namespace
{

TEST(JobCount, HardwareJobsIsPositive)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(JobCount, EnvOverridesDefault)
{
    ::setenv("DORA_JOBS", "3", 1);
    EXPECT_EQ(defaultJobCount(), 3u);
    ::setenv("DORA_JOBS", "1", 1);
    EXPECT_EQ(defaultJobCount(), 1u);
    ::unsetenv("DORA_JOBS");
    EXPECT_EQ(defaultJobCount(), hardwareJobs());
}

TEST(JobCount, GarbageEnvFallsBack)
{
    ::setenv("DORA_JOBS", "banana", 1);
    EXPECT_EQ(defaultJobCount(), hardwareJobs());
    ::setenv("DORA_JOBS", "0", 1);
    EXPECT_EQ(defaultJobCount(), hardwareJobs());
    ::setenv("DORA_JOBS", "-4", 1);
    EXPECT_EQ(defaultJobCount(), hardwareJobs());
    ::unsetenv("DORA_JOBS");
}

TEST(JobCount, ArgsFlagWins)
{
    ::setenv("DORA_JOBS", "2", 1);
    const char *argv1[] = {"bench", "--jobs", "5"};
    EXPECT_EQ(jobCountFromArgs(3, const_cast<char **>(argv1)), 5u);
    const char *argv2[] = {"bench", "--jobs=7"};
    EXPECT_EQ(jobCountFromArgs(2, const_cast<char **>(argv2)), 7u);
    const char *argv3[] = {"bench"};
    EXPECT_EQ(jobCountFromArgs(1, const_cast<char **>(argv3)), 2u);
    ::unsetenv("DORA_JOBS");
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        constexpr size_t kN = 257;
        std::vector<std::atomic<int>> hits(kN);
        parallelFor(
            kN, [&hits](size_t i) { hits[i].fetch_add(1); }, jobs);
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                         << jobs << " jobs";
    }
}

TEST(ParallelFor, ZeroAndOneElementDegenerate)
{
    int calls = 0;
    parallelFor(0, [&calls](size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&calls](size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelMap, ResultsInIndexOrderAtAnyJobCount)
{
    constexpr size_t kN = 100;
    for (unsigned jobs : {1u, 3u, 4u, 16u}) {
        const auto out = parallelMap<size_t>(
            kN, [](size_t i) { return i * i; }, jobs);
        ASSERT_EQ(out.size(), kN);
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(ParallelMap, MatchesSerialReference)
{
    constexpr size_t kN = 64;
    const auto serial = parallelMap<double>(
        kN, [](size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        1);
    const auto parallel = parallelMap<double>(
        kN, [](size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        4);
    EXPECT_EQ(serial, parallel);  // bit-identical doubles
}

TEST(ParallelFor, LowestIndexExceptionWins)
{
    for (unsigned jobs : {1u, 4u}) {
        try {
            parallelFor(
                100,
                [](size_t i) {
                    if (i == 17 || i == 63 || i == 99)
                        throw std::runtime_error(
                            "boom " + std::to_string(i));
                },
                jobs);
            FAIL() << "expected an exception with " << jobs << " jobs";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 17");
        }
    }
}

TEST(ParallelFor, EveryIndexAttemptedDespiteException)
{
    std::vector<std::atomic<int>> hits(50);
    try {
        parallelFor(
            50,
            [&hits](size_t i) {
                hits[i].fetch_add(1);
                if (i == 0)
                    throw std::runtime_error("early");
            },
            4);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    int total = 0;
    for (auto &h : hits)
        total += h.load();
    EXPECT_EQ(total, 50);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    for (int round = 0; round < 20; ++round) {
        std::atomic<size_t> sum{0};
        pool.forEach(round + 1,
                     [&sum](size_t i) { sum.fetch_add(i + 1); });
        const size_t n = static_cast<size_t>(round) + 1;
        EXPECT_EQ(sum.load(), n * (n + 1) / 2);
    }
}

TEST(ThreadPool, SingleJobRunsInline)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    pool.forEach(8, [&seen](size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

} // namespace
} // namespace dora
