/**
 * @file
 * Determinism and snapshot contracts of the lane-batched execution
 * tier (sim/lane_batch.hh): a comparison/training campaign run at any
 * lane count must produce RunMeasurement/TrainingSample vectors
 * bit-identical to the lanes=1 legacy per-run path — in adaptive AND
 * exact-ticks mode, with a non-trivial fault schedule active, and
 * composed with the thread and process tiers. Identity is checked
 * through runMeasurementText() (hex-float rendering), so any
 * single-ULP divergence fails.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/exact_ticks.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "dora/sample_io.hh"
#include "dora/trainer.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_schedule.hh"
#include "harness/comparison.hh"
#include "sim/lane_batch.hh"
#include "workloads/corun_task.hh"
#include "workloads/kernel.hh"

namespace dora
{
namespace
{

/** Restore the process-wide adaptive default on scope exit. */
struct ModeGuard
{
    ~ModeGuard() { setExactTicksMode(false); }
};

/** Two cheap kernel-only workloads (no page => short 1 s windows). */
std::vector<WorkloadSpec>
cheapWorkloads()
{
    return {
        WorkloadSets::kernelOnly(KernelCatalog::byName("kmeans")),
        WorkloadSets::kernelOnly(KernelCatalog::byName("srad2")),
    };
}

/** Model-free governors so no training campaign is needed. */
const std::vector<std::string> kGovernors = {"interactive", "ondemand"};

std::vector<std::string>
comparisonTexts(unsigned lanes, FaultInjector *injector,
                unsigned jobs = 1, unsigned workers = 0)
{
    ComparisonHarness harness(ExperimentConfig{}, nullptr, jobs);
    harness.setLanes(lanes);
    harness.setWorkers(workers);
    if (injector)
        harness.runner().setFaultInjector(injector);
    const auto records = harness.runAll(cheapWorkloads(), kGovernors);
    std::vector<std::string> texts;
    for (const auto &r : records)
        for (const auto &g : kGovernors)
            texts.push_back(runMeasurementText(r.measurement(g)));
    return texts;
}

void
expectLaneCountsIdentical(FaultInjector *serial_injector,
                          FaultInjector *lane_injector)
{
    const auto serial = comparisonTexts(1, serial_injector);
    for (unsigned lanes : {2u, 4u, 8u}) {
        if (lane_injector)
            lane_injector->reset();
        const auto batched = comparisonTexts(lanes, lane_injector);
        ASSERT_EQ(serial.size(), batched.size());
        for (size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(serial[i], batched[i])
                << "lanes=" << lanes << " cell " << i;
    }
}

TEST(LaneBatch, AdaptiveFaultedBitIdenticalAcrossLaneCounts)
{
    const FaultSchedule schedule = FaultSchedule::combined(1234);
    FaultInjector serial_injector(schedule);
    FaultInjector lane_injector(schedule);
    expectLaneCountsIdentical(&serial_injector, &lane_injector);
}

TEST(LaneBatch, ExactTicksFaultedBitIdenticalAcrossLaneCounts)
{
    // Exact mode exercises the fused path: all lanes advance in
    // lock-step rounds through one cross-lane tickSampleMany().
    ModeGuard guard;
    setExactTicksMode(true);
    const FaultSchedule schedule = FaultSchedule::combined(1234);
    FaultInjector serial_injector(schedule);
    FaultInjector lane_injector(schedule);
    expectLaneCountsIdentical(&serial_injector, &lane_injector);
}

TEST(LaneBatch, ComposesWithThreadAndProcessTiers)
{
    const auto serial = comparisonTexts(1, nullptr);

    // Thread tier: each pool job advances one whole batch.
    const auto threaded = comparisonTexts(2, nullptr, /*jobs=*/2);
    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], threaded[i]) << "jobs tier cell " << i;

    // Process tier: each worker unit is a batch, shipped as one
    // packed payload (packPayloads round trip).
    const auto proc =
        comparisonTexts(2, nullptr, /*jobs=*/1, /*workers=*/2);
    ASSERT_EQ(serial.size(), proc.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], proc[i]) << "proc tier cell " << i;
}

TEST(LaneBatch, OfflineOptManyBitIdentical)
{
    const auto workloads = cheapWorkloads();
    ComparisonHarness serial(ExperimentConfig{}, nullptr, 1);
    serial.setLanes(1);
    ComparisonHarness batched(ExperimentConfig{}, nullptr, 1);
    batched.setLanes(4);

    const auto a = serial.offlineOptMany(workloads);
    const auto b = batched.offlineOptMany(workloads);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(runMeasurementText(a[i]), runMeasurementText(b[i]))
            << "workload " << i;
}

TEST(LaneBatch, TrainerSamplesBitIdentical)
{
    // Two paged workloads x two OPPs; a short load wall keeps the
    // campaign cheap (a censored page is still a deterministic
    // measurement).
    ExperimentConfig config;
    config.maxLoadSec = 1.0;
    auto workloads = WorkloadSets::webpageInclusive();
    workloads.resize(2);
    const std::vector<size_t> freqs = {0, 5};

    auto texts = [&](unsigned lanes) {
        TrainerConfig tc;
        tc.experiment = config;
        tc.jobs = 1;
        tc.lanes = lanes;
        Trainer trainer(tc);
        std::vector<std::string> out;
        for (const auto &s : trainer.collectSamples(workloads, freqs))
            out.push_back(serializeTrainingSample(s));
        return out;
    };

    const auto serial = texts(1);
    const auto batched = texts(3);
    ASSERT_EQ(serial.size(), batched.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], batched[i]) << "cell " << i;
}

TEST(LaneBatch, SnapshotRewindMidBatchBitIdentical)
{
    // Snapshot a lane mid-batch through common/snapshot, run the
    // batch to completion, rewind the lane, and replay: the replayed
    // measurement must be bit-identical to the first pass.
    std::vector<std::unique_ptr<CorunTask>> coruns;
    std::vector<std::unique_ptr<Governor>> governors;
    std::vector<RunContext::Params> specs;
    for (const WorkloadSpec &spec : cheapWorkloads()) {
        // Same corun salt recipe as ExperimentRunner::run().
        const uint64_t salt =
            hashLabel("corun:" + spec.label()) % 4096;
        coruns.push_back(
            std::make_unique<CorunTask>(*spec.kernel, salt));
        governors.push_back(std::make_unique<InteractiveGovernor>());
        RunContext::Params p;
        p.corun = coruns.back().get();
        p.label = spec.label();
        p.governor = governors.back().get();
        specs.push_back(std::move(p));
    }
    LaneBatchSimulator batch(ExperimentConfig{}, std::move(specs));

    for (int round = 0; round < 10; ++round)
        ASSERT_TRUE(batch.tickAll());
    ASSERT_FALSE(batch.lane(0).done());

    SnapshotWriter w;
    batch.lane(0).snapshot(w);
    const std::string bytes = w.finish();

    batch.runAll();
    const RunMeasurement first = batch.lane(0).finish();

    SnapshotReader r(bytes);
    ASSERT_TRUE(r.checksumOk());
    ASSERT_TRUE(batch.lane(0).tryRestore(r));
    ASSERT_FALSE(batch.lane(0).done());
    while (!batch.lane(0).done())
        batch.lane(0).advance();
    const RunMeasurement replay = batch.lane(0).finish();

    EXPECT_EQ(runMeasurementText(first), runMeasurementText(replay));
}

} // namespace
} // namespace dora
