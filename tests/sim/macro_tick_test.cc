/**
 * @file
 * Equivalence tests for the macro-tick fast-forward path.
 *
 * The contract of Simulator::fastForward is that a K-tick batch runs
 * the IDENTICAL per-tick arithmetic as K step() calls — batching only
 * removes loop overhead, never changes results. These tests compare
 * two independent simulators tick for tick with bit-exact equality.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "mem/address_stream.hh"
#include "sim/simulator.hh"

namespace dora
{
namespace
{

/** A never-finishing memory-heavy task (deterministic per seed). */
class LoopTask : public Task
{
  public:
    explicit LoopTask(uint64_t seed)
        : name_("loop"), stream_(makeSpec(), 0, Rng(seed))
    {
    }

    TaskDemand demand(double) override
    {
        TaskDemand d;
        d.active = true;
        d.baseCpi = 1.2;
        d.memRefsPerInstr = 0.3;
        d.instrBudget = 1e18;
        d.stream = &stream_;
        return d;
    }

    void advance(const TickResult &, double) override {}
    bool finished() const override { return false; }
    const std::string &name() const override { return name_; }
    void reset() override {}

  private:
    static AddressStreamSpec makeSpec()
    {
        AddressStreamSpec spec;
        spec.workingSetBytes = 1 << 20;
        spec.hotFraction = 0.8;
        return spec;
    }

    std::string name_;
    AddressStream stream_;
};

/** All observable per-tick outputs, for bit-exact comparison. */
struct TickDigest
{
    double nowSec;
    double powerTotal;
    double busMhz;
    std::vector<double> instructions;
    std::vector<double> l2Misses;

    explicit TickDigest(const TickTrace &trace)
        : nowSec(trace.nowSec), powerTotal(trace.power.total()),
          busMhz(trace.soc.busMhz)
    {
        for (const TickResult &r : trace.soc.perCore) {
            instructions.push_back(r.instructions);
            l2Misses.push_back(r.l2Misses);
        }
    }

    bool operator==(const TickDigest &o) const
    {
        return nowSec == o.nowSec && powerTotal == o.powerTotal &&
            busMhz == o.busMhz && instructions == o.instructions &&
            l2Misses == o.l2Misses;
    }
};

/** A simulator plus everything it borrows, identically seeded. */
struct Rig
{
    Soc soc = Soc::nexus5();
    DevicePower power{DevicePowerConfig{}, LeakageModel::msm8974Truth()};
    LoopTask task{42};
    Simulator sim;

    Rig() : sim(soc, power, SimConfig{}) { sim.bindTask(0, &task); }
};

TEST(MacroTick, FastForwardOneEqualsStep)
{
    Rig stepped, batched;
    for (int i = 0; i < 50; ++i) {
        const TickDigest a(stepped.sim.step());
        TickDigest *b = nullptr;
        TickDigest captured(TickTrace{});
        batched.sim.fastForward(1, [&](const TickTrace &trace) {
            captured = TickDigest(trace);
            b = &captured;
            return false;
        });
        ASSERT_NE(b, nullptr);
        EXPECT_TRUE(a == *b) << "divergence at tick " << i;
    }
}

TEST(MacroTick, BatchEqualsStepSequence)
{
    Rig stepped, batched;
    constexpr int kTicks = 120;
    std::vector<TickDigest> a, b;
    for (int i = 0; i < kTicks; ++i)
        a.emplace_back(stepped.sim.step());
    const auto result =
        batched.sim.fastForward(kTicks, [&](const TickTrace &trace) {
            b.emplace_back(trace);
            return false;
        });
    EXPECT_EQ(result.ticks, static_cast<uint64_t>(kTicks));
    EXPECT_FALSE(result.stopped);
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < kTicks; ++i)
        EXPECT_TRUE(a[i] == b[i]) << "divergence at tick " << i;
    EXPECT_DOUBLE_EQ(stepped.sim.nowSec(), batched.sim.nowSec());
}

TEST(MacroTick, CallbackStopsBatchOnExactTick)
{
    Rig rig;
    int seen = 0;
    const auto result =
        rig.sim.fastForward(100, [&](const TickTrace &) {
            return ++seen == 7;
        });
    EXPECT_TRUE(result.stopped);
    EXPECT_EQ(result.ticks, 7u);
    EXPECT_EQ(seen, 7);
}

TEST(MacroTick, TicksUntilNeverOvershoots)
{
    Rig rig;
    const double dt = rig.sim.config().dtSec;
    rig.sim.step();
    rig.sim.step();
    for (int k = 1; k <= 200; k += 13) {
        const double target = rig.sim.nowSec() + k * dt;
        const uint64_t ticks = rig.sim.ticksUntil(target);
        // Conservative: lands at or before the boundary, and within
        // one tick of it (the caller single-steps the remainder).
        EXPECT_GE(ticks, 1u);
        EXPECT_LE(rig.sim.nowSec() + static_cast<double>(ticks) * dt,
                  target + 1e-9);
        EXPECT_GE(static_cast<double>(ticks), k - 1.001);
    }
}

TEST(MacroTick, TicksUntilPastTargetClampsToOne)
{
    Rig rig;
    for (int i = 0; i < 5; ++i)
        rig.sim.step();
    EXPECT_EQ(rig.sim.ticksUntil(rig.sim.nowSec()), 1u);
    EXPECT_EQ(rig.sim.ticksUntil(rig.sim.nowSec() - 1.0), 1u);
}

TEST(MacroTick, RunUntilMatchesManualStepping)
{
    Rig manual, batched;
    // Manual: legacy one-step loop with the same stop predicate.
    int manual_ticks = 0;
    while (manual.sim.nowSec() < 0.123)
        ++manual_ticks, manual.sim.step();
    // runUntil batches internally via fastForward + ticksUntil.
    int batched_ticks = 0;
    batched.sim.runUntil(
        [&] { return batched.sim.nowSec() >= 0.123; },
        [&](const TickTrace &) { ++batched_ticks; });
    EXPECT_EQ(manual_ticks, batched_ticks);
    EXPECT_DOUBLE_EQ(manual.sim.nowSec(), batched.sim.nowSec());
    EXPECT_GT(batched.sim.macroBatches(), 0u);
}

} // namespace
} // namespace dora
