/**
 * @file
 * Snapshot/restore contract tests over real simulator state: a
 * checkpoint taken mid-run and restored onto the same objects must
 * continue bit-for-bit identically to the uninterrupted run, and
 * mismatched restores must be rejected without touching state.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/snapshot.hh"
#include "dora/predictive_governor.hh"
#include "governor/governor.hh"
#include "mem/address_stream.hh"
#include "sim/simulator.hh"

namespace dora
{
namespace
{

/** Bitwise equality for doubles (NaN-safe, distinguishes -0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/**
 * A looping compute/memory task with checkpointable state, following
 * the documented pattern: Simulator::snapshot covers the kernel, the
 * task owner checkpoints demand state and the address stream.
 */
class LoopTask : public Task
{
  public:
    LoopTask()
        : name_("loop"), stream_(makeSpec(), 0, Rng(1234))
    {
    }

    TaskDemand demand(double) override
    {
        TaskDemand d;
        d.active = true;
        d.baseCpi = 1.2;
        d.memRefsPerInstr = 0.15;
        d.instrBudget = 1e9;
        d.stream = &stream_;
        return d;
    }

    void advance(const TickResult &result, double) override
    {
        done_ += result.instructions;
    }

    bool finished() const override { return false; }
    const std::string &name() const override { return name_; }
    void reset() override { done_ = 0.0; }

    double doneInstructions() const { return done_; }

    void snapshot(SnapshotWriter &w) const
    {
        w.beginSection("task", 1);
        w.putDouble(done_);
        stream_.snapshot(w);
    }

    [[nodiscard]] bool tryRestore(SnapshotReader &r)
    {
        if (!r.beginSection("task", 1))
            return false;
        double done;
        if (!r.getDouble(&done) || !stream_.tryRestore(r))
            return false;
        done_ = done;
        return true;
    }

  private:
    static AddressStreamSpec makeSpec()
    {
        AddressStreamSpec spec;
        spec.workingSetBytes = 256 * 1024;  // misses in L1, fits L2
        spec.hotFraction = 0.8;
        return spec;
    }

    std::string name_;
    AddressStream stream_;
    double done_ = 0.0;
};

/** Everything a continuation can diverge in, captured bit-exactly. */
struct EndState
{
    uint64_t ticks = 0;
    double elapsed = 0.0;
    double energy = 0.0;
    double temp = 0.0;
    double instructions = 0.0;
    double l2Misses = 0.0;
    uint64_t switches = 0;
    size_t freqIndex = 0;
};

EndState
capture(const Simulator &sim, const LoopTask &task)
{
    EndState s;
    s.ticks = sim.tickCount();
    s.elapsed = sim.soc().elapsedSeconds();
    s.energy = sim.power().totalEnergyJ();
    s.temp = sim.power().temperatureC();
    s.instructions = task.doneInstructions();
    s.l2Misses = sim.soc().mem().totalCounters().l2Misses;
    s.switches = sim.soc().switchCount();
    s.freqIndex = sim.soc().frequencyIndex();
    return s;
}

void
expectSameBits(const EndState &a, const EndState &b)
{
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_TRUE(sameBits(a.elapsed, b.elapsed));
    EXPECT_TRUE(sameBits(a.energy, b.energy));
    EXPECT_TRUE(sameBits(a.temp, b.temp));
    EXPECT_TRUE(sameBits(a.instructions, b.instructions));
    EXPECT_TRUE(sameBits(a.l2Misses, b.l2Misses));
    EXPECT_EQ(a.switches, b.switches);
    EXPECT_EQ(a.freqIndex, b.freqIndex);
}

class SimSnapshotTest : public ::testing::Test
{
  protected:
    SimSnapshotTest()
        : soc_(Soc::nexus5()),
          power_(DevicePowerConfig{}, LeakageModel::msm8974Truth()),
          sim_(soc_, power_, SimConfig{})
    {
        sim_.bindTask(0, &task_);
    }

    /** Run @p ticks with the interactive governor in the loop. */
    void run(int ticks)
    {
        for (int i = 0; i < ticks; ++i) {
            if (i % 20 == 0) {
                GovernorView view;
                view.nowSec = sim_.nowSec();
                view.freqIndex = soc_.frequencyIndex();
                view.freqTable = &soc_.freqTable();
                view.totalUtilization = 0.3 + 0.6 * ((i / 20) % 2);
                soc_.setFrequencyIndex(
                    governor_.decideFrequencyIndex(view));
            }
            sim_.step();
        }
    }

    std::string checkpoint() const
    {
        SnapshotWriter w;
        sim_.snapshot(w);
        governor_.snapshot(w);
        task_.snapshot(w);
        return w.finish();
    }

    [[nodiscard]] bool restore(const std::string &bytes)
    {
        SnapshotReader r(bytes);
        return r.checksumOk() && sim_.tryRestore(r) &&
            governor_.tryRestore(r) && task_.tryRestore(r) && r.atEnd();
    }

    Soc soc_;
    DevicePower power_;
    Simulator sim_;
    LoopTask task_;
    InteractiveGovernor governor_;
};

TEST_F(SimSnapshotTest, RoundTripIsByteIdentical)
{
    run(100);
    const std::string snap1 = checkpoint();
    ASSERT_TRUE(restore(snap1));
    const std::string snap2 = checkpoint();
    EXPECT_EQ(snap1, snap2);  // snapshot -> restore -> snapshot
}

TEST_F(SimSnapshotTest, RestoredRunContinuesBitIdentically)
{
    // Warm up past the estimator's convergence so the checkpoint
    // carries non-trivial cached-phase and warmth state.
    run(150);
    const std::string snap = checkpoint();

    run(200);
    const EndState uninterrupted = capture(sim_, task_);

    ASSERT_TRUE(restore(snap));
    run(200);
    const EndState resumed = capture(sim_, task_);

    expectSameBits(uninterrupted, resumed);
}

TEST_F(SimSnapshotTest, RestoreRejectsCorruptBuffer)
{
    run(50);
    std::string snap = checkpoint();
    snap[snap.size() / 3] = static_cast<char>(snap[snap.size() / 3] ^ 1);
    SnapshotReader r(snap);
    EXPECT_FALSE(r.checksumOk());
}

TEST_F(SimSnapshotTest, RestoreRejectsForeignStream)
{
    run(50);
    const std::string snap = checkpoint();

    // A different task owns a different stream (new streamId): its
    // restore must fail rather than silently adopt foreign identity.
    LoopTask other;
    SnapshotReader r(snap);
    ASSERT_TRUE(r.checksumOk());
    ASSERT_TRUE(sim_.tryRestore(r));
    ASSERT_TRUE(governor_.tryRestore(r));
    EXPECT_FALSE(other.tryRestore(r));
}

TEST_F(SimSnapshotTest, SocRejectsMismatchedCoreCount)
{
    run(10);
    SnapshotWriter w;
    soc_.snapshot(w);
    const std::string snap = w.finish();

    SocConfig small;
    small.numCores = 2;
    Soc other = Soc::nexus5(small);
    SnapshotReader r(snap);
    EXPECT_FALSE(other.tryRestore(r));
}

TEST(GovernorSnapshot, StatelessDefaultRoundTrips)
{
    PerformanceGovernor gov;
    SnapshotWriter w;
    gov.snapshot(w);
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    EXPECT_TRUE(gov.tryRestore(r));
    EXPECT_TRUE(r.atEnd());
}

TEST(GovernorSnapshot, FixedGovernorRestoresPinnedIndex)
{
    FixedGovernor gov(3);
    SnapshotWriter w;
    gov.snapshot(w);
    const std::string bytes = w.finish();

    gov.setFrequencyIndex(7);
    SnapshotReader r(bytes);
    ASSERT_TRUE(gov.tryRestore(r));
    FreqTable table = FreqTable::msm8974();
    GovernorView view;
    view.freqTable = &table;
    EXPECT_EQ(gov.decideFrequencyIndex(view), 3u);
}

TEST(GovernorSnapshot, PredictiveGovernorRoundTrips)
{
    // Null bundle: degraded mode, but the snapshot path must still
    // round-trip (the fingerprinted usable flag matches).
    PredictiveGovernor gov(nullptr);
    SnapshotWriter w;
    gov.snapshot(w);
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    EXPECT_TRUE(gov.tryRestore(r));
    EXPECT_TRUE(r.atEnd());
}

} // namespace
} // namespace dora
