/**
 * @file
 * Unit tests for the simulation kernel and Task plumbing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "mem/address_stream.hh"
#include "sim/simulator.hh"

namespace dora
{
namespace
{

/** A task that needs a fixed number of instructions, then finishes. */
class FiniteTask : public Task
{
  public:
    explicit FiniteTask(double work)
        : name_("finite"), budget_(work), remaining_(work),
          stream_(makeSpec(), 0, Rng(11))
    {
    }

    TaskDemand demand(double) override
    {
        TaskDemand d;
        if (remaining_ <= 0.0)
            return d;
        d.active = true;
        d.baseCpi = 1.0;
        d.memRefsPerInstr = 0.1;
        d.instrBudget = remaining_;
        d.stream = &stream_;
        return d;
    }

    void advance(const TickResult &result, double) override
    {
        remaining_ -= result.instructions;
        ++advances_;
    }

    bool finished() const override { return remaining_ <= 0.0; }
    const std::string &name() const override { return name_; }
    void reset() override { remaining_ = budget_; advances_ = 0; }

    int advances() const { return advances_; }

  private:
    static AddressStreamSpec makeSpec()
    {
        AddressStreamSpec spec;
        spec.workingSetBytes = 32 * 1024;
        return spec;
    }

    std::string name_;
    double budget_;
    double remaining_;
    int advances_ = 0;
    AddressStream stream_;
};

class SimulatorTest : public ::testing::Test
{
  protected:
    SimulatorTest()
        : soc_(Soc::nexus5()),
          power_(DevicePowerConfig{}, LeakageModel::msm8974Truth()),
          sim_(soc_, power_, SimConfig{})
    {
    }

    Soc soc_;
    DevicePower power_;
    Simulator sim_;
};

TEST_F(SimulatorTest, StepAdvancesOneTick)
{
    const TickTrace trace = sim_.step();
    EXPECT_NEAR(trace.nowSec, sim_.config().dtSec, 1e-12);
    EXPECT_GT(trace.power.total(), 0.0);
}

TEST_F(SimulatorTest, IdleSocStillConsumesBaseline)
{
    for (int i = 0; i < 100; ++i)
        sim_.step();
    EXPECT_GT(power_.meanPowerW(), power_.config().baselineW);
}

TEST_F(SimulatorTest, FiniteTaskCompletes)
{
    FiniteTask task(5e6);  // ~2-3 ticks at max frequency
    sim_.bindTask(0, &task);
    const double elapsed =
        sim_.runUntil([&] { return task.finished(); });
    EXPECT_TRUE(task.finished());
    EXPECT_GT(task.advances(), 0);
    EXPECT_GT(elapsed, 0.0);
    EXPECT_LT(elapsed, 0.1);
}

TEST_F(SimulatorTest, FinishedTaskStopsDemanding)
{
    FiniteTask task(1e5);
    sim_.bindTask(0, &task);
    sim_.runUntil([&] { return task.finished(); });
    const int advances = task.advances();
    sim_.step();
    sim_.step();
    EXPECT_EQ(task.advances(), advances);  // no more advance() calls
}

TEST_F(SimulatorTest, RunUntilHitsWall)
{
    SimConfig config;
    config.maxSeconds = 0.05;
    Simulator walled(soc_, power_, config);
    const double elapsed = walled.runUntil([] { return false; });
    EXPECT_NEAR(elapsed, 0.05, 0.002);
}

TEST_F(SimulatorTest, OnTickObserverSeesEveryTick)
{
    int ticks = 0;
    FiniteTask task(3e6);
    sim_.bindTask(0, &task);
    sim_.runUntil([&] { return task.finished(); },
                  [&](const TickTrace &) { ++ticks; });
    EXPECT_GT(ticks, 0);
}

TEST_F(SimulatorTest, ResetRestartsTasksAndClock)
{
    FiniteTask task(1e6);
    sim_.bindTask(0, &task);
    sim_.runUntil([&] { return task.finished(); });
    sim_.reset();
    EXPECT_DOUBLE_EQ(sim_.nowSec(), 0.0);
    EXPECT_FALSE(task.finished());
    EXPECT_DOUBLE_EQ(power_.totalEnergyJ(), 0.0);
}

TEST_F(SimulatorTest, TwoTasksRunConcurrently)
{
    FiniteTask a(5e6), b(5e6);
    sim_.bindTask(0, &a);
    sim_.bindTask(2, &b);
    sim_.runUntil([&] { return a.finished() && b.finished(); });
    EXPECT_TRUE(a.finished());
    EXPECT_TRUE(b.finished());
}

TEST(IdleTask, NeverFinishesNeverDemands)
{
    IdleTask idle;
    EXPECT_FALSE(idle.finished());
    EXPECT_FALSE(idle.demand(0.0).active);
}

} // namespace
} // namespace dora
