/**
 * @file
 * Unit tests for the simple governors, including the interactive
 * baseline's ramp-up/ramp-down behaviour.
 */

#include <gtest/gtest.h>

#include "governor/governor.hh"

namespace dora
{
namespace
{

class GovernorTest : public ::testing::Test
{
  protected:
    GovernorTest() : table_(FreqTable::msm8974()) {}

    GovernorView view(double util, size_t freq_index, double now = 0.0)
    {
        GovernorView v;
        v.nowSec = now;
        v.freqIndex = freq_index;
        v.freqTable = &table_;
        v.totalUtilization = util;
        return v;
    }

    FreqTable table_;
};

TEST_F(GovernorTest, PerformanceAlwaysMax)
{
    PerformanceGovernor g;
    EXPECT_EQ(g.decideFrequencyIndex(view(0.0, 0)), table_.maxIndex());
    EXPECT_EQ(g.decideFrequencyIndex(view(1.0, 5)), table_.maxIndex());
    EXPECT_EQ(g.name(), "performance");
}

TEST_F(GovernorTest, PowersaveAlwaysMin)
{
    PowersaveGovernor g;
    EXPECT_EQ(g.decideFrequencyIndex(view(1.0, 9)), table_.minIndex());
    EXPECT_EQ(g.name(), "powersave");
}

TEST_F(GovernorTest, FixedPinsAndRepins)
{
    FixedGovernor g(4);
    EXPECT_EQ(g.decideFrequencyIndex(view(0.5, 0)), 4u);
    g.setFrequencyIndex(7);
    EXPECT_EQ(g.decideFrequencyIndex(view(0.5, 0)), 7u);
}

TEST_F(GovernorTest, InteractiveJumpsToHispeedOnSaturation)
{
    InteractiveGovernor g;
    const size_t idle_idx = 0;
    const size_t decision =
        g.decideFrequencyIndex(view(1.0, idle_idx, 0.02));
    const double hispeed = g.config().hispeedFreqMhz;
    EXPECT_GE(table_.opp(decision).coreMhz, hispeed - 1.0);
}

TEST_F(GovernorTest, InteractiveClimbsToMaxUnderSustainedLoad)
{
    InteractiveGovernor g;
    size_t idx = 0;
    double now = 0.0;
    for (int i = 0; i < 20; ++i) {
        now += g.decisionIntervalSec();
        idx = g.decideFrequencyIndex(view(1.0, idx, now));
    }
    EXPECT_EQ(idx, table_.maxIndex());
}

TEST_F(GovernorTest, InteractiveHoldsDuringMinSampleTime)
{
    InteractiveGovernor g;
    double now = 0.0;
    // Saturate first.
    size_t idx = g.decideFrequencyIndex(view(1.0, 3, now));
    EXPECT_GT(idx, 3u);
    // Load vanishes: within min_sample_time the clock must hold.
    now += g.decisionIntervalSec();
    const size_t hold = g.decideFrequencyIndex(view(0.05, idx, now));
    EXPECT_EQ(hold, idx);
}

TEST_F(GovernorTest, InteractiveRampsDownAfterDwell)
{
    InteractiveGovernor g;
    double now = 0.0;
    size_t idx = g.decideFrequencyIndex(view(1.0, 3, now));
    // Stay idle well past min_sample_time.
    for (int i = 0; i < 10; ++i) {
        now += g.decisionIntervalSec();
        idx = g.decideFrequencyIndex(view(0.05, idx, now));
    }
    EXPECT_LT(idx, 3u);
}

TEST_F(GovernorTest, InteractiveTracksModerateLoad)
{
    InteractiveGovernor g;
    // Utilization at exactly target_load on the current OPP: no move up
    // more than one step.
    const size_t idx = 7;
    double now = 1.0;
    g.reset();
    const size_t decision =
        g.decideFrequencyIndex(view(0.89, idx, now));
    EXPECT_LE(decision, idx + 1);
    EXPECT_GE(decision, idx);
}

TEST_F(GovernorTest, InteractiveResetForgetsHistory)
{
    InteractiveGovernor g;
    g.decideFrequencyIndex(view(1.0, 3, 0.0));
    g.reset();
    // After reset, low load ramps down immediately (no dwell pending).
    const size_t idx = g.decideFrequencyIndex(view(0.05, 8, 10.0));
    EXPECT_LT(idx, 8u);
}

} // namespace
} // namespace dora
