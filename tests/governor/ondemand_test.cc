/**
 * @file
 * Unit tests for the ondemand governor baseline.
 */

#include <gtest/gtest.h>

#include "governor/governor.hh"

namespace dora
{
namespace
{

class OndemandTest : public ::testing::Test
{
  protected:
    OndemandTest() : table_(FreqTable::msm8974()) {}

    GovernorView view(double util, size_t freq_index)
    {
        GovernorView v;
        v.freqIndex = freq_index;
        v.freqTable = &table_;
        v.totalUtilization = util;
        return v;
    }

    FreqTable table_;
    OndemandGovernor governor_;
};

TEST_F(OndemandTest, JumpsToMaxAboveThreshold)
{
    EXPECT_EQ(governor_.decideFrequencyIndex(view(0.85, 0)),
              table_.maxIndex());
    EXPECT_EQ(governor_.decideFrequencyIndex(view(1.0, 5)),
              table_.maxIndex());
}

TEST_F(OndemandTest, StepsDownProportionallyToLoad)
{
    const size_t from_max =
        governor_.decideFrequencyIndex(view(0.2, table_.maxIndex()));
    EXPECT_LT(from_max, table_.maxIndex());
    // Roughly cur*util/0.7: 2265.6*0.2/0.7 ~ 647 MHz.
    EXPECT_NEAR(table_.opp(from_max).coreMhz, 650.0, 120.0);
}

TEST_F(OndemandTest, IdleDropsToBottom)
{
    EXPECT_EQ(governor_.decideFrequencyIndex(view(0.0, 8)),
              table_.minIndex());
}

TEST_F(OndemandTest, ModerateLoadHoldsServiceLevel)
{
    // At util just below threshold the chosen OPP must still be able
    // to serve the same work: f_new * 0.7 >= f_cur * util.
    for (size_t idx : {3u, 7u, 11u}) {
        const double util = 0.6;
        const size_t chosen = governor_.decideFrequencyIndex(
            view(util, idx));
        EXPECT_GE(table_.opp(chosen).coreMhz * 0.7,
                  table_.opp(idx).coreMhz * util * 0.999);
    }
}

TEST_F(OndemandTest, HasNameAndInterval)
{
    EXPECT_EQ(governor_.name(), "ondemand");
    EXPECT_DOUBLE_EQ(governor_.decisionIntervalSec(), 0.05);
}

} // namespace
} // namespace dora
