// Fixture: ExperimentConfig with one un-hashed field (finding), one
// annotated exclusion, one NOLINT-suppressed field, and hashed fields.
#ifndef FIXTURE_EXPERIMENT_HH
#define FIXTURE_EXPERIMENT_HH

struct ExperimentConfig
{
    double deadlineSec = 3.0;
    double dtSec = 1e-3;
    // dora:hash-exclude(observability only, never changes results)
    int traceLevel = 0;
    int workers = 0;  // NOLINT(dora-cov-hash)
    double forgottenKnob = 1.0;
};

unsigned long experimentConfigHash(const ExperimentConfig &config);

#endif
