#include "experiment.hh"

unsigned long
experimentConfigHash(const ExperimentConfig &config)
{
    unsigned long h = 1469598103934665603ul;
    h ^= static_cast<unsigned long>(config.deadlineSec * 1e6);
    h ^= static_cast<unsigned long>(config.dtSec * 1e9);
    return h;
}
