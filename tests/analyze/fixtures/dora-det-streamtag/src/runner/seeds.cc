// Fixture: "dup:" is seeded here and in src/harness/seeds2.cc with no
// annotation (two findings); "blessed:" is shared but annotated at
// both sites; "solo:" has a single site (clean).
#include <string>

unsigned long hashLabel(const std::string &text);

unsigned long
seedA(const std::string &label)
{
    return hashLabel("dup:" + label);
}

unsigned long
seedBlessedA(const std::string &label)
{
    // dora:stream-tag-shared(same workload draws the same stream)
    return hashLabel("blessed:" + label);
}

unsigned long
seedSolo(const std::string &label)
{
    return hashLabel("solo:" + label);
}
