#include <string>

unsigned long hashLabel(const std::string &text);

unsigned long
seedB(const std::string &label)
{
    return hashLabel("dup:" + label);
}

unsigned long
seedBlessedB(const std::string &label)
{
    // dora:stream-tag-shared(same workload draws the same stream)
    return hashLabel("blessed:" + label);
}
