#include "widget.hh"

void
Widget::snapshot(SnapshotWriter &w) const
{
    writeDouble(w, position_);
}

bool
Widget::tryRestore(SnapshotReader &r)
{
    if (!readDouble(r, &position_) || !readDouble(r, &restoreOnly_))
        return false;
    return true;
}
