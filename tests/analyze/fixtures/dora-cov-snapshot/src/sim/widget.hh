// Fixture: a class with snapshot()/tryRestore() where one member is
// serialized in both (clean), one is missing from both (finding), one
// is missing from snapshot() only (finding), one is annotated, and
// one is NOLINT-suppressed.
#ifndef FIXTURE_WIDGET_HH
#define FIXTURE_WIDGET_HH

class SnapshotReader;
class SnapshotWriter;

class Widget
{
  public:
    void snapshot(SnapshotWriter &w) const;
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    double position_ = 0.0;
    double forgotten_ = 0.0;
    double restoreOnly_ = 0.0;
    // dora:snapshot-exclude(construction config)
    double tuning_ = 1.0;
    double scratch_ = 0.0;  // NOLINT(dora-cov-snapshot)
};

#endif
