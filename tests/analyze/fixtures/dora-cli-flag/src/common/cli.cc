// Fixture: the helpers themselves live here; flag comparisons inside
// src/common/cli.* are the implementation, not a violation.
#include <cstring>
#include <string>

bool
cliHasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i)
        if (argv[i] && flag == argv[i])
            return true;
    return false;
}

bool
helperScan(int argc, char **argv)
{
    return cliHasFlag(argc, argv, "--exact-ticks");
}
