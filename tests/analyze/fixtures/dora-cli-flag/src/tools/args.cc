// Fixture: hand-parsed flags (strcmp and ==) are findings; a
// NOLINT-suppressed site and a non-comparison label use are clean.
#include <cstring>
#include <string>

void fatal(const char *msg);

bool
parseArgs(int argc, char **argv)
{
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verbose") == 0)
            verbose = true;
        const std::string arg = argv[i];
        if (arg == "--fast")
            fatal("unsupported");
        if (arg == "--legacy")  // NOLINT(dora-cli-flag)
            fatal("legacy");
    }
    const std::string origin = "--jobs";  // label, not a comparison
    (void)origin;
    return verbose;
}
