// Fixture: two snapshot-section writers. "drft" gained a field while
// the manifest still records the old layout under the same version
// token (finding); "okay" matches its manifest entry (clean). The
// manifest also records a "gone" format no writer produces any more
// (stale-entry finding).
class SnapshotWriter
{
  public:
    void beginSection(const char *tag, int version);
    void putU64(unsigned long v);
    void putDouble(double v);
};

class Thing
{
  public:
    void snapshot(SnapshotWriter &w) const;

  private:
    unsigned long ticks_ = 0;
    double phase_ = 0.0;
};

class Other
{
  public:
    void snapshot(SnapshotWriter &w) const;

  private:
    double value_ = 0.0;
};

void
Thing::snapshot(SnapshotWriter &w) const
{
    w.beginSection("drft", 1);
    w.putU64(ticks_);
    w.putDouble(phase_);
}

void
Other::snapshot(SnapshotWriter &w) const
{
    w.beginSection("okay", 1);
    w.putDouble(value_);
}
