/**
 * @file
 * Tests for the dora-analyze structural engine
 * (tools/analyze/analyze_engine.hh): scanner and structural-parser
 * unit tests (nested classes, templates, macros, comment/raw-string
 * edges), in-memory rule spot checks, manifest render/parse
 * round-trips and drift detection, one golden fixture suite per rule
 * under tests/analyze/fixtures/<rule>/, negative tests that delete a
 * real field-fold / snapshot line and expect a finding, and the
 * zero-findings self-scan scripts/ci.sh enforces.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze_engine.hh"

namespace fs = std::filesystem;
using dora::analyze::Finding;
using dora::analyze::FunctionDef;
using dora::analyze::LayoutRecord;
using dora::analyze::ScannedUnit;
using dora::analyze::scanUnit;
using dora::analyze::StructDecl;
using dora::analyze::TreeModel;

namespace
{

std::string
repoRoot()
{
    return DORA_SOURCE_DIR;
}

/** One in-memory source file under a virtual repo path. */
struct VFile
{
    std::string path;
    std::string content;
};

TreeModel
modelOf(const std::vector<VFile> &files)
{
    std::vector<ScannedUnit> units;
    units.reserve(files.size());
    for (const auto &f : files)
        units.push_back(scanUnit(f.path, f.content));
    return dora::analyze::buildModel(std::move(units));
}

/**
 * Analyze in-memory files with a self-consistent manifest, so the
 * ser-version rule stays quiet unless a test perturbs the manifest
 * on purpose.
 */
std::vector<Finding>
analyzeFiles(const std::vector<VFile> &files)
{
    const TreeModel model = modelOf(files);
    std::vector<Finding> problems;
    const std::string manifest = dora::analyze::renderManifest(
        dora::analyze::computeLayouts(model, &problems));
    return dora::analyze::analyzeModel(model, &manifest);
}

/** "path:line:rule" keys used to diff against expect.txt. */
std::vector<std::string>
keysOf(const std::vector<Finding> &findings)
{
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const auto &f : findings)
        keys.push_back(f.path + ":" + std::to_string(f.line) + ":" +
                       f.rule);
    std::sort(keys.begin(), keys.end());
    return keys;
}

const StructDecl *
findStruct(const TreeModel &model, const std::string &name)
{
    for (const auto &s : model.structs)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::vector<std::string>
memberNames(const StructDecl &decl)
{
    std::vector<std::string> names;
    for (const auto &m : decl.members)
        names.push_back(m.name);
    return names;
}

const FunctionDef *
findFunction(const TreeModel &model, const std::string &class_name,
             const std::string &name)
{
    for (const auto &f : model.functions)
        if (f.className == class_name && f.name == name)
            return &f;
    return nullptr;
}

} // namespace

// ------------------------------------------------------------------ //
// Scanner: parallel views, literals, annotations                      //
// ------------------------------------------------------------------ //

TEST(AnalyzeScanner, CodeAndTextViewsStayParallel)
{
    const ScannedUnit u = scanUnit(
        "src/sim/x.cc",
        "int a = 1; // trailing comment\n"
        "const char *s = \"hash(me)\";\n"
        "/* block\n   spans */ int b;\n");
    ASSERT_EQ(u.code.size(), 4u);
    ASSERT_EQ(u.text.size(), 4u);
    for (size_t i = 0; i < u.code.size(); ++i)
        EXPECT_EQ(u.code[i].size(), u.text[i].size()) << "line " << i;
    // Comments are blanked in both views; string contents only in code.
    EXPECT_EQ(u.code[0].find("trailing"), std::string::npos);
    EXPECT_EQ(u.text[0].find("trailing"), std::string::npos);
    EXPECT_EQ(u.code[1].find("hash"), std::string::npos);
    EXPECT_NE(u.text[1].find("hash(me)"), std::string::npos);
    EXPECT_EQ(u.code[2].find("block"), std::string::npos);
    EXPECT_NE(u.code[3].find("int b;"), std::string::npos);
}

TEST(AnalyzeScanner, StringLiteralsAreIndexedWithPositions)
{
    const ScannedUnit u = scanUnit(
        "src/sim/x.cc", "f(\"one\", 2); g(\"two\");\nh(\"three\");\n");
    ASSERT_GE(u.strings.size(), 2u);
    ASSERT_EQ(u.strings[0].size(), 2u);
    EXPECT_EQ(u.strings[0][0].value, "one");
    EXPECT_EQ(u.strings[0][0].line, 1);
    EXPECT_EQ(u.strings[0][0].col, 2u);
    EXPECT_EQ(u.strings[0][1].value, "two");
    EXPECT_EQ(u.strings[1][0].value, "three");
}

TEST(AnalyzeScanner, RawStringsAreCapturedAndBlanked)
{
    const ScannedUnit u = scanUnit(
        "src/sim/x.cc",
        "const char *re = R\"(class Fake { int x_; })\";\nint y;\n");
    EXPECT_EQ(u.code[0].find("class Fake"), std::string::npos);
    ASSERT_FALSE(u.strings[0].empty());
    EXPECT_NE(u.strings[0][0].value.find("class Fake"),
              std::string::npos);
    // The fake declaration inside the literal must not parse.
    const TreeModel m =
        modelOf({{"src/sim/x.cc",
                  "const char *re = R\"(class Fake { int x_; })\";\n"}});
    EXPECT_EQ(findStruct(m, "Fake"), nullptr);
}

TEST(AnalyzeScanner, AnnotationsParseOnLineAndLineAbove)
{
    const ScannedUnit u = scanUnit(
        "src/sim/x.cc",
        "int a;  // dora:hash-exclude(derived value)\n"
        "// dora:snapshot-exclude(scratch)\n"
        "int b;\n"
        "// dora:hash-exclude()\n"
        "int c;\n");
    EXPECT_TRUE(u.hasAnnotation(1, "hash-exclude"));
    EXPECT_FALSE(u.hasAnnotation(1, "snapshot-exclude"));
    EXPECT_TRUE(u.hasAnnotation(3, "snapshot-exclude"));
    // An empty reason does not count as an annotation.
    EXPECT_FALSE(u.hasAnnotation(5, "hash-exclude"));
}

TEST(AnalyzeScanner, TrailingAnnotationDoesNotBlessTheNextLine)
{
    // Only a comment-only line above counts as "preceding line":
    // a trailing annotation on one member must not leak onto the
    // member declared right below it.
    const ScannedUnit u = scanUnit(
        "src/sim/x.cc",
        "int a;  // dora:snapshot-exclude(config)\n"
        "int b;\n");
    EXPECT_TRUE(u.hasAnnotation(1, "snapshot-exclude"));
    EXPECT_FALSE(u.hasAnnotation(2, "snapshot-exclude"));
}

TEST(AnalyzeScanner, AnnotationInsideStringIsIgnored)
{
    const ScannedUnit u = scanUnit(
        "src/sim/x.cc",
        "const char *s = \"// dora:hash-exclude(nope)\";\nint a;\n");
    EXPECT_FALSE(u.hasAnnotation(1, "hash-exclude"));
    EXPECT_FALSE(u.hasAnnotation(2, "hash-exclude"));
}

TEST(AnalyzeScanner, NolintCollectsRuleSets)
{
    const ScannedUnit u = scanUnit(
        "src/sim/x.cc",
        "int a;  // NOLINT(dora-cov-hash)\n"
        "// NOLINTNEXTLINE(dora-cov-snapshot)\n"
        "int b;\n"
        "int c;  // NOLINT\n");
    EXPECT_TRUE(u.nolint[0].count("dora-cov-hash"));
    EXPECT_TRUE(u.nolint[2].count("dora-cov-snapshot"));
    EXPECT_TRUE(u.nolint[3].count("*"));
}

// ------------------------------------------------------------------ //
// Structural parser                                                   //
// ------------------------------------------------------------------ //

TEST(AnalyzeParser, ExtractsMembersAndMethods)
{
    const TreeModel m = modelOf(
        {{"src/sim/a.hh",
          "class Counter\n"
          "{\n"
          "  public:\n"
          "    void tick();\n"
          "    int value() const { return count_; }\n"
          "\n"
          "  private:\n"
          "    int count_ = 0;\n"
          "    double rate_;\n"
          "    std::vector<int> history_;\n"
          "};\n"}});
    const StructDecl *c = findStruct(m, "Counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(memberNames(*c),
              (std::vector<std::string>{"count_", "rate_", "history_"}));
    EXPECT_TRUE(c->methods.count("tick"));
    EXPECT_TRUE(c->methods.count("value"));
}

TEST(AnalyzeParser, NestedClassesGetQualifiedNames)
{
    const TreeModel m = modelOf(
        {{"src/sim/a.hh",
          "class Outer\n"
          "{\n"
          "    struct Inner\n"
          "    {\n"
          "        int deep_ = 0;\n"
          "    };\n"
          "    Inner inner_;\n"
          "    int shallow_ = 0;\n"
          "};\n"}});
    const StructDecl *outer = findStruct(m, "Outer");
    const StructDecl *inner = findStruct(m, "Outer::Inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(memberNames(*outer),
              (std::vector<std::string>{"inner_", "shallow_"}));
    EXPECT_EQ(memberNames(*inner), (std::vector<std::string>{"deep_"}));
}

TEST(AnalyzeParser, TemplatesMacrosAndEdgeMembersParse)
{
    const TreeModel m = modelOf(
        {{"src/sim/a.hh",
          "template <typename T>\n"
          "class Holder\n"
          "{\n"
          "    T item_;\n"
          "    std::map<int, std::vector<T>> table_;\n"
          "    alignas(64) std::array<double, 4> lanes_;\n"
          "    uint32_t bits_ : 4;\n"
          "    double grid_[3];\n"
          "    DORA_GUARDED(mu_) int shared_;\n"
          "};\n"}});
    const StructDecl *h = findStruct(m, "Holder");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(memberNames(*h),
              (std::vector<std::string>{"item_", "table_", "lanes_",
                                        "bits_", "grid_", "shared_"}));
}

TEST(AnalyzeParser, FunctionBodiesAreCapturedCrossTu)
{
    const TreeModel m = modelOf(
        {{"src/sim/a.cc",
          "void\n"
          "Counter::tick()\n"
          "{\n"
          "    count_ += 1;\n"
          "}\n"
          "static int\n"
          "helper(int x)\n"
          "{\n"
          "    return x * 2;\n"
          "}\n"}});
    const FunctionDef *tick = findFunction(m, "Counter", "tick");
    ASSERT_NE(tick, nullptr);
    EXPECT_NE(tick->body.find("count_"), std::string::npos);
    const FunctionDef *h = findFunction(m, "", "helper");
    ASSERT_NE(h, nullptr);
    EXPECT_NE(h->body.find("x * 2"), std::string::npos);
}

TEST(AnalyzeParser, ControlFlowAndInitializersAreNotMembers)
{
    const TreeModel m = modelOf(
        {{"src/sim/a.hh",
          "class Machine\n"
          "{\n"
          "    void run()\n"
          "    {\n"
          "        for (int i = 0; i < 4; ++i) {\n"
          "            int local = i;\n"
          "            (void)local;\n"
          "        }\n"
          "        if (state_ == 3) {\n"
          "            state_ = 0;\n"
          "        }\n"
          "    }\n"
          "    int state_ = 0;\n"
          "    static constexpr int kLimit = 8;\n"
          "};\n"}});
    const StructDecl *machine = findStruct(m, "Machine");
    ASSERT_NE(machine, nullptr);
    // Locals never leak into the member list, and static constants
    // are not per-instance state, so only state_ remains.
    EXPECT_EQ(memberNames(*machine),
              (std::vector<std::string>{"state_"}));
    EXPECT_TRUE(machine->methods.count("run"));
}

TEST(AnalyzeParser, PreprocessorAndCommentsAreSkipped)
{
    const TreeModel m = modelOf(
        {{"src/sim/a.hh",
          "#ifndef GUARD\n"
          "#define GUARD\n"
          "struct Plain\n"
          "{\n"
          "#if defined(DORA_EXTRA)\n"
          "    int gated_;\n"
          "#endif\n"
          "    // int commented_;\n"
          "    int real_;\n"
          "};\n"
          "#endif\n"}});
    const StructDecl *p = findStruct(m, "Plain");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(memberNames(*p),
              (std::vector<std::string>{"gated_", "real_"}));
}

// ------------------------------------------------------------------ //
// Rules (in-memory spot checks)                                       //
// ------------------------------------------------------------------ //

TEST(AnalyzeRules, CatalogHasFiveUniqueIds)
{
    std::set<std::string> ids;
    for (const auto &rule : dora::analyze::ruleCatalog())
        EXPECT_TRUE(ids.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
    EXPECT_EQ(ids.size(), 5u);
}

TEST(AnalyzeRules, HashCoverageSeesFoldsAcrossTus)
{
    const VFile header{
        "src/fleet/fleet_spec.hh",
        "struct FleetSpec\n"
        "{\n"
        "    unsigned long seed = 1;\n"
        "    double spread = 0.1;\n"
        "};\n"
        "unsigned long fleetSpecHash(const FleetSpec &spec);\n"};
    const VFile folded{
        "src/fleet/fleet_spec.cc",
        "unsigned long\n"
        "fleetSpecHash(const FleetSpec &spec)\n"
        "{\n"
        "    return mix(spec.seed) ^ mix(spec.spread);\n"
        "}\n"};
    EXPECT_TRUE(analyzeFiles({header, folded}).empty());

    const VFile partial{
        "src/fleet/fleet_spec.cc",
        "unsigned long\n"
        "fleetSpecHash(const FleetSpec &spec)\n"
        "{\n"
        "    return mix(spec.seed);\n"
        "}\n"};
    const auto findings = analyzeFiles({header, partial});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-cov-hash");
    EXPECT_EQ(findings[0].path, "src/fleet/fleet_spec.hh");
    EXPECT_EQ(findings[0].line, 4);
    EXPECT_NE(findings[0].message.find("spread"), std::string::npos);
}

TEST(AnalyzeRules, HashCoverageNeedsTheHashFunction)
{
    // A contract struct whose hash function vanished from the tree is
    // a single loud finding at the declaration, not one per field.
    const VFile header{"src/fleet/fleet_spec.hh",
                       "struct FleetSpec\n"
                       "{\n"
                       "    unsigned long seed = 1;\n"
                       "    double spread = 0.1;\n"
                       "};\n"};
    const auto findings = analyzeFiles({header});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-cov-hash");
    EXPECT_EQ(findings[0].line, 1);
    EXPECT_NE(findings[0].message.find("not found"), std::string::npos);
}

TEST(AnalyzeRules, SnapshotCoverageChecksBothBodies)
{
    const VFile header{
        "src/sim/gizmo.hh",
        "class Gizmo\n"
        "{\n"
        "  public:\n"
        "    void snapshot(SnapshotWriter &w) const;\n"
        "    bool tryRestore(SnapshotReader &r);\n"
        "\n"
        "  private:\n"
        "    double state_ = 0.0;\n"
        "    double lost_ = 0.0;\n"
        "};\n"};
    const VFile bodies{
        "src/sim/gizmo.cc",
        "void\n"
        "Gizmo::snapshot(SnapshotWriter &w) const\n"
        "{\n"
        "    writeDouble(w, state_);\n"
        "}\n"
        "bool\n"
        "Gizmo::tryRestore(SnapshotReader &r)\n"
        "{\n"
        "    return readDouble(r, &state_);\n"
        "}\n"};
    const auto findings = analyzeFiles({header, bodies});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-cov-snapshot");
    EXPECT_EQ(findings[0].line, 9);
    EXPECT_NE(findings[0].message.find("lost_"), std::string::npos);

    // Snapshot-only classes (no tryRestore) are out of scope.
    const VFile one_sided{"src/sim/oneway.hh",
                          "class OneWay\n"
                          "{\n"
                          "    void snapshot(SnapshotWriter &w) const\n"
                          "    {\n"
                          "        writeDouble(w, kept_);\n"
                          "    }\n"
                          "    double kept_ = 0.0;\n"
                          "    double dropped_ = 0.0;\n"
                          "};\n"};
    EXPECT_TRUE(analyzeFiles({one_sided}).empty());
}

TEST(AnalyzeRules, StreamTagRuleGroupsByLiteral)
{
    const VFile a{"src/runner/a.cc",
                  "unsigned long seedA()\n"
                  "{\n"
                  "    return hashLabel(\"tag:\" + label());\n"
                  "}\n"};
    const VFile b{"src/harness/b.cc",
                  "unsigned long seedB()\n"
                  "{\n"
                  "    return hashLabel(\"tag:\" + label());\n"
                  "}\n"};
    const auto findings = analyzeFiles({a, b});
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].rule, "dora-det-streamtag");
    EXPECT_EQ(findings[1].rule, "dora-det-streamtag");

    // Same literal twice in one function at one call shape is still
    // two call sites; a single site is clean.
    EXPECT_TRUE(analyzeFiles({a}).empty());

    // Tests are out of scope: harness doubles reuse tags freely.
    const VFile t{"tests/runner/a_test.cc", a.content};
    EXPECT_TRUE(analyzeFiles({t, b}).empty());
}

TEST(AnalyzeRules, CliFlagRuleRequiresComparisonContext)
{
    const VFile bad{"src/exec/args.cc",
                    "bool has(int argc, char **argv)\n"
                    "{\n"
                    "    return std::strcmp(argv[1], \"--fast\") == 0;\n"
                    "}\n"};
    const auto findings = analyzeFiles({bad});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-cli-flag");

    const VFile label{"src/exec/args.cc",
                      "const char *origin()\n"
                      "{\n"
                      "    return \"--jobs\";\n"
                      "}\n"};
    EXPECT_TRUE(analyzeFiles({label}).empty());

    const VFile helper{"src/common/cli.cc", bad.content};
    EXPECT_TRUE(analyzeFiles({helper}).empty());
}

// ------------------------------------------------------------------ //
// Manifest: render / parse round-trip and drift                       //
// ------------------------------------------------------------------ //

namespace
{

const VFile kWriter{
    "src/sim/pack.cc",
    "void\n"
    "Pack::snapshot(SnapshotWriter &w) const\n"
    "{\n"
    "    w.beginSection(\"pack\", 3);\n"
    "    w.putU64(count_);\n"
    "    w.putDouble(level_);\n"
    "}\n"};

} // namespace

TEST(AnalyzeManifest, RenderParseRoundTripIsLossless)
{
    const TreeModel model = modelOf({kWriter});
    std::vector<Finding> problems;
    const std::vector<LayoutRecord> records =
        dora::analyze::computeLayouts(model, &problems);
    EXPECT_TRUE(problems.empty());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].name, "section:pack");
    EXPECT_EQ(records[0].version, "3");

    const std::string json = dora::analyze::renderManifest(records);
    std::vector<LayoutRecord> parsed;
    std::string error;
    ASSERT_TRUE(dora::analyze::parseManifest(json, &parsed, &error))
        << error;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].name, records[0].name);
    EXPECT_EQ(parsed[0].file, records[0].file);
    EXPECT_EQ(parsed[0].function, records[0].function);
    EXPECT_EQ(parsed[0].version, records[0].version);
    EXPECT_EQ(parsed[0].layout, records[0].layout);
}

TEST(AnalyzeManifest, MalformedJsonIsRejected)
{
    std::vector<LayoutRecord> parsed;
    std::string error;
    EXPECT_FALSE(
        dora::analyze::parseManifest("{\"formats\": [", &parsed,
                                     &error));
    EXPECT_FALSE(error.empty());
}

TEST(AnalyzeManifest, LayoutDriftUnderSameVersionIsAFinding)
{
    const TreeModel model = modelOf({kWriter});
    std::vector<Finding> problems;
    std::vector<LayoutRecord> records =
        dora::analyze::computeLayouts(model, &problems);
    ASSERT_EQ(records.size(), 1u);

    // Manifest recorded one fewer field under the same version token.
    records[0].layout.pop_back();
    const std::string stale = dora::analyze::renderManifest(records);
    const auto findings = dora::analyze::analyzeModel(model, &stale);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-ser-version");
    EXPECT_EQ(findings[0].path, "src/sim/pack.cc");
    EXPECT_NE(findings[0].message.find("section:pack"),
              std::string::npos);
}

TEST(AnalyzeManifest, VersionBumpBlessesALayoutChange)
{
    const TreeModel model = modelOf({kWriter});
    std::vector<Finding> problems;
    std::vector<LayoutRecord> records =
        dora::analyze::computeLayouts(model, &problems);
    ASSERT_EQ(records.size(), 1u);
    records[0].layout.pop_back();
    records[0].version = "2";  // old layout under the old version
    const std::string old = dora::analyze::renderManifest(records);
    // Layout AND version both differ: stale manifest, regen wanted —
    // but not the silent-drift finding.
    const auto findings = dora::analyze::analyzeModel(model, &old);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("--regen-manifest"),
              std::string::npos);
    EXPECT_EQ(findings[0].message.find("still"), std::string::npos);
}

TEST(AnalyzeManifest, MissingManifestOnlyMattersWithFormats)
{
    const VFile plain{"src/sim/quiet.cc",
                      "int addOne(int x)\n"
                      "{\n"
                      "    return x + 1;\n"
                      "}\n"};
    const TreeModel no_formats = modelOf({plain});
    EXPECT_TRUE(
        dora::analyze::analyzeModel(no_formats, nullptr).empty());

    const TreeModel with_formats = modelOf({kWriter});
    const auto findings =
        dora::analyze::analyzeModel(with_formats, nullptr);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "dora-ser-version");
    EXPECT_EQ(findings[0].path,
              dora::analyze::manifestRelPath());
}

// ------------------------------------------------------------------ //
// Golden fixtures: one directory per rule                             //
// ------------------------------------------------------------------ //

namespace
{

std::vector<std::string>
readExpect(const fs::path &expect_path)
{
    std::ifstream in(expect_path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

class AnalyzeGolden : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(AnalyzeGolden, FixtureFindingsMatchExpectFile)
{
    const fs::path rule_dir =
        fs::path(repoRoot()) / "tests/analyze/fixtures" / GetParam();
    ASSERT_TRUE(fs::exists(rule_dir)) << rule_dir;
    ASSERT_TRUE(fs::exists(rule_dir / "expect.txt")) << rule_dir;
    const auto findings = dora::analyze::analyzeTree(
        rule_dir.string(), dora::analyze::defaultSubdirs());
    EXPECT_EQ(keysOf(findings), readExpect(rule_dir / "expect.txt"));
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, AnalyzeGolden,
    ::testing::Values("dora-cov-hash", "dora-cov-snapshot",
                      "dora-det-streamtag", "dora-ser-version",
                      "dora-cli-flag"),
    [](const auto &info) {
        std::string name = info.param;
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(AnalyzeGoldenCoverage, EveryRuleHasAFixtureDirectory)
{
    const fs::path fixtures =
        fs::path(repoRoot()) / "tests/analyze/fixtures";
    for (const auto &rule : dora::analyze::ruleCatalog())
        EXPECT_TRUE(fs::is_directory(fixtures / rule.id))
            << "missing fixture dir for " << rule.id;
}

// ------------------------------------------------------------------ //
// Negative tests against the real sources                             //
// ------------------------------------------------------------------ //

namespace
{

std::string
readRepoFile(const std::string &rel)
{
    std::ifstream in(fs::path(repoRoot()) / rel, std::ios::binary);
    EXPECT_TRUE(in.good()) << rel;
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

/** Remove the first line containing @p needle (must exist). */
std::string
dropLineWith(const std::string &content, const std::string &needle)
{
    std::istringstream in(content);
    std::ostringstream out;
    std::string line;
    bool dropped = false;
    while (std::getline(in, line)) {
        if (!dropped && line.find(needle) != std::string::npos) {
            dropped = true;
            continue;
        }
        out << line << '\n';
    }
    EXPECT_TRUE(dropped) << "no line contains: " << needle;
    return out.str();
}

std::vector<Finding>
findingsFor(const std::vector<Finding> &all, const std::string &rule)
{
    std::vector<Finding> out;
    for (const auto &f : all)
        if (f.rule == rule)
            out.push_back(f);
    return out;
}

} // namespace

TEST(AnalyzeNegative, DeletedFleetSpecFoldIsAFinding)
{
    const std::string hh = readRepoFile("src/fleet/fleet_spec.hh");
    const std::string cc = readRepoFile("src/fleet/fleet_spec.cc");
    EXPECT_TRUE(findingsFor(
                    analyzeFiles({{"src/fleet/fleet_spec.hh", hh},
                                  {"src/fleet/fleet_spec.cc", cc}}),
                    "dora-cov-hash")
                    .empty());

    const std::string broken =
        dropLineWith(cc, "appendHexDouble(text, spec.faultIncidence)");
    const auto findings = findingsFor(
        analyzeFiles({{"src/fleet/fleet_spec.hh", hh},
                      {"src/fleet/fleet_spec.cc", broken}}),
        "dora-cov-hash");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("faultIncidence"),
              std::string::npos);
}

TEST(AnalyzeNegative, DeletedSnapshotMemberIsAFinding)
{
    const std::string hh = readRepoFile("src/mem/dram_model.hh");
    const std::string cc = readRepoFile("src/mem/dram_model.cc");
    EXPECT_TRUE(findingsFor(
                    analyzeFiles({{"src/mem/dram_model.hh", hh},
                                  {"src/mem/dram_model.cc", cc}}),
                    "dora-cov-snapshot")
                    .empty());

    const std::string broken =
        dropLineWith(cc, "w.putDouble(pendingBytes_)");
    const auto findings = findingsFor(
        analyzeFiles({{"src/mem/dram_model.hh", hh},
                      {"src/mem/dram_model.cc", broken}}),
        "dora-cov-snapshot");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("pendingBytes_"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("snapshot()"),
              std::string::npos);
}

// ------------------------------------------------------------------ //
// Reports and the self-scan                                           //
// ------------------------------------------------------------------ //

TEST(AnalyzeReport, JsonIsWellFormedAndOrdered)
{
    const std::vector<Finding> findings = {
        {"src/b.cc", 2, "dora-cov-hash", "m\"sg"},
        {"src/a.cc", 9, "dora-cli-flag", "msg"},
    };
    const std::string json = dora::analyze::renderJson(findings);
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"file\": \"src/b.cc\""), std::string::npos);
    EXPECT_NE(json.find("\\\"sg"), std::string::npos);
}

TEST(AnalyzeSelfScan, ShippedTreeHasZeroFindings)
{
    std::vector<std::string> scanned;
    const auto findings = dora::analyze::analyzeTree(
        repoRoot(), dora::analyze::defaultSubdirs(), &scanned);
    EXPECT_GT(scanned.size(), 100u)
        << "self-scan walked suspiciously few files — wrong root?";
    EXPECT_TRUE(findings.empty())
        << "tree is not analyze-clean:\n"
        << dora::analyze::renderText(findings);
}

TEST(AnalyzeSelfScan, CheckedInManifestIsFresh)
{
    std::vector<std::string> scanned;
    const TreeModel model = dora::analyze::loadTree(
        repoRoot(), dora::analyze::defaultSubdirs(), &scanned);
    std::vector<Finding> problems;
    const std::vector<LayoutRecord> computed =
        dora::analyze::computeLayouts(model, &problems);
    EXPECT_TRUE(problems.empty())
        << dora::analyze::renderText(problems);
    EXPECT_FALSE(computed.empty());

    const std::string on_disk = readRepoFile(
        dora::analyze::manifestRelPath());
    EXPECT_EQ(dora::analyze::renderManifest(computed), on_disk)
        << "tools/analyze/serialized_layouts.json is stale; run "
           "dora-analyze --regen-manifest";
}

TEST(AnalyzeSelfScan, FixtureFilesAreExcludedFromTreeWalks)
{
    std::vector<std::string> scanned;
    dora::analyze::loadTree(repoRoot(), {"tests"}, &scanned);
    for (const auto &path : scanned)
        EXPECT_EQ(path.find("fixtures/"), std::string::npos) << path;
}
