/**
 * @file
 * Model-fault tests: corrupt bundle files must be rejected without
 * terminating the process, and the predictive governor must degrade
 * gracefully when its models (or their inputs) go bad.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "dora/features.hh"
#include "dora/model_bundle.hh"
#include "dora/predictive_governor.hh"
#include "dora/trainer.hh"

namespace dora
{
namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/** Tiny trained bundle from synthetic linear data (one bus group). */
ModelBundle
syntheticBundle()
{
    ModelBundle bundle;
    Dataset time_data, power_data;
    for (double mhz : {300.0, 960.0, 1497.6, 2265.6}) {
        for (double mpki : {1.0, 10.0}) {
            WebPageFeatures page{1000, 800, 300, 300, 500};
            auto x = buildFeatureVector(page, mpki, mhz, 800.0, 0.9);
            time_data.add(x, 4.0 - 1.2e-3 * mhz + 0.02 * mpki);
            power_data.add(x, 1.0 + 1.5e-3 * mhz);
        }
    }
    EXPECT_TRUE(bundle.timeModel.fitGroup(800.0, time_data, 1e-6));
    EXPECT_TRUE(bundle.powerModel.fitGroup(800.0, power_data, 1e-6));
    bundle.leakage = LeakageModel::msm8974Truth().params();
    bundle.leakageFitted = true;
    bundle.configHash = 0xC0FFEEull;
    return bundle;
}

TEST(ModelFault, TruncatedBodyRejectedWithDiagnostic)
{
    const std::string good = syntheticBundle().serialize();
    std::string why;
    const ModelBundle half =
        ModelBundle::deserialize(good.substr(0, good.size() / 2), &why);
    EXPECT_FALSE(half.ready());
    EXPECT_FALSE(why.empty());
}

TEST(ModelFault, NanCoefficientRejected)
{
    std::string blob = syntheticBundle().serialize();
    const size_t pos = blob.find("coeffs ");
    ASSERT_NE(pos, std::string::npos);
    const size_t val = pos + 7;
    const size_t end = blob.find(' ', val);
    ASSERT_NE(end, std::string::npos);
    blob.replace(val, end - val, "nan");
    std::string why;
    const ModelBundle poisoned = ModelBundle::deserialize(blob, &why);
    EXPECT_FALSE(poisoned.ready());
    EXPECT_FALSE(why.empty());
}

TEST(ModelFault, BadMagicWrongVersionAndEmptyRejected)
{
    EXPECT_FALSE(ModelBundle::deserialize("").ready());
    EXPECT_FALSE(ModelBundle::deserialize("garbage 12\n").ready());
    std::string stale = syntheticBundle().serialize();
    const size_t nl = stale.find('\n');
    stale.replace(0, nl, "dora-model-bundle 1");
    EXPECT_FALSE(ModelBundle::deserialize(stale).ready());
}

TEST(ModelFault, RoundTripPreservesConfigHash)
{
    const ModelBundle bundle = syntheticBundle();
    const ModelBundle copy =
        ModelBundle::deserialize(bundle.serialize());
    EXPECT_TRUE(copy.ready());
    EXPECT_EQ(copy.configHash, bundle.configHash);
}

TEST(ModelFault, ValidateCatchesNonFiniteLeakage)
{
    ModelBundle bundle = syntheticBundle();
    EXPECT_TRUE(bundle.validate());
    std::array<double, 6> params = bundle.leakage.toArray();
    params[2] = kNan;
    bundle.leakage = LeakageParams::fromArray(params);
    std::string why;
    EXPECT_FALSE(bundle.validate(&why));
    EXPECT_FALSE(why.empty());
}

TEST(ModelFault, TryLoadRejectsCorruptFileWithoutAborting)
{
    const std::string path = "/tmp/dora_bundle_corrupt.cache";
    const std::string good = syntheticBundle().serialize();
    {
        std::ofstream out(path);
        out << good.substr(0, 3 * good.size() / 4);
    }
    EXPECT_FALSE(ModelBundle::tryLoad(path).ready());
    std::remove(path.c_str());
}

TEST(ModelFault, NonFinitePredictionsPropagate)
{
    // std::max(floor, NaN) must not mask a poisoned prediction: the
    // governor's sanity checks key off std::isfinite.
    const ModelBundle bundle = syntheticBundle();
    WebPageFeatures page{1000, 800, 300, 300, 500};
    const auto x = buildFeatureVector(page, kNan, 960.0, 800.0, 0.9);
    EXPECT_FALSE(std::isfinite(bundle.predictLoadTime(x, 800.0)));
    EXPECT_FALSE(std::isfinite(
        bundle.predictTotalPower(x, 800.0, 0.9, 40.0)));
}

TEST(TrainingConfigHash, KeysOnEveryRelevantField)
{
    const TrainerConfig base;
    EXPECT_EQ(trainingConfigHash(base), trainingConfigHash(base));

    TrainerConfig ridge = base;
    ridge.timeRidge = 0.7;
    EXPECT_NE(trainingConfigHash(ridge), trainingConfigHash(base));

    TrainerConfig reduced = base;
    reduced.maxTrainingWorkloads = 5;
    EXPECT_NE(trainingConfigHash(reduced), trainingConfigHash(base));

    TrainerConfig freqs = base;
    freqs.trainingFreqIndices = {0, 4, 9};
    EXPECT_NE(trainingConfigHash(freqs), trainingConfigHash(base));

    TrainerConfig deadline = base;
    deadline.experiment.deadlineSec = 2.5;
    EXPECT_NE(trainingConfigHash(deadline), trainingConfigHash(base));
}

class DegradedGovernorTest : public ::testing::Test
{
  protected:
    DegradedGovernorTest() : table_(FreqTable::msm8974()) {}

    GovernorView pageView(double mpki)
    {
        GovernorView view;
        view.nowSec = 1.0;
        view.freqIndex = table_.maxIndex();
        view.freqTable = &table_;
        view.l2Mpki = mpki;
        view.corunUtilization = 0.9;
        view.totalUtilization = 0.9;
        view.temperatureC = 45.0;
        view.page = &page_;
        view.deadlineSec = 3.0;
        return view;
    }

    FreqTable table_;
    WebPageFeatures page_{1000, 800, 300, 300, 500};
};

TEST_F(DegradedGovernorTest, UntrainedBundleDegradesInsteadOfDying)
{
    auto empty = std::make_shared<const ModelBundle>();
    PredictiveGovernor dora = makeDora(empty);
    EXPECT_TRUE(dora.degraded());
    const size_t idx = dora.decideFrequencyIndex(pageView(5.0));
    EXPECT_LE(idx, table_.maxIndex());
}

TEST_F(DegradedGovernorTest, NanInputsHoldLastGoodThenFallBack)
{
    auto models =
        std::make_shared<const ModelBundle>(syntheticBundle());
    PredictiveGovernor dora = makeDora(models);
    const size_t fallback_after =
        dora.config().fallbackAfterBadIntervals;

    const size_t good = dora.decideFrequencyIndex(pageView(5.0));
    EXPECT_EQ(dora.badStreak(), 0u);
    EXPECT_FALSE(dora.degraded());

    // Short of the fallback threshold, a bad interval holds the last
    // good OPP.
    for (size_t i = 1; i < fallback_after; ++i) {
        EXPECT_EQ(dora.decideFrequencyIndex(pageView(kNan)), good)
            << i;
        EXPECT_EQ(dora.badStreak(), i);
    }

    // Crossing the threshold switches to the interactive fallback;
    // whatever it picks must be in range.
    const size_t degraded_idx = dora.decideFrequencyIndex(pageView(kNan));
    EXPECT_LE(degraded_idx, table_.maxIndex());
    EXPECT_TRUE(dora.degraded());
    EXPECT_EQ(dora.badIntervals(), fallback_after);

    // Recovered signals end the streak immediately.
    EXPECT_EQ(dora.decideFrequencyIndex(pageView(5.0)), good);
    EXPECT_EQ(dora.badStreak(), 0u);
    EXPECT_FALSE(dora.degraded());
}

TEST_F(DegradedGovernorTest, FirstBadIntervalFailsSafeToTopOpp)
{
    auto models =
        std::make_shared<const ModelBundle>(syntheticBundle());
    PredictiveGovernor dora = makeDora(models);
    // No good decision yet: a bad interval must pick QoS priority.
    EXPECT_EQ(dora.decideFrequencyIndex(pageView(kNan)),
              table_.maxIndex());
}

TEST_F(DegradedGovernorTest, ResetClearsDegradation)
{
    auto models =
        std::make_shared<const ModelBundle>(syntheticBundle());
    PredictiveGovernor dora = makeDora(models);
    for (size_t i = 0; i <= dora.config().fallbackAfterBadIntervals;
         ++i)
        dora.decideFrequencyIndex(pageView(kNan));
    EXPECT_TRUE(dora.degraded());
    dora.reset();
    EXPECT_FALSE(dora.degraded());
    EXPECT_EQ(dora.badStreak(), 0u);
    EXPECT_EQ(dora.badIntervals(), 0u);
}

} // namespace
} // namespace dora
