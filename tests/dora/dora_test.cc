/**
 * @file
 * Unit tests for DORA's feature vectors, model bundle, and the
 * Algorithm 1 selection logic.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "dora/features.hh"
#include "dora/model_bundle.hh"
#include "dora/predictive_governor.hh"

namespace dora
{
namespace
{

TEST(Features, TableIOrderAndCount)
{
    EXPECT_EQ(kNumFeatures, 9u);
    const auto &names = featureNames();
    ASSERT_EQ(names.size(), 9u);
    EXPECT_EQ(names[0], "dom_nodes");
    EXPECT_EQ(names[5], "l2_mpki");
    EXPECT_EQ(names[6], "core_mhz");
    EXPECT_EQ(names[8], "corun_util");
}

TEST(Features, VectorAssembly)
{
    WebPageFeatures page{100, 200, 300, 400, 500};
    const auto x = buildFeatureVector(page, 5.0, 960.0, 333.0, 0.8);
    ASSERT_EQ(x.size(), kNumFeatures);
    EXPECT_DOUBLE_EQ(x[0], 100.0);
    EXPECT_DOUBLE_EQ(x[4], 500.0);
    EXPECT_DOUBLE_EQ(x[5], 5.0);
    EXPECT_DOUBLE_EQ(x[6], 960.0);
    EXPECT_DOUBLE_EQ(x[7], 333.0);
    EXPECT_DOUBLE_EQ(x[8], 0.8);
}

/** Build a tiny trained bundle from synthetic data. */
ModelBundle
syntheticBundle()
{
    ModelBundle bundle;
    Dataset time_data, power_data;
    // Load time falls with frequency; power rises. Keep it simple and
    // linear in X7 so the test can reason about the predictions.
    for (double mhz : {300.0, 960.0, 1497.6, 2265.6}) {
        for (double mpki : {1.0, 10.0}) {
            WebPageFeatures page{1000, 800, 300, 300, 500};
            auto x = buildFeatureVector(page, mpki, mhz, 800.0, 0.9);
            const double t = 4.0 - 1.2e-3 * mhz + 0.02 * mpki;
            const double p = 1.0 + 1.5e-3 * mhz;
            time_data.add(x, t);
            power_data.add(x, p);
        }
    }
    EXPECT_TRUE(bundle.timeModel.fitGroup(800.0, time_data, 1e-6));
    EXPECT_TRUE(bundle.powerModel.fitGroup(800.0, power_data, 1e-6));
    bundle.leakage = LeakageModel::msm8974Truth().params();
    bundle.leakageFitted = true;
    return bundle;
}

TEST(ModelBundle, ReadyAfterFits)
{
    ModelBundle empty;
    EXPECT_FALSE(empty.ready());
    EXPECT_TRUE(syntheticBundle().ready());
}

TEST(ModelBundle, PredictionsAreClampedPositive)
{
    const ModelBundle bundle = syntheticBundle();
    WebPageFeatures page{1000, 800, 300, 300, 500};
    // Absurd frequency extrapolation cannot go below the clamp floors.
    const auto x = buildFeatureVector(page, 0.0, 50000.0, 800.0, 0.9);
    EXPECT_GE(bundle.predictLoadTime(x, 800.0), 1e-3);
    EXPECT_GE(bundle.predictTotalPower(x, 800.0, 0.0, 25.0), 1e-3);
}

TEST(ModelBundle, LeakageTogglesWithFlag)
{
    const ModelBundle bundle = syntheticBundle();
    WebPageFeatures page{1000, 800, 300, 300, 500};
    const auto x = buildFeatureVector(page, 5.0, 2265.6, 800.0, 0.9);
    const double with_leak =
        bundle.predictTotalPower(x, 800.0, 1.1, 60.0, true);
    const double without =
        bundle.predictTotalPower(x, 800.0, 1.1, 60.0, false);
    EXPECT_GT(with_leak, without + 0.3);
}

TEST(ModelBundle, SerializeRoundTrip)
{
    const ModelBundle bundle = syntheticBundle();
    const ModelBundle copy =
        ModelBundle::deserialize(bundle.serialize());
    EXPECT_TRUE(copy.ready());
    EXPECT_TRUE(copy.leakageFitted);
    WebPageFeatures page{1000, 800, 300, 300, 500};
    const auto x = buildFeatureVector(page, 5.0, 960.0, 800.0, 0.9);
    EXPECT_NEAR(copy.predictLoadTime(x, 800.0),
                bundle.predictLoadTime(x, 800.0), 1e-12);
    EXPECT_NEAR(copy.predictTotalPower(x, 800.0, 0.9, 40.0),
                bundle.predictTotalPower(x, 800.0, 0.9, 40.0), 1e-12);
}

TEST(ModelBundle, SaveAndTryLoad)
{
    const std::string path = "/tmp/dora_bundle_test.cache";
    const ModelBundle bundle = syntheticBundle();
    ASSERT_TRUE(bundle.save(path));
    const ModelBundle loaded = ModelBundle::tryLoad(path);
    EXPECT_TRUE(loaded.ready());
    std::remove(path.c_str());
}

TEST(ModelBundle, TryLoadMissingFileNotReady)
{
    EXPECT_FALSE(ModelBundle::tryLoad("/tmp/definitely-missing").ready());
}

TEST(ModelBundle, TryLoadStaleVersionNotReady)
{
    const std::string path = "/tmp/dora_bundle_stale.cache";
    FILE *f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("dora-model-bundle 0\n", f);
    fclose(f);
    EXPECT_FALSE(ModelBundle::tryLoad(path).ready());
    std::remove(path.c_str());
}

/** Candidate list helpers for selectFrequency(). */
std::vector<CandidateEval>
candidates(std::initializer_list<std::tuple<double, double, bool>> rows)
{
    std::vector<CandidateEval> out;
    size_t idx = 0;
    for (const auto &[t, p, meets] : rows) {
        CandidateEval e;
        e.freqIndex = idx++;
        e.predLoadTimeSec = t;
        e.predPowerW = p;
        e.predPpw = 1.0 / (t * p);
        e.meetsDeadline = meets;
        out.push_back(e);
    }
    return out;
}

TEST(SelectFrequency, DoraPicksBestPpwAmongMeeting)
{
    // idx0 misses; idx1 and idx2 meet; idx1 has the better PPW.
    const auto evals = candidates({
        {4.0, 1.5, false},
        {2.5, 1.8, true},   // ppw 0.222
        {1.5, 3.5, true},   // ppw 0.190
    });
    EXPECT_EQ(PredictiveGovernor::selectFrequency(
                  evals, PredictiveMode::Dora, 2),
              1u);
}

TEST(SelectFrequency, DoraFallsBackToMaxWhenNothingMeets)
{
    const auto evals = candidates({
        {5.0, 1.5, false},
        {4.5, 2.0, false},
        {4.0, 3.0, false},
    });
    EXPECT_EQ(PredictiveGovernor::selectFrequency(
                  evals, PredictiveMode::Dora, 2),
              2u);
}

TEST(SelectFrequency, DlPicksLowestMeeting)
{
    const auto evals = candidates({
        {4.0, 1.5, false},
        {2.9, 1.8, true},
        {1.5, 3.5, true},
    });
    EXPECT_EQ(PredictiveGovernor::selectFrequency(
                  evals, PredictiveMode::DeadlineOnly, 2),
              1u);
}

TEST(SelectFrequency, EeIgnoresDeadline)
{
    // Best PPW is the deadline-missing idx0.
    const auto evals = candidates({
        {4.0, 0.5, false},  // ppw 0.5
        {2.5, 1.8, true},
        {1.5, 3.5, true},
    });
    EXPECT_EQ(PredictiveGovernor::selectFrequency(
                  evals, PredictiveMode::EnergyOnly, 2),
              0u);
}

TEST(SelectFrequency, EmptyEvalsDefaultsToMax)
{
    EXPECT_EQ(PredictiveGovernor::selectFrequency(
                  {}, PredictiveMode::Dora, 13),
              13u);
}

class PredictiveGovernorTest : public ::testing::Test
{
  protected:
    PredictiveGovernorTest()
        : models_(std::make_shared<const ModelBundle>(syntheticBundle())),
          table_(FreqTable::msm8974())
    {
    }

    GovernorView pageView(double deadline)
    {
        view_.nowSec = 1.0;
        view_.freqIndex = table_.maxIndex();
        view_.freqTable = &table_;
        view_.l2Mpki = 5.0;
        view_.corunUtilization = 0.9;
        view_.temperatureC = 45.0;
        view_.page = &page_;
        view_.deadlineSec = deadline;
        return view_;
    }

    std::shared_ptr<const ModelBundle> models_;
    FreqTable table_;
    WebPageFeatures page_{1000, 800, 300, 300, 500};
    GovernorView view_;
};

TEST_F(PredictiveGovernorTest, NamesMatchModes)
{
    EXPECT_EQ(makeDora(models_).name(), "DORA");
    EXPECT_EQ(makeDl(models_).name(), "DL");
    EXPECT_EQ(makeEe(models_).name(), "EE");
    EXPECT_EQ(makeDoraNoLeakage(models_).name(), "DORA_no_lkg");
}

TEST_F(PredictiveGovernorTest, TracksUtilizationWithoutPageContext)
{
    // With no page in flight the predictive governors defer to an
    // interactive-style utilization tracker: idle load ramps down,
    // saturated load ramps up.
    PredictiveGovernor dora = makeDora(models_);
    GovernorView v;
    v.freqIndex = 8;
    v.freqTable = &table_;
    v.totalUtilization = 0.02;
    v.nowSec = 10.0;
    EXPECT_LT(dora.decideFrequencyIndex(v), 8u);

    PredictiveGovernor dora2 = makeDora(models_);
    v.totalUtilization = 1.0;
    v.freqIndex = 2;
    EXPECT_GT(dora2.decideFrequencyIndex(v), 2u);
}

TEST_F(PredictiveGovernorTest, EvaluatesEveryOperatingPoint)
{
    PredictiveGovernor dora = makeDora(models_);
    dora.decideFrequencyIndex(pageView(3.0));
    EXPECT_EQ(dora.lastEvaluation().size(), table_.size());
}

TEST_F(PredictiveGovernorTest, TighterDeadlineNeverLowersFrequency)
{
    PredictiveGovernor dora = makeDora(models_);
    size_t prev = 0;
    // Sweep the deadline from strict to loose: chosen frequency must be
    // non-increasing (Fig. 11's shape).
    for (double deadline : {1.0, 2.0, 3.0, 4.0, 6.0, 10.0}) {
        const size_t idx = dora.decideFrequencyIndex(pageView(deadline));
        if (deadline > 1.0) {
            EXPECT_LE(idx, prev) << "deadline " << deadline;
        }
        prev = idx;
    }
}

TEST_F(PredictiveGovernorTest, DecisionIntervalDefaultsTo100ms)
{
    EXPECT_DOUBLE_EQ(makeDora(models_).decisionIntervalSec(), 0.1);
    EXPECT_DOUBLE_EQ(makeDora(models_, 0.05).decisionIntervalSec(),
                     0.05);
}

} // namespace
} // namespace dora
