/**
 * @file
 * Unit tests for training-sample CSV round-tripping.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "dora/features.hh"
#include "dora/sample_io.hh"

namespace dora
{
namespace
{

std::vector<TrainingSample>
makeSamples()
{
    std::vector<TrainingSample> samples;
    for (int i = 0; i < 3; ++i) {
        TrainingSample s;
        WebPageFeatures page{100.0 + i, 200.0, 30.0, 40.0, 50.0};
        s.x = buildFeatureVector(page, 1.5 * i, 960.0, 333.0, 0.8);
        s.busMhz = 333.0;
        s.voltage = 0.85;
        s.loadTimeSec = 1.0 + 0.25 * i;
        s.meanPowerW = 2.5 + 0.1 * i;
        s.meanTempC = 40.0 + i;
        samples.push_back(std::move(s));
    }
    return samples;
}

TEST(SampleIo, CsvHasHeaderAndRows)
{
    const std::string csv = samplesToCsv(makeSamples());
    EXPECT_EQ(csv.rfind("dom_nodes,", 0), 0u);
    EXPECT_NE(csv.find("mean_temp_c"), std::string::npos);
    // Header + 3 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(SampleIo, RoundTripPreservesValues)
{
    const auto original = makeSamples();
    const auto parsed = samplesFromCsv(samplesToCsv(original));
    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(parsed[i].x, original[i].x);
        EXPECT_DOUBLE_EQ(parsed[i].busMhz, original[i].busMhz);
        EXPECT_DOUBLE_EQ(parsed[i].voltage, original[i].voltage);
        EXPECT_DOUBLE_EQ(parsed[i].loadTimeSec,
                         original[i].loadTimeSec);
        EXPECT_DOUBLE_EQ(parsed[i].meanPowerW, original[i].meanPowerW);
        EXPECT_DOUBLE_EQ(parsed[i].meanTempC, original[i].meanTempC);
    }
}

TEST(SampleIo, FileRoundTrip)
{
    const std::string path = "/tmp/dora_samples_test.csv";
    ASSERT_TRUE(saveSamples(makeSamples(), path));
    const auto loaded = loadSamples(path);
    EXPECT_EQ(loaded.size(), 3u);
    std::remove(path.c_str());
}

TEST(SampleIo, MissingFileYieldsEmpty)
{
    EXPECT_TRUE(loadSamples("/tmp/definitely-not-here.csv").empty());
}

TEST(SampleIo, SaveToBadPathFails)
{
    EXPECT_FALSE(saveSamples(makeSamples(), "/no-such-dir/x.csv"));
}

} // namespace
} // namespace dora
