/**
 * @file
 * Fleet campaign determinism suite (DESIGN.md §5h):
 *
 *  - sampleDevice() is deterministic, order-independent, in-range,
 *    and stable against faultIncidence flips;
 *  - the same FleetSpec produces a byte-identical population and
 *    aggregate report at every (jobs, workers, lanes) combination;
 *  - replayDevice() reproduces an in-campaign cell bit-exactly;
 *  - a supervisor SIGKILLed mid-campaign resumes from the journal to
 *    a byte-identical report;
 *  - cohort device counts conserve the population.
 *
 * Identity is checked through fleetReportText() and the population
 * digest (hex-float rendering underneath), so any single-ULP
 * divergence fails. The campaigns here are tiny (5 devices, short
 * load wall); bench/fleet_rollout.cc runs the 10k-device version of
 * the same checks.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "fleet/campaign.hh"
#include "fleet/fleet_spec.hh"
#include "obs/metrics.hh"
#include "runner/experiment.hh"

namespace fs = std::filesystem;

namespace dora
{
namespace
{

/**
 * A tiny campaign: 5 devices x 2 model-free governors, a short load
 * wall (a censored page is still a deterministic measurement), and a
 * fault incidence high enough that the fault path is exercised.
 */
FleetCampaignConfig
smallCampaign(unsigned jobs, unsigned workers, unsigned lanes,
              const std::string &stem = "")
{
    FleetCampaignConfig config;
    config.spec.seed = 7;
    config.spec.devices = 5;
    config.spec.faultIncidence = 0.4;
    config.governors = {"interactive", "ondemand"};
    config.base.maxLoadSec = 1.0;
    config.jobs = jobs;
    config.workers = workers;
    config.lanes = lanes;
    config.journalStem = stem;
    return config;
}

/** Remove journal files left by a previous run of @p stem. */
void
clearJournals(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (!fs::exists(dir))
        return;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind(prefix, 0) == 0)
            fs::remove(entry.path());
}

/** The @p stem file with @p ext ("jrn"/"ckpt"), or "" if absent. */
std::string
findResumeFile(const std::string &stem, const std::string &ext)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (fs::exists(dir))
        for (const auto &entry : fs::directory_iterator(dir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind(prefix, 0) == 0 &&
                entry.path().extension() == "." + ext)
                return entry.path().string();
        }
    return "";
}

bool
sameDevice(const DeviceSpec &a, const DeviceSpec &b)
{
    return a.index == b.index && a.page == b.page &&
        a.corun == b.corun && a.freqScale == b.freqScale &&
        a.voltageScale == b.voltageScale &&
        a.thermalResistanceScale == b.thermalResistanceScale &&
        a.ambientC == b.ambientC;
}

TEST(FleetSpec, SamplerIsDeterministicAndInRange)
{
    FleetSpec spec;
    spec.devices = 64;
    std::set<std::string> cohorts;
    for (size_t i = 0; i < spec.devices; ++i) {
        const DeviceSpec a = sampleDevice(spec, i);
        const DeviceSpec b = sampleDevice(spec, i);
        EXPECT_TRUE(sameDevice(a, b)) << "device " << i;
        EXPECT_EQ(a.faulty, b.faulty);
        EXPECT_EQ(a.faultSeed, b.faultSeed);

        EXPECT_FALSE(a.page.empty());
        EXPECT_GE(a.freqScale, 0.85);
        EXPECT_LE(a.freqScale, 1.20);
        EXPECT_GE(a.voltageScale, 0.90);
        EXPECT_LE(a.voltageScale, 1.12);
        EXPECT_GE(a.thermalResistanceScale, 0.60);
        EXPECT_LE(a.thermalResistanceScale, 1.80);
        EXPECT_GE(a.ambientC, spec.ambientMinC);
        EXPECT_LE(a.ambientC, spec.ambientMaxC);
        cohorts.insert(a.cohort());
    }
    // 64 devices across a 24-bucket space: expect real diversity.
    EXPECT_GT(cohorts.size(), 3u);
    EXPECT_LE(cohorts.size(), fleetCohortCount());
}

TEST(FleetSpec, SamplerIsOrderIndependent)
{
    // Guard against hidden global state: sampling backwards must
    // reproduce the forward pass exactly (workers visit devices in
    // arbitrary order).
    FleetSpec spec;
    spec.devices = 16;
    std::vector<DeviceSpec> forward;
    for (size_t i = 0; i < spec.devices; ++i)
        forward.push_back(sampleDevice(spec, i));
    for (size_t i = spec.devices; i-- > 0;)
        EXPECT_TRUE(sameDevice(forward[i], sampleDevice(spec, i)))
            << "device " << i;
}

TEST(FleetSpec, HashCoversEveryField)
{
    const FleetSpec base;
    EXPECT_EQ(fleetSpecHash(base), fleetSpecHash(FleetSpec{}));

    FleetSpec seed = base;
    seed.seed = 2;
    FleetSpec devices = base;
    devices.devices = 5;
    FleetSpec sd = base;
    sd.freqScaleSd = 0.05;
    FleetSpec fault = base;
    fault.faultIncidence = 0.5;
    const uint64_t h = fleetSpecHash(base);
    EXPECT_NE(fleetSpecHash(seed), h);
    EXPECT_NE(fleetSpecHash(devices), h);
    EXPECT_NE(fleetSpecHash(sd), h);
    EXPECT_NE(fleetSpecHash(fault), h);
}

TEST(FleetSpec, FaultIncidenceFlipPerturbsNoOtherDraw)
{
    // Turning faults on must only set the faulty bit: every other
    // draw — and the schedule seed itself — stays stable, so fault
    // studies compare the same underlying population.
    FleetSpec off;
    off.devices = 32;
    off.faultIncidence = 0.0;
    FleetSpec on = off;
    on.faultIncidence = 1.0;
    for (size_t i = 0; i < off.devices; ++i) {
        const DeviceSpec a = sampleDevice(off, i);
        const DeviceSpec b = sampleDevice(on, i);
        EXPECT_TRUE(sameDevice(a, b)) << "device " << i;
        EXPECT_FALSE(a.faulty);
        EXPECT_TRUE(b.faulty);
        EXPECT_EQ(a.faultSeed, b.faultSeed) << "device " << i;
    }
}

TEST(FleetDeterminism, TierCombinationsAreByteIdentical)
{
    FleetEngine baseline(smallCampaign(1, 0, 1));
    const FleetReport ref = baseline.run();
    const std::string ref_text = fleetReportText(ref);
    ASSERT_FALSE(ref_text.empty());

    struct Combo
    {
        unsigned jobs, workers, lanes;
    };
    // Thread tier, lane tier, process tier, and an uneven tail batch
    // (5 devices x 2 governors = 10 cells; lanes=3 leaves a rump).
    const Combo combos[] = {{2, 0, 2}, {1, 0, 3}, {1, 2, 2}};
    for (const Combo &c : combos) {
        FleetEngine engine(smallCampaign(c.jobs, c.workers, c.lanes));
        const FleetReport report = engine.run();
        EXPECT_EQ(report.populationDigest, ref.populationDigest)
            << "jobs=" << c.jobs << " workers=" << c.workers
            << " lanes=" << c.lanes;
        EXPECT_EQ(fleetReportText(report), ref_text)
            << "jobs=" << c.jobs << " workers=" << c.workers
            << " lanes=" << c.lanes;
    }
}

TEST(FleetDeterminism, ReplayMatchesInCampaignCell)
{
    FleetEngine engine(smallCampaign(1, 0, 4));
    const auto cells = engine.runAllCells();
    const auto &governors = engine.config().governors;
    ASSERT_EQ(cells.size(),
              engine.config().spec.devices * governors.size());

    // Replay a few devices under each governor; each must be
    // bit-identical to its in-campaign cell even though the campaign
    // ran them 4-to-a-batch and the replay runs them alone.
    for (const size_t device : {size_t{0}, size_t{3}}) {
        for (size_t g = 0; g < governors.size(); ++g) {
            const RunMeasurement replayed =
                engine.replayDevice(device, governors[g]);
            const RunMeasurement &in_campaign =
                cells[device * governors.size() + g];
            EXPECT_EQ(runMeasurementText(replayed),
                      runMeasurementText(in_campaign))
                << "device " << device << " governor " << governors[g];
        }
    }
}

TEST(FleetDeterminism, CohortCountsConserveThePopulation)
{
    FleetEngine engine(smallCampaign(1, 0, 2));
    const FleetReport report = engine.run();
    ASSERT_EQ(report.byGovernor.size(), 2u);

    size_t cohort_devices = 0;
    for (const FleetCohortStats &c : report.cohorts) {
        EXPECT_GT(c.devices, 0u) << c.cohort;
        cohort_devices += c.devices;
    }
    EXPECT_EQ(cohort_devices, report.devices);
    EXPECT_LE(report.cohorts.size(), fleetCohortCount());

    for (const FleetGovernorStats &g : report.byGovernor) {
        EXPECT_EQ(g.devices, report.devices);
        EXPECT_EQ(g.ppw.count() + g.censored, g.devices);
        EXPECT_GE(g.meetRate, 0.0);
        EXPECT_LE(g.meetRate, 1.0);
    }
}

TEST(FleetDeterminism, CampaignHashSeparatesCampaigns)
{
    const FleetCampaignConfig a = smallCampaign(1, 0, 1);
    FleetCampaignConfig b = a;
    b.spec.seed = 8;
    FleetCampaignConfig c = a;
    c.governors = {"interactive"};
    // Lane width is throughput policy, not identity: the lane
    // contract makes every measurement lane-invariant, so a journal
    // written at one lane count must resume at any other.
    FleetCampaignConfig d = a;
    d.lanes = 4;
    // jobs/workers are pure throughput policy — never identity.
    FleetCampaignConfig e = a;
    e.jobs = 8;
    e.workers = 3;
    // Chunk width defines the journal's unit space — identity.
    FleetCampaignConfig f = a;
    f.chunkDevices = 4;
    EXPECT_NE(fleetCampaignHash(a), fleetCampaignHash(b));
    EXPECT_NE(fleetCampaignHash(a), fleetCampaignHash(c));
    EXPECT_EQ(fleetCampaignHash(a), fleetCampaignHash(d));
    EXPECT_EQ(fleetCampaignHash(a), fleetCampaignHash(e));
    EXPECT_NE(fleetCampaignHash(a), fleetCampaignHash(f));
}

TEST(FleetDeterminism, ChunkWidthChangesIdentityNotStatistics)
{
    // Different chunk widths are different campaigns (digest chains
    // chunk digests, compensated sums fold per chunk) but the same
    // population: counts are equal outright and the sketches — whose
    // compacted state is defined as "pushed one-by-one in global
    // cell order" — agree on every quantile bit-for-bit.
    FleetCampaignConfig wide = smallCampaign(1, 0, 2);
    FleetCampaignConfig narrow = wide;
    narrow.chunkDevices = 2;  // 5 devices -> 3 chunks, one short
    const FleetReport a = FleetEngine(wide).run();
    const FleetReport b = FleetEngine(narrow).run();
    ASSERT_EQ(a.byGovernor.size(), b.byGovernor.size());
    for (size_t g = 0; g < a.byGovernor.size(); ++g) {
        const FleetGovernorStats &x = a.byGovernor[g];
        const FleetGovernorStats &y = b.byGovernor[g];
        EXPECT_EQ(x.devices, y.devices);
        EXPECT_EQ(x.censored, y.censored);
        EXPECT_EQ(x.deadlineMet, y.deadlineMet);
        EXPECT_EQ(x.ppw.count(), y.ppw.count());
        if (x.ppw.count() > 0) {
            EXPECT_EQ(x.p50Ppw, y.p50Ppw);
            EXPECT_EQ(x.p95Ppw, y.p95Ppw);
            EXPECT_EQ(x.p99Ppw, y.p99Ppw);
            EXPECT_EQ(x.p50LoadSec, y.p50LoadSec);
            EXPECT_NEAR(x.meanPpw, y.meanPpw,
                        1e-12 * std::abs(x.meanPpw));
        }
    }
}

TEST(FleetAggregate, SerializeRoundTripIsBitExact)
{
    FleetShardAggregate chunk = FleetShardAggregate::forChunk(2, 0);
    for (size_t device = 0; device < 3; ++device)
        for (size_t g = 0; g < 2; ++g) {
            RunMeasurement m;
            m.ppw = 1.5 + static_cast<double>(device) + 0.1 * g;
            m.loadTimeSec = 0.5 + 0.25 * static_cast<double>(device);
            m.meetsDeadline = (device + g) % 2 == 0;
            m.censored = device == 2 && g == 1;
            chunk.pushCell(g, device % 2 ? "hot/big" : "cool/small",
                           g == 0, m);
        }

    const std::string bytes = chunk.serialize();
    FleetShardAggregate restored;
    ASSERT_TRUE(restored.tryDeserialize(bytes));
    EXPECT_EQ(restored.serialize(), bytes);
    EXPECT_EQ(restored.digest(), chunk.digest());
    EXPECT_EQ(restored.cellCount(), 6u);
    EXPECT_FALSE(restored.tryDeserialize("garbage"));

    // Chunks fold into a campaign accumulator in cell order only:
    // a gap (or out-of-order merge) is a campaign-logic bug.
    FleetShardAggregate campaign =
        FleetShardAggregate::forCampaign(2);
    campaign.merge(chunk);
    EXPECT_EQ(campaign.cellCount(), 6u);
    FleetShardAggregate gap = FleetShardAggregate::forChunk(2, 8);
    EXPECT_DEATH(campaign.merge(gap), "chunk-index order");
}

TEST(FleetDeath, UnknownGovernorIsFatal)
{
    FleetCampaignConfig config = smallCampaign(1, 0, 1);
    config.governors = {"warp-drive"};
    FleetEngine engine(config);
    EXPECT_EXIT(engine.replayDevice(0, "warp-drive"),
                ::testing::ExitedWithCode(1), "unknown governor");
}

TEST(FleetKillResume, SupervisorSigkillThenResumeByteIdentical)
{
    const std::string stem =
        ::testing::TempDir() + "fleet_resume_test";
    clearJournals(stem);

    // One device per chunk (5 journal units) and an interval too
    // large to ever checkpoint: this leg isolates the journal-replay
    // resume path; the checkpoint path has its own test below.
    const auto cfg = [&](unsigned workers, const std::string &s) {
        FleetCampaignConfig config = smallCampaign(1, workers, 2, s);
        config.chunkDevices = 1;
        config.checkpointIntervalChunks = 1000;
        return config;
    };

    FleetEngine baseline(cfg(0, ""));
    const std::string ref_text = fleetReportText(baseline.run());

    // First attempt runs in a forked child so SIGKILL models a hard
    // supervisor death (no destructors, no drain).
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        FleetEngine engine(cfg(1, stem));
        engine.run();
        ::_exit(0);
    }

    // Kill as soon as the journal holds at least one record (header
    // is 36 bytes), i.e. mid-campaign with real progress on disk.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    std::string journal;
    while (std::chrono::steady_clock::now() < deadline) {
        journal = findResumeFile(stem, "jrn");
        std::error_code ec;
        if (!journal.empty() && fs::file_size(journal, ec) > 36 && !ec)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_FALSE(journal.empty()) << "campaign never journaled";
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);

    // Resume in-process: the journal must contribute completed
    // chunks and the resumed report must match the uninterrupted
    // baseline byte-for-byte.
    const uint64_t resumed_before =
        MetricsRegistry::global().counter("proc.units_resumed").value();
    FleetEngine resumed(cfg(1, stem));
    const std::string resumed_text = fleetReportText(resumed.run());
    const uint64_t resumed_after =
        MetricsRegistry::global().counter("proc.units_resumed").value();

    EXPECT_GE(resumed_after, resumed_before + 1)
        << "rerun recomputed everything instead of resuming";
    EXPECT_EQ(resumed_text, ref_text);
    clearJournals(stem);
}

TEST(FleetKillResume, CheckpointSigkillThenResumeByteIdentical)
{
    const std::string stem =
        ::testing::TempDir() + "fleet_ckpt_test";
    clearJournals(stem);

    // One device per chunk, checkpoint after every chunk: the
    // aggregate checkpoint (not journal replay) carries the resumed
    // prefix, and the journal is truncated beneath it.
    const auto cfg = [&](unsigned workers, unsigned lanes,
                         const std::string &s) {
        FleetCampaignConfig config =
            smallCampaign(1, workers, lanes, s);
        config.chunkDevices = 1;
        config.checkpointIntervalChunks = 1;
        return config;
    };

    FleetEngine baseline(cfg(0, 2, ""));
    const std::string ref_text = fleetReportText(baseline.run());

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        FleetEngine engine(cfg(1, 2, stem));
        engine.run();
        ::_exit(0);
    }

    // Kill as soon as an aggregate checkpoint exists.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    std::string ckpt;
    while (std::chrono::steady_clock::now() < deadline) {
        ckpt = findResumeFile(stem, "ckpt");
        if (!ckpt.empty())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_FALSE(ckpt.empty()) << "campaign never checkpointed";
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);

    // Resume at a DIFFERENT lane count — lane width is not part of
    // the campaign identity, so the checkpoint + journal written at
    // lanes=2 must resume at lanes=4 to the identical report.
    const uint64_t pre_before = MetricsRegistry::global()
                                    .counter("proc.units_precompleted")
                                    .value();
    FleetEngine resumed(cfg(1, 4, stem));
    const std::string resumed_text = fleetReportText(resumed.run());
    const uint64_t pre_after = MetricsRegistry::global()
                                   .counter("proc.units_precompleted")
                                   .value();

    EXPECT_GE(pre_after, pre_before + 1)
        << "rerun replayed the journal instead of loading the "
           "checkpoint";
    EXPECT_EQ(resumed_text, ref_text);
    clearJournals(stem);
}

} // namespace
} // namespace dora
