/**
 * @file
 * Fleet campaign determinism suite (DESIGN.md §5h):
 *
 *  - sampleDevice() is deterministic, order-independent, in-range,
 *    and stable against faultIncidence flips;
 *  - the same FleetSpec produces a byte-identical population and
 *    aggregate report at every (jobs, workers, lanes) combination;
 *  - replayDevice() reproduces an in-campaign cell bit-exactly;
 *  - a supervisor SIGKILLed mid-campaign resumes from the journal to
 *    a byte-identical report;
 *  - cohort device counts conserve the population.
 *
 * Identity is checked through fleetReportText() and the population
 * digest (hex-float rendering underneath), so any single-ULP
 * divergence fails. The campaigns here are tiny (5 devices, short
 * load wall); bench/fleet_rollout.cc runs the 10k-device version of
 * the same checks.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "fleet/campaign.hh"
#include "fleet/fleet_spec.hh"
#include "obs/metrics.hh"
#include "runner/experiment.hh"

namespace fs = std::filesystem;

namespace dora
{
namespace
{

/**
 * A tiny campaign: 5 devices x 2 model-free governors, a short load
 * wall (a censored page is still a deterministic measurement), and a
 * fault incidence high enough that the fault path is exercised.
 */
FleetCampaignConfig
smallCampaign(unsigned jobs, unsigned workers, unsigned lanes,
              const std::string &stem = "")
{
    FleetCampaignConfig config;
    config.spec.seed = 7;
    config.spec.devices = 5;
    config.spec.faultIncidence = 0.4;
    config.governors = {"interactive", "ondemand"};
    config.base.maxLoadSec = 1.0;
    config.jobs = jobs;
    config.workers = workers;
    config.lanes = lanes;
    config.journalStem = stem;
    return config;
}

/** Remove journal files left by a previous run of @p stem. */
void
clearJournals(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (!fs::exists(dir))
        return;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind(prefix, 0) == 0)
            fs::remove(entry.path());
}

/** The journal file for @p stem, or "" while none exists yet. */
std::string
findJournal(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (fs::exists(dir))
        for (const auto &entry : fs::directory_iterator(dir))
            if (entry.path().filename().string().rfind(prefix, 0) == 0)
                return entry.path().string();
    return "";
}

bool
sameDevice(const DeviceSpec &a, const DeviceSpec &b)
{
    return a.index == b.index && a.page == b.page &&
        a.corun == b.corun && a.freqScale == b.freqScale &&
        a.voltageScale == b.voltageScale &&
        a.thermalResistanceScale == b.thermalResistanceScale &&
        a.ambientC == b.ambientC;
}

TEST(FleetSpec, SamplerIsDeterministicAndInRange)
{
    FleetSpec spec;
    spec.devices = 64;
    std::set<std::string> cohorts;
    for (size_t i = 0; i < spec.devices; ++i) {
        const DeviceSpec a = sampleDevice(spec, i);
        const DeviceSpec b = sampleDevice(spec, i);
        EXPECT_TRUE(sameDevice(a, b)) << "device " << i;
        EXPECT_EQ(a.faulty, b.faulty);
        EXPECT_EQ(a.faultSeed, b.faultSeed);

        EXPECT_FALSE(a.page.empty());
        EXPECT_GE(a.freqScale, 0.85);
        EXPECT_LE(a.freqScale, 1.20);
        EXPECT_GE(a.voltageScale, 0.90);
        EXPECT_LE(a.voltageScale, 1.12);
        EXPECT_GE(a.thermalResistanceScale, 0.60);
        EXPECT_LE(a.thermalResistanceScale, 1.80);
        EXPECT_GE(a.ambientC, spec.ambientMinC);
        EXPECT_LE(a.ambientC, spec.ambientMaxC);
        cohorts.insert(a.cohort());
    }
    // 64 devices across a 24-bucket space: expect real diversity.
    EXPECT_GT(cohorts.size(), 3u);
    EXPECT_LE(cohorts.size(), fleetCohortCount());
}

TEST(FleetSpec, SamplerIsOrderIndependent)
{
    // Guard against hidden global state: sampling backwards must
    // reproduce the forward pass exactly (workers visit devices in
    // arbitrary order).
    FleetSpec spec;
    spec.devices = 16;
    std::vector<DeviceSpec> forward;
    for (size_t i = 0; i < spec.devices; ++i)
        forward.push_back(sampleDevice(spec, i));
    for (size_t i = spec.devices; i-- > 0;)
        EXPECT_TRUE(sameDevice(forward[i], sampleDevice(spec, i)))
            << "device " << i;
}

TEST(FleetSpec, HashCoversEveryField)
{
    const FleetSpec base;
    EXPECT_EQ(fleetSpecHash(base), fleetSpecHash(FleetSpec{}));

    FleetSpec seed = base;
    seed.seed = 2;
    FleetSpec devices = base;
    devices.devices = 5;
    FleetSpec sd = base;
    sd.freqScaleSd = 0.05;
    FleetSpec fault = base;
    fault.faultIncidence = 0.5;
    const uint64_t h = fleetSpecHash(base);
    EXPECT_NE(fleetSpecHash(seed), h);
    EXPECT_NE(fleetSpecHash(devices), h);
    EXPECT_NE(fleetSpecHash(sd), h);
    EXPECT_NE(fleetSpecHash(fault), h);
}

TEST(FleetSpec, FaultIncidenceFlipPerturbsNoOtherDraw)
{
    // Turning faults on must only set the faulty bit: every other
    // draw — and the schedule seed itself — stays stable, so fault
    // studies compare the same underlying population.
    FleetSpec off;
    off.devices = 32;
    off.faultIncidence = 0.0;
    FleetSpec on = off;
    on.faultIncidence = 1.0;
    for (size_t i = 0; i < off.devices; ++i) {
        const DeviceSpec a = sampleDevice(off, i);
        const DeviceSpec b = sampleDevice(on, i);
        EXPECT_TRUE(sameDevice(a, b)) << "device " << i;
        EXPECT_FALSE(a.faulty);
        EXPECT_TRUE(b.faulty);
        EXPECT_EQ(a.faultSeed, b.faultSeed) << "device " << i;
    }
}

TEST(FleetDeterminism, TierCombinationsAreByteIdentical)
{
    FleetEngine baseline(smallCampaign(1, 0, 1));
    const FleetReport ref = baseline.run();
    const std::string ref_text = fleetReportText(ref);
    ASSERT_FALSE(ref_text.empty());

    struct Combo
    {
        unsigned jobs, workers, lanes;
    };
    // Thread tier, lane tier, process tier, and an uneven tail batch
    // (5 devices x 2 governors = 10 cells; lanes=3 leaves a rump).
    const Combo combos[] = {{2, 0, 2}, {1, 0, 3}, {1, 2, 2}};
    for (const Combo &c : combos) {
        FleetEngine engine(smallCampaign(c.jobs, c.workers, c.lanes));
        const FleetReport report = engine.run();
        EXPECT_EQ(report.populationDigest, ref.populationDigest)
            << "jobs=" << c.jobs << " workers=" << c.workers
            << " lanes=" << c.lanes;
        EXPECT_EQ(fleetReportText(report), ref_text)
            << "jobs=" << c.jobs << " workers=" << c.workers
            << " lanes=" << c.lanes;
    }
}

TEST(FleetDeterminism, ReplayMatchesInCampaignCell)
{
    FleetEngine engine(smallCampaign(1, 0, 4));
    const auto cells = engine.runAllCells();
    const auto &governors = engine.config().governors;
    ASSERT_EQ(cells.size(),
              engine.config().spec.devices * governors.size());

    // Replay a few devices under each governor; each must be
    // bit-identical to its in-campaign cell even though the campaign
    // ran them 4-to-a-batch and the replay runs them alone.
    for (const size_t device : {size_t{0}, size_t{3}}) {
        for (size_t g = 0; g < governors.size(); ++g) {
            const RunMeasurement replayed =
                engine.replayDevice(device, governors[g]);
            const RunMeasurement &in_campaign =
                cells[device * governors.size() + g];
            EXPECT_EQ(runMeasurementText(replayed),
                      runMeasurementText(in_campaign))
                << "device " << device << " governor " << governors[g];
        }
    }
}

TEST(FleetDeterminism, CohortCountsConserveThePopulation)
{
    FleetEngine engine(smallCampaign(1, 0, 2));
    const FleetReport report = engine.run();
    ASSERT_EQ(report.byGovernor.size(), 2u);

    size_t cohort_devices = 0;
    for (const FleetCohortStats &c : report.cohorts) {
        EXPECT_GT(c.devices, 0u) << c.cohort;
        cohort_devices += c.devices;
    }
    EXPECT_EQ(cohort_devices, report.devices);
    EXPECT_LE(report.cohorts.size(), fleetCohortCount());

    for (const FleetGovernorStats &g : report.byGovernor) {
        EXPECT_EQ(g.devices, report.devices);
        EXPECT_EQ(g.ppwCdf.count() + g.censored, g.devices);
        EXPECT_GE(g.meetRate, 0.0);
        EXPECT_LE(g.meetRate, 1.0);
    }
}

TEST(FleetDeterminism, CampaignHashSeparatesCampaigns)
{
    const FleetCampaignConfig a = smallCampaign(1, 0, 1);
    FleetCampaignConfig b = a;
    b.spec.seed = 8;
    FleetCampaignConfig c = a;
    c.governors = {"interactive"};
    FleetCampaignConfig d = a;
    d.lanes = 4;
    // jobs/workers are pure throughput policy — never identity.
    FleetCampaignConfig e = a;
    e.jobs = 8;
    e.workers = 3;
    EXPECT_NE(fleetCampaignHash(a), fleetCampaignHash(b));
    EXPECT_NE(fleetCampaignHash(a), fleetCampaignHash(c));
    EXPECT_NE(fleetCampaignHash(a), fleetCampaignHash(d));
    EXPECT_EQ(fleetCampaignHash(a), fleetCampaignHash(e));
}

TEST(FleetDeath, UnknownGovernorIsFatal)
{
    FleetCampaignConfig config = smallCampaign(1, 0, 1);
    config.governors = {"warp-drive"};
    FleetEngine engine(config);
    EXPECT_EXIT(engine.replayDevice(0, "warp-drive"),
                ::testing::ExitedWithCode(1), "unknown governor");
}

TEST(FleetKillResume, SupervisorSigkillThenResumeByteIdentical)
{
    const std::string stem =
        ::testing::TempDir() + "fleet_resume_test";
    clearJournals(stem);

    FleetEngine baseline(smallCampaign(1, 0, 2));
    const std::string ref_text = fleetReportText(baseline.run());

    // First attempt runs in a forked child so SIGKILL models a hard
    // supervisor death (no destructors, no drain).
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        FleetEngine engine(smallCampaign(1, 1, 2, stem));
        engine.run();
        ::_exit(0);
    }

    // Kill as soon as the journal holds at least one record (header
    // is 36 bytes), i.e. mid-campaign with real progress on disk.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    std::string journal;
    while (std::chrono::steady_clock::now() < deadline) {
        journal = findJournal(stem);
        std::error_code ec;
        if (!journal.empty() && fs::file_size(journal, ec) > 36 && !ec)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_FALSE(journal.empty()) << "campaign never journaled";
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);

    // Resume in-process: the journal must contribute completed
    // batches and the resumed report must match the uninterrupted
    // baseline byte-for-byte.
    const uint64_t resumed_before =
        MetricsRegistry::global().counter("proc.units_resumed").value();
    FleetEngine resumed(smallCampaign(1, 1, 2, stem));
    const std::string resumed_text = fleetReportText(resumed.run());
    const uint64_t resumed_after =
        MetricsRegistry::global().counter("proc.units_resumed").value();

    EXPECT_GE(resumed_after, resumed_before + 1)
        << "rerun recomputed everything instead of resuming";
    EXPECT_EQ(resumed_text, ref_text);
    clearJournals(stem);
}

} // namespace
} // namespace dora
