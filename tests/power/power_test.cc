/**
 * @file
 * Unit tests for leakage, dynamic power, thermal, and device power.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/battery.hh"
#include "power/device_power.hh"
#include "power/dynamic_power.hh"
#include "power/leakage.hh"
#include "power/thermal.hh"

namespace dora
{
namespace
{

TEST(Leakage, ParamsRoundTripThroughArray)
{
    LeakageParams p;
    p.k1 = 1.0;
    p.k2 = 2.0;
    p.alpha = 3.0;
    p.beta = 4.0;
    p.gamma = 5.0;
    p.delta = 6.0;
    const LeakageParams q = LeakageParams::fromArray(p.toArray());
    EXPECT_DOUBLE_EQ(q.k1, 1.0);
    EXPECT_DOUBLE_EQ(q.delta, 6.0);
}

TEST(Leakage, IncreasesWithTemperature)
{
    const LeakageModel model = LeakageModel::msm8974Truth();
    const double cold = model.power(1.0, 30.0);
    const double hot = model.power(1.0, 70.0);
    EXPECT_GT(hot, 1.5 * cold);
}

TEST(Leakage, IncreasesWithVoltage)
{
    const LeakageModel model = LeakageModel::msm8974Truth();
    EXPECT_GT(model.power(1.1, 50.0), model.power(0.8, 50.0));
}

TEST(Leakage, TruthMagnitudesAreRealistic)
{
    const LeakageModel model = LeakageModel::msm8974Truth();
    // A few hundred mW warm, around a watt hot at full voltage —
    // the magnitude Section V-F attributes to leakage.
    EXPECT_GT(model.power(0.9, 40.0), 0.1);
    EXPECT_LT(model.power(0.9, 40.0), 0.6);
    EXPECT_GT(model.power(1.1, 67.0), 0.7);
    EXPECT_LT(model.power(1.1, 67.0), 1.6);
}

TEST(DynamicPower, ScalesWithVoltageSquaredAndFrequency)
{
    DynamicPowerModel model{DynamicPowerConfig{}};
    SocTickSummary s;
    s.perCore.resize(1);
    s.perCore[0].effectiveActivity = 0.5;
    s.voltage = 1.0;
    s.coreMhz = 1000.0;
    s.busMhz = 0.001;  // suppress the uncore term
    const double base = model.corePower(s);

    s.voltage = 2.0;
    const double v2 = model.corePower(s);
    EXPECT_NEAR(v2 / base, 4.0, 0.01);

    s.voltage = 1.0;
    s.coreMhz = 2000.0;
    const double f2 = model.corePower(s);
    EXPECT_NEAR(f2 / base, 2.0, 0.01);
}

TEST(DynamicPower, IdleCoresStillBurnClockTree)
{
    DynamicPowerModel model{DynamicPowerConfig{}};
    SocTickSummary s;
    s.perCore.resize(4);  // all idle
    s.voltage = 1.0;
    s.coreMhz = 1000.0;
    s.busMhz = 800.0;
    EXPECT_GT(model.corePower(s), 0.0);
}

TEST(DynamicPower, L2TrafficEnergy)
{
    DynamicPowerConfig config;
    DynamicPowerModel model(config);
    EXPECT_DOUBLE_EQ(model.l2TrafficEnergyJ(1e6),
                     1e6 * config.l2AccessEnergyJ);
}

TEST(Thermal, SteadyStateMatchesRC)
{
    ThermalConfig config;
    config.ambientC = 25.0;
    config.thermalResistance = 10.0;
    ThermalModel model(config);
    EXPECT_DOUBLE_EQ(model.steadyStateC(2.0), 45.0);
}

TEST(Thermal, ApproachesSteadyStateExponentially)
{
    ThermalConfig config;
    config.ambientC = 25.0;
    config.initialC = 25.0;
    config.thermalResistance = 10.0;
    config.heatCapacity = 1.0;  // tau = 10 s
    ThermalModel model(config);
    for (int i = 0; i < 10000; ++i)
        model.step(3.0, 1e-3);  // 10 s total = one time constant
    const double target = 25.0 + 30.0;
    const double expected = target - 30.0 * std::exp(-1.0);
    EXPECT_NEAR(model.temperatureC(), expected, 0.05);
}

TEST(Thermal, LargeStepIsStable)
{
    ThermalModel model{ThermalConfig{}};
    model.step(3.0, 1000.0);  // one giant step
    EXPECT_NEAR(model.temperatureC(), model.steadyStateC(3.0), 0.01);
}

TEST(Thermal, CoolsWithoutPower)
{
    ThermalConfig config;
    config.initialC = 60.0;
    ThermalModel model(config);
    for (int i = 0; i < 5000; ++i)
        model.step(0.0, 1e-2);
    EXPECT_NEAR(model.temperatureC(), config.ambientC, 0.5);
}

TEST(Thermal, AmbientChangeShiftsEquilibrium)
{
    ThermalModel model{ThermalConfig{}};
    model.setAmbientC(10.0);
    EXPECT_DOUBLE_EQ(model.ambientC(), 10.0);
    EXPECT_DOUBLE_EQ(model.steadyStateC(0.0), 10.0);
}

class DevicePowerTest : public ::testing::Test
{
  protected:
    DevicePowerTest()
        : power_(DevicePowerConfig{}, LeakageModel::msm8974Truth())
    {
    }

    SocTickSummary idleSummary()
    {
        SocTickSummary s;
        s.perCore.resize(4);
        s.voltage = 0.9;
        s.coreMhz = 960.0;
        s.busMhz = 333.0;
        return s;
    }

    DevicePower power_;
};

TEST_F(DevicePowerTest, BreakdownSumsToTotal)
{
    const PowerBreakdown brk = power_.step(idleSummary(), 1e-3);
    EXPECT_NEAR(brk.total(),
                brk.baseline + brk.coreDynamic + brk.l2Traffic +
                    brk.dram + brk.leakage + brk.dvfsSwitch,
                1e-12);
    EXPECT_DOUBLE_EQ(power_.lastPowerW(), brk.total());
}

TEST_F(DevicePowerTest, EnergyIntegrates)
{
    for (int i = 0; i < 1000; ++i)
        power_.step(idleSummary(), 1e-3);
    EXPECT_NEAR(power_.totalSeconds(), 1.0, 1e-9);
    EXPECT_NEAR(power_.totalEnergyJ(),
                power_.meanPowerW() * power_.totalSeconds(), 1e-9);
    EXPECT_GT(power_.meanPowerW(), power_.config().baselineW);
}

TEST_F(DevicePowerTest, ActivityRaisesPowerAndTemperature)
{
    SocTickSummary busy = idleSummary();
    busy.voltage = 1.1;
    busy.coreMhz = 2265.6;
    busy.busMhz = 800.0;
    for (auto &core : busy.perCore)
        core.effectiveActivity = 0.6;

    DevicePower idle_dev(DevicePowerConfig{},
                         LeakageModel::msm8974Truth());
    for (int i = 0; i < 2000; ++i) {
        power_.step(busy, 1e-3);
        idle_dev.step(idleSummary(), 1e-3);
    }
    EXPECT_GT(power_.meanPowerW(), idle_dev.meanPowerW() + 1.0);
    EXPECT_GT(power_.temperatureC(), idle_dev.temperatureC() + 3.0);
}

TEST_F(DevicePowerTest, LeakageFeedbackLoop)
{
    // Hold a hot workload; leakage share of the breakdown must grow as
    // the die heats up.
    SocTickSummary busy = idleSummary();
    busy.voltage = 1.1;
    busy.coreMhz = 2265.6;
    for (auto &core : busy.perCore)
        core.effectiveActivity = 0.6;
    const PowerBreakdown first = power_.step(busy, 1e-3);
    for (int i = 0; i < 20000; ++i)
        power_.step(busy, 1e-3);
    const PowerBreakdown later = power_.step(busy, 1e-3);
    EXPECT_GT(later.leakage, first.leakage * 1.3);
}

TEST_F(DevicePowerTest, ResetClearsIntegration)
{
    power_.step(idleSummary(), 1e-3);
    power_.reset();
    EXPECT_DOUBLE_EQ(power_.totalEnergyJ(), 0.0);
    EXPECT_DOUBLE_EQ(power_.totalSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(power_.temperatureC(),
                     power_.config().thermal.initialC);
}

TEST(Thermal, JunctionClampKeepsRunawayFinite)
{
    // Exponential leakage fed back through a low-capacity RC node can
    // diverge; the junction clamp must keep temperatures finite.
    ThermalModel model{ThermalConfig{}};
    for (int i = 0; i < 100000; ++i)
        model.step(50.0, 1e-3);  // absurd sustained power
    EXPECT_LE(model.temperatureC(), model.config().maxJunctionC + 1e-9);
    EXPECT_TRUE(std::isfinite(model.temperatureC()));
}

TEST(Battery, Nexus5PackEnergy)
{
    BatterySpec battery;
    EXPECT_NEAR(battery.wattHours(), 8.74, 0.01);
}

TEST(Battery, LifeScalesInverselyWithPower)
{
    EXPECT_NEAR(batteryLifeHours(2.0), 4.37, 0.01);
    EXPECT_NEAR(batteryLifeHours(1.0), 2.0 * batteryLifeHours(2.0),
                1e-9);
}

TEST(Battery, PpwFactor)
{
    EXPECT_DOUBLE_EQ(batteryLifeFactorFromPpw(0.29, 0.25), 1.16);
}

TEST(PowerTrace, RecordsAndAverages)
{
    PowerTrace trace;
    trace.push(0.0, 2.0, 30.0);
    trace.push(0.1, 4.0, 31.0);
    EXPECT_EQ(trace.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(trace.meanPowerW(), 3.0);
}

} // namespace
} // namespace dora
