/**
 * @file
 * Figure 6 + Section V-B: sensitivity of the fopt selection to model
 * errors.
 *
 * For Youtube co-run with a high-intensity kernel, sweep the
 * frequencies and show that the PPW deltas to the OPPs neighbouring
 * fopt (via their load-time and power deltas) are far larger than the
 * model errors — so DORA picks the right discrete OPP despite small
 * prediction error (paper example: dt = +20.3%/-20.8%,
 * dP = -13.3%/+34.8% around fopt).
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "dora/features.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    auto bundle = benchBundle();
    ExperimentRunner runner;
    const FreqTable &table = runner.freqTable();
    const WorkloadSpec w = WorkloadSets::combo(
        PageCorpus::byName("youtube"), MemIntensity::High);

    // Measure the full sweep.
    std::vector<RunMeasurement> sweep;
    for (size_t f = 0; f < table.size(); ++f)
        sweep.push_back(runner.runAtFrequency(w, f));

    size_t fopt = 0;
    for (size_t f = 0; f < sweep.size(); ++f)
        if (sweep[f].ppw > sweep[fopt].ppw)
            fopt = f;

    TextTable t({"core GHz", "load time s", "power W", "PPW 1/J",
                 "marker"});
    for (size_t f = 0; f < sweep.size(); ++f) {
        t.beginRow();
        t.add(table.opp(f).coreMhz / 1000.0, 2);
        t.add(sweep[f].loadTimeSec, 3);
        t.add(sweep[f].meanPowerW, 3);
        t.add(sweep[f].ppw, 4);
        t.add(std::string(f == fopt ? "<- fopt" : ""));
    }
    emitTable("fig06", "Fig. 6 — PPW vs frequency, Youtube + high "
                       "intensity", t);

    auto pct = [](double a, double b) { return 100.0 * (a - b) / b; };
    if (fopt > 0 && fopt < table.maxIndex()) {
        std::cout << "\nfopt = "
                  << formatFixed(table.opp(fopt).coreMhz / 1000.0, 2)
                  << " GHz\n";
        std::cout << "fopt-1: dt = "
                  << formatFixed(pct(sweep[fopt - 1].loadTimeSec,
                                     sweep[fopt].loadTimeSec), 1)
                  << "%, dP = "
                  << formatFixed(pct(sweep[fopt - 1].meanPowerW,
                                     sweep[fopt].meanPowerW), 1)
                  << "%\n";
        std::cout << "fopt+1: dt = "
                  << formatFixed(pct(sweep[fopt + 1].loadTimeSec,
                                     sweep[fopt].loadTimeSec), 1)
                  << "%, dP = "
                  << formatFixed(pct(sweep[fopt + 1].meanPowerW,
                                     sweep[fopt].meanPowerW), 1)
                  << "%\n";
    }

    // Model errors for this specific workload at fopt.
    const RunMeasurement &at = sweep[fopt];
    const OperatingPoint &opp = table.opp(fopt);
    const auto x = buildFeatureVector(w.page->features, at.meanL2Mpki,
                                      opp.coreMhz, opp.busMhz,
                                      at.meanCorunUtil);
    const double pred_t = bundle->predictLoadTime(x, opp.busMhz);
    const double pred_p = bundle->predictTotalPower(
        x, opp.busMhz, opp.voltage, at.meanTempC);
    std::cout << "model error at fopt: time "
              << formatFixed(pct(pred_t, at.loadTimeSec), 2)
              << "%, power "
              << formatFixed(pct(pred_p, at.meanPowerW), 2)
              << "%  (paper example: +1.32% / +0.26%)\n";
    std::cout << "\nExpected shape: PPW concave with an interior fopt; "
                 "neighbour deltas dwarf the model errors, so the "
                 "discretized fopt choice is robust.\n";
    return 0;
}
