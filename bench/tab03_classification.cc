/**
 * @file
 * Table III: workload classification.
 *
 * Pages are classed by solo load time at the top frequency (low < 2 s,
 * high > 2 s); co-run kernels by solo shared-L2 MPKI (low < 1,
 * medium 1-7, high > 7). Also reproduces the paper's footnote on the
 * powersave governor: at the minimum OPP load times blow out to many
 * seconds, which is why powersave is excluded from the comparisons.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    ExperimentRunner runner;
    const size_t fmax = runner.freqTable().maxIndex();

    TextTable pages({"page", "training?", "load time s (alone, 2.27 "
                     "GHz)", "class", "expected", "ok"});
    int correct = 0;
    for (const auto &page : PageCorpus::all()) {
        const RunMeasurement m =
            runner.runAtFrequency(WorkloadSets::alone(page), fmax);
        const PageComplexity cls = m.loadTimeSec < 2.0
            ? PageComplexity::Low : PageComplexity::High;
        pages.beginRow();
        pages.add(page.name);
        pages.add(std::string(page.trainingSet ? "train" : "test"));
        pages.add(m.loadTimeSec, 3);
        pages.add(std::string(cls == PageComplexity::Low ? "low"
                                                         : "high"));
        pages.add(std::string(
            page.expectedClass == PageComplexity::Low ? "low" : "high"));
        const bool ok = cls == page.expectedClass;
        pages.add(std::string(ok ? "yes" : "NO"));
        correct += ok;
    }
    emitTable("tab03_pages", "Table III — web pages by load time", pages);
    std::cout << correct << "/18 pages in their declared class\n";

    TextTable kernels({"kernel", "domain", "solo L2 MPKI", "class",
                       "expected", "ok"});
    int kcorrect = 0;
    for (const auto &spec : KernelCatalog::all()) {
        const RunMeasurement m = runner.runAtFrequency(
            WorkloadSets::kernelOnly(spec), fmax);
        const MemIntensity cls = classifyMpki(m.meanL2Mpki);
        kernels.beginRow();
        kernels.add(spec.name);
        kernels.add(spec.domain);
        kernels.add(m.meanL2Mpki, 2);
        kernels.add(std::string(memIntensityName(cls)));
        kernels.add(std::string(memIntensityName(spec.expectedClass)));
        const bool ok = cls == spec.expectedClass;
        kernels.add(std::string(ok ? "yes" : "NO"));
        kcorrect += ok;
    }
    emitTable("tab03_kernels",
              "Table III — co-run applications by L2 MPKI", kernels);
    std::cout << kcorrect << "/9 kernels in their declared class\n";

    // Powersave footnote (paper Section IV-A, footnote 4).
    TextTable slow({"page", "powersave load time s"});
    for (const char *name : {"alipay", "reddit", "aliexpress"}) {
        PowersaveGovernor governor;
        const RunMeasurement m = runner.run(
            WorkloadSets::combo(PageCorpus::byName(name),
                                MemIntensity::Medium),
            governor, runner.freqTable().minIndex());
        slow.beginRow();
        slow.add(name);
        slow.add(m.loadTimeSec, 2);
    }
    emitTable("tab03_powersave",
              "Footnote — why powersave is excluded", slow);
    return 0;
}
