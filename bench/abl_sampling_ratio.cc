/**
 * @file
 * Ablation (DESIGN.md section 5): sampled-address-stream density.
 *
 * The simulator walks a 1/256 sample of each task's reference stream
 * through the real cache hierarchy. This bench sweeps the sampling
 * ratio and shows the measured behaviour (load time, interference
 * delta, MPKI classification) is stable across densities — i.e. the
 * published results are not an artifact of the default ratio.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    TextTable t({"sampling ratio", "reddit alone s", "reddit +high s",
                 "interference %", "backprop MPKI", "run cost (samples"
                 "/tick cap)"});
    for (double denom : {1024.0, 512.0, 256.0, 128.0}) {
        ExperimentConfig config;
        config.soc.coreTiming.samplingRatio = 1.0 / denom;
        ExperimentRunner runner(config);
        const size_t fmax = runner.freqTable().maxIndex();
        const WebPage &reddit = PageCorpus::byName("reddit");

        const RunMeasurement alone = runner.runAtFrequency(
            WorkloadSets::alone(reddit), fmax);
        const RunMeasurement high = runner.runAtFrequency(
            WorkloadSets::combo(reddit, MemIntensity::High), fmax);
        const RunMeasurement kernel = runner.runAtFrequency(
            WorkloadSets::kernelOnly(KernelCatalog::byName("backprop")),
            fmax);

        t.beginRow();
        t.add("1/" + formatFixed(denom, 0));
        t.add(alone.loadTimeSec, 3);
        t.add(high.loadTimeSec, 3);
        t.add(100.0 * (high.loadTimeSec / alone.loadTimeSec - 1.0), 1);
        t.add(kernel.meanL2Mpki, 2);
        t.add(static_cast<int64_t>(
            config.soc.coreTiming.maxSamples));
    }
    emitTable("abl_sampling", "Ablation — address-stream sampling "
                              "density", t);
    std::cout << "\nExpected shape: load times and the interference "
                 "delta move only mildly with density; the MPKI class "
                 "(high > 7) is preserved at every ratio.\n";
    return 0;
}
