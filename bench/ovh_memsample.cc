/**
 * @file
 * Micro-benchmarks of the Monte-Carlo memory-sampling walk.
 *
 * Guards the two hot loops behind the adaptive-sampling layer:
 *
 *   - MemSystem::tickSample — the interleaved multi-stream cache walk
 *     (the cost a reused tick skips entirely), measured per sampled
 *     access at paper-typical per-tick sample sizes;
 *   - AddressStream::next — the address generator inside that walk
 *     (conditional wrap, no modulo on the emitted line).
 *
 * Prints machine-readable MEMSAMPLE_WALK_NS_PER_SAMPLE and
 * MEMSAMPLE_STREAM_NEXT_NS lines that scripts/run_benches.sh records in
 * BENCH_parallel.json. Needs no trained models.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "mem/address_stream.hh"
#include "mem/mem_system.hh"
#include "obs/trace.hh"

using namespace dora;

namespace
{

/** Streams shaped like the paper's co-run mix: one browser-like stream
 *  plus Low/Medium/High Rodinia-class kernels sharing the L2. */
struct WalkFixture
{
    MemSystem mem{MemSystemConfig{}};
    std::vector<std::unique_ptr<AddressStream>> streams;
    std::vector<MemSampleRequest> requests;
    std::vector<MemSampleResult> results;

    explicit WalkFixture(uint32_t samples_per_core)
    {
        const struct
        {
            uint64_t wsBytes;
            double hot;
        } shapes[4] = {
            {1ull << 20, 0.900},        // browser render phase
            {512ull * 1024, 0.960},     // Low-class kernel (kmeans)
            {2816ull * 1024, 0.948},    // Medium-class kernel (bfs)
            {8ull << 20, 0.915},        // High-class kernel (backprop)
        };
        uint64_t base = 0;
        for (uint32_t c = 0; c < 4; ++c) {
            AddressStreamSpec spec;
            spec.workingSetBytes = shapes[c].wsBytes;
            spec.hotFraction = shapes[c].hot;
            streams.push_back(std::make_unique<AddressStream>(
                spec, base, Rng(0x1234 + c)));
            base += 2 * (spec.workingSetBytes / 64);
            MemSampleRequest req;
            req.core = c;
            req.stream = streams.back().get();
            req.samples = samples_per_core;
            requests.push_back(req);
        }
    }
};

void
BM_TickSampleWalk(benchmark::State &state)
{
    const uint32_t samples = static_cast<uint32_t>(state.range(0));
    WalkFixture f(samples);
    for (auto _ : state) {
        f.mem.tickSample(f.requests, f.results);
        benchmark::DoNotOptimize(f.results.data());
    }
    state.SetItemsProcessed(state.iterations() * 4 * samples);
}
BENCHMARK(BM_TickSampleWalk)->Arg(256)->Arg(2048)->Arg(8192);

void
BM_AddressStreamNext(benchmark::State &state)
{
    AddressStreamSpec spec;
    spec.workingSetBytes = 2816ull * 1024;
    spec.hotFraction = 0.948;
    AddressStream stream(spec, 0, Rng(0x5678));
    for (auto _ : state)
        benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_AddressStreamNext);

/** Machine-readable summary for scripts/run_benches.sh. */
void
printSummary()
{
    constexpr uint32_t kSamples = 2048;
    constexpr int kRepeats = 200;
    WalkFixture f(kSamples);
    // Warm the modeled caches so the steady-state path is measured.
    for (int i = 0; i < 50; ++i)
        f.mem.tickSample(f.requests, f.results);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRepeats; ++i)
        f.mem.tickSample(f.requests, f.results);
    auto t1 = std::chrono::steady_clock::now();
    const double walk_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        (static_cast<double>(kRepeats) * 4 * kSamples);

    AddressStreamSpec spec;
    spec.workingSetBytes = 2816ull * 1024;
    spec.hotFraction = 0.948;
    AddressStream stream(spec, 0, Rng(0x5678));
    constexpr int kDraws = 2000000;
    uint64_t sink = 0;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kDraws; ++i)
        sink ^= stream.next();
    t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sink);
    const double next_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        kDraws;

    std::cout << "MEMSAMPLE_WALK_NS_PER_SAMPLE " << walk_ns << "\n"
              << "MEMSAMPLE_STREAM_NEXT_NS " << next_ns << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printSummary();
    return 0;
}
