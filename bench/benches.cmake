# Bench targets are defined from the top-level CMakeLists (via include)
# so that ${CMAKE_BINARY_DIR}/bench contains ONLY the bench binaries --
# the documented way to run them is `for b in build/bench/*; do $b; done`.
function(dora_add_bench name)
    add_executable(${name} bench/${name}.cc)
    target_link_libraries(${name} PRIVATE dora_harness)
    target_include_directories(${name} PRIVATE
        ${CMAKE_SOURCE_DIR}/bench)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

dora_add_bench(fig01_interference_loadtime)
dora_add_bench(fig02_interference_cost)
dora_add_bench(fig03_fopt_tradeoff)
dora_add_bench(fig05_model_accuracy)
dora_add_bench(fig06_fopt_sensitivity)
dora_add_bench(fig07_governor_summary)
dora_add_bench(fig08_per_workload)
dora_add_bench(fig09_complexity_interaction)
dora_add_bench(fig10_leakage_impact)
dora_add_bench(fig11_deadline_sweep)
dora_add_bench(tab02_device_spec)
dora_add_bench(tab03_classification)
dora_add_bench(abl_decision_interval)
dora_add_bench(ext_dynamic_interference)
dora_add_bench(abl_sampling_ratio)
dora_add_bench(abl_l2_replacement)
dora_add_bench(ext_fault_resilience)
dora_add_bench(ext_parallel_scaling)

dora_add_bench(fleet_rollout)
target_link_libraries(fleet_rollout PRIVATE dora_fleet)

dora_add_bench(ovh_overhead)
target_link_libraries(ovh_overhead PRIVATE benchmark::benchmark)

dora_add_bench(ovh_hotpath)
target_link_libraries(ovh_hotpath PRIVATE benchmark::benchmark)

dora_add_bench(ovh_memsample)
target_link_libraries(ovh_memsample PRIVATE benchmark::benchmark)

dora_add_bench(ext_adaptive_accuracy)
