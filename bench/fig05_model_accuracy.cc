/**
 * @file
 * Figure 5 + Section V-A: prediction accuracy of the performance and
 * power models.
 *
 * Reproduces the full methodology: train the three response surfaces
 * (linear / interaction / quadratic, paper Eqs. 2-4) on the 42
 * Webpage-Inclusive workloads, pick the paper's choices (interaction
 * for time, linear for power), and report the error CDFs over the
 * held-out Webpage-Neutral workloads.
 *
 * Paper numbers for reference: load-time model ~2.5% average error
 * (87.5% of pages < 5%, max 10%); power model ~4% average error (75%
 * of pages < 5%, 90% < 10%).
 */

#include <iostream>

#include "bench_util.hh"
#include "dora/features.hh"
#include "dora/trainer.hh"
#include "stats/cdf.hh"

using namespace dora;

namespace
{

double
meanAbsPct(const std::vector<double> &errors)
{
    double sum = 0.0;
    for (double e : errors)
        sum += e;
    return errors.empty() ? 0.0 : sum / static_cast<double>(errors.size());
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    TrainerConfig trainer_config;
    trainer_config.jobs = benchJobs(argc, argv);
    trainer_config.lanes = benchLanes(argc, argv);
    Trainer trainer(trainer_config);
    // Train normally (also produces the leakage fit used below).
    ModelBundle bundle = trainer.trainCached(defaultBundleCachePath());
    const auto &train_samples = trainer.samples().empty()
        ? trainer.collectSamples(
              WorkloadSets::webpageInclusive(),
              Trainer::defaultTrainingFreqs(FreqTable::msm8974()))
        : trainer.samples();
    const auto test_samples = trainer.collectSamples(
        WorkloadSets::webpageNeutral(),
        Trainer::defaultTrainingFreqs(FreqTable::msm8974()));

    // --- Response-surface comparison (Section V-A). ---
    TextTable kinds({"target", "surface", "train err %", "test err %"});
    for (int target : {0, 2}) {
        for (SurfaceKind kind : {SurfaceKind::Linear,
                                 SurfaceKind::Interaction,
                                 SurfaceKind::Quadratic}) {
            PiecewiseSurface pw(kind, kNumFeatures);
            const double ridge = target == 0 ? 0.1 : 1e-4;
            for (const auto &[bus, data] : Trainer::datasetsByBus(
                     train_samples, target, &bundle.leakage))
                pw.fitGroup(bus, data, ridge);

            auto eval = [&](const std::vector<TrainingSample> &set) {
                std::vector<double> errors;
                for (const auto &s : set) {
                    const double truth = target == 0
                        ? s.loadTimeSec
                        : s.meanPowerW -
                            LeakageModel(bundle.leakage)
                                .power(s.voltage, s.meanTempC);
                    const double pred = pw.predict(s.x, s.busMhz);
                    errors.push_back(std::abs(pred - truth) /
                                     std::max(1e-9, std::abs(truth)));
                }
                return 100.0 * meanAbsPct(errors);
            };
            kinds.beginRow();
            kinds.add(std::string(target == 0 ? "load time"
                                              : "power (non-leakage)"));
            kinds.add(std::string(surfaceKindName(kind)));
            kinds.add(eval(train_samples), 2);
            kinds.add(eval(test_samples), 2);
        }
    }
    emitTable("fig05_kinds",
              "Section V-A — response-surface comparison", kinds);

    // --- Error CDFs for the chosen models (Fig. 5). ---
    EmpiricalCdf time_cdf, power_cdf;
    for (const auto &s : test_samples) {
        const double pt = bundle.predictLoadTime(s.x, s.busMhz);
        time_cdf.push(std::abs(pt - s.loadTimeSec) / s.loadTimeSec);
        const double pp = bundle.predictTotalPower(
            s.x, s.busMhz, s.voltage, s.meanTempC);
        power_cdf.push(std::abs(pp - s.meanPowerW) / s.meanPowerW);
    }
    time_cdf.seal();
    power_cdf.seal();

    auto cdf_table = [](const EmpiricalCdf &cdf) {
        TextTable t({"error <=", "fraction of samples"});
        for (double x : {0.01, 0.02, 0.05, 0.10, 0.15, 0.20}) {
            t.beginRow();
            t.add(100.0 * x, 0);
            t.add(cdf.fractionAtOrBelow(x), 3);
        }
        return t;
    };
    emitTable("fig05_time",
              "Fig. 5(a) — load-time model error CDF (held-out pages)",
              cdf_table(time_cdf));
    std::cout << "load-time model:   mean "
              << formatFixed(100.0 * time_cdf.mean(), 2) << "%, max "
              << formatFixed(100.0 * time_cdf.max(), 2)
              << "%  (paper: 2.5% mean, 10% max; accuracy 97.5%)\n";

    emitTable("fig05_power",
              "Fig. 5(b) — power model error CDF (held-out pages)",
              cdf_table(power_cdf));
    std::cout << "power model:       mean "
              << formatFixed(100.0 * power_cdf.mean(), 2) << "%, max "
              << formatFixed(100.0 * power_cdf.max(), 2)
              << "%  (paper: 4% mean; accuracy 96%)\n";

    std::cout << "\nExpected shape: interaction/quadratic beat linear "
                 "for load time; all three are close for power; error "
                 "CDFs concentrate below ~10%.\n";
    return 0;
}
