/**
 * @file
 * Section V-H: DORA's runtime overhead.
 *
 * Micro-benchmarks (google-benchmark) for the three operations DORA
 * performs: reading counters into a feature vector, evaluating the
 * models across all 14 OPPs (one Algorithm 1 decision), and the
 * bookkeeping of a model prediction. Then a table translating those
 * costs plus the measured DVFS switch counts into percent-of-load-time
 * overheads (paper: monitoring + decision < 1%, switching up to 3%).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "dora/features.hh"
#include "dora/predictive_governor.hh"
#include "runner/experiment.hh"

using namespace dora;

namespace
{

std::shared_ptr<const ModelBundle> g_bundle;

GovernorView
sampleView(const FreqTable &table, const WebPageFeatures &page)
{
    GovernorView v;
    v.nowSec = 1.0;
    v.freqIndex = table.maxIndex();
    v.freqTable = &table;
    v.l2Mpki = 8.0;
    v.corunUtilization = 0.9;
    v.temperatureC = 45.0;
    v.page = &page;
    v.deadlineSec = 3.0;
    return v;
}

void
BM_FeatureVectorBuild(benchmark::State &state)
{
    const WebPage &page = PageCorpus::byName("amazon");
    for (auto _ : state) {
        auto x = buildFeatureVector(page.features, 8.0, 2265.6, 800.0,
                                    0.9);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_FeatureVectorBuild);

void
BM_LoadTimePrediction(benchmark::State &state)
{
    const WebPage &page = PageCorpus::byName("amazon");
    const auto x =
        buildFeatureVector(page.features, 8.0, 2265.6, 800.0, 0.9);
    for (auto _ : state)
        benchmark::DoNotOptimize(g_bundle->predictLoadTime(x, 800.0));
}
BENCHMARK(BM_LoadTimePrediction);

void
BM_TotalPowerPrediction(benchmark::State &state)
{
    const WebPage &page = PageCorpus::byName("amazon");
    const auto x =
        buildFeatureVector(page.features, 8.0, 2265.6, 800.0, 0.9);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            g_bundle->predictTotalPower(x, 800.0, 1.1, 45.0));
}
BENCHMARK(BM_TotalPowerPrediction);

void
BM_DoraDecision(benchmark::State &state)
{
    const FreqTable table = FreqTable::msm8974();
    const WebPage &page = PageCorpus::byName("amazon");
    PredictiveGovernor dora = makeDora(g_bundle);
    GovernorView view = sampleView(table, page.features);
    for (auto _ : state)
        benchmark::DoNotOptimize(dora.decideFrequencyIndex(view));
}
BENCHMARK(BM_DoraDecision);

void
BM_InteractiveDecision(benchmark::State &state)
{
    const FreqTable table = FreqTable::msm8974();
    const WebPage &page = PageCorpus::byName("amazon");
    InteractiveGovernor interactive;
    GovernorView view = sampleView(table, page.features);
    view.totalUtilization = 0.95;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            interactive.decideFrequencyIndex(view));
}
BENCHMARK(BM_InteractiveDecision);

void
printOverheadTable()
{
    ExperimentRunner runner;
    const double switch_penalty =
        runner.config().soc.freqSwitchPenaltySec;
    // A conservative decision cost (measured above, typically ~1 us;
    // use 10 us to stay pessimistic like the paper's bound).
    const double decision_cost_sec = 10e-6;
    const double decision_interval = 0.1;

    TextTable t({"workload", "load time s", "switches",
                 "switching ovh %", "monitor+decide ovh %"});
    const std::pair<const char *, MemIntensity> picks[] = {
        {"amazon", MemIntensity::Medium},
        {"reddit", MemIntensity::High},
        {"espn", MemIntensity::Medium},
        {"aliexpress", MemIntensity::High},
    };
    for (const auto &[name, cls] : picks) {
        const WorkloadSpec w =
            WorkloadSets::combo(PageCorpus::byName(name), cls);
        PredictiveGovernor dora = makeDora(g_bundle);
        const RunMeasurement m = runner.run(w, dora);
        const double switching =
            100.0 * static_cast<double>(m.freqSwitches) *
            switch_penalty / m.loadTimeSec;
        const double monitor = 100.0 * decision_cost_sec /
            decision_interval;
        t.beginRow();
        t.add(w.label());
        t.add(m.loadTimeSec, 3);
        t.add(static_cast<int64_t>(m.freqSwitches));
        t.add(switching, 2);
        t.add(monitor, 2);
    }
    emitTable("ovh", "Section V-H — DORA overhead accounting", t);
    std::cout << "\nExpected shape: monitoring + decision well under "
                 "1%; switching overhead bounded by a few percent "
                 "(already included in every PPW result).\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    g_bundle = benchBundle();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printOverheadTable();
    return 0;
}
