/**
 * @file
 * Figure 11 + Section V-G: DORA under varying QoS deadlines.
 *
 * MSN loading beside a high-intensity co-runner, with the deadline
 * swept from 1 to 10 seconds. No retraining is needed — the deadline
 * is only a constraint in Algorithm 1. Paper shape: flat out for 1-2 s
 * targets, then fopt = fD falls as the deadline relaxes, and once
 * fD <= fE the choice parks at the deadline-independent fE.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "harness/comparison.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    auto bundle = benchBundle();
    const WorkloadSpec w = WorkloadSets::combo(
        PageCorpus::byName("msn"), MemIntensity::High);

    TextTable t({"deadline s", "DORA mean GHz", "load time s",
                 "meets deadline", "regime"});
    double prev_ghz = 99.0;
    double fe_ghz = 0.0;
    for (int deadline = 1; deadline <= 10; ++deadline) {
        ExperimentConfig config;
        config.deadlineSec = deadline;
        ComparisonHarness harness(config, bundle);
        const RunMeasurement m = harness.runOne(w, "DORA");
        const double ghz = m.meanFreqMhz / 1000.0;
        if (deadline == 10)
            fe_ghz = ghz;  // by 10 s the choice is deadline-free = fE
        t.beginRow();
        t.add(static_cast<int64_t>(deadline));
        t.add(ghz, 2);
        t.add(m.loadTimeSec, 3);
        t.add(std::string(m.meetsDeadline ? "yes" : "no"));
        t.add(std::string(ghz > prev_ghz + 0.05
                              ? "NON-MONOTONE"
                              : (deadline <= 2 ? "fopt = fD (tight)"
                                               : "")));
        prev_ghz = ghz;
    }
    emitTable("fig11", "Fig. 11 — DORA frequency selection vs deadline "
                       "(MSN + high intensity)", t);
    std::cout << "\ndeadline-free operating point (fE) ~ "
              << formatFixed(fe_ghz, 2) << " GHz\n";
    std::cout << "Expected shape: monotonically non-increasing "
                 "frequency; a tight-deadline fD plateau at the top, "
                 "then a switch to the constant fE plateau.\n";
    return 0;
}
