/**
 * @file
 * Figure 2: what co-scheduling costs the browser.
 *
 * (a) Measured load time of four pages at 2.27 GHz grows with the
 *     memory intensity of the co-scheduled application; some pages are
 *     pushed across the 3-second deadline.
 * (b) Additional energy E-delta incurred by running browser and
 *     co-runner together versus separately (paper: up to ~29%).
 *
 * Energy accounting for (b): all energies are taken above the idle
 * device floor so the always-on baseline is not double counted when
 * comparing one co-run against two separate runs:
 *   E'_B   browser-alone energy above idle, for its own load time;
 *   P'_O   co-runner-alone power above idle;
 *   E'_co  co-run energy above idle over the co-run load time t_co;
 *   E_delta = E'_co - E'_B - P'_O * t_co.
 * The reported percentage is E_delta over the total co-run energy,
 * matching the paper's E_delta / (E_B + E_O + E_delta).
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    ExperimentRunner runner;
    const size_t fmax = runner.freqTable().maxIndex();
    const char *pages[] = {"aliexpress", "hao123", "espn", "imgur"};
    const MemIntensity classes[] = {MemIntensity::Low,
                                    MemIntensity::Medium,
                                    MemIntensity::High};

    // Idle power floor at the max OPP.
    WorkloadSpec idle;
    const RunMeasurement idle_m = runner.runAtFrequency(idle, fmax);
    const double p_idle = idle_m.meanPowerW;

    TextTable a({"page", "alone s", "+low s", "+medium s", "+high s",
                 "meets 3 s at high?"});
    TextTable b({"page", "E_delta +low %", "+medium %", "+high %"});

    for (const char *name : pages) {
        const WebPage &page = PageCorpus::byName(name);

        const RunMeasurement alone =
            runner.runAtFrequency(WorkloadSets::alone(page), fmax);
        const double browser_net =
            alone.energyJ - p_idle * alone.loadTimeSec;

        a.beginRow();
        a.add(page.name);
        a.add(alone.loadTimeSec, 3);
        b.beginRow();
        b.add(page.name);

        double high_time = 0.0;
        for (MemIntensity cls : classes) {
            const WorkloadSpec combo = WorkloadSets::combo(page, cls);
            const RunMeasurement co = runner.runAtFrequency(combo, fmax);
            a.add(co.loadTimeSec, 3);
            high_time = co.loadTimeSec;

            const RunMeasurement kernel_alone = runner.runAtFrequency(
                WorkloadSets::kernelOnly(*combo.kernel), fmax);
            const double p_kernel =
                kernel_alone.meanPowerW - p_idle;
            const double co_net =
                co.energyJ - p_idle * co.loadTimeSec;
            const double e_delta = co_net - browser_net -
                p_kernel * co.loadTimeSec;
            b.add(100.0 * e_delta / co.energyJ, 1);
        }
        a.add(std::string(high_time <= 3.0 ? "yes" : "no"));
    }

    emitTable("fig02a", "Fig. 2(a) — load time vs co-runner intensity "
                        "(2.27 GHz)", a);
    emitTable("fig02b", "Fig. 2(b) — additional co-run energy cost", b);
    std::cout << "\nExpected shape: load times rise with intensity; "
                 "E_delta is positive and grows with intensity.\n";
    return 0;
}
