/**
 * @file
 * Extension experiment (paper Section V-D, "the adaptive nature of
 * DORA" + the Fig. 4 loop): interference that changes *during* the
 * page load.
 *
 * A heavy page loads while the co-runner executes a schedule — 0.8 s
 * of low-intensity kmeans, then high-intensity backprop. A static
 * frequency choice made for the first regime is wrong for the second;
 * DORA's periodic re-evaluation must see the MPKI step in X6 and move
 * the operating point. The decision trace below shows exactly that.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "dora/predictive_governor.hh"
#include "runner/experiment.hh"
#include "workloads/phased_corun_task.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    auto bundle = benchBundle();
    ExperimentRunner runner;
    // A slightly relaxed target: the point here is adaptation, and
    // 3.2 s is feasible for imdb under the *mixed* schedule only if
    // the governor reacts to the regime change.
    runner.mutableConfig().deadlineSec = 3.2;
    const FreqTable &table = runner.freqTable();

    const WebPage &page = PageCorpus::byName("imdb");
    std::vector<CorunPhase> schedule = {
        {&KernelCatalog::byName("kmeans"), runner.config().warmupSec +
                                               0.8},
        {&KernelCatalog::byName("backprop"), 0.0},  // until the end
    };

    PhasedCorunTask corun(schedule, 7);
    PredictiveGovernor dora = makeDora(bundle);
    const RunMeasurement m = runner.runCustom(
        &page, &corun, "imdb+phased(kmeans->backprop)", dora);

    printBanner(std::cout, "Dynamic interference — DORA decision trace "
                           "(imdb, co-runner flips low -> high at "
                           "t=+0.8 s)");
    TextTable t({"t since load s", "L2 MPKI seen", "corun util",
                 "chosen GHz"});
    const double t0 = m.decisions.empty() ? 0.0 : m.decisions[0].tSec;
    for (const auto &d : m.decisions) {
        t.beginRow();
        t.add(d.tSec - t0, 2);
        t.add(d.l2Mpki, 2);
        t.add(d.corunUtil, 2);
        t.add(table.opp(d.freqIndex).coreMhz / 1000.0, 2);
    }
    emitTable("ext_dynamic", "decision trace", t);

    std::cout << "\nload time " << formatFixed(m.loadTimeSec, 3)
              << " s, deadline "
              << (m.meetsDeadline ? "met" : "missed") << ", "
              << m.freqSwitches << " DVFS transitions\n";

    // Reference: what a static offline choice for the *initial* regime
    // would have done.
    WorkloadSpec static_low = WorkloadSets::alone(page);
    static_low.kernel = &KernelCatalog::byName("kmeans");
    double best_ppw = 0.0;
    size_t static_opt = table.maxIndex();
    for (size_t f : table.paperSweepIndices()) {
        const RunMeasurement s = runner.runAtFrequency(static_low, f);
        if (s.meetsDeadline && s.ppw > best_ppw) {
            best_ppw = s.ppw;
            static_opt = f;
        }
    }
    PhasedCorunTask corun2(schedule, 7);
    FixedGovernor fixed(static_opt);
    const RunMeasurement stale = runner.runCustom(
        &page, &corun2, "imdb+phased(static)", fixed, static_opt);
    std::cout << "static fopt chosen for the low regime ("
              << formatFixed(table.opp(static_opt).coreMhz / 1000.0, 2)
              << " GHz): load time " << formatFixed(stale.loadTimeSec, 3)
              << " s, deadline "
              << (stale.meetsDeadline ? "met" : "MISSED") << "\n";
    std::cout << "\nExpected shape: DORA's chosen frequency steps up "
                 "when the MPKI column jumps; the stale static choice "
                 "is slower and can miss the deadline.\n";
    return 0;
}
