/**
 * @file
 * Self-checking accuracy gate for the adaptive sampling + macro-tick
 * fast path.
 *
 * Runs a small Fig. 7-style slice (four pages x three model-free
 * governors) twice — once in exact-ticks mode (every tick walks the
 * sampled caches, legacy one-tick stepping) and once on the default
 * adaptive path (converged-phase reuse + event-horizon batching) — and
 * enforces the acceptance contract of the fast path:
 *
 *   1. per-workload governor ranking by PPW is preserved for every
 *      pair with a real gap (exact-mode PPWs differing by > 1 %) —
 *      pairs inside that band are statistical ties whose order no
 *      sampling schedule can pin down;
 *   2. per-cell load-time and PPW deltas are <= 1 % (uncensored cells);
 *   3. deadline-meet verdicts and censored flags are identical per cell.
 *
 * Exits non-zero on any violation; machine-readable ACCURACY lines are
 * consumed by scripts/ci.sh. Model-free governors only, so no trained
 * bundle is needed.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "common/exact_ticks.hh"
#include "harness/comparison.hh"

using namespace dora;

namespace
{

/**
 * Every governor pair separated by more than @p tie_tol in exact mode
 * must keep its order on the adaptive path. Returns the names of the
 * first violated pair, or an empty string.
 */
std::string
rankingViolation(const ComparisonRecord &exact,
                 const ComparisonRecord &adaptive,
                 const std::vector<std::string> &governors,
                 double tie_tol)
{
    for (size_t a = 0; a < governors.size(); ++a) {
        for (size_t b = a + 1; b < governors.size(); ++b) {
            const double ea = exact.measurement(governors[a]).ppw;
            const double eb = exact.measurement(governors[b]).ppw;
            const double gap = std::abs(ea - eb);
            if (gap <= tie_tol * std::max(std::abs(ea), std::abs(eb)))
                continue;  // statistical tie; order carries no signal
            const double aa = adaptive.measurement(governors[a]).ppw;
            const double ab = adaptive.measurement(governors[b]).ppw;
            if ((ea > eb) != (aa > ab))
                return governors[a] + " vs " + governors[b];
        }
    }
    return {};
}

double
relDelta(double exact, double adaptive)
{
    if (exact == 0.0)
        return adaptive == 0.0 ? 0.0 : 1.0;
    return std::abs(adaptive - exact) / std::abs(exact);
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    const unsigned jobs = benchJobs(argc, argv);

    const std::pair<const char *, MemIntensity> picks[] = {
        {"amazon", MemIntensity::Medium},
        {"reddit", MemIntensity::High},
        {"espn", MemIntensity::Medium},
        {"msn", MemIntensity::Low},
    };
    std::vector<WorkloadSpec> workloads;
    for (const auto &[page, cls] : picks)
        workloads.push_back(
            WorkloadSets::combo(PageCorpus::byName(page), cls));
    const std::vector<std::string> governors = {
        "interactive", "performance", "ondemand"};

    setExactTicksMode(true);
    ComparisonHarness exact_harness(ExperimentConfig{}, nullptr, jobs);
    const auto exact = exact_harness.runAll(workloads, governors);

    setExactTicksMode(false);
    ComparisonHarness adaptive_harness(ExperimentConfig{}, nullptr, jobs);
    const auto adaptive = adaptive_harness.runAll(workloads, governors);

    constexpr double kTolerance = 0.01;
    bool ok = true;
    double max_load_delta = 0.0;
    double max_ppw_delta = 0.0;

    for (size_t w = 0; w < workloads.size(); ++w) {
        const std::string flipped = rankingViolation(
            exact[w], adaptive[w], governors, kTolerance);
        if (!flipped.empty()) {
            ok = false;
            std::cerr << "FAIL: governor PPW ranking differs on "
                      << workloads[w].label() << " (" << flipped
                      << ")\n";
        }
        for (size_t g = 0; g < governors.size(); ++g) {
            const RunMeasurement &e = exact[w].measurement(governors[g]);
            const RunMeasurement &a =
                adaptive[w].measurement(governors[g]);
            if (e.censored != a.censored ||
                e.meetsDeadline != a.meetsDeadline) {
                ok = false;
                std::cerr << "FAIL: " << workloads[w].label() << " x "
                          << governors[g]
                          << ": censored/deadline verdict differs "
                          << "(exact censored=" << e.censored
                          << " meets=" << e.meetsDeadline
                          << ", adaptive censored=" << a.censored
                          << " meets=" << a.meetsDeadline << ")\n";
                continue;
            }
            if (e.censored)
                continue;  // ppw is 0 and loadTime is a bound, not data
            const double dl = relDelta(e.loadTimeSec, a.loadTimeSec);
            const double dp = relDelta(e.ppw, a.ppw);
            max_load_delta = std::max(max_load_delta, dl);
            max_ppw_delta = std::max(max_ppw_delta, dp);
            if (dl > kTolerance || dp > kTolerance) {
                ok = false;
                std::cerr << "FAIL: " << workloads[w].label() << " x "
                          << governors[g] << ": load delta "
                          << dl * 100 << " %, ppw delta " << dp * 100
                          << " % exceed " << kTolerance * 100 << " %\n";
            }
        }
    }

    std::printf("ACCURACY max_load_delta_pct=%.4f "
                "max_ppw_delta_pct=%.4f ok=%d\n",
                max_load_delta * 100, max_ppw_delta * 100, ok ? 1 : 0);
    if (!ok) {
        std::cerr << "FAIL: adaptive fast path violates the exact-mode "
                     "accuracy contract\n";
        return 1;
    }
    std::cout << "adaptive fast path matches exact mode across "
              << workloads.size() * governors.size()
              << " cells (rankings identical, deltas <= 1 %)\n";
    return 0;
}
