/**
 * @file
 * Ablation (Section IV-C): DORA's decision interval.
 *
 * The paper evaluated 50 ms, 100 ms, and 250 ms and found 50/100 ms
 * comparable while 250 ms is too slow to track web-page phases; 100 ms
 * was chosen as the less intrusive of the two. This bench reruns that
 * study on a handful of phase-diverse workloads.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "dora/predictive_governor.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    const unsigned jobs = benchJobs(argc, argv);
    auto bundle = benchBundle();

    const std::pair<const char *, MemIntensity> picks[] = {
        {"amazon", MemIntensity::Medium},
        {"reddit", MemIntensity::High},
        {"espn", MemIntensity::Medium},
        {"youtube", MemIntensity::High},
        {"msn", MemIntensity::Low},
    };
    const double intervals[] = {0.05, 0.10, 0.25};

    // All interval x workload cells are independent runs; fan the full
    // grid out and aggregate per interval afterwards.
    const size_t cells = std::size(intervals) * std::size(picks);
    const auto measurements = parallelMap<RunMeasurement>(
        cells,
        [&](size_t i) {
            const double interval = intervals[i / std::size(picks)];
            const auto &[page, cls] = picks[i % std::size(picks)];
            const WorkloadSpec w =
                WorkloadSets::combo(PageCorpus::byName(page), cls);
            PredictiveGovernor dora = makeDora(bundle, interval);
            ExperimentRunner runner;
            return runner.run(w, dora);
        },
        jobs);

    TextTable t({"interval ms", "mean PPW 1/J", "deadline met",
                 "mean switches/run"});
    for (size_t iv = 0; iv < std::size(intervals); ++iv) {
        double ppw_sum = 0.0;
        int met = 0;
        double switches = 0.0;
        for (size_t p = 0; p < std::size(picks); ++p) {
            const RunMeasurement &m =
                measurements[iv * std::size(picks) + p];
            ppw_sum += m.ppw;
            met += m.meetsDeadline ? 1 : 0;
            switches += static_cast<double>(m.freqSwitches);
        }
        t.beginRow();
        t.add(intervals[iv] * 1000.0, 0);
        t.add(ppw_sum / std::size(picks), 4);
        t.add(std::string(std::to_string(met) + "/" +
                          std::to_string(std::size(picks))));
        t.add(switches / std::size(picks), 1);
    }
    emitTable("abl_interval",
              "Ablation — DORA decision interval (Section IV-C)", t);
    std::cout << "\nExpected shape: 50 ms and 100 ms within noise of "
                 "each other (100 ms switches less); 250 ms loses PPW "
                 "or deadline robustness by reacting late to phases.\n";
    return 0;
}
