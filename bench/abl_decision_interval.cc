/**
 * @file
 * Ablation (Section IV-C): DORA's decision interval.
 *
 * The paper evaluated 50 ms, 100 ms, and 250 ms and found 50/100 ms
 * comparable while 250 ms is too slow to track web-page phases; 100 ms
 * was chosen as the less intrusive of the two. This bench reruns that
 * study on a handful of phase-diverse workloads.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "dora/predictive_governor.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main()
{
    auto bundle = benchBundle();
    ExperimentRunner runner;

    const std::pair<const char *, MemIntensity> picks[] = {
        {"amazon", MemIntensity::Medium},
        {"reddit", MemIntensity::High},
        {"espn", MemIntensity::Medium},
        {"youtube", MemIntensity::High},
        {"msn", MemIntensity::Low},
    };

    TextTable t({"interval ms", "mean PPW 1/J", "deadline met",
                 "mean switches/run"});
    for (double interval : {0.05, 0.10, 0.25}) {
        double ppw_sum = 0.0;
        int met = 0;
        double switches = 0.0;
        for (const auto &[page, cls] : picks) {
            const WorkloadSpec w =
                WorkloadSets::combo(PageCorpus::byName(page), cls);
            PredictiveGovernor dora = makeDora(bundle, interval);
            const RunMeasurement m = runner.run(w, dora);
            ppw_sum += m.ppw;
            met += m.meetsDeadline ? 1 : 0;
            switches += static_cast<double>(m.freqSwitches);
        }
        t.beginRow();
        t.add(interval * 1000.0, 0);
        t.add(ppw_sum / std::size(picks), 4);
        t.add(std::string(std::to_string(met) + "/" +
                          std::to_string(std::size(picks))));
        t.add(switches / std::size(picks), 1);
    }
    emitTable("abl_interval",
              "Ablation — DORA decision interval (Section IV-C)", t);
    std::cout << "\nExpected shape: 50 ms and 100 ms within noise of "
                 "each other (100 ms switches less); 250 ms loses PPW "
                 "or deadline robustness by reacting late to phases.\n";
    return 0;
}
