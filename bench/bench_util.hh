/**
 * @file
 * Shared helpers for the figure/table benches: cached model-bundle
 * loading and common formatting.
 *
 * Every bench is a standalone binary that regenerates one table or
 * figure of the paper and prints it as an aligned text table (plus a
 * CSV next to the working directory when DORA_BENCH_CSV=1).
 */

#ifndef DORA_BENCH_BENCH_UTIL_HH
#define DORA_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/cli.hh"
#include "common/lanes.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "exec/thread_pool.hh"
#include "harness/bundle_cache.hh"
#include "obs/trace.hh"

namespace dora
{

/**
 * Resolve and announce the parallelism of a bench binary: `--jobs N`
 * on the command line, else $DORA_JOBS, else the hardware thread
 * count. Results are bit-identical at any job count.
 */
inline unsigned
benchJobs(int argc, char **argv)
{
    const unsigned jobs = jobCountFromArgs(argc, argv);
    std::cerr << "[bench] jobs=" << jobs
              << (jobs == 1 ? " (serial)" : "") << "\n";
    return jobs;
}

/**
 * Resolve the process-tier worker count of a bench binary:
 * `--workers N` / `--workers=N` on the command line, else
 * $DORA_WORKERS, else 0 (in-process execution). Results are
 * bit-identical at any worker count; workers > 0 additionally buys
 * crash isolation and checkpoint/resume (see exec/proc).
 */
inline unsigned
benchWorkers(int argc, char **argv)
{
    long workers = 0;
    const char *from = nullptr;
    if (const char *env = envNonEmpty("DORA_WORKERS")) {
        workers = cliParseInt(env, "$DORA_WORKERS", 0, 1024);
        from = "$DORA_WORKERS";
    }
    if (const auto value = cliFlagValue(argc, argv, "--workers")) {
        workers = cliParseInt(*value, "--workers", 0, 1024);
        from = "--workers";
    }
    if (workers > 0)
        std::cerr << "[bench] workers=" << workers << " (" << from
                  << "; process tier with checkpoint/resume)\n";
    return static_cast<unsigned>(workers);
}

/**
 * Resolve and announce the lane-batch width of a bench binary:
 * `--lanes N` / `--lanes=N` on the command line, else $DORA_LANES,
 * else 1 (the exact legacy per-run path). Results are bit-identical
 * at any lane count; lanes > 1 advances that many independent runs
 * interleaved per thread so memory-walk miss chains overlap (see
 * sim/lane_batch.hh).
 */
inline unsigned
benchLanes(int argc, char **argv)
{
    const unsigned lanes = laneCountFromArgs(argc, argv);
    if (lanes > 1)
        std::cerr << "[bench] lanes=" << lanes << " (lane-batched)\n";
    return lanes;
}

/**
 * Load (or train + cache) the model bundle, announcing what happened.
 * First call in a fresh checkout trains for a minute or two; later
 * benches reuse the cache file.
 */
inline std::shared_ptr<const ModelBundle>
benchBundle()
{
    std::cerr << "[bench] loading DORA models (cache: "
              << defaultBundleCachePath() << ")\n";
    return loadOrTrainBundle();
}

/** Emit @p table under @p title; also CSV when DORA_BENCH_CSV=1. */
inline void
emitTable(const std::string &bench, const std::string &title,
          const TextTable &table)
{
    printBanner(std::cout, title);
    table.print(std::cout);
    if (const char *env = std::getenv("DORA_BENCH_CSV");
        env && std::string(env) == "1") {
        const std::string path = bench + ".csv";
        if (table.writeCsv(path))
            std::cerr << "[bench] wrote " << path << "\n";
    }
}

} // namespace dora

#endif // DORA_BENCH_BENCH_UTIL_HH
