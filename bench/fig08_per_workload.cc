/**
 * @file
 * Figure 8: per-workload energy efficiency, all 54 combinations,
 * sorted by DORA's improvement over interactive.
 *
 * Paper shape: for the first ~19 workloads (fE < fD) DORA follows the
 * DL/fD curve; beyond the crossover DORA follows EE/fE. EE exceeds
 * DORA's PPW on the early workloads only by violating the deadline.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "harness/comparison.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    const unsigned jobs = benchJobs(argc, argv);
    const unsigned workers = benchWorkers(argc, argv);
    auto bundle = benchBundle();
    ComparisonHarness harness(ExperimentConfig{}, bundle, jobs);
    harness.setLanes(benchLanes(argc, argv));
    if (workers > 0) {
        harness.setWorkers(workers);
        harness.setProcJournalStem("fig08.journal");
    }

    const auto workloads = WorkloadSets::paperCombinations();
    std::cerr << "[bench] running " << workloads.size()
              << " workloads x 5 governors...\n";
    auto records = harness.runAll(workloads);

    std::sort(records.begin(), records.end(),
              [](const ComparisonRecord &a, const ComparisonRecord &b) {
                  return a.normalizedPpw("DORA") <
                      b.normalizedPpw("DORA");
              });

    TextTable t({"#", "workload", "perf", "DL(fD)", "EE(fE)", "DORA",
                 "DORA meets", "EE meets", "regime"});
    int crossover = -1;
    int idx = 1;
    for (const auto &r : records) {
        const bool ee_meets = r.measurement("EE").meetsDeadline;
        const bool follows_dl =
            std::abs(r.normalizedPpw("DORA") - r.normalizedPpw("DL")) <=
            std::abs(r.normalizedPpw("DORA") - r.normalizedPpw("EE"));
        if (crossover < 0 && ee_meets)
            crossover = idx;
        t.beginRow();
        t.add(static_cast<int64_t>(idx));
        t.add(r.workload.label());
        t.add(r.normalizedPpw("performance"), 3);
        t.add(r.normalizedPpw("DL"), 3);
        t.add(r.normalizedPpw("EE"), 3);
        t.add(r.normalizedPpw("DORA"), 3);
        t.add(std::string(
            r.measurement("DORA").meetsDeadline ? "yes" : "no"));
        t.add(std::string(ee_meets ? "yes" : "no"));
        t.add(std::string(follows_dl ? "fE<fD (DL-like)"
                                     : "fE>=fD (EE-like)"));
        ++idx;
    }
    emitTable("fig08", "Fig. 8 — per-workload PPW normalized to "
                       "interactive (sorted by DORA)", t);

    std::cout << "\nmean DORA gain: "
              << formatFixed(
                     100.0 * (meanNormalizedPpw(records, "DORA") - 1.0),
                     1)
              << "%  (paper: 16% average, up to 35%)\n";
    std::cout << "max DORA gain: "
              << formatFixed(
                     100.0 *
                         (records.back().normalizedPpw("DORA") - 1.0),
                     1)
              << "%\n";
    std::cout << "\nExpected shape: early (low-gain) workloads are the "
                 "deadline-constrained fE<fD regime where DORA follows "
                 "DL; later workloads follow EE.\n";
    return 0;
}
