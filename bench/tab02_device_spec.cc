/**
 * @file
 * Table II: specification of the simulated device — printed from the
 * live configuration objects so the table cannot drift from the code.
 */

#include <iostream>

#include "bench_util.hh"
#include "soc/soc.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    const Soc soc = Soc::nexus5();
    const SocConfig &config = soc.config();
    const MemSystemConfig &mem = soc.mem().config();
    const FreqTable &table = soc.freqTable();

    TextTable t({"component", "value"});
    auto row = [&t](const std::string &k, const std::string &v) {
        t.beginRow();
        t.add(k);
        t.add(v);
    };
    row("modeled device", "Google Nexus 5 (simulated)");
    row("chipset", "MSM8974 Snapdragon 800 (simulated)");
    row("application processor",
        std::to_string(config.numCores) + "x Krait-class cores");
    row("L1 D-cache (per core)",
        std::to_string(mem.l1.sizeBytes / 1024) + " KB, " +
            std::to_string(mem.l1.associativity) + "-way");
    row("L2 unified cache (shared)",
        std::to_string(mem.l2.sizeBytes / 1024 / 1024) + " MB, " +
            std::to_string(mem.l2.associativity) + "-way");
    row("cache line", std::to_string(mem.l2.lineBytes) + " B");
    row("memory", "LPDDR3 model, " +
            formatFixed(mem.dram.baseLatencyNs, 0) + " ns unloaded, " +
            formatFixed(mem.dram.bytesPerBusCycle, 0) +
            " B/bus-cycle");
    row("frequency settings",
        std::to_string(table.size()) + " OPPs, " +
            formatFixed(table.opp(0).coreMhz, 1) + " - " +
            formatFixed(table.opp(table.maxIndex()).coreMhz, 1) +
            " MHz");
    row("memory bus groups",
        std::to_string(table.busFrequencies().size()) +
            " bus frequencies (piece-wise model groups)");
    emitTable("tab02", "Table II — device specification", t);

    TextTable opps({"idx", "core MHz", "voltage V", "bus MHz"});
    for (size_t i = 0; i < table.size(); ++i) {
        opps.beginRow();
        opps.add(static_cast<int64_t>(i));
        opps.add(table.opp(i).coreMhz, 1);
        opps.add(table.opp(i).voltage, 3);
        opps.add(table.opp(i).busMhz, 0);
    }
    emitTable("tab02_opps", "DVFS operating points", opps);
    return 0;
}
