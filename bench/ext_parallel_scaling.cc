/**
 * @file
 * Self-checking scaling study of the parallel experiment engine.
 *
 * Runs a small Fig. 7-style slice (a handful of workloads under the
 * kernel governors) twice through ComparisonHarness::runAll — once at
 * jobs=1 (the exact legacy serial path) and once at jobs=N — and
 *
 *   1. asserts that every measurement is BYTE-IDENTICAL between the
 *      two (via runMeasurementText, which renders all doubles as hex
 *      floats), exiting non-zero on any mismatch;
 *   2. reports the wall-clock speedup, and on hosts with >= 4 hardware
 *      threads enforces the >= 2x acceptance target.
 *
 * Uses only model-free governors so it runs out of the box with no
 * trained bundle. Machine-readable SCALING lines are consumed by
 * scripts/run_benches.sh.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "harness/comparison.hh"

using namespace dora;

namespace
{

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    unsigned jobs = jobCountFromArgs(argc, argv);
    if (jobs < 2)
        jobs = std::min(4u, hardwareJobs());
    std::cerr << "[bench] comparing jobs=1 vs jobs=" << jobs << "\n";

    const std::pair<const char *, MemIntensity> picks[] = {
        {"amazon", MemIntensity::Medium},
        {"reddit", MemIntensity::High},
        {"espn", MemIntensity::Medium},
        {"msn", MemIntensity::Low},
    };
    std::vector<WorkloadSpec> workloads;
    for (const auto &[page, cls] : picks)
        workloads.push_back(
            WorkloadSets::combo(PageCorpus::byName(page), cls));
    // Model-free governors: the comparison engine is identical, but no
    // training campaign is needed to run this check.
    const std::vector<std::string> governors = {
        "interactive", "performance", "ondemand"};

    ComparisonHarness serial(ExperimentConfig{}, nullptr, 1);
    auto t0 = std::chrono::steady_clock::now();
    const auto serial_records = serial.runAll(workloads, governors);
    const double serial_sec = wallSeconds(t0);
    std::printf("SCALING jobs=1 wall=%.3f\n", serial_sec);

    ComparisonHarness parallel(ExperimentConfig{}, nullptr, jobs);
    t0 = std::chrono::steady_clock::now();
    const auto parallel_records = parallel.runAll(workloads, governors);
    const double parallel_sec = wallSeconds(t0);
    std::printf("SCALING jobs=%u wall=%.3f\n", jobs, parallel_sec);

    // Process tier (exec/proc): same campaign sharded across worker
    // subprocesses — the crash-resilient path used by --workers=N.
    const unsigned workers = std::min(jobs, 4u);
    ComparisonHarness proc(ExperimentConfig{}, nullptr, 1);
    proc.setWorkers(workers);
    t0 = std::chrono::steady_clock::now();
    const auto proc_records = proc.runAll(workloads, governors);
    const double proc_sec = wallSeconds(t0);
    std::printf("SCALING workers=%u wall=%.3f\n", workers, proc_sec);

    // Lane tier (sim/lane_batch): the same campaign advanced four
    // runs per batch on one thread — the --lanes=N path.
    const unsigned lanes = 4;
    ComparisonHarness lane(ExperimentConfig{}, nullptr, 1);
    lane.setLanes(lanes);
    t0 = std::chrono::steady_clock::now();
    const auto lane_records = lane.runAll(workloads, governors);
    const double lane_sec = wallSeconds(t0);
    std::printf("SCALING lanes=%u wall=%.3f\n", lanes, lane_sec);

    // --- 1. byte-identity of every cell, across all tiers. ---
    bool identical = serial_records.size() == parallel_records.size() &&
        serial_records.size() == proc_records.size() &&
        serial_records.size() == lane_records.size();
    for (size_t w = 0; identical && w < serial_records.size(); ++w) {
        for (const auto &name : governors) {
            const std::string a = runMeasurementText(
                serial_records[w].measurement(name));
            const std::string b = runMeasurementText(
                parallel_records[w].measurement(name));
            const std::string c = runMeasurementText(
                proc_records[w].measurement(name));
            const std::string d = runMeasurementText(
                lane_records[w].measurement(name));
            if (a != b) {
                identical = false;
                std::cerr << "MISMATCH " << workloads[w].label() << " x "
                          << name << "\n  jobs=1: " << a
                          << "\n  jobs=" << jobs << ": " << b << "\n";
            }
            if (a != c) {
                identical = false;
                std::cerr << "MISMATCH " << workloads[w].label() << " x "
                          << name << "\n  jobs=1: " << a
                          << "\n  workers=" << workers << ": " << c
                          << "\n";
            }
            if (a != d) {
                identical = false;
                std::cerr << "MISMATCH " << workloads[w].label() << " x "
                          << name << "\n  jobs=1: " << a
                          << "\n  lanes=" << lanes << ": " << d << "\n";
            }
        }
    }

    const double speedup =
        parallel_sec > 0.0 ? serial_sec / parallel_sec : 0.0;
    std::printf("SCALING speedup=%.2f identical=%d\n", speedup,
                identical ? 1 : 0);

    if (!identical) {
        std::cerr << "FAIL: parallel results are not bit-identical to "
                     "serial\n";
        return 1;
    }
    std::cout << "parallel results bit-identical to serial across "
              << serial_records.size() * governors.size() << " cells\n";

    // --- 2. speedup target (only meaningful with real cores). ---
    if (hardwareJobs() < 2) {
        // On a single-thread host jobs=N serializes onto one core, so
        // any "speedup" is pure scheduling noise — asserting on it
        // would be vacuous at best and flaky at worst. Shout so CI
        // logs show the gate did NOT run, and keep the byte-identity
        // verdict above as the enforced contract.
        std::cerr
            << "**********************************************************\n"
            << "NOTICE: host has " << hardwareJobs()
            << " hardware thread(s) — the >= 2x parallel speedup\n"
            << "target CANNOT be validated here and was SKIPPED.\n"
            << "Byte-identity across jobs/workers/lanes tiers was\n"
            << "still enforced. Re-run on a multi-core host to check\n"
            << "scaling.\n"
            << "**********************************************************\n";
    } else if (hardwareJobs() >= 4 && jobs >= 4) {
        if (speedup < 2.0) {
            std::cerr << "FAIL: speedup " << speedup
                      << "x below the 2x target with " << jobs
                      << " workers on a " << hardwareJobs()
                      << "-thread host\n";
            return 1;
        }
        std::cout << "speedup " << speedup << "x with " << jobs
                  << " workers (target >= 2x): ok\n";
    } else {
        std::cout << "speedup " << speedup << "x (host has only "
                  << hardwareJobs()
                  << " hardware threads; >= 2x target needs >= 4 — "
                     "identity check still enforced)\n";
    }
    return 0;
}
