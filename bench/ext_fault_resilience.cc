/**
 * @file
 * Extension experiment (robustness): governor resilience under an
 * injected fault model.
 *
 * The paper evaluates DORA on a clean signal path; a deployed daemon
 * does not get one. This bench replays a fixed workload set under
 * deterministic fault schedules — sensor dropout, stuck sensors,
 * noisy sensors, rejected DVFS writes, and ambient thermal
 * emergencies — for both the stock interactive governor and hardened
 * DORA, each wrapped in the thermal-throttle shim. For every schedule
 * it reports energy efficiency relative to the fault-free baseline,
 * deadline misses, throttle-ceiling violations, and the injected
 * fault tally.
 *
 * Self-checked acceptance gates (exit status 1 on failure):
 *   - every run completes (no crash, no abort) under every schedule;
 *   - hardened DORA never runs above the throttle ceiling while the
 *     die is at or past the critical temperature (gated schedules);
 *   - hardened DORA's deadline-miss rate across the gated fault
 *     schedules stays within kDoraMissBound.
 * The "combined" schedule (everything at once) is report-only.
 *
 * A final section demonstrates model-fault tolerance: truncated,
 * NaN-poisoned, and garbage bundle files are loaded and must yield a
 * not-ready bundle (and a still-functional degraded governor), never
 * a process abort.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "dora/predictive_governor.hh"
#include "fault/fault_injector.hh"
#include "fault/thermal_throttle.hh"
#include "runner/experiment.hh"

using namespace dora;

namespace
{

/** Miss-rate acceptance bound for hardened DORA under faults. */
constexpr double kDoraMissBound = 0.5;

struct ScheduleCase
{
    const char *name;
    FaultSchedule schedule;
    bool gated;  //!< participates in the acceptance checks
};

/** Per (schedule, governor) accumulation across the workload set. */
struct Tally
{
    double ppwSum = 0.0;
    size_t runs = 0;
    size_t misses = 0;
    uint64_t ceilingViolations = 0;
    uint64_t freqSwitches = 0;
    FaultCounters faults;
};

void
accumulate(FaultCounters &into, const FaultCounters &c)
{
    into.sensorDrops += c.sensorDrops;
    into.sensorStuckIntervals += c.sensorStuckIntervals;
    into.sensorNoisy += c.sensorNoisy;
    into.staleFallbacks += c.staleFallbacks;
    into.actuatorRejects += c.actuatorRejects;
    into.actuatorRetries += c.actuatorRetries;
    into.actuatorGiveUps += c.actuatorGiveUps;
    into.thermalSpikes += c.thermalSpikes;
}

/**
 * Decisions where the granted OPP sat above the throttle ceiling while
 * the true die temperature was at or past critical. The shim acts on
 * the same decision that observes the crossing, so a correctly wired
 * stack produces zero.
 */
uint64_t
ceilingViolations(const RunMeasurement &m, const FreqTable &table,
                  const ThermalThrottleConfig &cfg)
{
    uint64_t violations = 0;
    for (const auto &d : m.decisions)
        if (d.temperatureC >= cfg.criticalC &&
            table.opp(d.freqIndex).coreMhz > cfg.ceilingMhz + 1e-9)
            ++violations;
    return violations;
}

/** tryLoad a deliberately bad bundle file; true when safely rejected. */
bool
rejectedSafely(const std::string &label, const std::string &contents)
{
    const std::string path = "ext_fault_bad_bundle.tmp";
    {
        std::ofstream out(path);
        out << contents;
    }
    const ModelBundle loaded = ModelBundle::tryLoad(path);
    std::remove(path.c_str());
    std::cout << "  " << label << ": "
              << (loaded.ready() ? "ACCEPTED (bad!)" : "rejected, not "
                                                       "ready")
              << "\n";
    return !loaded.ready();
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    auto bundle = benchBundle();
    ExperimentRunner runner;
    const FreqTable &table = runner.freqTable();
    const ThermalThrottleConfig throttle_cfg;

    const std::vector<WorkloadSpec> workloads = {
        WorkloadSets::combo(PageCorpus::byName("amazon"),
                            MemIntensity::Medium),
        WorkloadSets::combo(PageCorpus::byName("espn"),
                            MemIntensity::Medium),
        WorkloadSets::combo(PageCorpus::byName("msn"),
                            MemIntensity::Low),
        WorkloadSets::combo(PageCorpus::byName("imdb"),
                            MemIntensity::High),
    };

    const uint64_t seed = 0xD0ADull;
    const std::vector<ScheduleCase> cases = {
        {"fault-free", FaultSchedule::none(), true},
        {"sensor-dropout", FaultSchedule::sensorDropout(seed), true},
        {"stuck-sensor", FaultSchedule::stuckSensor(seed), true},
        {"noisy-sensor", FaultSchedule::noisySensor(seed), true},
        {"actuator-reject", FaultSchedule::actuatorReject(seed), true},
        {"thermal-emergency", FaultSchedule::thermalEmergency(seed),
         true},
        {"combined", FaultSchedule::combined(seed), false},
    };
    const std::vector<std::string> governors = {"interactive", "DORA"};

    // results[case][governor]
    std::vector<std::vector<Tally>> results(
        cases.size(), std::vector<Tally>(governors.size()));

    for (size_t ci = 0; ci < cases.size(); ++ci) {
        FaultInjector injector(cases[ci].schedule);
        runner.setFaultInjector(&injector);
        for (size_t gi = 0; gi < governors.size(); ++gi) {
            Tally &tally = results[ci][gi];
            for (const auto &workload : workloads) {
                InteractiveGovernor interactive;
                PredictiveGovernor dora = makeDora(bundle);
                Governor &inner =
                    gi == 0 ? static_cast<Governor &>(interactive)
                            : static_cast<Governor &>(dora);
                ThermalThrottleShim shim(inner, throttle_cfg);
                const RunMeasurement m = runner.run(workload, shim);
                tally.ppwSum += m.ppw;
                ++tally.runs;
                if (!m.meetsDeadline)
                    ++tally.misses;
                tally.ceilingViolations +=
                    ceilingViolations(m, table, throttle_cfg);
                tally.freqSwitches += m.freqSwitches;
                // The injector resets (and zeroes its counters) at the
                // start of every run; harvest between runs.
                accumulate(tally.faults, injector.counters());
            }
        }
    }
    runner.setFaultInjector(nullptr);

    TextTable t({"schedule", "governor", "mean PPW", "vs clean %",
                 "misses", "ceil viol", "switches"});
    for (size_t ci = 0; ci < cases.size(); ++ci) {
        for (size_t gi = 0; gi < governors.size(); ++gi) {
            const Tally &tally = results[ci][gi];
            const Tally &clean = results[0][gi];
            const double mean_ppw =
                tally.ppwSum / static_cast<double>(tally.runs);
            const double clean_ppw =
                clean.ppwSum / static_cast<double>(clean.runs);
            t.beginRow();
            t.add(std::string(cases[ci].name) +
                  (cases[ci].gated ? "" : " (report-only)"));
            t.add(governors[gi]);
            t.add(mean_ppw, 4);
            t.add(100.0 * (mean_ppw / clean_ppw - 1.0), 1);
            t.add(static_cast<int64_t>(tally.misses));
            t.add(static_cast<int64_t>(tally.ceilingViolations));
            t.add(static_cast<int64_t>(tally.freqSwitches));
        }
    }
    emitTable("ext_fault_resilience",
              "Governor resilience under injected faults (4 workloads "
              "per cell, deadline 3.0 s)",
              t);

    TextTable f({"schedule", "governor", "drops", "stuck", "noisy",
                 "stale", "act.rej", "retries", "giveups", "spikes"});
    for (size_t ci = 1; ci < cases.size(); ++ci) {
        for (size_t gi = 0; gi < governors.size(); ++gi) {
            const FaultCounters &c = results[ci][gi].faults;
            f.beginRow();
            f.add(std::string(cases[ci].name));
            f.add(governors[gi]);
            f.add(static_cast<int64_t>(c.sensorDrops));
            f.add(static_cast<int64_t>(c.sensorStuckIntervals));
            f.add(static_cast<int64_t>(c.sensorNoisy));
            f.add(static_cast<int64_t>(c.staleFallbacks));
            f.add(static_cast<int64_t>(c.actuatorRejects));
            f.add(static_cast<int64_t>(c.actuatorRetries));
            f.add(static_cast<int64_t>(c.actuatorGiveUps));
            f.add(static_cast<int64_t>(c.thermalSpikes));
        }
    }
    emitTable("ext_fault_resilience_counters", "injected fault tally",
              f);

    printBanner(std::cout, "Model-fault tolerance (tryLoad must reject, "
                           "never abort)");
    const std::string good = bundle->serialize();
    bool model_ok = true;
    model_ok &= rejectedSafely("truncated body",
                               good.substr(0, good.size() / 2));
    {
        // Poison one coefficient after the valid header.
        std::string nan_blob = good;
        const size_t pos = nan_blob.find("coeffs ");
        if (pos != std::string::npos) {
            const size_t val = pos + 7;
            const size_t end = nan_blob.find(' ', val);
            nan_blob.replace(val, end - val, "nan");
        }
        model_ok &= rejectedSafely("NaN coefficient", nan_blob);
    }
    model_ok &= rejectedSafely("garbage", "not a bundle at all\n");
    {
        // A degraded governor on a never-trained bundle must still
        // produce in-range decisions (interactive fallback).
        auto empty = std::make_shared<ModelBundle>();
        PredictiveGovernor degraded = makeDora(empty);
        const RunMeasurement m = runner.run(workloads[2], degraded);
        std::cout << "  degraded DORA (untrained bundle): load "
                  << formatFixed(m.loadTimeSec, 3) << " s, deadline "
                  << (m.meetsDeadline ? "met" : "missed")
                  << " — completed without abort\n";
    }

    // Acceptance gates.
    size_t dora_fault_runs = 0, dora_fault_misses = 0;
    uint64_t dora_violations = 0;
    for (size_t ci = 1; ci < cases.size(); ++ci) {
        if (!cases[ci].gated)
            continue;
        dora_fault_runs += results[ci][1].runs;
        dora_fault_misses += results[ci][1].misses;
        dora_violations += results[ci][1].ceilingViolations;
    }
    const double miss_rate = static_cast<double>(dora_fault_misses) /
        static_cast<double>(dora_fault_runs);
    const bool pass = model_ok && dora_violations == 0 &&
        miss_rate <= kDoraMissBound;
    std::cout << "\nhardened DORA across gated fault schedules: "
              << dora_fault_misses << "/" << dora_fault_runs
              << " deadline misses (rate "
              << formatFixed(100.0 * miss_rate, 1) << "%, bound "
              << formatFixed(100.0 * kDoraMissBound, 0) << "%), "
              << dora_violations << " throttle-ceiling violations\n";
    std::cout << (pass ? "PASS" : "FAIL")
              << ": crash-free completion, ceiling intact, miss rate "
                 "within bound, corrupt bundles rejected\n";
    return pass ? 0 : 1;
}
