/**
 * @file
 * Figure 7: headline comparison across all 54 workload combinations.
 *
 * (a) Mean energy efficiency (PPW) normalized to the interactive
 *     baseline, for performance / DL / EE / DORA, split into
 *     Webpage-Inclusive, Webpage-Neutral, and All (paper: DORA +16%
 *     overall, +18% inclusive, +10% neutral; EE +19% but with QoS
 *     violations).
 * (b) Load-time distribution per governor (paper: EE misses the 3 s
 *     target for ~21% of workloads; DORA misses only the infeasible
 *     ~18%, where even flat out cannot make the deadline).
 *
 * Also reports Offline_opt on ten workloads (paper Section V-C): DORA
 * matches the statically optimal single frequency.
 */

#include <iostream>

#include "bench_util.hh"
#include "harness/comparison.hh"
#include "stats/cdf.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    const unsigned jobs = benchJobs(argc, argv);
    const unsigned workers = benchWorkers(argc, argv);
    auto bundle = benchBundle();
    ComparisonHarness harness(ExperimentConfig{}, bundle, jobs);
    harness.setLanes(benchLanes(argc, argv));
    if (workers > 0) {
        // Process tier: campaigns shard across worker subprocesses and
        // journal completed cells, so an interrupted/crashed bench run
        // resumes instead of restarting (results stay bit-identical).
        harness.setWorkers(workers);
        harness.setProcJournalStem("fig07.journal");
    }

    const auto workloads = WorkloadSets::paperCombinations();
    std::cerr << "[bench] running " << workloads.size()
              << " workloads x 5 governors...\n";
    const auto records = harness.runAll(workloads);

    std::vector<ComparisonRecord> inclusive, neutral;
    for (const auto &r : records)
        (r.workload.isWebpageInclusive() ? inclusive : neutral)
            .push_back(r);

    // --- (a) normalized PPW summary. ---
    // Censored runs (page never finished inside the wall) are counted,
    // never averaged: their PPW of 0 is a flag, and folding it into the
    // mean would rank a governor that fails a page above one that
    // finishes late.
    TextTable a({"governor", "inclusive", "neutral", "all",
                 "deadline met %", "censored"});
    for (const auto &name : ComparisonHarness::paperGovernors()) {
        a.beginRow();
        a.add(name);
        a.add(meanNormalizedPpw(inclusive, name), 3);
        a.add(meanNormalizedPpw(neutral, name), 3);
        a.add(meanNormalizedPpw(records, name), 3);
        a.add(100.0 * deadlineMeetRate(records, name), 1);
        a.add(std::to_string(censoredCount(records, name)));
    }
    emitTable("fig07a", "Fig. 7(a) — mean PPW normalized to "
                        "interactive", a);

    // --- (b) load-time distribution per governor. ---
    // The CDF covers finished loads only; a censored load time is the
    // window length (a lower bound), which would bias every quantile
    // downward if pushed.
    TextTable b({"governor", "p10 s", "p50 s", "p90 s", "max s",
                 "frac <= 3 s", "censored"});
    for (const auto &name : ComparisonHarness::paperGovernors()) {
        EmpiricalCdf cdf;
        size_t censored = 0;
        for (const auto &r : records) {
            const RunMeasurement &m = r.measurement(name);
            if (m.censored)
                ++censored;
            else
                cdf.push(m.loadTimeSec);
        }
        cdf.seal();
        b.beginRow();
        b.add(name);
        b.add(cdf.quantile(0.10), 3);
        b.add(cdf.quantile(0.50), 3);
        b.add(cdf.quantile(0.90), 3);
        b.add(cdf.max(), 3);
        b.add(cdf.fractionAtOrBelow(3.0), 3);
        b.add(std::to_string(censored));
    }
    emitTable("fig07b", "Fig. 7(b) — load-time distribution "
                        "(finished loads; censored counted)", b);

    // --- Offline_opt on ten spread-out workloads. ---
    // The workload x frequency grid is fanned out jointly, so the
    // sweep parallelizes beyond the OPP count of a single workload.
    std::vector<const ComparisonRecord *> picked;
    std::vector<WorkloadSpec> opt_workloads;
    for (size_t i = 0; i < records.size(); i += 5) {
        picked.push_back(&records[i]);
        opt_workloads.push_back(records[i].workload);
    }
    const auto opts = harness.offlineOptMany(opt_workloads);

    TextTable c({"workload", "offline_opt PPW/interactive",
                 "DORA PPW/interactive"});
    double opt_sum = 0.0, dora_sum = 0.0;
    int n = 0;
    for (size_t i = 0; i < picked.size(); ++i) {
        const auto &r = *picked[i];
        const RunMeasurement &opt = opts[i];
        const double base = r.measurement("interactive").ppw;
        c.beginRow();
        c.add(r.workload.label());
        if (base <= 0.0 || opt.censored ||
            r.measurement("DORA").censored) {
            // Censored somewhere in the triple: no PPW ratio exists.
            c.add("censored");
            c.add("censored");
            continue;
        }
        c.add(opt.ppw / base, 3);
        c.add(r.normalizedPpw("DORA"), 3);
        opt_sum += opt.ppw / base;
        dora_sum += r.normalizedPpw("DORA");
        ++n;
    }
    emitTable("fig07_offline", "Offline_opt vs DORA (10 workloads)", c);
    std::cout << "mean: offline_opt "
              << formatFixed(n ? opt_sum / n : 0.0, 3) << ", DORA "
              << formatFixed(n ? dora_sum / n : 0.0, 3) << "\n";

    std::cout << "\nExpected shape: DORA in the +10..20% band over "
                 "interactive; EE slightly higher PPW but misses "
                 "deadlines; DL meets deadlines at lower PPW; DORA "
                 "tracks offline_opt.\n";
    return 0;
}
