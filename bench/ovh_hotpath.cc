/**
 * @file
 * Micro-benchmarks of the per-tick simulation hot path.
 *
 * Guards the memory-hierarchy optimizations (structure-of-arrays cache
 * probing, O(1) occupancy counters, allocation-free tick scratch
 * buffers): google-benchmark timings for the cache access path and the
 * full Simulator::step(), plus a machine-readable HOTPATH_TICKS_PER_SEC
 * line that scripts/run_benches.sh records so tick-rate regressions are
 * visible across checkouts. Needs no trained models.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>

#include "common/exact_ticks.hh"
#include "common/rng.hh"
#include "governor/governor.hh"
#include "mem/cache_model.hh"
#include "soc/freq_table.hh"
#include "obs/trace.hh"
#include "power/device_power.hh"
#include "runner/workload.hh"
#include "sim/lane_batch.hh"
#include "sim/simulator.hh"
#include "workloads/corun_task.hh"

using namespace dora;

namespace
{

/** Cheap deterministic address stream (xorshift64). */
struct AddrGen
{
    uint64_t state = 0x9E3779B97F4A7C15ull;

    uint64_t next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state;
    }
};

/** The shared-L2 geometry of the modeled MSM8974. */
CacheConfig
l2Config()
{
    CacheConfig c;
    c.name = "bench-l2";
    c.sizeBytes = 2 * 1024 * 1024;
    c.associativity = 8;
    c.lineBytes = 64;
    c.numRequestors = 4;
    return c;
}

void
BM_CacheAccessLru(benchmark::State &state)
{
    CacheModel cache(l2Config());
    AddrGen gen;
    // Working set of 2x the cache so both hits and LRU victim scans
    // are exercised.
    const uint64_t lines = 2 * (2 * 1024 * 1024 / 64);
    uint32_t requestor = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(gen.next() % lines, requestor));
        requestor = (requestor + 1) & 3;
    }
}
BENCHMARK(BM_CacheAccessLru);

void
BM_CacheOccupancyCounter(benchmark::State &state)
{
    CacheModel cache(l2Config());
    AddrGen gen;
    const uint64_t lines = 2 * (2 * 1024 * 1024 / 64);
    for (int i = 0; i < 100000; ++i)
        cache.access(gen.next() % lines, i & 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.occupancyFraction(1));
}
BENCHMARK(BM_CacheOccupancyCounter);

void
BM_CacheOccupancyScan(benchmark::State &state)
{
    CacheModel cache(l2Config());
    AddrGen gen;
    const uint64_t lines = 2 * (2 * 1024 * 1024 / 64);
    for (int i = 0; i < 100000; ++i)
        cache.access(gen.next() % lines, i & 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.occupancyFractionScan(1));
}
BENCHMARK(BM_CacheOccupancyScan);

/** A simulator with a memory-heavy co-runner bound to core 2. */
struct SimFixture
{
    Soc soc = Soc::nexus5();
    DevicePower power{DevicePowerConfig{}, LeakageModel::msm8974Truth()};
    Simulator sim;
    std::unique_ptr<CorunTask> corun;

    SimFixture() : sim(soc, power, SimConfig{})
    {
        for (const auto &w : WorkloadSets::paperCombinations()) {
            if (w.kernel) {
                corun = std::make_unique<CorunTask>(*w.kernel, 0);
                break;
            }
        }
        if (corun)
            sim.bindTask(2, corun.get());
    }
};

void
BM_SimulatorStep(benchmark::State &state)
{
    SimFixture f;
    for (auto _ : state)
        benchmark::DoNotOptimize(&f.sim.step());
}
BENCHMARK(BM_SimulatorStep);

/** Sustained tick rate over a fresh 20k-tick run (20 simulated s). */
void
printTickRate()
{
    SimFixture f;
    constexpr int kTicks = 20000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kTicks; ++i)
        f.sim.step();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count();
    std::cout << "HOTPATH_MODE "
              << (exactTicksMode() ? "exact" : "adaptive") << "\n"
              << "HOTPATH_TICKS_PER_SEC "
              << static_cast<uint64_t>(kTicks / sec) << "\n";
}

/**
 * Aggregate lane-ticks/sec of a whole LaneBatchSimulator campaign at
 * @p lanes kernel-only runs per batch: total simulated ticks across
 * all lanes divided by the wall-clock of runAll(). lanes=1 is the
 * legacy per-run path, so the N>1 rows show how much memory-level
 * parallelism the cross-lane interleaving recovers per thread.
 */
void
printLaneRate(unsigned lanes)
{
    // Every lane runs the SAME memory-heavy kernel pinned at the top
    // OPP (the offline-opt / training shape), so the N>1 rows differ
    // from N=1 only by the cross-lane interleaving, not by workload
    // mix or governor trajectory.
    const ExperimentConfig config;
    const KernelSpec &kernel =
        KernelCatalog::representative(MemIntensity::High);
    const size_t top = FreqTable::msm8974().maxIndex();

    std::vector<std::unique_ptr<CorunTask>> coruns;
    std::vector<std::unique_ptr<Governor>> governors;
    std::vector<RunContext::Params> specs;
    for (unsigned i = 0; i < lanes; ++i) {
        const WorkloadSpec spec = WorkloadSets::kernelOnly(kernel);
        const uint64_t salt =
            // dora:stream-tag-shared(same workload, same corun stream)
            hashLabel("corun:" + spec.label()) % 4096;
        coruns.push_back(
            std::make_unique<CorunTask>(*spec.kernel, salt));
        governors.push_back(std::make_unique<FixedGovernor>(top));
        RunContext::Params p;
        p.corun = coruns.back().get();
        p.label = spec.label();
        p.governor = governors.back().get();
        p.initialFreq = top;
        specs.push_back(std::move(p));
    }
    // Equal work per timed window — every rep simulates at least 8
    // runs' worth of ticks regardless of lane count, so small-N and
    // large-N rows see comparably long exposure to host contention —
    // and best of three reps, since contention noise is one-sided
    // (it only ever slows a window down).
    const unsigned rounds = (8 + lanes - 1) / lanes;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        double ticks = 0.0, sec = 0.0;
        for (unsigned round = 0; round < rounds; ++round) {
            LaneBatchSimulator batch(config, specs);
            const auto t0 = std::chrono::steady_clock::now();
            batch.runAll();
            const auto t1 = std::chrono::steady_clock::now();
            sec += std::chrono::duration<double>(t1 - t0).count();
            for (size_t i = 0; i < batch.size(); ++i)
                ticks += batch.lane(i).sim().nowSec() / config.dtSec;
        }
        best = std::max(best, ticks / sec);
    }
    std::cout << "HOTPATH_LANE_TICKS_PER_SEC lanes=" << lanes << " "
              << static_cast<uint64_t>(best) << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Before benchmark::Initialize so --trace and --exact-ticks are
    // seen pre-filtering (ObsGuard parses both).
    ObsGuard obs(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTickRate();
    for (unsigned lanes : {1u, 4u, 8u, 16u})
        printLaneRate(lanes);
    return 0;
}
