/**
 * @file
 * Figure 9: interaction of page complexity with interference
 * intensity, detailed for a low-complexity page (Amazon) and a
 * high-complexity page (IMDB).
 *
 * Paper shape: Amazon's fD is very low, its fE mid-to-high, so DORA
 * behaves like EE and wins big PPW (up to ~27%); IMDB's fD is near the
 * top, so DORA behaves like DL with modest gains (1-10%); both fD and
 * load time shift upward as co-runner intensity grows.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "harness/comparison.hh"

using namespace dora;

namespace
{

void
detail(ComparisonHarness &harness, const char *page_name)
{
    const WebPage &page = PageCorpus::byName(page_name);
    TextTable t({"intensity", "governor", "mean GHz", "load time s",
                 "PPW vs interactive", "meets 3s"});
    for (MemIntensity cls : {MemIntensity::Low, MemIntensity::Medium,
                             MemIntensity::High}) {
        const WorkloadSpec w = WorkloadSets::combo(page, cls);
        const RunMeasurement base = harness.runOne(w, "interactive");
        for (const char *gov : {"performance", "DL", "EE", "DORA"}) {
            const RunMeasurement m = harness.runOne(w, gov);
            t.beginRow();
            t.add(std::string(memIntensityName(cls)));
            t.add(gov);
            t.add(m.meanFreqMhz / 1000.0, 2);
            t.add(m.loadTimeSec, 3);
            if (m.censored || base.censored || base.ppw <= 0.0)
                t.add("censored");
            else
                t.add(m.ppw / base.ppw, 3);
            t.add(std::string(m.meetsDeadline ? "yes" : "no"));
        }
    }
    emitTable(std::string("fig09_") + page_name,
              std::string("Fig. 9 — ") + page_name +
                  " under low/medium/high interference",
              t);
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    auto bundle = benchBundle();
    ComparisonHarness harness(ExperimentConfig{}, bundle);
    detail(harness, "amazon");
    detail(harness, "imdb");
    std::cout << "\nExpected shape: Amazon — DORA matches EE's chosen "
                 "frequency and gains large PPW; IMDB — DORA matches "
                 "DL near the top OPP with modest gains; fD creeps up "
                 "with intensity for both.\n";
    return 0;
}
