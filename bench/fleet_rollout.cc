/**
 * @file
 * Self-checking fleet rollout study: the paper's governor comparison
 * evaluated the way policy actually ships — across a heterogeneous
 * population of simulated devices, not one paper-fidelity phone.
 *
 * Runs a FleetSpec campaign (default 10k devices; trim with
 * `--fleet-devices N` — CI uses 120) comparing paper-DORA against
 * ondemand and the max-frequency governor, and self-checks the fleet
 * engine's contracts:
 *
 *   1. the aggregate report is BYTE-IDENTICAL across the tier matrix
 *      (jobs, workers, lanes) in {(1,0,1), (4,0,1), (1,2,4),
 *      (4,2,8)} (fleetReportText renders every double as a hex
 *      float, so any single-ULP divergence fails);
 *   2. a campaign SIGKILLed after its first aggregate checkpoint
 *      landed resumes — checkpoint restore plus journal tail replay —
 *      to the same bytes;
 *   3. cohort device counts conserve the population;
 *   4. the whole bench stays under a peak-RSS ceiling
 *      (`--fleet-rss-ceiling-mb`, default 768): streaming aggregation
 *      is O(shards), so the footprint must not scale with devices.
 *
 * `--fleet-rss-smoke N` instead runs ONE process-tier campaign of N
 * devices and applies only the RSS ceiling — the 10^5-device
 * bounded-memory smoke, kept out of the default self-check matrix
 * because its wall-clock is hours, not minutes.
 *
 * `--fleet-governors a,b,c` substitutes model-free governors so the
 * check runs with no trained bundle (the default DORA arm trains or
 * loads the cached one). Machine-readable FLEET lines are consumed by
 * scripts/run_benches.sh.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_util.hh"
#include "fleet/campaign.hh"

using namespace dora;

namespace fs = std::filesystem;

namespace
{

/** Governors that need a trained ModelBundle to run. */
bool
needsModels(const std::string &name)
{
    return name == "DORA" || name == "DORA_no_lkg" || name == "EE" ||
        name == "DL";
}

std::vector<std::string>
splitGovernors(const std::string &text)
{
    std::vector<std::string> names;
    std::string current;
    for (char c : text) {
        if (c == ',') {
            if (!current.empty())
                names.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        names.push_back(current);
    return names;
}

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
clearJournals(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (!fs::exists(dir))
        return;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind(prefix, 0) == 0)
            fs::remove(entry.path());
}

/** Path of the first `<stem>.*<suffix>` artifact, or empty. */
std::string
findArtifact(const std::string &stem, const std::string &suffix)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (fs::exists(dir))
        for (const auto &entry : fs::directory_iterator(dir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind(prefix, 0) == 0 && name.size() > suffix.size() &&
                name.compare(name.size() - suffix.size(), suffix.size(),
                             suffix) == 0)
                return entry.path().string();
        }
    return "";
}

/** Peak resident set of this process so far, in MB (Linux: KiB). */
double
peakRssMb()
{
    struct rusage ru
    {
    };
    ::getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);

    FleetCampaignConfig base;
    base.spec.devices = 10000;
    base.spec.faultIncidence = 0.05;
    base.governors = {"DORA", "ondemand", "performance"};
    if (const auto v = cliFlagValue(argc, argv, "--fleet-devices"))
        base.spec.devices = static_cast<size_t>(
            cliParseInt(*v, "--fleet-devices", 1, 10000000));
    if (const auto v = cliFlagValue(argc, argv, "--fleet-seed"))
        base.spec.seed = static_cast<uint64_t>(
            cliParseInt(*v, "--fleet-seed", 0, 1000000000));
    if (const auto v = cliFlagValue(argc, argv, "--fleet-governors")) {
        base.governors = splitGovernors(*v);
        if (base.governors.empty())
            fatal("--fleet-governors: empty governor list");
    }
    // A short load wall keeps huge populations affordable (a censored
    // page is still a deterministic measurement); the paper protocol
    // is the 15 s default.
    if (const auto v = cliFlagValue(argc, argv, "--fleet-max-load"))
        base.base.maxLoadSec =
            cliParseDouble(*v, "--fleet-max-load", 0.1, 60.0);

    double rss_ceiling_mb = 768.0;
    if (const auto v =
            cliFlagValue(argc, argv, "--fleet-rss-ceiling-mb"))
        rss_ceiling_mb =
            cliParseDouble(*v, "--fleet-rss-ceiling-mb", 1.0, 65536.0);

    if (std::any_of(base.governors.begin(), base.governors.end(),
                    needsModels))
        base.models = benchBundle();

    // --- Bounded-memory smoke: one process-tier campaign, RSS gate
    // only. Streaming aggregation keeps supervisor memory O(shards),
    // so the ceiling must hold at any device count.
    if (const auto v = cliFlagValue(argc, argv, "--fleet-rss-smoke")) {
        FleetCampaignConfig config = base;
        config.spec.devices = static_cast<size_t>(
            cliParseInt(*v, "--fleet-rss-smoke", 1, 10000000));
        config.jobs = 1;
        config.workers = 2;
        config.lanes = 4;
        FleetEngine engine(config);
        const auto smoke_t0 = std::chrono::steady_clock::now();
        const FleetReport report = engine.run();
        const double sec = wallSeconds(smoke_t0);
        const double rss = peakRssMb();
        const bool ok =
            rss <= rss_ceiling_mb && report.devices == config.spec.devices;
        std::printf("FLEET_SMOKE devices=%zu wall=%.1f "
                    "devices_per_sec=%.2f peak_rss_mb=%.1f "
                    "rss_ceiling_mb=%.1f ok=%d\n",
                    report.devices, sec,
                    sec > 0.0
                        ? static_cast<double>(report.devices) / sec
                        : 0.0,
                    rss, rss_ceiling_mb, ok ? 1 : 0);
        if (!ok) {
            std::cerr << "FAIL: RSS smoke exceeded the ceiling or "
                         "dropped devices\n";
            return 1;
        }
        return 0;
    }

    const size_t cells =
        base.spec.devices * base.governors.size();
    std::cerr << "[bench] fleet rollout: " << base.spec.devices
              << " devices x " << base.governors.size()
              << " governors = " << cells << " cells\n";

    // --- Reference pass: serial, in-process, one lane. ---
    FleetCampaignConfig ref_config = base;
    ref_config.jobs = 1;
    ref_config.workers = 0;
    ref_config.lanes = 1;
    FleetEngine ref_engine(ref_config);
    auto t0 = std::chrono::steady_clock::now();
    const FleetReport ref = ref_engine.run();
    const double ref_sec = wallSeconds(t0);
    const std::string ref_text = fleetReportText(ref);
    const double devices_per_sec = ref_sec > 0.0
        ? static_cast<double>(base.spec.devices) / ref_sec
        : 0.0;
    std::printf("FLEET jobs=1 workers=0 lanes=1 wall=%.3f "
                "devices_per_sec=%.2f\n",
                ref_sec, devices_per_sec);
    std::cout << ref_text;

    // --- 1. byte-identity across the tier matrix. ---
    bool identical = true;
    struct Combo
    {
        unsigned jobs, workers, lanes;
    };
    const Combo combos[] = {{4, 0, 1}, {1, 2, 4}, {4, 2, 8}};
    for (const Combo &c : combos) {
        FleetCampaignConfig config = base;
        config.jobs = c.jobs;
        config.workers = c.workers;
        config.lanes = c.lanes;
        FleetEngine engine(config);
        t0 = std::chrono::steady_clock::now();
        const FleetReport report = engine.run();
        std::printf("FLEET jobs=%u workers=%u lanes=%u wall=%.3f\n",
                    c.jobs, c.workers, c.lanes, wallSeconds(t0));
        if (fleetReportText(report) != ref_text ||
            report.populationDigest != ref.populationDigest) {
            identical = false;
            std::cerr << "MISMATCH at jobs=" << c.jobs
                      << " workers=" << c.workers
                      << " lanes=" << c.lanes << "\n";
        }
    }

    // --- 2. SIGKILL mid-campaign, then journal resume. ---
    const std::string stem =
        (fs::temp_directory_path() / "fleet_rollout_resume").string();
    clearJournals(stem);
    FleetCampaignConfig resume_config = base;
    resume_config.jobs = 1;
    resume_config.workers = 2;
    resume_config.lanes = 4;
    resume_config.journalStem = stem;

    const pid_t child = ::fork();
    if (child < 0)
        fatal("fleet_rollout: fork failed");
    if (child == 0) {
        FleetEngine engine(resume_config);
        engine.run();
        ::_exit(0);
    }
    // Kill once an aggregate checkpoint landed: the .ckpt file proves
    // at least one chunk was absorbed into the campaign prefix, so the
    // resume exercises checkpoint restore + journal tail replay.
    // (Polling the journal's size instead races with the checkpoint's
    // high-water-mark truncation, which shrinks it back to its
    // header.) A fast campaign may finish before the poll catches it —
    // then the rerun below still validates an idempotent resume.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(30);
    bool child_exited = false;
    int status = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        if (::waitpid(child, &status, WNOHANG) == child) {
            child_exited = true;
            break;
        }
        std::error_code ec;
        const std::string ckpt = findArtifact(stem, ".ckpt");
        if (!ckpt.empty() && fs::file_size(ckpt, ec) > 0 && !ec)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!child_exited) {
        ::kill(child, SIGKILL);
        ::waitpid(child, &status, 0);
    } else {
        std::cerr << "NOTE: campaign finished before the kill window; "
                     "resume leg degrades to an idempotent rerun\n";
    }
    if (findArtifact(stem, ".ckpt").empty() &&
        findArtifact(stem, ".jrn").empty())
        fatal("fleet_rollout: campaign left no checkpoint or journal");

    FleetEngine resumed_engine(resume_config);
    const FleetReport resumed = resumed_engine.run();
    const bool resume_identical =
        fleetReportText(resumed) == ref_text &&
        resumed.populationDigest == ref.populationDigest;
    if (!resume_identical)
        std::cerr << "MISMATCH after SIGKILL + journal resume\n";
    clearJournals(stem);

    // --- 3. cohort counts conserve the population. ---
    size_t cohort_devices = 0;
    for (const FleetCohortStats &c : ref.cohorts)
        cohort_devices += c.devices;
    const bool cohorts_ok = cohort_devices == ref.devices &&
        ref.cohorts.size() <= fleetCohortCount();
    if (!cohorts_ok)
        std::cerr << "FAIL: cohorts cover " << cohort_devices
                  << " devices, population is " << ref.devices << "\n";

    // --- 4. fixed-memory aggregation: the whole matrix (4 campaigns
    // + resume) must fit under the ceiling regardless of device count.
    const double rss_mb = peakRssMb();
    const bool rss_ok = rss_mb <= rss_ceiling_mb;
    if (!rss_ok)
        std::cerr << "FAIL: peak RSS " << rss_mb << " MB exceeds the "
                  << rss_ceiling_mb << " MB ceiling\n";

    std::printf("FLEET identical=%d resume_identical=%d cohorts_ok=%d "
                "peak_rss_mb=%.1f rss_ok=%d\n",
                identical ? 1 : 0, resume_identical ? 1 : 0,
                cohorts_ok ? 1 : 0, rss_mb, rss_ok ? 1 : 0);

    if (!identical || !resume_identical || !cohorts_ok || !rss_ok) {
        std::cerr << "FAIL: fleet campaign violated the "
                     "identity/memory contract\n";
        return 1;
    }
    std::cout << "fleet rollout bit-identical across " << cells
              << " cells x 4 tier combinations + checkpoint resume, "
              << "peak RSS " << static_cast<int>(rss_mb) << " MB\n";
    return 0;
}
