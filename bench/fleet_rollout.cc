/**
 * @file
 * Self-checking fleet rollout study: the paper's governor comparison
 * evaluated the way policy actually ships — across a heterogeneous
 * population of simulated devices, not one paper-fidelity phone.
 *
 * Runs a FleetSpec campaign (default 10k devices; trim with
 * `--fleet-devices N` — CI uses 200) comparing paper-DORA against
 * ondemand and the max-frequency governor, and self-checks the fleet
 * engine's contracts:
 *
 *   1. the aggregate report is BYTE-IDENTICAL across the tier matrix
 *      (jobs, workers, lanes) in {(1,0,1), (4,0,1), (1,2,4),
 *      (4,2,8)} (fleetReportText renders every double as a hex
 *      float, so any single-ULP divergence fails);
 *   2. a campaign SIGKILLed mid-flight resumes from its journal to
 *      the same bytes;
 *   3. cohort device counts conserve the population.
 *
 * `--fleet-governors a,b,c` substitutes model-free governors so the
 * check runs with no trained bundle (the default DORA arm trains or
 * loads the cached one). Machine-readable FLEET lines are consumed by
 * scripts/run_benches.sh.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench_util.hh"
#include "fleet/campaign.hh"

using namespace dora;

namespace fs = std::filesystem;

namespace
{

/** Governors that need a trained ModelBundle to run. */
bool
needsModels(const std::string &name)
{
    return name == "DORA" || name == "DORA_no_lkg" || name == "EE" ||
        name == "DL";
}

std::vector<std::string>
splitGovernors(const std::string &text)
{
    std::vector<std::string> names;
    std::string current;
    for (char c : text) {
        if (c == ',') {
            if (!current.empty())
                names.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        names.push_back(current);
    return names;
}

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
clearJournals(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (!fs::exists(dir))
        return;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind(prefix, 0) == 0)
            fs::remove(entry.path());
}

std::string
findJournal(const std::string &stem)
{
    const fs::path dir = fs::path(stem).parent_path();
    const std::string prefix = fs::path(stem).filename().string();
    if (fs::exists(dir))
        for (const auto &entry : fs::directory_iterator(dir))
            if (entry.path().filename().string().rfind(prefix, 0) == 0)
                return entry.path().string();
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);

    FleetCampaignConfig base;
    base.spec.devices = 10000;
    base.spec.faultIncidence = 0.05;
    base.governors = {"DORA", "ondemand", "performance"};
    if (const auto v = cliFlagValue(argc, argv, "--fleet-devices"))
        base.spec.devices = static_cast<size_t>(
            cliParseInt(*v, "--fleet-devices", 1, 10000000));
    if (const auto v = cliFlagValue(argc, argv, "--fleet-seed"))
        base.spec.seed = static_cast<uint64_t>(
            cliParseInt(*v, "--fleet-seed", 0, 1000000000));
    if (const auto v = cliFlagValue(argc, argv, "--fleet-governors")) {
        base.governors = splitGovernors(*v);
        if (base.governors.empty())
            fatal("--fleet-governors: empty governor list");
    }
    // A short load wall keeps huge populations affordable (a censored
    // page is still a deterministic measurement); the paper protocol
    // is the 15 s default.
    if (const auto v = cliFlagValue(argc, argv, "--fleet-max-load"))
        base.base.maxLoadSec =
            cliParseDouble(*v, "--fleet-max-load", 0.1, 60.0);

    if (std::any_of(base.governors.begin(), base.governors.end(),
                    needsModels))
        base.models = benchBundle();

    const size_t cells =
        base.spec.devices * base.governors.size();
    std::cerr << "[bench] fleet rollout: " << base.spec.devices
              << " devices x " << base.governors.size()
              << " governors = " << cells << " cells\n";

    // --- Reference pass: serial, in-process, one lane. ---
    FleetCampaignConfig ref_config = base;
    ref_config.jobs = 1;
    ref_config.workers = 0;
    ref_config.lanes = 1;
    FleetEngine ref_engine(ref_config);
    auto t0 = std::chrono::steady_clock::now();
    const FleetReport ref = ref_engine.run();
    const double ref_sec = wallSeconds(t0);
    const std::string ref_text = fleetReportText(ref);
    const double devices_per_sec = ref_sec > 0.0
        ? static_cast<double>(base.spec.devices) / ref_sec
        : 0.0;
    std::printf("FLEET jobs=1 workers=0 lanes=1 wall=%.3f "
                "devices_per_sec=%.2f\n",
                ref_sec, devices_per_sec);

    std::cout << ref_text;

    // --- 1. byte-identity across the tier matrix. ---
    bool identical = true;
    struct Combo
    {
        unsigned jobs, workers, lanes;
    };
    const Combo combos[] = {{4, 0, 1}, {1, 2, 4}, {4, 2, 8}};
    for (const Combo &c : combos) {
        FleetCampaignConfig config = base;
        config.jobs = c.jobs;
        config.workers = c.workers;
        config.lanes = c.lanes;
        FleetEngine engine(config);
        t0 = std::chrono::steady_clock::now();
        const FleetReport report = engine.run();
        std::printf("FLEET jobs=%u workers=%u lanes=%u wall=%.3f\n",
                    c.jobs, c.workers, c.lanes, wallSeconds(t0));
        if (fleetReportText(report) != ref_text ||
            report.populationDigest != ref.populationDigest) {
            identical = false;
            std::cerr << "MISMATCH at jobs=" << c.jobs
                      << " workers=" << c.workers
                      << " lanes=" << c.lanes << "\n";
        }
    }

    // --- 2. SIGKILL mid-campaign, then journal resume. ---
    const std::string stem =
        (fs::temp_directory_path() / "fleet_rollout_resume").string();
    clearJournals(stem);
    FleetCampaignConfig resume_config = base;
    resume_config.jobs = 1;
    resume_config.workers = 2;
    resume_config.lanes = 4;
    resume_config.journalStem = stem;

    const pid_t child = ::fork();
    if (child < 0)
        fatal("fleet_rollout: fork failed");
    if (child == 0) {
        FleetEngine engine(resume_config);
        engine.run();
        ::_exit(0);
    }
    // Kill once the journal holds at least one record (header is 36
    // bytes), i.e. mid-campaign with real progress on disk.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(30);
    std::string journal;
    while (std::chrono::steady_clock::now() < deadline) {
        journal = findJournal(stem);
        std::error_code ec;
        if (!journal.empty() && fs::file_size(journal, ec) > 36 && !ec)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (journal.empty())
        fatal("fleet_rollout: campaign never journaled a record");
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);

    FleetEngine resumed_engine(resume_config);
    const FleetReport resumed = resumed_engine.run();
    const bool resume_identical =
        fleetReportText(resumed) == ref_text &&
        resumed.populationDigest == ref.populationDigest;
    if (!resume_identical)
        std::cerr << "MISMATCH after SIGKILL + journal resume\n";
    clearJournals(stem);

    // --- 3. cohort counts conserve the population. ---
    size_t cohort_devices = 0;
    for (const FleetCohortStats &c : ref.cohorts)
        cohort_devices += c.devices;
    const bool cohorts_ok = cohort_devices == ref.devices &&
        ref.cohorts.size() <= fleetCohortCount();
    if (!cohorts_ok)
        std::cerr << "FAIL: cohorts cover " << cohort_devices
                  << " devices, population is " << ref.devices << "\n";

    std::printf("FLEET identical=%d resume_identical=%d cohorts_ok=%d\n",
                identical ? 1 : 0, resume_identical ? 1 : 0,
                cohorts_ok ? 1 : 0);

    if (!identical || !resume_identical || !cohorts_ok) {
        std::cerr << "FAIL: fleet campaign is not byte-identical "
                     "across tiers/resume\n";
        return 1;
    }
    std::cout << "fleet rollout bit-identical across " << cells
              << " cells x 4 tier combinations + journal resume\n";
    return 0;
}
