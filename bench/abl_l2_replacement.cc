/**
 * @file
 * Ablation (DESIGN.md section 5): shared-L2 replacement policy.
 *
 * The paper's interference mechanism is eviction of browser lines by
 * the co-runner in the shared L2. This ablation swaps the L2's
 * replacement policy (true LRU, the hardware-cheaper tree-PLRU, and
 * random) and re-measures the motivation experiment: load time and the
 * interference delta must be qualitatively insensitive to the policy
 * choice, i.e. the paper's story does not hinge on exact LRU.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    TextTable t({"L2 policy", "reddit alone s", "reddit +high s",
                 "interference %", "espn+med s", "backprop MPKI"});
    for (ReplacementPolicy policy : {ReplacementPolicy::Lru,
                                     ReplacementPolicy::TreePlru,
                                     ReplacementPolicy::Random}) {
        ExperimentConfig config;
        config.soc.mem.l2.policy = policy;
        ExperimentRunner runner(config);
        const size_t fmax = runner.freqTable().maxIndex();
        const WebPage &reddit = PageCorpus::byName("reddit");

        const RunMeasurement alone = runner.runAtFrequency(
            WorkloadSets::alone(reddit), fmax);
        const RunMeasurement high = runner.runAtFrequency(
            WorkloadSets::combo(reddit, MemIntensity::High), fmax);
        const RunMeasurement espn = runner.runAtFrequency(
            WorkloadSets::combo(PageCorpus::byName("espn"),
                                MemIntensity::Medium),
            fmax);
        const RunMeasurement kernel = runner.runAtFrequency(
            WorkloadSets::kernelOnly(KernelCatalog::byName("backprop")),
            fmax);

        t.beginRow();
        t.add(replacementPolicyName(policy));
        t.add(alone.loadTimeSec, 3);
        t.add(high.loadTimeSec, 3);
        t.add(100.0 * (high.loadTimeSec / alone.loadTimeSec - 1.0), 1);
        t.add(espn.loadTimeSec, 3);
        t.add(kernel.meanL2Mpki, 2);
    }
    emitTable("abl_l2_repl", "Ablation — shared-L2 replacement policy",
              t);
    std::cout << "\nExpected shape: all three policies preserve the "
                 "interference effect and the MPKI classification; "
                 "random is mildly worse for the streaming co-runner.\n";
    return 0;
}
