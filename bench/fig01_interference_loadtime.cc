/**
 * @file
 * Figure 1: impact of memory interference on web page load time at
 * different frequencies, for Reddit.
 *
 * Paper shape: load time falls with core frequency; at every frequency
 * the spread between no interference and a high-intensity co-runner is
 * large enough to move the page across a 2/3/4-second deadline — the
 * motivating observation for an interference-aware governor.
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    ExperimentRunner runner;
    const FreqTable &table = runner.freqTable();
    const WebPage &reddit = PageCorpus::byName("reddit");

    const char *corunners[] = {"", "kmeans", "srad2", "backprop"};

    TextTable t({"core GHz", "alone s", "+low (kmeans) s",
                 "+medium (srad2) s", "+high (backprop) s",
                 "spread %", "meets 2s/3s/4s (worst case)"});
    for (size_t f : table.paperSweepIndices()) {
        t.beginRow();
        t.add(table.opp(f).coreMhz / 1000.0, 2);
        double lo = 1e9, hi = 0.0;
        for (const char *k : corunners) {
            WorkloadSpec w;
            w.page = &reddit;
            if (*k)
                w.kernel = &KernelCatalog::byName(k);
            const RunMeasurement m = runner.runAtFrequency(w, f);
            t.add(m.loadTimeSec, 3);
            lo = std::min(lo, m.loadTimeSec);
            hi = std::max(hi, m.loadTimeSec);
        }
        t.add(100.0 * (hi - lo) / lo, 1);
        std::string verdict;
        for (double deadline : {2.0, 3.0, 4.0}) {
            if (!verdict.empty())
                verdict += "/";
            verdict += hi <= deadline ? "yes" : "no";
        }
        t.add(verdict);
    }
    emitTable("fig01", "Fig. 1 — Reddit load time vs frequency under "
                       "interference", t);

    std::cout << "\nExpected shape: load time decreases with frequency;"
                 "\nthe interference spread moves deadline verdicts at "
                 "mid frequencies.\n";
    return 0;
}
