/**
 * @file
 * Figure 3: the optimal operating mode. For ESPN (a heavy page) the
 * deadline-meeting frequency fD lies *above* the PPW-optimal fE, so
 * fopt = fD; for MSN (a light page) fD is low and fopt = fE. Running
 * flat out instead of at fopt wastes double-digit percent PPW (paper:
 * 17% for ESPN, 28% for MSN).
 */

#include <iostream>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "runner/experiment.hh"

using namespace dora;

namespace
{

void
sweepPage(ExperimentRunner &runner, const char *name, MemIntensity cls)
{
    const FreqTable &table = runner.freqTable();
    const WorkloadSpec w =
        WorkloadSets::combo(PageCorpus::byName(name), cls);
    const double deadline = runner.config().deadlineSec;

    struct Row
    {
        size_t idx;
        RunMeasurement m;
    };
    std::vector<Row> rows;
    for (size_t f : table.paperSweepIndices())
        rows.push_back({f, runner.runAtFrequency(w, f)});

    size_t fe = rows.front().idx;
    double best_ppw = 0.0;
    size_t fd = table.maxIndex();
    bool fd_found = false;
    for (const auto &row : rows) {
        if (row.m.ppw > best_ppw) {
            best_ppw = row.m.ppw;
            fe = row.idx;
        }
        if (!fd_found && row.m.meetsDeadline) {
            fd = row.idx;
            fd_found = true;
        }
    }
    const size_t fopt = fd_found ? std::max(fd, fe) : table.maxIndex();

    TextTable t({"core GHz", "load time s", "PPW 1/J", "meets 3s",
                 "marker"});
    double fopt_ppw = 0.0, max_ppw = 0.0;
    for (const auto &row : rows) {
        t.beginRow();
        t.add(table.opp(row.idx).coreMhz / 1000.0, 2);
        t.add(row.m.loadTimeSec, 3);
        t.add(row.m.ppw, 4);
        t.add(std::string(row.m.meetsDeadline ? "yes" : "no"));
        std::string marker;
        if (row.idx == fe)
            marker += "fE ";
        if (fd_found && row.idx == fd)
            marker += "fD ";
        if (row.idx == fopt)
            marker += "<- fopt";
        t.add(marker);
        if (row.idx == fopt)
            fopt_ppw = row.m.ppw;
        if (row.idx == table.maxIndex())
            max_ppw = row.m.ppw;
    }
    emitTable(std::string("fig03_") + name,
              std::string("Fig. 3 — ") + name + " + " +
                  memIntensityName(cls) + " co-runner (deadline " +
                  formatFixed(deadline, 0) + " s)",
              t);
    if (max_ppw > 0.0)
        std::cout << "Running flat out instead of fopt costs "
                  << formatFixed(100.0 * (fopt_ppw - max_ppw) / fopt_ppw,
                                 1)
                  << "% PPW; regime: "
                  << (fd_found && fd > fe ? "fD > fE (fopt = fD)"
                                          : "fD <= fE (fopt = fE)")
                  << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    ExperimentRunner runner;
    sweepPage(runner, "espn", MemIntensity::Medium);
    sweepPage(runner, "msn", MemIntensity::Medium);
    std::cout << "\nExpected shape: ESPN needs a high fD (fopt = fD); "
                 "MSN's fopt = fE sits at a mid frequency; both lose "
                 "double-digit PPW at max frequency.\n";
    return 0;
}
