/**
 * @file
 * Figure 10 + Section V-F: the impact of leakage power on the fopt
 * decision.
 *
 * (a) DORA vs DORA_no_lkg (frequency selection from the non-leakage
 *     component only) on Amazon + medium intensity — ignoring the
 *     temperature-dependent leakage costs ~10% energy efficiency in
 *     the paper.
 * (b) Device power vs frequency at room ambient vs a cold ambient:
 *     at high frequency the hot die leaks enough to shift fopt down
 *     (paper: 1.9 -> 1.7 GHz; die temperature 58 -> 65 degC).
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "browser/page_corpus.hh"
#include "harness/comparison.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    ObsGuard obs(argc, argv);
    auto bundle = benchBundle();
    const WorkloadSpec w = WorkloadSets::combo(
        PageCorpus::byName("amazon"), MemIntensity::Medium);

    // --- (a) DORA vs DORA_no_lkg across ambients. ---
    // The leakage-aware decision reacts to the die temperature; the
    // blind variant cannot. Run both at a cool and a hot ambient.
    TextTable a({"ambient degC", "governor", "mean GHz", "load time s",
                 "PPW 1/J", "mean die degC"});
    double ppw_full_hot = 0.0, ppw_nolkg_hot = 0.0;
    for (double ambient : {15.0, 45.0}) {
        ExperimentConfig cfg;
        cfg.ambientC = ambient;
        ComparisonHarness harness(cfg, bundle);
        for (const char *gov : {"DORA", "DORA_no_lkg"}) {
            const RunMeasurement m = harness.runOne(w, gov);
            a.beginRow();
            a.add(ambient, 0);
            a.add(gov);
            a.add(m.meanFreqMhz / 1000.0, 2);
            a.add(m.loadTimeSec, 3);
            a.add(m.ppw, 4);
            a.add(m.meanTempC, 1);
            if (ambient == 45.0)
                (std::string(gov) == "DORA" ? ppw_full_hot
                                            : ppw_nolkg_hot) = m.ppw;
        }
    }
    emitTable("fig10a", "Fig. 10(a) — leakage-aware vs leakage-blind "
                        "DORA (Amazon + medium)", a);
    std::cout << "hot-ambient PPW: leakage awareness buys "
              << formatFixed(
                     100.0 * (ppw_full_hot / ppw_nolkg_hot - 1.0), 1)
              << "% (paper: ~10%; see EXPERIMENTS.md on why this "
                 "device is flatter)\n";

    // --- (b) power vs frequency under three ambients. ---
    TextTable b({"core GHz", "P W (10C)", "peak C", "P W (25C)",
                 "peak C", "P W (45C)", "peak C", "PPW 10C", "PPW 25C",
                 "PPW 45C"});
    const double ambients[] = {10.0, 25.0, 45.0};
    size_t fopt[3] = {0, 0, 0};
    double best[3] = {0.0, 0.0, 0.0};
    std::vector<std::unique_ptr<ExperimentRunner>> runners;
    for (double ambient : ambients) {
        ExperimentConfig cfg;
        cfg.ambientC = ambient;
        runners.push_back(std::make_unique<ExperimentRunner>(cfg));
    }
    const FreqTable &table = runners[0]->freqTable();
    for (size_t f : table.paperSweepIndices()) {
        b.beginRow();
        b.add(table.opp(f).coreMhz / 1000.0, 2);
        RunMeasurement ms[3];
        for (int a_idx = 0; a_idx < 3; ++a_idx) {
            ms[a_idx] = runners[a_idx]->runAtFrequency(w, f);
            b.add(ms[a_idx].meanPowerW, 3);
            b.add(ms[a_idx].peakTempC, 1);
        }
        for (int a_idx = 0; a_idx < 3; ++a_idx) {
            b.add(ms[a_idx].ppw, 4);
            if (ms[a_idx].meetsDeadline && ms[a_idx].ppw > best[a_idx]) {
                best[a_idx] = ms[a_idx].ppw;
                fopt[a_idx] = f;
            }
        }
    }
    emitTable("fig10b", "Fig. 10(b) — power vs frequency across "
                        "ambients", b);
    for (int a_idx = 0; a_idx < 3; ++a_idx)
        std::cout << "fopt at " << ambients[a_idx] << " degC ambient: "
                  << formatFixed(table.opp(fopt[a_idx]).coreMhz / 1000.0,
                                 2)
                  << " GHz\n";
    std::cout << "\nExpected shape: power curves separate with ambient "
                 "at high frequency (leakage); the leakage-blind "
                 "variant tends to over-clock. On this simulated "
                 "device the measured PPW surface is flat around fopt, "
                 "so the mis-selection costs little energy — a "
                 "documented deviation from the paper's ~10%.\n";
    return 0;
}
