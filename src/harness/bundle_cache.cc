#include "harness/bundle_cache.hh"

#include <cstdlib>

#include "dora/trainer.hh"

namespace dora
{

std::string
defaultBundleCachePath()
{
    if (const char *env = std::getenv("DORA_MODEL_CACHE"))
        return env;
    return "dora_models.cache";
}

std::shared_ptr<const ModelBundle>
loadOrTrainBundle()
{
    Trainer trainer;
    return std::make_shared<const ModelBundle>(
        trainer.trainCached(defaultBundleCachePath()));
}

} // namespace dora
