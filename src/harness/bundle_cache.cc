#include "harness/bundle_cache.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "dora/trainer.hh"

namespace dora
{

namespace
{

/** True when @p fd still refers to the inode at @p path. */
bool
inodeCurrent(int fd, const std::string &path)
{
    struct stat by_fd, by_path;
    if (::fstat(fd, &by_fd) != 0 || ::stat(path.c_str(), &by_path) != 0)
        return false;
    return by_fd.st_dev == by_path.st_dev &&
        by_fd.st_ino == by_path.st_ino;
}

/** Record the calling process as the holder of the lock at @p fd. */
void
writeHolderPid(int fd)
{
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), "%ld\n",
                                static_cast<long>(::getpid()));
    if (::ftruncate(fd, 0) != 0 ||
        ::pwrite(fd, buf, static_cast<size_t>(n), 0) != n)
        debugLog("bundle cache: cannot record holder pid (lock still "
                 "held)");
}

/** True when @p pid is (or may be) a live process. */
bool
pidAlive(long pid)
{
    if (pid <= 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    // EPERM means the process exists but belongs to someone else.
    return errno == EPERM;
}

} // namespace

int
BundleCacheLock::readHolderPid(const std::string &lock_path)
{
    const int fd = ::open(lock_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return -1;
    char buf[32] = {};
    const ssize_t n = ::pread(fd, buf, sizeof(buf) - 1, 0);
    ::close(fd);
    if (n <= 0)
        return -1;
    char *end = nullptr;
    const long pid = std::strtol(buf, &end, 10);
    if (end == buf || pid <= 0)
        return -1;
    return static_cast<int>(pid);
}

BundleCacheLock::BundleCacheLock(const std::string &cache_path)
{
    const std::string lock_path = cache_path + ".lock";

    // Bounded recovery attempts: each stale detection unlinks the lock
    // file and retries on a fresh inode. A pathological filesystem
    // (every attempt failing differently) degrades to unlocked rather
    // than spinning.
    for (int attempt = 0; attempt < 5; ++attempt) {
        fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                     0644);
        if (fd_ < 0) {
            debugLog("bundle cache: cannot open %s; proceeding unlocked",
                     lock_path.c_str());
            return;
        }

        if (::flock(fd_, LOCK_EX | LOCK_NB) == 0) {
            if (!inodeCurrent(fd_, lock_path)) {
                // We locked an inode that was unlinked under us by a
                // concurrent stale recovery; take the current one.
                ::close(fd_);
                fd_ = -1;
                continue;
            }
            writeHolderPid(fd_);
            held_ = true;
            return;
        }

        // Contended. A live recorded holder gets the legacy blocking
        // wait; a dead one means the lock is stale — typically an fd
        // inherited across fork() by a worker that outlived (or was
        // orphaned by) the real holder — and is safe to break.
        const int holder = readHolderPid(lock_path);
        if (holder < 0 || pidAlive(holder)) {
            if (::flock(fd_, LOCK_EX) == 0) {
                if (!inodeCurrent(fd_, lock_path)) {
                    ::close(fd_);
                    fd_ = -1;
                    continue;  // lock file was replaced while we slept
                }
                writeHolderPid(fd_);
                held_ = true;
                return;
            }
            debugLog("bundle cache: flock on %s failed; proceeding "
                     "unlocked", lock_path.c_str());
            ::close(fd_);
            fd_ = -1;
            return;
        }

        warn("bundle cache: lock %s is held on behalf of dead pid %d "
             "(stale — an inherited fd outlived its holder); breaking "
             "the lock",
             lock_path.c_str(), holder);
        // Unlink only while the path still names the inode we opened,
        // so a fresh lock created by a concurrent recovery survives.
        if (inodeCurrent(fd_, lock_path))
            ::unlink(lock_path.c_str());
        ::close(fd_);
        fd_ = -1;
    }
    debugLog("bundle cache: giving up on %s after repeated stale-lock "
             "recoveries; proceeding unlocked", lock_path.c_str());
}

BundleCacheLock::~BundleCacheLock()
{
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }
}

std::string
defaultBundleCachePath()
{
    if (const char *env = std::getenv("DORA_MODEL_CACHE"))
        return env;
    return "dora_models.cache";
}

std::shared_ptr<const ModelBundle>
loadOrTrainBundle()
{
    const std::string path = defaultBundleCachePath();
    // Hold the advisory lock across the whole check-train-save window:
    // a second process blocks here until the first has cached its
    // bundle, then loads that bundle instead of retraining.
    BundleCacheLock lock(path);
    Trainer trainer;
    return std::make_shared<const ModelBundle>(trainer.trainCached(path));
}

} // namespace dora
