#include "harness/bundle_cache.hh"

#include <cstdlib>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "dora/trainer.hh"

namespace dora
{

namespace
{

/**
 * Advisory inter-process lock on the cache file, held across the
 * load-check / train / save sequence. Parallel bench invocations (e.g.
 * scripts/run_benches.sh fanning binaries out) would otherwise race:
 * two processes could train concurrently and interleave writes to the
 * same cache file. flock(2) is advisory, so a failure to acquire (or a
 * filesystem without lock support) degrades to the old unlocked
 * behaviour instead of blocking the run.
 */
class SCOPED_CAPABILITY BundleCacheLock
{
  public:
    explicit BundleCacheLock(const std::string &cache_path) ACQUIRE()
    {
        const std::string lock_path = cache_path + ".lock";
        fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                     0644);
        if (fd_ < 0) {
            debugLog("bundle cache: cannot open %s; proceeding unlocked",
                     lock_path.c_str());
            return;
        }
        if (::flock(fd_, LOCK_EX) != 0) {
            debugLog("bundle cache: flock on %s failed; proceeding "
                     "unlocked", lock_path.c_str());
            ::close(fd_);
            fd_ = -1;
        }
    }

    BundleCacheLock(const BundleCacheLock &) = delete;
    BundleCacheLock &operator=(const BundleCacheLock &) = delete;

    ~BundleCacheLock() RELEASE()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

  private:
    int fd_ = -1;
};

} // namespace

std::string
defaultBundleCachePath()
{
    if (const char *env = std::getenv("DORA_MODEL_CACHE"))
        return env;
    return "dora_models.cache";
}

std::shared_ptr<const ModelBundle>
loadOrTrainBundle()
{
    const std::string path = defaultBundleCachePath();
    // Hold the advisory lock across the whole check-train-save window:
    // a second process blocks here until the first has cached its
    // bundle, then loads that bundle instead of retraining.
    BundleCacheLock lock(path);
    Trainer trainer;
    return std::make_shared<const ModelBundle>(trainer.trainCached(path));
}

} // namespace dora
