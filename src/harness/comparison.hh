/**
 * @file
 * Governor-comparison harness behind Figures 7, 8, and 9: runs a set of
 * workloads under every governor the paper compares (interactive,
 * performance, DL, EE, DORA) and normalizes energy efficiency to the
 * interactive baseline.
 */

#ifndef DORA_HARNESS_COMPARISON_HH
#define DORA_HARNESS_COMPARISON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dora/model_bundle.hh"
#include "dora/predictive_governor.hh"
#include "runner/experiment.hh"

namespace dora
{

/** Results of one workload under every compared governor. */
struct ComparisonRecord
{
    WorkloadSpec workload;
    std::map<std::string, RunMeasurement> byGovernor;

    /** PPW of @p governor normalized to the interactive baseline. */
    double normalizedPpw(const std::string &governor) const;

    /** Measurement for @p governor; fatal() if missing. */
    const RunMeasurement &measurement(const std::string &governor) const;
};

/**
 * Owns the governor set and runs comparisons.
 */
class ComparisonHarness
{
  public:
    /**
     * @param config  per-run configuration (deadline etc.)
     * @param models  trained bundle for the predictive governors
     */
    ComparisonHarness(const ExperimentConfig &config,
                      std::shared_ptr<const ModelBundle> models);

    /**
     * Run @p workloads under every governor in the comparison set.
     * @param governors subset of {"interactive", "performance", "DL",
     *        "EE", "DORA", "DORA_no_lkg", "powersave"}; empty = the
     *        paper's five.
     */
    std::vector<ComparisonRecord>
    runAll(const std::vector<WorkloadSpec> &workloads,
           const std::vector<std::string> &governors = {});

    /** Run one workload under one named governor. */
    RunMeasurement runOne(const WorkloadSpec &workload,
                          const std::string &governor);

    /**
     * Offline-optimal search: the single pinned OPP maximizing PPW
     * subject to the deadline (the paper's Offline_opt reference).
     * @return the best measurement (pinned-frequency run)
     */
    RunMeasurement offlineOpt(const WorkloadSpec &workload);

    /** The underlying runner (for config access). */
    ExperimentRunner &runner() { return runner_; }

    /** Default governor list used when runAll() gets an empty set. */
    static const std::vector<std::string> &paperGovernors();

  private:
    ExperimentRunner runner_;
    std::shared_ptr<const ModelBundle> models_;
};

/** Mean of normalized PPW for @p governor over @p records. */
double meanNormalizedPpw(const std::vector<ComparisonRecord> &records,
                         const std::string &governor);

/** Fraction of records whose @p governor run met the deadline. */
double deadlineMeetRate(const std::vector<ComparisonRecord> &records,
                        const std::string &governor);

} // namespace dora

#endif // DORA_HARNESS_COMPARISON_HH
