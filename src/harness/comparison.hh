/**
 * @file
 * Governor-comparison harness behind Figures 7, 8, and 9: runs a set of
 * workloads under every governor the paper compares (interactive,
 * performance, DL, EE, DORA) and normalizes energy efficiency to the
 * interactive baseline.
 *
 * Every cell of a comparison (workload x governor) is an independent
 * simulation on a freshly constructed device, so the harness fans the
 * cells out across a thread pool (see src/exec). Results are
 * bit-identical to the serial order at any job count; jobs=1 runs the
 * exact legacy serial loop.
 */

#ifndef DORA_HARNESS_COMPARISON_HH
#define DORA_HARNESS_COMPARISON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dora/model_bundle.hh"
#include "dora/predictive_governor.hh"
#include "runner/experiment.hh"

namespace dora
{

class FaultInjector;
class Task;

/**
 * Registry of governor names the harness can run. The index of a name
 * is its storage key inside ComparisonRecord (a small dense id, stable
 * for the life of the process).
 */
size_t governorCount();

/** Dense id of @p name; fatal() on an unknown governor. */
size_t governorIndex(const std::string &name);

/** Name of the governor with dense id @p index; fatal() out of range. */
const std::string &governorName(size_t index);

/**
 * Fresh governor instance by registry name; fatal() on an unknown
 * name. The predictive governors (DL, EE, DORA, DORA_no_lkg) require
 * a trained @p models bundle; the kernel governors ignore it. Shared
 * by the comparison harness and the fleet campaign engine.
 */
std::unique_ptr<Governor>
makeNamedGovernor(const std::string &name,
                  const std::shared_ptr<const ModelBundle> &models);

/** Results of one workload under every compared governor. */
struct ComparisonRecord
{
    WorkloadSpec workload;

    /** Store @p m as the measurement of governor @p index. */
    void setMeasurement(size_t index, RunMeasurement m);

    /** String-keyed shim for setMeasurement(governorIndex(name), m). */
    void setMeasurement(const std::string &governor, RunMeasurement m);

    /** Whether governor @p index has a stored measurement. */
    bool hasMeasurement(size_t index) const;

    /** Measurement of governor @p index; fatal() if missing. */
    const RunMeasurement &measurement(size_t index) const;

    /** String-keyed shim for measurement(governorIndex(governor)). */
    const RunMeasurement &measurement(const std::string &governor) const;

    /** PPW of governor @p index normalized to interactive. */
    double normalizedPpw(size_t index) const;

    /** String-keyed shim for normalizedPpw(governorIndex(governor)). */
    double normalizedPpw(const std::string &governor) const;

  private:
    /**
     * Flat per-governor storage, indexed by the dense registry id.
     * Grown lazily to the highest stored id; presence is a bitmask so
     * lookups on the bench hot loop are two array reads, not a
     * string-keyed tree walk.
     */
    std::vector<RunMeasurement> slots_;
    uint32_t presentMask_ = 0;
};

/**
 * Owns the governor set and runs comparisons.
 */
class ComparisonHarness
{
  public:
    /**
     * @param config  per-run configuration (deadline etc.)
     * @param models  trained bundle for the predictive governors
     * @param jobs    parallelism for runAll()/offlineOpt() fan-outs
     *                (0 = defaultJobCount(); 1 = legacy serial path)
     */
    ComparisonHarness(const ExperimentConfig &config,
                      std::shared_ptr<const ModelBundle> models,
                      unsigned jobs = 0);

    /** Parallelism used for comparison fan-outs. */
    unsigned jobs() const { return jobs_; }

    /**
     * Route fan-outs through the crash-resilient process tier
     * (exec/proc): @p workers worker subprocesses per campaign.
     * 0 (the default) keeps everything in-process — the thread-pool
     * path, bit-identical to the legacy serial loop. Results under
     * any worker count are bit-identical to workers=0: cells are
     * keyed by grid index and every cell constructs its own device.
     */
    void setWorkers(unsigned workers) { workers_ = workers; }
    unsigned workers() const { return workers_; }

    /**
     * Enable checkpoint/resume for process-tier campaigns: completed
     * cells are journaled to `<stem>.<campaign-hash>.jrn` and a rerun
     * resumes from the journal instead of recomputing them. The hash
     * covers the experiment config, fault schedule, and campaign
     * shape, so a stale journal from a different sweep is refused.
     * Empty (the default) disables journaling. No effect at workers=0.
     */
    void setProcJournalStem(std::string stem)
    {
        procJournalStem_ = std::move(stem);
    }

    /**
     * Lane batching (sim/lane_batch.hh): pack fan-out cells into
     * batches of @p lanes runs advanced interleaved on one thread, so
     * independent memory-walk miss chains overlap. Composes with the
     * thread tier (each pool job runs a batch) and the process tier
     * (each worker unit is a batch). lanes <= 1 is the exact legacy
     * per-run path; results are bit-identical at every lane count.
     * The constructor default is $DORA_LANES (see common/lanes.hh).
     */
    void setLanes(unsigned lanes) { lanes_ = lanes ? lanes : 1; }
    unsigned lanes() const { return lanes_; }

    /**
     * Run @p workloads under every governor in the comparison set.
     * @param governors subset of {"interactive", "performance", "DL",
     *        "EE", "DORA", "DORA_no_lkg", "powersave"}; empty = the
     *        paper's five.
     */
    std::vector<ComparisonRecord>
    runAll(const std::vector<WorkloadSpec> &workloads,
           const std::vector<std::string> &governors = {});

    /** Run one workload under one named governor. */
    RunMeasurement runOne(const WorkloadSpec &workload,
                          const std::string &governor);

    /**
     * Offline-optimal search: the single pinned OPP maximizing PPW
     * subject to the deadline (the paper's Offline_opt reference).
     * @return the best measurement (pinned-frequency run)
     */
    RunMeasurement offlineOpt(const WorkloadSpec &workload);

    /**
     * offlineOpt() for a batch of workloads. The whole workload x
     * frequency grid is fanned out jointly, so parallelism is not
     * limited by the OPP count of a single sweep. Result i corresponds
     * to workloads[i].
     */
    std::vector<RunMeasurement>
    offlineOptMany(const std::vector<WorkloadSpec> &workloads);

    /** The underlying runner (for config access). */
    ExperimentRunner &runner() { return runner_; }

    /** Default governor list used when runAll() gets an empty set. */
    static const std::vector<std::string> &paperGovernors();

    /**
     * Select the offline-opt winner from an ascending-OPP sweep. The
     * sweep must cover the full OPP table (fatal() otherwise — a short
     * sweep once yielded a silent default-constructed result). Public
     * so tests and custom sweep drivers can reuse the selection rule.
     */
    RunMeasurement pickOfflineOpt(std::vector<RunMeasurement> sweep) const;

  private:
    /**
     * One lane-tier cell: everything a RunContext lane needs, owned
     * (the governor/co-runner must outlive the whole batch, unlike the
     * stack-scoped objects of the per-run path).
     */
    struct LaneCell
    {
        const WebPage *page = nullptr;
        std::unique_ptr<Task> corun;
        std::string label;
        std::unique_ptr<Governor> governor;
        std::optional<size_t> initialFreq;
    };
    using LaneCellFn = std::function<LaneCell(size_t)>;

    /** runOne() against an explicit runner (per-job runners). */
    RunMeasurement runOneWith(ExperimentRunner &runner,
                              const WorkloadSpec &workload,
                              const std::string &governor);

    /** Fresh governor instance by registry name; fatal() on unknown. */
    std::unique_ptr<Governor> makeGovernor(const std::string &name) const;

    /** Lane cell for (workload, named governor) — the runAll grid. */
    LaneCell makeLaneCell(const WorkloadSpec &workload,
                          const std::string &governor) const;

    /** Lane cell for (workload, pinned OPP) — the offline-opt grid. */
    LaneCell makeLaneCell(const WorkloadSpec &workload,
                          size_t freq_index) const;

    /**
     * Run fn(runner, i) for i in [0, n) across jobs_ workers, each
     * worker batch using a runner cloned from runner_ (same config,
     * same fault schedule); with jobs_ == 1 every call uses runner_
     * itself — the exact legacy path. With workers_ > 0 the grid is
     * instead sharded across worker subprocesses (see setWorkers());
     * @p campaign_salt distinguishes campaigns of the same size for
     * the journal identity. With lanes_ > 1 and a non-null
     * @p make_cell the cells run lane-batched instead (bit-identical
     * by the LaneBatchSimulator contract).
     */
    std::vector<RunMeasurement> mapWithRunners(
        size_t n, uint64_t campaign_salt,
        const std::function<RunMeasurement(ExperimentRunner &, size_t)>
            &fn,
        const LaneCellFn &make_cell = {});

    /** The process-tier (workers_ > 0) arm of mapWithRunners(). */
    std::vector<RunMeasurement> mapWithWorkers(
        size_t n, uint64_t campaign_salt,
        const std::function<RunMeasurement(ExperimentRunner &, size_t)>
            &fn);

    /** The in-process lane tier: batches fanned across the pool. */
    std::vector<RunMeasurement> mapWithLanes(size_t n,
                                             const LaneCellFn &make_cell);

    /** Process tier with lane batching: each worker unit is a batch. */
    std::vector<RunMeasurement> mapWithWorkersLanes(
        size_t n, uint64_t campaign_salt, const LaneCellFn &make_cell);

    /** Build and drive one batch of cells [first, first+count). */
    std::vector<RunMeasurement> runLaneBatch(size_t first, size_t count,
                                             const LaneCellFn &make_cell);

    ExperimentRunner runner_;
    std::shared_ptr<const ModelBundle> models_;
    unsigned jobs_;
    unsigned workers_ = 0;
    unsigned lanes_;
    std::string procJournalStem_;
};

/**
 * Mean of normalized PPW for @p governor over @p records. Censored
 * records — the governor's run or its interactive baseline never
 * finished the page — are excluded from the mean (their PPW of 0 is a
 * flag, not a score); report them via censoredCount() alongside.
 * Returns 0 when every record is censored.
 */
double meanNormalizedPpw(const std::vector<ComparisonRecord> &records,
                         const std::string &governor);

/**
 * Fraction of records whose @p governor run met the deadline. Censored
 * runs count as misses (the page provably did not finish in time), so
 * the denominator is all records.
 */
double deadlineMeetRate(const std::vector<ComparisonRecord> &records,
                        const std::string &governor);

/**
 * Number of records excluded from meanNormalizedPpw() for @p governor:
 * the governor's own run or its interactive baseline is censored.
 */
size_t censoredCount(const std::vector<ComparisonRecord> &records,
                     const std::string &governor);

} // namespace dora

#endif // DORA_HARNESS_COMPARISON_HH
