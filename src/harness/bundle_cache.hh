/**
 * @file
 * Shared access to the trained model bundle for benches and examples.
 *
 * Training takes a few minutes of simulation, so the first binary that
 * needs the models trains and caches them; later binaries reuse the
 * cache. Set DORA_MODEL_CACHE to relocate the cache file, or delete it
 * to force retraining.
 *
 * The cache is keyed by format version AND a hash of the training
 * configuration (trainingConfigHash): a file trained under different
 * ridge strengths, frequency sets, or measurement protocol is rejected
 * and retrained. A corrupt, truncated, or non-finite cache file is
 * likewise rejected with a warning — never a process abort.
 */

#ifndef DORA_HARNESS_BUNDLE_CACHE_HH
#define DORA_HARNESS_BUNDLE_CACHE_HH

#include <memory>
#include <string>

#include "common/thread_annotations.hh"
#include "dora/model_bundle.hh"

namespace dora
{

/** Cache path: $DORA_MODEL_CACHE or "dora_models.cache" in the cwd. */
std::string defaultBundleCachePath();

/**
 * Advisory inter-process lock on the cache file, held across the
 * load-check / train / save sequence so parallel bench invocations
 * don't train concurrently and interleave writes.
 *
 * flock(2) locks the open file *description*, which forked children
 * inherit — so a lock holder that forks workers (the exec/proc tier
 * does exactly that) and then dies can leave the lock held forever by
 * a child that never exits. The lock file therefore records the
 * holder's pid: an acquirer that finds the lock contended checks the
 * recorded holder's liveness, and when the holder is dead it unlinks
 * the stale lock file and retakes a fresh inode instead of blocking
 * forever (stale holders keep their orphaned inode locked, which no
 * longer matters). A live holder blocks the acquirer as before, and
 * any filesystem-level failure degrades to the old unlocked behaviour.
 */
class SCOPED_CAPABILITY BundleCacheLock
{
  public:
    explicit BundleCacheLock(const std::string &cache_path) ACQUIRE();
    ~BundleCacheLock() RELEASE();

    BundleCacheLock(const BundleCacheLock &) = delete;
    BundleCacheLock &operator=(const BundleCacheLock &) = delete;

    /** True when the advisory lock was actually acquired. */
    bool held() const { return held_; }

    /**
     * Pid recorded in @p lock_path by the current holder, or -1 when
     * the file is missing/empty/unparsable. Exposed for tests.
     */
    static int readHolderPid(const std::string &lock_path);

  private:
    int fd_ = -1;
    bool held_ = false;
};

/** Load the cached bundle or train one (and cache it). */
std::shared_ptr<const ModelBundle> loadOrTrainBundle();

} // namespace dora

#endif // DORA_HARNESS_BUNDLE_CACHE_HH
