/**
 * @file
 * Shared access to the trained model bundle for benches and examples.
 *
 * Training takes a few minutes of simulation, so the first binary that
 * needs the models trains and caches them; later binaries reuse the
 * cache. Set DORA_MODEL_CACHE to relocate the cache file, or delete it
 * to force retraining.
 */

#ifndef DORA_HARNESS_BUNDLE_CACHE_HH
#define DORA_HARNESS_BUNDLE_CACHE_HH

#include <memory>
#include <string>

#include "dora/model_bundle.hh"

namespace dora
{

/** Cache path: $DORA_MODEL_CACHE or "dora_models.cache" in the cwd. */
std::string defaultBundleCachePath();

/** Load the cached bundle or train one (and cache it). */
std::shared_ptr<const ModelBundle> loadOrTrainBundle();

} // namespace dora

#endif // DORA_HARNESS_BUNDLE_CACHE_HH
