/**
 * @file
 * Shared access to the trained model bundle for benches and examples.
 *
 * Training takes a few minutes of simulation, so the first binary that
 * needs the models trains and caches them; later binaries reuse the
 * cache. Set DORA_MODEL_CACHE to relocate the cache file, or delete it
 * to force retraining.
 *
 * The cache is keyed by format version AND a hash of the training
 * configuration (trainingConfigHash): a file trained under different
 * ridge strengths, frequency sets, or measurement protocol is rejected
 * and retrained. A corrupt, truncated, or non-finite cache file is
 * likewise rejected with a warning — never a process abort.
 */

#ifndef DORA_HARNESS_BUNDLE_CACHE_HH
#define DORA_HARNESS_BUNDLE_CACHE_HH

#include <memory>
#include <string>

#include "dora/model_bundle.hh"

namespace dora
{

/** Cache path: $DORA_MODEL_CACHE or "dora_models.cache" in the cwd. */
std::string defaultBundleCachePath();

/** Load the cached bundle or train one (and cache it). */
std::shared_ptr<const ModelBundle> loadOrTrainBundle();

} // namespace dora

#endif // DORA_HARNESS_BUNDLE_CACHE_HH
