#include "harness/comparison.hh"

#include "common/logging.hh"

namespace dora
{

double
ComparisonRecord::normalizedPpw(const std::string &governor) const
{
    const RunMeasurement &base = measurement("interactive");
    const RunMeasurement &m = measurement(governor);
    if (base.ppw <= 0.0)
        panic("ComparisonRecord: zero baseline PPW for %s",
              workload.label().c_str());
    return m.ppw / base.ppw;
}

const RunMeasurement &
ComparisonRecord::measurement(const std::string &governor) const
{
    auto it = byGovernor.find(governor);
    if (it == byGovernor.end())
        panic("ComparisonRecord: no measurement for governor '%s'",
              governor.c_str());
    return it->second;
}

ComparisonHarness::ComparisonHarness(
    const ExperimentConfig &config,
    std::shared_ptr<const ModelBundle> models)
    : runner_(config), models_(std::move(models))
{
}

const std::vector<std::string> &
ComparisonHarness::paperGovernors()
{
    static const std::vector<std::string> names = {
        "interactive", "performance", "DL", "EE", "DORA",
    };
    return names;
}

RunMeasurement
ComparisonHarness::runOne(const WorkloadSpec &workload,
                          const std::string &governor)
{
    if (governor == "interactive") {
        InteractiveGovernor g;
        return runner_.run(workload, g);
    }
    if (governor == "performance") {
        PerformanceGovernor g;
        return runner_.run(workload, g);
    }
    if (governor == "powersave") {
        PowersaveGovernor g;
        return runner_.run(workload, g);
    }
    if (governor == "ondemand") {
        OndemandGovernor g;
        return runner_.run(workload, g);
    }
    if (governor == "DL") {
        PredictiveGovernor g = makeDl(models_);
        return runner_.run(workload, g);
    }
    if (governor == "EE") {
        PredictiveGovernor g = makeEe(models_);
        return runner_.run(workload, g);
    }
    if (governor == "DORA") {
        PredictiveGovernor g = makeDora(models_);
        return runner_.run(workload, g);
    }
    if (governor == "DORA_no_lkg") {
        PredictiveGovernor g = makeDoraNoLeakage(models_);
        return runner_.run(workload, g);
    }
    fatal("ComparisonHarness: unknown governor '%s'", governor.c_str());
}

std::vector<ComparisonRecord>
ComparisonHarness::runAll(const std::vector<WorkloadSpec> &workloads,
                          const std::vector<std::string> &governors)
{
    const auto &names = governors.empty() ? paperGovernors() : governors;
    std::vector<ComparisonRecord> records;
    records.reserve(workloads.size());
    for (const auto &workload : workloads) {
        ComparisonRecord record;
        record.workload = workload;
        for (const auto &name : names)
            record.byGovernor[name] = runOne(workload, name);
        records.push_back(std::move(record));
    }
    return records;
}

RunMeasurement
ComparisonHarness::offlineOpt(const WorkloadSpec &workload)
{
    const FreqTable &table = runner_.freqTable();
    RunMeasurement best;
    RunMeasurement fastest;
    bool have_meeting = false;
    for (size_t f = 0; f < table.size(); ++f) {
        RunMeasurement m = runner_.runAtFrequency(workload, f);
        m.governor = "offline_opt";
        if (f == table.maxIndex())
            fastest = m;
        if (m.meetsDeadline &&
            (!have_meeting || m.ppw > best.ppw)) {
            best = m;
            have_meeting = true;
        }
    }
    // Like DORA, fall back to flat-out when no OPP meets the deadline.
    return have_meeting ? best : fastest;
}

double
meanNormalizedPpw(const std::vector<ComparisonRecord> &records,
                  const std::string &governor)
{
    if (records.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records)
        sum += r.normalizedPpw(governor);
    return sum / static_cast<double>(records.size());
}

double
deadlineMeetRate(const std::vector<ComparisonRecord> &records,
                 const std::string &governor)
{
    if (records.empty())
        return 0.0;
    double met = 0.0;
    for (const auto &r : records)
        if (r.measurement(governor).meetsDeadline)
            met += 1.0;
    return met / static_cast<double>(records.size());
}

} // namespace dora
