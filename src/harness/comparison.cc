#include "harness/comparison.hh"

#include <algorithm>
#include <csignal>
#include <optional>
#include <sstream>

#include "common/lanes.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/proc/supervisor.hh"
#include "exec/thread_pool.hh"
#include "fault/fault_injector.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runner/measurement_io.hh"
#include "sim/lane_batch.hh"
#include "workloads/corun_task.hh"

namespace dora
{

namespace
{

/**
 * Canonical governor registry. Order is the dense id; interactive is
 * id 0 because it is the normalization baseline.
 */
const std::vector<std::string> &
governorRegistry()
{
    static const std::vector<std::string> names = {
        "interactive", "performance", "powersave", "ondemand",
        "DL", "EE", "DORA", "DORA_no_lkg", "offline_opt",
    };
    return names;
}

constexpr size_t kInteractiveId = 0;

} // namespace

size_t
governorCount()
{
    return governorRegistry().size();
}

size_t
governorIndex(const std::string &name)
{
    const auto &names = governorRegistry();
    for (size_t i = 0; i < names.size(); ++i)
        if (names[i] == name)
            return i;
    fatal("governorIndex: unknown governor '%s'", name.c_str());
}

const std::string &
governorName(size_t index)
{
    const auto &names = governorRegistry();
    if (index >= names.size())
        fatal("governorName: id %zu out of range (%zu governors)",
              index, names.size());
    return names[index];
}

void
ComparisonRecord::setMeasurement(size_t index, RunMeasurement m)
{
    if (index >= governorCount())
        fatal("ComparisonRecord: governor id %zu out of range", index);
    if (slots_.size() <= index)
        slots_.resize(index + 1);
    slots_[index] = std::move(m);
    presentMask_ |= 1u << index;
}

void
ComparisonRecord::setMeasurement(const std::string &governor,
                                 RunMeasurement m)
{
    setMeasurement(governorIndex(governor), std::move(m));
}

bool
ComparisonRecord::hasMeasurement(size_t index) const
{
    return index < 32 && (presentMask_ & (1u << index));
}

const RunMeasurement &
ComparisonRecord::measurement(size_t index) const
{
    if (!hasMeasurement(index))
        panic("ComparisonRecord: no measurement for governor '%s'",
              governorName(index).c_str());
    return slots_[index];
}

const RunMeasurement &
ComparisonRecord::measurement(const std::string &governor) const
{
    return measurement(governorIndex(governor));
}

double
ComparisonRecord::normalizedPpw(size_t index) const
{
    const RunMeasurement &base = measurement(kInteractiveId);
    const RunMeasurement &m = measurement(index);
    if (base.ppw <= 0.0)
        panic("ComparisonRecord: zero baseline PPW for %s",
              workload.label().c_str());
    return m.ppw / base.ppw;
}

double
ComparisonRecord::normalizedPpw(const std::string &governor) const
{
    return normalizedPpw(governorIndex(governor));
}

ComparisonHarness::ComparisonHarness(
    const ExperimentConfig &config,
    std::shared_ptr<const ModelBundle> models, unsigned jobs)
    : runner_(config), models_(std::move(models)),
      jobs_(jobs ? jobs : defaultJobCount()), lanes_(defaultLaneCount())
{
}

const std::vector<std::string> &
ComparisonHarness::paperGovernors()
{
    static const std::vector<std::string> names = {
        "interactive", "performance", "DL", "EE", "DORA",
    };
    return names;
}

std::unique_ptr<Governor>
ComparisonHarness::makeGovernor(const std::string &governor) const
{
    return makeNamedGovernor(governor, models_);
}

std::unique_ptr<Governor>
makeNamedGovernor(const std::string &governor,
                  const std::shared_ptr<const ModelBundle> &models)
{
    if (governor == "interactive")
        return std::make_unique<InteractiveGovernor>();
    if (governor == "performance")
        return std::make_unique<PerformanceGovernor>();
    if (governor == "powersave")
        return std::make_unique<PowersaveGovernor>();
    if (governor == "ondemand")
        return std::make_unique<OndemandGovernor>();
    if (governor == "DL")
        return std::make_unique<PredictiveGovernor>(makeDl(models));
    if (governor == "EE")
        return std::make_unique<PredictiveGovernor>(makeEe(models));
    if (governor == "DORA")
        return std::make_unique<PredictiveGovernor>(makeDora(models));
    if (governor == "DORA_no_lkg")
        return std::make_unique<PredictiveGovernor>(
            makeDoraNoLeakage(models));
    fatal("makeNamedGovernor: unknown governor '%s'", governor.c_str());
}

RunMeasurement
ComparisonHarness::runOneWith(ExperimentRunner &runner,
                              const WorkloadSpec &workload,
                              const std::string &governor)
{
    const std::unique_ptr<Governor> g = makeGovernor(governor);
    return runner.run(workload, *g);
}

ComparisonHarness::LaneCell
ComparisonHarness::makeLaneCell(const WorkloadSpec &workload,
                                const std::string &governor) const
{
    LaneCell cell;
    cell.page = workload.page;
    if (workload.kernel) {
        // Same salt recipe as ExperimentRunner::run(): the "corun:"
        // tag decorrelates the co-runner streams from the PageLoad
        // salt ("page:" + the same label).
        const uint64_t salt =
            // dora:stream-tag-shared(same workload, same corun stream)
            hashLabel("corun:" + workload.label()) % 4096;
        cell.corun = std::make_unique<CorunTask>(*workload.kernel, salt);
    }
    cell.label = workload.label();
    cell.governor = makeGovernor(governor);
    return cell;
}

ComparisonHarness::LaneCell
ComparisonHarness::makeLaneCell(const WorkloadSpec &workload,
                                size_t freq_index) const
{
    // Mirrors runAtFrequency(): a FixedGovernor pinned at the OPP,
    // which is also the initial frequency.
    LaneCell cell;
    cell.page = workload.page;
    if (workload.kernel) {
        const uint64_t salt =
            // dora:stream-tag-shared(same workload, same corun stream)
            hashLabel("corun:" + workload.label()) % 4096;
        cell.corun = std::make_unique<CorunTask>(*workload.kernel, salt);
    }
    cell.label = workload.label();
    cell.governor = std::make_unique<FixedGovernor>(freq_index);
    cell.initialFreq = freq_index;
    return cell;
}

RunMeasurement
ComparisonHarness::runOne(const WorkloadSpec &workload,
                          const std::string &governor)
{
    return runOneWith(runner_, workload, governor);
}

namespace
{

/**
 * Identity of one process-tier campaign: everything that shapes its
 * results (measurement protocol + fault schedule) and its shape
 * (cell count + the caller's grid salt). Journals are keyed by this,
 * so a journal can only resume the exact campaign that wrote it.
 */
uint64_t
procCampaignHash(const ExperimentConfig &config,
                 const FaultInjector *injector, size_t n,
                 uint64_t campaign_salt, unsigned lanes = 1)
{
    std::ostringstream text;
    text.precision(17);
    text << "proc-campaign " << experimentConfigHash(config)
         << " cells " << n << " salt " << campaign_salt;
    // Lane-batched campaigns key their journal separately: units are
    // batches, so payload shapes differ from the cell-keyed journal
    // even though the measurements inside are bit-identical.
    if (lanes > 1)
        text << " lanes " << lanes;
    if (injector) {
        const FaultSchedule &s = injector->schedule();
        text << " fault " << s.seed << " " << s.sensorDropProb << " "
             << s.sensorStuckProb << " " << s.sensorNoiseSd << " "
             << s.sensorStuckDurationSec << " " << s.sensorStalenessSec
             << " " << s.actuatorRejectProb << " " << s.actuatorLatchProb
             << " " << s.actuatorLatchDurationSec << " "
             << s.thermalSpikeProb << " " << s.thermalSpikeDeltaC << " "
             << s.thermalSpikeDurationSec;
    }
    return hashLabel(text.str());
}

} // namespace

std::vector<RunMeasurement>
ComparisonHarness::mapWithWorkers(
    size_t n, uint64_t campaign_salt,
    const std::function<RunMeasurement(ExperimentRunner &, size_t)> &fn)
{
    const ExperimentConfig config = runner_.config();
    const FaultInjector *shared_injector = runner_.faultInjector();
    // Same cloning contract as the thread-pool arm: every cell gets a
    // fresh runner (and a private injector built from the shared
    // schedule), which is what makes any execution tier bit-identical
    // to the serial loop.
    const auto run_cell = [&](size_t i) {
        ExperimentRunner local(config);
        std::optional<FaultInjector> injector;
        if (shared_injector) {
            injector.emplace(shared_injector->schedule());
            local.setFaultInjector(&*injector);
        }
        return fn(local, i);
    };

    ProcSweepConfig proc;
    proc.workers = workers_;
    proc.campaignHash =
        procCampaignHash(config, shared_injector, n, campaign_salt);
    if (!procJournalStem_.empty())
        proc.journalPath = procJournalStem_ + "." +
            hexU64(proc.campaignHash) + ".jrn";

    const ProcSweepReport report = runProcSweep(
        proc, n, [&run_cell](uint64_t unit) {
            return serializeRunMeasurement(
                run_cell(static_cast<size_t>(unit)));
        });

    if (report.drained) {
        // Progress (if journaled) is durable; exit the way a Ctrl-C'd
        // process should so callers/scripts see the conventional
        // signal status. A rerun resumes from the journal.
        warn("harness: campaign interrupted by signal %d with %llu "
             "cells journaled; re-run to resume",
             report.drainSignal,
             static_cast<unsigned long long>(report.unitsRun +
                                             report.unitsResumed));
        ::raise(report.drainSignal);
        fatal("harness: campaign interrupted");  // signal was ignored
    }

    std::vector<RunMeasurement> results(n);
    for (size_t i = 0; i < n; ++i) {
        if (!report.completed[i]) {
            // Quarantined cell (worker kept dying on it): recompute
            // in-process so the sweep still returns a full grid — a
            // deterministic crash will then surface here, in a
            // debuggable process, instead of vanishing into a report.
            warn("harness: cell %zu was quarantined by the process "
                 "tier; recomputing in-process",
                 i);
            results[i] = run_cell(i);
            continue;
        }
        if (!tryDeserializeRunMeasurement(report.results[i],
                                          &results[i]))
            fatal("harness: cell %zu payload from the process tier "
                  "does not deserialize (journal from an older "
                  "build?); delete the journal and re-run",
                  i);
    }
    return results;
}

std::vector<RunMeasurement>
ComparisonHarness::runLaneBatch(size_t first, size_t count,
                                const LaneCellFn &make_cell)
{
    // Same cloning contract as the thread/process tiers: every lane
    // owns a private fault injector built from the shared schedule,
    // reset at RunContext construction, so each lane reproduces the
    // serial per-run fault stream exactly.
    const FaultInjector *shared_injector = runner_.faultInjector();
    std::vector<LaneCell> cells;
    std::vector<std::unique_ptr<FaultInjector>> injectors;
    std::vector<RunContext::Params> specs;
    cells.reserve(count);
    injectors.reserve(count);
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        cells.push_back(make_cell(first + i));
        const LaneCell &cell = cells.back();
        RunContext::Params p;
        p.page = cell.page;
        p.corun = cell.corun.get();
        p.label = cell.label;
        p.governor = cell.governor.get();
        p.initialFreq = cell.initialFreq;
        if (shared_injector) {
            injectors.push_back(std::make_unique<FaultInjector>(
                shared_injector->schedule()));
            p.fault = injectors.back().get();
        }
        specs.push_back(std::move(p));
    }
    LaneBatchSimulator batch(runner_.config(), std::move(specs));
    return batch.finishAll();
}

std::vector<RunMeasurement>
ComparisonHarness::mapWithLanes(size_t n, const LaneCellFn &make_cell)
{
    const size_t batches = (n + lanes_ - 1) / lanes_;
    const auto run_batch = [&](size_t b) {
        const size_t first = b * lanes_;
        const size_t count = std::min<size_t>(lanes_, n - first);
        return runLaneBatch(first, count, make_cell);
    };
    static MetricCounter &cells_queued =
        MetricsRegistry::global().counter("harness.cells_queued");
    static MetricCounter &cells_done =
        MetricsRegistry::global().counter("harness.cells_done");
    cells_queued.add(n);

    std::vector<std::vector<RunMeasurement>> per_batch;
    if (jobs_ <= 1 || batches <= 1) {
        per_batch.reserve(batches);
        for (size_t b = 0; b < batches; ++b)
            per_batch.push_back(run_batch(b));
    } else {
        per_batch = parallelMap<std::vector<RunMeasurement>>(
            batches, run_batch, jobs_);
    }
    std::vector<RunMeasurement> results;
    results.reserve(n);
    for (auto &batch : per_batch)
        for (auto &m : batch) {
            results.push_back(std::move(m));
            cells_done.add();
        }
    return results;
}

std::vector<RunMeasurement>
ComparisonHarness::mapWithWorkersLanes(size_t n, uint64_t campaign_salt,
                                       const LaneCellFn &make_cell)
{
    const size_t batches = (n + lanes_ - 1) / lanes_;
    const auto run_batch = [&](size_t b) {
        const size_t first = b * lanes_;
        const size_t count = std::min<size_t>(lanes_, n - first);
        return runLaneBatch(first, count, make_cell);
    };

    ProcSweepConfig proc;
    proc.workers = workers_;
    proc.campaignHash =
        procCampaignHash(runner_.config(), runner_.faultInjector(), n,
                         campaign_salt, lanes_);
    if (!procJournalStem_.empty())
        proc.journalPath = procJournalStem_ + "." +
            hexU64(proc.campaignHash) + ".jrn";

    const ProcSweepReport report = runProcSweep(
        proc, batches, [&run_batch](uint64_t b) {
            const std::vector<RunMeasurement> ms =
                run_batch(static_cast<size_t>(b));
            std::vector<std::string> payloads;
            payloads.reserve(ms.size());
            for (const RunMeasurement &m : ms)
                payloads.push_back(serializeRunMeasurement(m));
            return packPayloads(payloads);
        });

    if (report.drained) {
        warn("harness: campaign interrupted by signal %d with %llu "
             "batches journaled; re-run to resume",
             report.drainSignal,
             static_cast<unsigned long long>(report.unitsRun +
                                             report.unitsResumed));
        ::raise(report.drainSignal);
        fatal("harness: campaign interrupted");  // signal was ignored
    }

    std::vector<RunMeasurement> results(n);
    for (size_t b = 0; b < batches; ++b) {
        const size_t first = b * lanes_;
        const size_t count = std::min<size_t>(lanes_, n - first);
        if (!report.completed[b]) {
            warn("harness: batch %zu was quarantined by the process "
                 "tier; recomputing in-process",
                 b);
            std::vector<RunMeasurement> ms = run_batch(b);
            for (size_t i = 0; i < count; ++i)
                results[first + i] = std::move(ms[i]);
            continue;
        }
        std::vector<std::string> payloads;
        if (!tryUnpackPayloads(report.results[b], &payloads) ||
            payloads.size() != count)
            fatal("harness: batch %zu payload from the process tier "
                  "does not unpack (journal from an older build or a "
                  "different lane count?); delete the journal and "
                  "re-run",
                  b);
        for (size_t i = 0; i < count; ++i)
            if (!tryDeserializeRunMeasurement(payloads[i],
                                              &results[first + i]))
                fatal("harness: batch %zu cell %zu payload from the "
                      "process tier does not deserialize; delete the "
                      "journal and re-run",
                      b, i);
    }
    return results;
}

std::vector<RunMeasurement>
ComparisonHarness::mapWithRunners(
    size_t n, uint64_t campaign_salt,
    const std::function<RunMeasurement(ExperimentRunner &, size_t)> &fn,
    const LaneCellFn &make_cell)
{
    const bool lane_tier = lanes_ > 1 && n > 1 && make_cell != nullptr;
    if (workers_ > 0 && n > 0) {
        if (lane_tier)
            return mapWithWorkersLanes(n, campaign_salt, make_cell);
        return mapWithWorkers(n, campaign_salt, fn);
    }
    if (lane_tier)
        return mapWithLanes(n, make_cell);
    if (jobs_ <= 1 || n <= 1) {
        // Legacy serial path: every cell on the member runner.
        std::vector<RunMeasurement> results;
        results.reserve(n);
        for (size_t i = 0; i < n; ++i)
            results.push_back(fn(runner_, i));
        return results;
    }

    // Each cell gets a runner cloned from the member runner: same
    // config, and — when a fault injector is attached — a private
    // injector built from the same schedule. Injectors are reset at
    // the start of every run, so a cloned injector reproduces the
    // member injector's per-run fault stream exactly; that (plus
    // per-run construction of SoC/power/RNG state) is what makes the
    // parallel results bit-identical to the serial ones.
    const ExperimentConfig config = runner_.config();
    const FaultInjector *shared_injector = runner_.faultInjector();
    static MetricCounter &cells_queued =
        MetricsRegistry::global().counter("harness.cells_queued");
    static MetricCounter &cells_done =
        MetricsRegistry::global().counter("harness.cells_done");
    cells_queued.add(n);
    return parallelMap<RunMeasurement>(
        n,
        [&](size_t i) {
            ExperimentRunner local(config);
            std::optional<FaultInjector> injector;
            if (shared_injector) {
                injector.emplace(shared_injector->schedule());
                local.setFaultInjector(&*injector);
            }
            RunMeasurement m = fn(local, i);
            cells_done.add();
            return m;
        },
        jobs_);
}

std::vector<ComparisonRecord>
ComparisonHarness::runAll(const std::vector<WorkloadSpec> &workloads,
                          const std::vector<std::string> &governors)
{
    const auto &names = governors.empty() ? paperGovernors() : governors;
    const size_t cells = workloads.size() * names.size();
    std::ostringstream salt;
    salt << "runAll";
    for (const auto &w : workloads)
        salt << " " << w.label();
    for (const auto &g : names)
        salt << " " << g;
    std::vector<RunMeasurement> flat = mapWithRunners(
        cells, hashLabel(salt.str()),
        [&](ExperimentRunner &runner, size_t i) {
            const WorkloadSpec &workload = workloads[i / names.size()];
            const std::string &name = names[i % names.size()];
            return runOneWith(runner, workload, name);
        },
        [&](size_t i) {
            return makeLaneCell(workloads[i / names.size()],
                                names[i % names.size()]);
        });

    std::vector<ComparisonRecord> records;
    records.reserve(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        ComparisonRecord record;
        record.workload = workloads[w];
        for (size_t g = 0; g < names.size(); ++g)
            record.setMeasurement(names[g],
                                  std::move(flat[w * names.size() + g]));
        records.push_back(std::move(record));
    }
    return records;
}

RunMeasurement
ComparisonHarness::pickOfflineOpt(std::vector<RunMeasurement> sweep) const
{
    const FreqTable &table = runner_.freqTable();
    // A short sweep used to fall through to a default-constructed
    // RunMeasurement (governor "", PPW 0) that silently polluted
    // downstream aggregates; it is a caller bug, so fail loudly.
    if (sweep.size() < table.size())
        fatal("pickOfflineOpt: sweep covers %zu OPPs but the table has "
              "%zu; the offline-optimal search needs every OPP",
              sweep.size(), table.size());
    RunMeasurement best;
    RunMeasurement fastest;
    bool have_meeting = false;
    for (size_t f = 0; f < sweep.size(); ++f) {
        RunMeasurement &m = sweep[f];
        m.governor = "offline_opt";
        if (f == table.maxIndex())
            fastest = m;
        if (m.meetsDeadline && (!have_meeting || m.ppw > best.ppw)) {
            best = m;
            have_meeting = true;
        }
    }
    // Like DORA, fall back to flat-out when no OPP meets the deadline.
    return have_meeting ? best : fastest;
}

RunMeasurement
ComparisonHarness::offlineOpt(const WorkloadSpec &workload)
{
    const size_t freqs = runner_.freqTable().size();
    return pickOfflineOpt(mapWithRunners(
        freqs, hashLabel("offlineOpt " + workload.label()),
        [&](ExperimentRunner &runner, size_t f) {
            return runner.runAtFrequency(workload, f);
        },
        [&](size_t f) { return makeLaneCell(workload, f); }));
}

std::vector<RunMeasurement>
ComparisonHarness::offlineOptMany(
    const std::vector<WorkloadSpec> &workloads)
{
    const size_t freqs = runner_.freqTable().size();
    std::ostringstream salt;
    salt << "offlineOptMany";
    for (const auto &w : workloads)
        salt << " " << w.label();
    std::vector<RunMeasurement> flat = mapWithRunners(
        workloads.size() * freqs, hashLabel(salt.str()),
        [&](ExperimentRunner &runner, size_t i) {
            return runner.runAtFrequency(workloads[i / freqs], i % freqs);
        },
        [&](size_t i) {
            return makeLaneCell(workloads[i / freqs], i % freqs);
        });

    std::vector<RunMeasurement> results;
    results.reserve(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<RunMeasurement> sweep(
            std::make_move_iterator(flat.begin() + w * freqs),
            std::make_move_iterator(flat.begin() + (w + 1) * freqs));
        results.push_back(pickOfflineOpt(std::move(sweep)));
    }
    return results;
}

namespace
{

/** True when @p record's @p id run or its baseline is censored. */
bool
recordCensored(const ComparisonRecord &record, size_t id)
{
    return record.measurement(id).censored ||
        record.measurement(kInteractiveId).censored;
}

} // namespace

double
meanNormalizedPpw(const std::vector<ComparisonRecord> &records,
                  const std::string &governor)
{
    const size_t id = governorIndex(governor);
    double sum = 0.0;
    size_t counted = 0;
    for (const auto &r : records) {
        // A censored run's PPW of 0 is a flag, not an observation:
        // averaging it would reward governors that fail pages outright
        // over governors that finish them late.
        if (recordCensored(r, id))
            continue;
        sum += r.normalizedPpw(id);
        ++counted;
    }
    return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

size_t
censoredCount(const std::vector<ComparisonRecord> &records,
              const std::string &governor)
{
    const size_t id = governorIndex(governor);
    size_t censored = 0;
    for (const auto &r : records)
        if (recordCensored(r, id))
            ++censored;
    return censored;
}

double
deadlineMeetRate(const std::vector<ComparisonRecord> &records,
                 const std::string &governor)
{
    if (records.empty())
        return 0.0;
    const size_t id = governorIndex(governor);
    double met = 0.0;
    for (const auto &r : records)
        if (r.measurement(id).meetsDeadline)
            met += 1.0;
    return met / static_cast<double>(records.size());
}

} // namespace dora
