/**
 * @file
 * FleetSpec: a seeded description of a heterogeneous device
 * population, and the per-device sampler that expands it.
 *
 * The fleet tier evaluates governor policy the way it ships: as a
 * rollout across thousands-to-millions of simulated users, not one
 * paper-fidelity phone. A FleetSpec holds the population
 * distributions — silicon speed/voltage binning around the stock
 * MSM8974 tables, thermal-envelope spread, ambient temperature range,
 * page mix, co-runner mix, and fault incidence. sampleDevice() maps
 * (spec, deviceIndex) to a concrete DeviceSpec through a per-device
 * seeded RNG stream, so
 *
 *   - sampling is order-independent: device i draws the same values
 *     whether the campaign visits it first, last, or on a different
 *     worker process;
 *   - any single device is replayable from just (spec.seed, index),
 *     which is what makes fleet campaigns debuggable.
 *
 * Devices bucket into cohorts (co-runner class x ambient band x
 * faulty), the unit of the per-cohort breakdowns in FleetReport.
 */

#ifndef DORA_FLEET_FLEET_SPEC_HH
#define DORA_FLEET_FLEET_SPEC_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "workloads/kernel.hh"

namespace dora
{

/** Population distributions of a fleet campaign. */
struct FleetSpec
{
    uint64_t seed = 1;      //!< campaign seed; names every RNG stream
    size_t devices = 1000;  //!< population size

    /**
     * Silicon binning: per-device multipliers on the stock DVFS
     * table, drawn as 1 + sd * gaussian and clamped to a plausible
     * binning range (see sampleDevice). freqScale moves every OPP's
     * core/bus clock, voltageScale every rail voltage.
     */
    double freqScaleSd = 0.04;
    double voltageScaleSd = 0.03;
    /** Case/cooling spread: multiplier on junction-to-ambient R. */
    double thermalResistanceSd = 0.10;

    /** Ambient temperature, uniform over [min, max] degC. */
    double ambientMinC = 10.0;
    double ambientMaxC = 40.0;

    /**
     * Co-runner mix weights (normalized at sampling time; all four
     * zero is invalid). "None" is the browser running alone.
     */
    double corunNoneWeight = 0.25;
    double corunLowWeight = 0.25;
    double corunMediumWeight = 0.25;
    double corunHighWeight = 0.25;

    /** Fraction of devices with a combined fault schedule attached. */
    double faultIncidence = 0.0;
};

/**
 * Canonical text rendering of a spec — every double as a hex float —
 * used for the campaign hash. Two specs render identically iff they
 * describe bit-identical populations.
 */
std::string fleetSpecText(const FleetSpec &spec);

/** FNV-1a digest of fleetSpecText(). */
uint64_t fleetSpecHash(const FleetSpec &spec);

/** fatal() unless @p spec is well-formed (ranges, weights, counts). */
void validateFleetSpec(const FleetSpec &spec);

/** One sampled device of the population. */
struct DeviceSpec
{
    size_t index = 0;       //!< position in the population
    std::string page;       //!< page-corpus name this user loads
    MemIntensity corun = MemIntensity::None;
    double freqScale = 1.0;
    double voltageScale = 1.0;
    double thermalResistanceScale = 1.0;
    double ambientC = 25.0;
    bool faulty = false;
    uint64_t faultSeed = 0; //!< schedule seed when faulty

    /** Stable run label: "fleet<seed>-dev<index>:<page>+<corun>". */
    std::string label(uint64_t campaign_seed) const;

    /** Cohort key: co-runner class x ambient band x faulty. */
    std::string cohort() const;
};

/**
 * Expand device @p index of @p spec. Deterministic and
 * order-independent: the device draws from its own RNG stream seeded
 * by (spec.seed, index) only.
 */
DeviceSpec sampleDevice(const FleetSpec &spec, size_t index);

/** Number of distinct cohort keys a population can produce. */
size_t fleetCohortCount();

} // namespace dora

#endif // DORA_FLEET_FLEET_SPEC_HH
