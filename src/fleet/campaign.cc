#include "fleet/campaign.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>

#include <fcntl.h>
#include <unistd.h>

#include "browser/page_corpus.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "exec/proc/supervisor.hh"
#include "exec/thread_pool.hh"
#include "fault/fault_injector.hh"
#include "harness/comparison.hh"
#include "obs/trace.hh"
#include "sim/lane_batch.hh"
#include "workloads/corun_task.hh"

namespace dora
{

namespace
{

void
appendHexDouble(std::string &text, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a", value);
    text += buf;
}

bool
writeAllFd(int fd, const char *p, size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

/** Whole-file read; false when the file is absent or unreadable. */
bool
readFile(const std::string &path, std::string *out)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    char buf[64 * 1024];
    for (;;) {
        const ssize_t r = ::read(fd, buf, sizeof(buf));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        if (r == 0)
            break;
        out->append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return true;
}

/** Temp + fsync + rename: a kill leaves the old file or the new one. */
bool
writeFileAtomic(const std::string &path, std::string_view bytes)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;
    if (!writeAllFd(fd, bytes.data(), bytes.size()) ||
        ::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

/**
 * Campaign aggregate checkpoint: the absorbed-prefix FleetShardAggregate
 * plus enough identity (campaign hash, chunk geometry) to refuse a
 * checkpoint from any other campaign. Versioned snapshot section.
 */
std::string
checkpointBytes(uint64_t hash, uint64_t chunk_count,
                uint32_t chunk_devices, uint64_t absorbed,
                const FleetShardAggregate &campaign)
{
    SnapshotWriter w;
    w.beginSection("fckp", 1);
    w.putU64(hash);
    w.putU64(chunk_count);
    w.putU32(chunk_devices);
    w.putU64(absorbed);
    w.putString(campaign.serialize());
    return w.finish();
}

bool
tryLoadCheckpoint(const std::string &path, uint64_t hash,
                  uint64_t chunk_count, uint32_t chunk_devices,
                  uint64_t device_total, size_t gcount,
                  uint64_t *absorbed, FleetShardAggregate *campaign)
{
    std::string bytes;
    if (!readFile(path, &bytes))
        return false;  // no checkpoint yet: a fresh campaign
    SnapshotReader r(bytes);
    uint64_t h = 0, chunks = 0, a = 0;
    uint32_t cd = 0;
    std::string agg;
    if (!r.checksumOk() || !r.beginSection("fckp", 1) ||
        !r.getU64(&h) || !r.getU64(&chunks) || !r.getU32(&cd) ||
        !r.getU64(&a) || !r.getString(&agg) || !r.atEnd() ||
        h != hash || chunks != chunk_count || cd != chunk_devices ||
        a > chunk_count) {
        warn("fleet: ignoring checkpoint %s (different campaign, "
             "torn write, or newer format); the journal still covers "
             "completed chunks",
             path.c_str());
        return false;
    }
    FleetShardAggregate loaded;
    const uint64_t expect_cells =
        std::min<uint64_t>(a * chunk_devices, device_total) * gcount;
    if (!loaded.tryDeserialize(agg) || loaded.firstCell() != 0 ||
        loaded.cellCount() != expect_cells) {
        warn("fleet: ignoring checkpoint %s (aggregate does not match "
             "the stated chunk prefix)",
             path.c_str());
        return false;
    }
    *absorbed = a;
    *campaign = std::move(loaded);
    return true;
}

} // namespace

uint64_t
fleetCampaignHash(const FleetCampaignConfig &config)
{
    // "rev2": bump on any change to the cell grid layout or the unit
    // payload format — the hash names resume journals and checkpoints.
    // rev2 units are chunk aggregates (rev1 shipped raw measurements
    // in lane-batch units), so the chunk width is part of the
    // identity and the lane width no longer is: the lane contract
    // makes every cell's measurement lane-invariant, so one journal
    // resumes at any lane count.
    std::string text = "fleet-campaign-rev2 " +
        fleetSpecText(config.spec) + " protocol " +
        hexU64(experimentConfigHash(config.base)) + " governors";
    for (const auto &governor : config.governors)
        text += " " + governor;
    text += " chunk " + std::to_string(config.chunkDevices);
    return hashLabel(text);
}

/** Owned per-cell objects — the cell's device in a box. */
struct FleetEngine::DeviceCell
{
    ExperimentConfig config;
    const WebPage *page = nullptr;
    std::string label;
    std::unique_ptr<CorunTask> corun;
    std::unique_ptr<Governor> governor;
    std::unique_ptr<FaultInjector> fault;
};

FleetEngine::FleetEngine(FleetCampaignConfig config)
    : config_(std::move(config))
{
    validateFleetSpec(config_.spec);
    if (config_.governors.empty())
        fatal("FleetEngine: empty governor list");
    if (config_.lanes == 0)
        config_.lanes = 1;
    if (config_.chunkDevices == 0)
        config_.chunkDevices = 1;
    if (config_.checkpointIntervalChunks == 0)
        config_.checkpointIntervalChunks = 1;
}

size_t
FleetEngine::cellCount() const
{
    return config_.spec.devices * config_.governors.size();
}

size_t
FleetEngine::chunkCount() const
{
    const size_t per = config_.chunkDevices;
    return (config_.spec.devices + per - 1) / per;
}

FleetEngine::DeviceCell
FleetEngine::makeCell(size_t cell_index, const DeviceSpec &sampled) const
{
    const size_t gcount = config_.governors.size();
    const std::string &governor = config_.governors[cell_index % gcount];

    DeviceCell cell;
    cell.config = config_.base;
    cell.config.freqScale = sampled.freqScale;
    cell.config.voltageScale = sampled.voltageScale;
    cell.config.thermalResistanceScale = sampled.thermalResistanceScale;
    cell.config.ambientC = sampled.ambientC;

    cell.page = &PageCorpus::byName(sampled.page);
    // The label omits the governor on purpose: it salts the page and
    // co-runner RNG streams, and every governor must see the same
    // device behaving the same way (exactly like the harness labels).
    cell.label = sampled.label(config_.spec.seed);
    if (sampled.corun != MemIntensity::None) {
        const KernelSpec &kernel =
            KernelCatalog::representative(sampled.corun);
        // Same "corun:" decorrelation recipe as ExperimentRunner.
        // dora:stream-tag-shared(same workload, same corun stream)
        const uint64_t salt = hashLabel("corun:" + cell.label) % 4096;
        cell.corun = std::make_unique<CorunTask>(kernel, salt);
    }
    cell.governor = makeNamedGovernor(governor, config_.models);
    if (sampled.faulty)
        cell.fault = std::make_unique<FaultInjector>(
            FaultSchedule::combined(sampled.faultSeed));
    return cell;
}

std::vector<RunMeasurement>
FleetEngine::runLaneBatch(size_t first, size_t count,
                          const std::vector<DeviceSpec> &devices,
                          size_t first_device) const
{
    const size_t gcount = config_.governors.size();
    std::vector<DeviceCell> cells;
    std::vector<LaneBatchSimulator::LaneSpec> specs;
    cells.reserve(count);
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const size_t cell_index = first + i;
        cells.push_back(makeCell(
            cell_index, devices[cell_index / gcount - first_device]));
        const DeviceCell &cell = cells.back();
        LaneBatchSimulator::LaneSpec spec;
        spec.config = cell.config;
        spec.params.page = cell.page;
        spec.params.corun = cell.corun.get();
        spec.params.label = cell.label;
        spec.params.governor = cell.governor.get();
        spec.params.fault = cell.fault.get();
        specs.push_back(std::move(spec));
    }
    // A single lane is the exact legacy per-run path, so one code
    // path serves every tier; count > 1 overlaps the devices'
    // memory-walk miss chains (bit-identical by the lane contract).
    LaneBatchSimulator batch(specs);
    return batch.finishAll();
}

std::vector<RunMeasurement>
FleetEngine::runBatch(size_t first, size_t count) const
{
    const size_t gcount = config_.governors.size();
    const size_t first_device = first / gcount;
    const size_t last_device = (first + count - 1) / gcount;
    std::vector<DeviceSpec> devices;
    devices.reserve(last_device - first_device + 1);
    for (size_t d = first_device; d <= last_device; ++d)
        devices.push_back(sampleDevice(config_.spec, d));
    return runLaneBatch(first, count, devices, first_device);
}

FleetShardAggregate
FleetEngine::runChunk(size_t chunk_index) const
{
    const size_t gcount = config_.governors.size();
    const size_t chunk_cells =
        static_cast<size_t>(config_.chunkDevices) * gcount;
    const size_t n = cellCount();
    const size_t first = chunk_index * chunk_cells;
    const size_t count = std::min(chunk_cells, n - first);
    const size_t first_device = first / gcount;
    const size_t device_count = count / gcount;  // whole devices

    // Per-cell setup amortization: sample each device ONCE per chunk
    // (spec + cohort were previously re-derived for every governor
    // cell and again at aggregation time) and reuse the spec for all
    // of its cells.
    std::vector<DeviceSpec> devices;
    std::vector<std::string> cohorts;
    devices.reserve(device_count);
    cohorts.reserve(device_count);
    for (size_t d = 0; d < device_count; ++d) {
        devices.push_back(sampleDevice(config_.spec, first_device + d));
        cohorts.push_back(devices.back().cohort());
    }

    FleetShardAggregate agg =
        FleetShardAggregate::forChunk(gcount, first);
    const size_t lanes = config_.lanes;
    for (size_t done = 0; done < count;) {
        const size_t batch = std::min(lanes, count - done);
        const std::vector<RunMeasurement> ms =
            runLaneBatch(first + done, batch, devices, first_device);
        for (size_t i = 0; i < batch; ++i) {
            const size_t cell = first + done + i;
            const size_t g = cell % gcount;
            agg.pushCell(g, cohorts[cell / gcount - first_device],
                         g == 0, ms[i]);
        }
        done += batch;
    }
    return agg;
}

FleetShardAggregate
FleetEngine::runCampaignInProcess() const
{
    const size_t chunks = chunkCount();
    FleetShardAggregate campaign =
        FleetShardAggregate::forCampaign(config_.governors.size());
    if (config_.jobs <= 1 || chunks <= 1) {
        // Pure streaming: one chunk of state live at a time.
        for (size_t c = 0; c < chunks; ++c)
            campaign.merge(runChunk(c));
        return campaign;
    }
    // Thread tier: chunks evaluate in parallel, then fold in chunk
    // order (the canonical fold). A chunk aggregate is fixed-size, so
    // holding all of them is O(chunks), not O(devices).
    const std::vector<FleetShardAggregate> per_chunk =
        parallelMap<FleetShardAggregate>(
            chunks, [this](size_t c) { return runChunk(c); },
            config_.jobs);
    for (const FleetShardAggregate &chunk : per_chunk)
        campaign.merge(chunk);
    return campaign;
}

FleetShardAggregate
FleetEngine::runCampaignWithWorkers() const
{
    const size_t gcount = config_.governors.size();
    const uint64_t chunks = chunkCount();
    const uint64_t hash = fleetCampaignHash(config_);

    ProcSweepConfig proc;
    proc.workers = config_.workers;
    proc.campaignHash = hash;
    // The streaming hook below is the consumer: the supervisor keeps
    // no per-unit payloads, so its memory is O(workers + reorder
    // window), independent of the fleet size.
    proc.discardResults = true;

    std::string ckpt_path;
    if (!config_.journalStem.empty()) {
        const std::string stem =
            config_.journalStem + "." + hexU64(hash);
        proc.journalPath = stem + ".jrn";
        ckpt_path = stem + ".ckpt";
    }

    FleetShardAggregate campaign =
        FleetShardAggregate::forCampaign(gcount);
    uint64_t absorbed = 0;      // chunks folded into the prefix
    uint64_t durable_floor = 0; // chunks durable in the checkpoint
    if (!ckpt_path.empty() &&
        tryLoadCheckpoint(ckpt_path, hash, chunks,
                          config_.chunkDevices, config_.spec.devices,
                          gcount, &absorbed, &campaign)) {
        durable_floor = absorbed;
        inform("fleet: checkpoint %s covers %llu/%llu chunks; "
               "resuming past them",
               ckpt_path.c_str(),
               static_cast<unsigned long long>(absorbed),
               static_cast<unsigned long long>(chunks));
    }
    proc.precompletedPrefix = absorbed;

    // Chunks complete in any order; fold stays canonical by parking
    // out-of-order arrivals until the next-in-line chunk lands.
    std::map<uint64_t, FleetShardAggregate> pending;
    uint64_t since_ckpt = 0;
    proc.onUnitComplete = [&](uint64_t unit,
                              const std::string &payload) -> uint64_t {
        FleetShardAggregate chunk;
        if (!chunk.tryDeserialize(payload))
            fatal("fleet: chunk %llu payload from the process tier "
                  "does not deserialize (journal from an older "
                  "build?); delete %s and re-run",
                  static_cast<unsigned long long>(unit),
                  proc.journalPath.c_str());
        pending.emplace(unit, std::move(chunk));
        while (!pending.empty() &&
               pending.begin()->first == absorbed) {
            campaign.merge(pending.begin()->second);
            pending.erase(pending.begin());
            ++absorbed;
            ++since_ckpt;
        }
        if (!ckpt_path.empty() &&
            since_ckpt >= config_.checkpointIntervalChunks) {
            if (writeFileAtomic(
                    ckpt_path,
                    checkpointBytes(hash, chunks,
                                    config_.chunkDevices, absorbed,
                                    campaign)))
                durable_floor = absorbed;
            else
                warn("fleet: checkpoint write to %s failed; the "
                     "journal keeps the full history",
                     ckpt_path.c_str());
            since_ckpt = 0;
        }
        return durable_floor;
    };

    const ProcSweepReport report =
        runProcSweep(proc, chunks, [this](uint64_t c) {
            return runChunk(static_cast<size_t>(c)).serialize();
        });

    if (report.drained) {
        // Progress (if journaled) is durable; die by the original
        // signal so scripts see the conventional status, and a rerun
        // resumes from the checkpoint + journal.
        warn("fleet: campaign interrupted by signal %d with %llu "
             "chunks durable; re-run to resume",
             report.drainSignal,
             static_cast<unsigned long long>(
                 report.unitsRun + report.unitsResumed +
                 report.unitsPrecompleted));
        ::raise(report.drainSignal);
        fatal("fleet: campaign interrupted"); // signal was ignored
    }

    // Quarantined chunks leave holes; recompute them in-process so
    // the fold stays canonical and the campaign still completes.
    while (absorbed < chunks) {
        const auto it = pending.find(absorbed);
        if (it != pending.end()) {
            campaign.merge(it->second);
            pending.erase(it);
        } else {
            warn("fleet: chunk %llu was quarantined by the process "
                 "tier; recomputing in-process",
                 static_cast<unsigned long long>(absorbed));
            campaign.merge(runChunk(absorbed));
        }
        ++absorbed;
    }
    return campaign;
}

std::vector<RunMeasurement>
FleetEngine::runAllCells() const
{
    const size_t n = cellCount();
    const size_t lanes = config_.lanes;
    const size_t batches = (n + lanes - 1) / lanes;
    const auto run_batch = [&](size_t b) {
        const size_t first = b * lanes;
        return runBatch(first, std::min<size_t>(lanes, n - first));
    };
    std::vector<std::vector<RunMeasurement>> per_batch;
    if (config_.jobs <= 1 || batches <= 1) {
        per_batch.reserve(batches);
        for (size_t b = 0; b < batches; ++b)
            per_batch.push_back(run_batch(b));
    } else {
        per_batch = parallelMap<std::vector<RunMeasurement>>(
            batches, run_batch, config_.jobs);
    }
    std::vector<RunMeasurement> results;
    results.reserve(n);
    for (auto &batch : per_batch)
        for (auto &m : batch)
            results.push_back(std::move(m));
    return results;
}

FleetReport
FleetEngine::buildReport(const FleetShardAggregate &campaign) const
{
    const size_t gcount = config_.governors.size();
    FleetReport report;
    report.devices = config_.spec.devices;
    report.populationDigest = campaign.digest();
    report.byGovernor.resize(gcount);

    for (size_t g = 0; g < gcount; ++g) {
        const FleetShardAggregate::GovernorAcc &acc =
            campaign.governors()[g];
        FleetGovernorStats &stats = report.byGovernor[g];
        stats.governor = config_.governors[g];
        stats.devices = acc.devices;
        stats.censored = acc.censored;
        stats.deadlineMet = acc.met;
        if (acc.devices > 0)
            stats.meetRate = static_cast<double>(acc.met) /
                static_cast<double>(acc.devices);
        stats.ppw = acc.ppw;
        stats.loadTime = acc.loadTime;
        if (acc.uncensored > 0) {
            stats.meanPpw = acc.ppwSum.value() /
                static_cast<double>(acc.uncensored);
            stats.p50Ppw = stats.ppw.quantile(0.50);
            stats.p95Ppw = stats.ppw.quantile(0.95);
            stats.p99Ppw = stats.ppw.quantile(0.99);
            stats.p50LoadSec = stats.loadTime.quantile(0.50);
            stats.p95LoadSec = stats.loadTime.quantile(0.95);
            stats.p99LoadSec = stats.loadTime.quantile(0.99);
        }
    }

    report.cohorts.reserve(campaign.cohorts().size());
    for (const auto &[name, acc] : campaign.cohorts()) {
        FleetCohortStats c;
        c.cohort = name;
        c.devices = acc.devices;
        c.meanPpw.resize(gcount, 0.0);
        c.meetRate.resize(gcount, 0.0);
        c.censored.resize(gcount, 0);
        for (size_t g = 0; g < gcount; ++g) {
            if (acc.uncensored[g] > 0)
                c.meanPpw[g] = acc.ppwSum[g].value() /
                    static_cast<double>(acc.uncensored[g]);
            if (acc.devices > 0)
                c.meetRate[g] = static_cast<double>(acc.met[g]) /
                    static_cast<double>(acc.devices);
            c.censored[g] = acc.censored[g];
        }
        report.cohorts.push_back(std::move(c));
    }
    return report;
}

FleetReport
FleetEngine::run()
{
    const FleetShardAggregate campaign = config_.workers > 0
        ? runCampaignWithWorkers()
        : runCampaignInProcess();
    return buildReport(campaign);
}

RunMeasurement
FleetEngine::replayDevice(size_t device_index,
                          const std::string &governor) const
{
    if (device_index >= config_.spec.devices)
        fatal("FleetEngine::replayDevice: device %zu beyond "
              "population of %zu",
              device_index, config_.spec.devices);
    const size_t gcount = config_.governors.size();
    for (size_t g = 0; g < gcount; ++g)
        if (config_.governors[g] == governor)
            return runBatch(device_index * gcount + g, 1).front();
    fatal("FleetEngine::replayDevice: governor '%s' is not in this "
          "campaign",
          governor.c_str());
}

std::string
fleetReportText(const FleetReport &report)
{
    std::string text = "FLEET devices=" +
        std::to_string(report.devices) +
        " digest=" + hexU64(report.populationDigest) + "\n";
    for (const FleetGovernorStats &g : report.byGovernor) {
        text += "GOV " + g.governor +
            " devices=" + std::to_string(g.devices) +
            " censored=" + std::to_string(g.censored) +
            " met=" + std::to_string(g.deadlineMet) + " meet=";
        appendHexDouble(text, g.meetRate);
        text += " mean_ppw=";
        appendHexDouble(text, g.meanPpw);
        text += " p50_ppw=";
        appendHexDouble(text, g.p50Ppw);
        text += " p95_ppw=";
        appendHexDouble(text, g.p95Ppw);
        text += " p99_ppw=";
        appendHexDouble(text, g.p99Ppw);
        text += " p50_load=";
        appendHexDouble(text, g.p50LoadSec);
        text += " p95_load=";
        appendHexDouble(text, g.p95LoadSec);
        text += " p99_load=";
        appendHexDouble(text, g.p99LoadSec);
        text += "\n";
    }
    for (const FleetCohortStats &c : report.cohorts) {
        text += "COHORT [" + c.cohort +
            "] devices=" + std::to_string(c.devices);
        for (size_t g = 0; g < c.meanPpw.size(); ++g) {
            text += " g" + std::to_string(g) + "_mean_ppw=";
            appendHexDouble(text, c.meanPpw[g]);
            text += " g" + std::to_string(g) + "_meet=";
            appendHexDouble(text, c.meetRate[g]);
            text += " g" + std::to_string(g) +
                "_censored=" + std::to_string(c.censored[g]);
        }
        text += "\n";
    }
    return text;
}

} // namespace dora
