#include "fleet/campaign.hh"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <map>

#include "browser/page_corpus.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/proc/supervisor.hh"
#include "exec/thread_pool.hh"
#include "fault/fault_injector.hh"
#include "harness/comparison.hh"
#include "obs/trace.hh"
#include "runner/measurement_io.hh"
#include "sim/lane_batch.hh"
#include "workloads/corun_task.hh"

namespace dora
{

namespace
{

void
appendHexDouble(std::string &text, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a", value);
    text += buf;
}

} // namespace

uint64_t
fleetCampaignHash(const FleetCampaignConfig &config)
{
    // "rev1": bump on any change to the cell grid layout or the unit
    // payload format — the hash names resume journals.
    std::string text = "fleet-campaign-rev1 " +
        fleetSpecText(config.spec) + " protocol " +
        hexU64(experimentConfigHash(config.base)) + " governors";
    for (const auto &governor : config.governors)
        text += " " + governor;
    // The process-tier unit space is lane batches, so the lane width
    // is part of the journal identity; lanes=1 hashes like the
    // pre-lane layout (one unit per cell) by the same convention as
    // the harness procCampaignHash.
    if (config.lanes > 1)
        text += " lanes " + std::to_string(config.lanes);
    return hashLabel(text);
}

/** Owned per-cell objects — the cell's device in a box. */
struct FleetEngine::DeviceCell
{
    ExperimentConfig config;
    const WebPage *page = nullptr;
    std::string label;
    std::unique_ptr<CorunTask> corun;
    std::unique_ptr<Governor> governor;
    std::unique_ptr<FaultInjector> fault;
};

FleetEngine::FleetEngine(FleetCampaignConfig config)
    : config_(std::move(config))
{
    validateFleetSpec(config_.spec);
    if (config_.governors.empty())
        fatal("FleetEngine: empty governor list");
    if (config_.lanes == 0)
        config_.lanes = 1;
}

FleetEngine::DeviceCell
FleetEngine::makeCell(size_t cell_index) const
{
    const size_t gcount = config_.governors.size();
    const size_t device = cell_index / gcount;
    const std::string &governor = config_.governors[cell_index % gcount];
    const DeviceSpec sampled = sampleDevice(config_.spec, device);

    DeviceCell cell;
    cell.config = config_.base;
    cell.config.freqScale = sampled.freqScale;
    cell.config.voltageScale = sampled.voltageScale;
    cell.config.thermalResistanceScale = sampled.thermalResistanceScale;
    cell.config.ambientC = sampled.ambientC;

    cell.page = &PageCorpus::byName(sampled.page);
    // The label omits the governor on purpose: it salts the page and
    // co-runner RNG streams, and every governor must see the same
    // device behaving the same way (exactly like the harness labels).
    cell.label = sampled.label(config_.spec.seed);
    if (sampled.corun != MemIntensity::None) {
        const KernelSpec &kernel =
            KernelCatalog::representative(sampled.corun);
        // Same "corun:" decorrelation recipe as ExperimentRunner.
        const uint64_t salt = hashLabel("corun:" + cell.label) % 4096;
        cell.corun = std::make_unique<CorunTask>(kernel, salt);
    }
    cell.governor = makeNamedGovernor(governor, config_.models);
    if (sampled.faulty)
        cell.fault = std::make_unique<FaultInjector>(
            FaultSchedule::combined(sampled.faultSeed));
    return cell;
}

std::vector<RunMeasurement>
FleetEngine::runBatch(size_t first, size_t count) const
{
    std::vector<DeviceCell> cells;
    std::vector<LaneBatchSimulator::LaneSpec> specs;
    cells.reserve(count);
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        cells.push_back(makeCell(first + i));
        const DeviceCell &cell = cells.back();
        LaneBatchSimulator::LaneSpec spec;
        spec.config = cell.config;
        spec.params.page = cell.page;
        spec.params.corun = cell.corun.get();
        spec.params.label = cell.label;
        spec.params.governor = cell.governor.get();
        spec.params.fault = cell.fault.get();
        specs.push_back(std::move(spec));
    }
    // A single lane is the exact legacy per-run path, so one code
    // path serves every tier; count > 1 overlaps the devices'
    // memory-walk miss chains (bit-identical by the lane contract).
    LaneBatchSimulator batch(specs);
    return batch.finishAll();
}

std::vector<RunMeasurement>
FleetEngine::runBatchesInProcess(size_t n) const
{
    const size_t lanes = config_.lanes;
    const size_t batches = (n + lanes - 1) / lanes;
    const auto run_batch = [&](size_t b) {
        const size_t first = b * lanes;
        return runBatch(first, std::min<size_t>(lanes, n - first));
    };
    std::vector<std::vector<RunMeasurement>> per_batch;
    if (config_.jobs <= 1 || batches <= 1) {
        per_batch.reserve(batches);
        for (size_t b = 0; b < batches; ++b)
            per_batch.push_back(run_batch(b));
    } else {
        per_batch = parallelMap<std::vector<RunMeasurement>>(
            batches, run_batch, config_.jobs);
    }
    std::vector<RunMeasurement> results;
    results.reserve(n);
    for (auto &batch : per_batch)
        for (auto &m : batch)
            results.push_back(std::move(m));
    return results;
}

std::vector<RunMeasurement>
FleetEngine::runBatchesWithWorkers(size_t n) const
{
    const size_t lanes = config_.lanes;
    const size_t batches = (n + lanes - 1) / lanes;
    const auto run_batch = [&](size_t b) {
        const size_t first = b * lanes;
        return runBatch(first, std::min<size_t>(lanes, n - first));
    };

    ProcSweepConfig proc;
    proc.workers = config_.workers;
    proc.campaignHash = fleetCampaignHash(config_);
    if (!config_.journalStem.empty())
        proc.journalPath = config_.journalStem + "." +
            hexU64(proc.campaignHash) + ".jrn";

    const ProcSweepReport report = runProcSweep(
        proc, batches, [&run_batch](uint64_t b) {
            const std::vector<RunMeasurement> ms =
                run_batch(static_cast<size_t>(b));
            std::vector<std::string> payloads;
            payloads.reserve(ms.size());
            for (const RunMeasurement &m : ms)
                payloads.push_back(serializeRunMeasurement(m));
            return packPayloads(payloads);
        });

    if (report.drained) {
        // Progress (if journaled) is durable; die by the original
        // signal so scripts see the conventional status, and a rerun
        // resumes from the journal.
        warn("fleet: campaign interrupted by signal %d with %llu "
             "batches journaled; re-run to resume",
             report.drainSignal,
             static_cast<unsigned long long>(report.unitsRun +
                                             report.unitsResumed));
        ::raise(report.drainSignal);
        fatal("fleet: campaign interrupted"); // signal was ignored
    }

    std::vector<RunMeasurement> results(n);
    for (size_t b = 0; b < batches; ++b) {
        const size_t first = b * lanes;
        const size_t count = std::min<size_t>(lanes, n - first);
        if (!report.completed[b]) {
            warn("fleet: batch %zu was quarantined by the process "
                 "tier; recomputing in-process",
                 b);
            std::vector<RunMeasurement> ms = run_batch(b);
            for (size_t i = 0; i < count; ++i)
                results[first + i] = std::move(ms[i]);
            continue;
        }
        std::vector<std::string> payloads;
        if (!tryUnpackPayloads(report.results[b], &payloads) ||
            payloads.size() != count)
            fatal("fleet: batch %zu payload from the process tier "
                  "does not unpack (journal from an older build or a "
                  "different lane count?); delete the journal and "
                  "re-run",
                  b);
        for (size_t i = 0; i < count; ++i)
            if (!tryDeserializeRunMeasurement(payloads[i],
                                              &results[first + i]))
                fatal("fleet: batch %zu cell %zu payload from the "
                      "process tier does not deserialize; delete the "
                      "journal and re-run",
                      b, i);
    }
    return results;
}

std::vector<RunMeasurement>
FleetEngine::runAllCells() const
{
    const size_t n = config_.spec.devices * config_.governors.size();
    if (config_.workers > 0)
        return runBatchesWithWorkers(n);
    return runBatchesInProcess(n);
}

FleetReport
FleetEngine::aggregate(const std::vector<RunMeasurement> &cells) const
{
    const size_t gcount = config_.governors.size();
    FleetReport report;
    report.devices = config_.spec.devices;
    report.byGovernor.resize(gcount);

    // Order-sensitive digest chain over the grid: the cheap,
    // byte-exact identity the determinism and resume checks compare.
    uint64_t digest = hashLabel("fleet-population");
    for (const RunMeasurement &m : cells)
        digest = hashLabel(hexU64(digest) + ":" +
                           hexU64(runMeasurementDigest(m)));
    report.populationDigest = digest;

    for (size_t g = 0; g < gcount; ++g) {
        FleetGovernorStats &stats = report.byGovernor[g];
        stats.governor = config_.governors[g];
        stats.devices = report.devices;
        for (size_t d = 0; d < report.devices; ++d) {
            const RunMeasurement &m = cells[d * gcount + g];
            if (m.censored) {
                // A censored PPW of 0 is a flag, not a score: count
                // it, never average it into the distribution.
                ++stats.censored;
            } else {
                stats.ppwCdf.push(m.ppw);
                stats.loadTimeCdf.push(m.loadTimeSec);
            }
            if (m.meetsDeadline)
                ++stats.deadlineMet;
        }
        stats.ppwCdf.seal();
        stats.loadTimeCdf.seal();
        stats.meetRate = static_cast<double>(stats.deadlineMet) /
            static_cast<double>(stats.devices);
        if (stats.ppwCdf.count() > 0) {
            stats.meanPpw = stats.ppwCdf.mean();
            stats.p50Ppw = stats.ppwCdf.quantile(0.50);
            stats.p95Ppw = stats.ppwCdf.quantile(0.95);
            stats.p99Ppw = stats.ppwCdf.quantile(0.99);
            stats.p50LoadSec = stats.loadTimeCdf.quantile(0.50);
            stats.p95LoadSec = stats.loadTimeCdf.quantile(0.95);
            stats.p99LoadSec = stats.loadTimeCdf.quantile(0.99);
        }
    }

    // Cohort breakdown. Re-sampling a DeviceSpec is a hash plus a
    // handful of draws — microseconds against the simulations behind
    // each cell — and keeps the engine stateless.
    struct CohortAcc
    {
        size_t devices = 0;
        std::vector<double> ppwSum;
        std::vector<size_t> uncensored;
        std::vector<size_t> met;
        std::vector<size_t> censored;
    };
    std::map<std::string, CohortAcc> cohorts;
    for (size_t d = 0; d < report.devices; ++d) {
        const DeviceSpec sampled = sampleDevice(config_.spec, d);
        CohortAcc &acc = cohorts[sampled.cohort()];
        if (acc.ppwSum.empty()) {
            acc.ppwSum.resize(gcount, 0.0);
            acc.uncensored.resize(gcount, 0);
            acc.met.resize(gcount, 0);
            acc.censored.resize(gcount, 0);
        }
        ++acc.devices;
        for (size_t g = 0; g < gcount; ++g) {
            const RunMeasurement &m = cells[d * gcount + g];
            if (m.censored) {
                ++acc.censored[g];
            } else {
                acc.ppwSum[g] += m.ppw;
                ++acc.uncensored[g];
            }
            if (m.meetsDeadline)
                ++acc.met[g];
        }
    }
    report.cohorts.reserve(cohorts.size());
    for (const auto &[name, acc] : cohorts) {
        FleetCohortStats c;
        c.cohort = name;
        c.devices = acc.devices;
        c.meanPpw.resize(gcount, 0.0);
        c.meetRate.resize(gcount, 0.0);
        c.censored.resize(gcount, 0);
        for (size_t g = 0; g < gcount; ++g) {
            if (acc.uncensored[g] > 0)
                c.meanPpw[g] = acc.ppwSum[g] /
                    static_cast<double>(acc.uncensored[g]);
            c.meetRate[g] = static_cast<double>(acc.met[g]) /
                static_cast<double>(acc.devices);
            c.censored[g] = acc.censored[g];
        }
        report.cohorts.push_back(std::move(c));
    }
    return report;
}

FleetReport
FleetEngine::run()
{
    return aggregate(runAllCells());
}

RunMeasurement
FleetEngine::replayDevice(size_t device_index,
                          const std::string &governor) const
{
    if (device_index >= config_.spec.devices)
        fatal("FleetEngine::replayDevice: device %zu beyond "
              "population of %zu",
              device_index, config_.spec.devices);
    const size_t gcount = config_.governors.size();
    for (size_t g = 0; g < gcount; ++g)
        if (config_.governors[g] == governor)
            return runBatch(device_index * gcount + g, 1).front();
    fatal("FleetEngine::replayDevice: governor '%s' is not in this "
          "campaign",
          governor.c_str());
}

std::string
fleetReportText(const FleetReport &report)
{
    std::string text = "FLEET devices=" +
        std::to_string(report.devices) +
        " digest=" + hexU64(report.populationDigest) + "\n";
    for (const FleetGovernorStats &g : report.byGovernor) {
        text += "GOV " + g.governor +
            " devices=" + std::to_string(g.devices) +
            " censored=" + std::to_string(g.censored) +
            " met=" + std::to_string(g.deadlineMet) + " meet=";
        appendHexDouble(text, g.meetRate);
        text += " mean_ppw=";
        appendHexDouble(text, g.meanPpw);
        text += " p50_ppw=";
        appendHexDouble(text, g.p50Ppw);
        text += " p95_ppw=";
        appendHexDouble(text, g.p95Ppw);
        text += " p99_ppw=";
        appendHexDouble(text, g.p99Ppw);
        text += " p50_load=";
        appendHexDouble(text, g.p50LoadSec);
        text += " p95_load=";
        appendHexDouble(text, g.p95LoadSec);
        text += " p99_load=";
        appendHexDouble(text, g.p99LoadSec);
        text += "\n";
    }
    for (const FleetCohortStats &c : report.cohorts) {
        text += "COHORT [" + c.cohort +
            "] devices=" + std::to_string(c.devices);
        for (size_t g = 0; g < c.meanPpw.size(); ++g) {
            text += " g" + std::to_string(g) + "_mean_ppw=";
            appendHexDouble(text, c.meanPpw[g]);
            text += " g" + std::to_string(g) + "_meet=";
            appendHexDouble(text, c.meetRate[g]);
            text += " g" + std::to_string(g) +
                "_censored=" + std::to_string(c.censored[g]);
        }
        text += "\n";
    }
    return text;
}

} // namespace dora
