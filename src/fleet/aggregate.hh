/**
 * @file
 * Streaming fleet aggregation (DESIGN.md §5i).
 *
 * A campaign's cell grid is cut into fixed-size **chunks** — whole
 * devices, `chunkDevices` of them per chunk, independent of the
 * jobs/workers/lanes tier settings. Each chunk reduces its cells
 * into one FleetShardAggregate: fixed-memory quantile sketches,
 * meet/censored counters, Neumaier-compensated PPW sums, per-cohort
 * counters, and an order-sensitive digest chain over the chunk's
 * measurement digests. Workers ship this one aggregate per chunk
 * instead of per-device measurements, and every aggregation path —
 * serial, thread tier, process tier, checkpoint resume — folds the
 * chunk aggregates **left-to-right in chunk-index order** (the
 * canonical fold), so the campaign-level aggregate is bit-identical
 * at any (jobs, workers, lanes) combination and across a SIGKILL +
 * resume.
 *
 * Determinism argument: a chunk holds at most a few hundred samples,
 * so its sketches stay in exact mode, where merge() is genuine
 * concatenation; folding exact shards into the (possibly compacted)
 * campaign prefix replays their samples in cell order, making the
 * campaign sketch state a pure function of the global cell order.
 * Counters and compensated sums are trivially order-fixed by the
 * canonical fold. The digest chain is sequential by construction.
 */

#ifndef DORA_FLEET_AGGREGATE_HH
#define DORA_FLEET_AGGREGATE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/experiment.hh"
#include "stats/neumaier.hh"
#include "stats/quantile_sketch.hh"

namespace dora
{

/**
 * Reduction of one chunk of cells — or, after merging, of a
 * contiguous prefix of chunks (the campaign accumulator and the
 * checkpoint payload are this same type).
 */
class FleetShardAggregate
{
  public:
    /** Per-governor accumulators (index-aligned with the campaign's
        governor list). */
    struct GovernorAcc
    {
        uint64_t devices = 0;    //!< cells seen
        uint64_t censored = 0;   //!< loads that provably never finished
        uint64_t met = 0;        //!< loads inside the deadline
        uint64_t uncensored = 0; //!< sketch/sum sample count
        NeumaierSum ppwSum;      //!< uncensored PPW (for the mean)
        QuantileSketch ppw;
        QuantileSketch loadTime;
    };

    /** Per-cohort accumulators (vectors index-align with governors). */
    struct CohortAcc
    {
        uint64_t devices = 0; //!< devices (not cells) in the cohort
        std::vector<uint64_t> uncensored;
        std::vector<uint64_t> met;
        std::vector<uint64_t> censored;
        std::vector<NeumaierSum> ppwSum;
    };

    FleetShardAggregate() = default;

    /**
     * Start an empty aggregate covering cells beginning at
     * @p first_cell under @p governor_count governors. The digest
     * chain is seeded from the role: one chunk's chain covers its
     * cell digests; the campaign prefix's chain covers chunk digests.
     */
    static FleetShardAggregate forChunk(size_t governor_count,
                                        uint64_t first_cell);
    static FleetShardAggregate forCampaign(size_t governor_count);

    /**
     * Reduce one cell. Must be called in cell order (device-major,
     * governor minor — the grid order); @p new_device flags the
     * first governor cell of a device so cohort device counts count
     * devices, not cells.
     */
    void pushCell(size_t governor_index, const std::string &cohort,
                  bool new_device, const RunMeasurement &m);

    /**
     * Canonical left fold: append @p next, the aggregate of the
     * chunk immediately following this aggregate's cells. Panics on
     * a gap or governor-count mismatch — merging out of order is a
     * campaign-logic bug, never data-dependent.
     */
    void merge(const FleetShardAggregate &next);

    uint64_t firstCell() const { return firstCell_; }
    uint64_t cellCount() const { return cellCount_; }

    /**
     * Order-sensitive FNV chain (cell digests within a chunk; chunk
     * digests across a campaign prefix) — the byte-exact identity the
     * determinism and resume checks compare.
     */
    uint64_t digest() const { return digest_; }

    const std::vector<GovernorAcc> &governors() const
    {
        return governors_;
    }
    const std::map<std::string, CohortAcc> &cohorts() const
    {
        return cohorts_;
    }

    /** Wire/journal/checkpoint format (versioned snapshot section). */
    std::string serialize() const;
    [[nodiscard]] bool tryDeserialize(std::string_view bytes);

  private:
    enum class Role : uint8_t { Chunk = 0, Campaign = 1 };

    Role role_ = Role::Chunk;
    uint64_t firstCell_ = 0;
    uint64_t cellCount_ = 0;
    uint64_t digest_ = 0;
    std::vector<GovernorAcc> governors_;
    std::map<std::string, CohortAcc> cohorts_;
};

} // namespace dora

#endif // DORA_FLEET_AGGREGATE_HH
