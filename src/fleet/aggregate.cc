#include "fleet/aggregate.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "obs/trace.hh"

namespace dora
{

namespace
{

/** One chain step of the order-sensitive digest. */
uint64_t
chainDigest(uint64_t chain, uint64_t link)
{
    return hashLabel(hexU64(chain) + ":" + hexU64(link));
}

} // namespace

FleetShardAggregate
FleetShardAggregate::forChunk(size_t governor_count, uint64_t first_cell)
{
    FleetShardAggregate a;
    a.role_ = Role::Chunk;
    a.firstCell_ = first_cell;
    a.digest_ = hashLabel("fleet-chunk");
    a.governors_.resize(governor_count);
    return a;
}

FleetShardAggregate
FleetShardAggregate::forCampaign(size_t governor_count)
{
    FleetShardAggregate a;
    a.role_ = Role::Campaign;
    a.digest_ = hashLabel("fleet-population");
    a.governors_.resize(governor_count);
    return a;
}

void
FleetShardAggregate::pushCell(size_t governor_index,
                              const std::string &cohort, bool new_device,
                              const RunMeasurement &m)
{
    if (role_ != Role::Chunk)
        panic("FleetShardAggregate::pushCell on a campaign "
              "accumulator — cells reduce into chunks, chunks merge "
              "into the campaign");
    if (governor_index >= governors_.size())
        panic("FleetShardAggregate::pushCell: governor %zu of %zu",
              governor_index, governors_.size());

    ++cellCount_;
    digest_ = chainDigest(digest_, runMeasurementDigest(m));

    GovernorAcc &gov = governors_[governor_index];
    ++gov.devices;
    if (m.censored) {
        // A censored PPW of 0 is a flag, not a score: count it,
        // never average it into the distribution.
        ++gov.censored;
    } else {
        ++gov.uncensored;
        gov.ppwSum.add(m.ppw);
        gov.ppw.push(m.ppw);
        gov.loadTime.push(m.loadTimeSec);
    }
    if (m.meetsDeadline)
        ++gov.met;

    CohortAcc &acc = cohorts_[cohort];
    if (acc.uncensored.empty()) {
        acc.uncensored.resize(governors_.size(), 0);
        acc.met.resize(governors_.size(), 0);
        acc.censored.resize(governors_.size(), 0);
        acc.ppwSum.resize(governors_.size());
    }
    if (new_device)
        ++acc.devices;
    if (m.censored) {
        ++acc.censored[governor_index];
    } else {
        ++acc.uncensored[governor_index];
        acc.ppwSum[governor_index].add(m.ppw);
    }
    if (m.meetsDeadline)
        ++acc.met[governor_index];
}

void
FleetShardAggregate::merge(const FleetShardAggregate &next)
{
    if (role_ != Role::Campaign || next.role_ != Role::Chunk)
        panic("FleetShardAggregate::merge: campaign accumulators "
              "absorb chunk aggregates, nothing else");
    if (next.governors_.size() != governors_.size())
        panic("FleetShardAggregate::merge: governor count mismatch "
              "(%zu vs %zu)",
              governors_.size(), next.governors_.size());
    if (next.firstCell_ != firstCell_ + cellCount_)
        panic("FleetShardAggregate::merge: chunk starting at cell "
              "%llu does not follow prefix ending at cell %llu — "
              "chunks must fold in chunk-index order",
              static_cast<unsigned long long>(next.firstCell_),
              static_cast<unsigned long long>(firstCell_ + cellCount_));

    cellCount_ += next.cellCount_;
    digest_ = chainDigest(digest_, next.digest_);

    for (size_t g = 0; g < governors_.size(); ++g) {
        GovernorAcc &into = governors_[g];
        const GovernorAcc &from = next.governors_[g];
        into.devices += from.devices;
        into.censored += from.censored;
        into.met += from.met;
        into.uncensored += from.uncensored;
        into.ppwSum.merge(from.ppwSum);
        into.ppw.merge(from.ppw);
        into.loadTime.merge(from.loadTime);
    }

    for (const auto &[name, from] : next.cohorts_) {
        CohortAcc &into = cohorts_[name];
        if (into.uncensored.empty()) {
            into.uncensored.resize(governors_.size(), 0);
            into.met.resize(governors_.size(), 0);
            into.censored.resize(governors_.size(), 0);
            into.ppwSum.resize(governors_.size());
        }
        into.devices += from.devices;
        for (size_t g = 0; g < governors_.size(); ++g) {
            into.uncensored[g] += from.uncensored[g];
            into.met[g] += from.met[g];
            into.censored[g] += from.censored[g];
            into.ppwSum[g].merge(from.ppwSum[g]);
        }
    }
}

std::string
FleetShardAggregate::serialize() const
{
    SnapshotWriter w;
    w.beginSection("fagg", 1);
    w.putU8(static_cast<uint8_t>(role_));
    w.putU64(firstCell_);
    w.putU64(cellCount_);
    w.putU64(digest_);
    w.putSize(governors_.size());
    for (const GovernorAcc &gov : governors_) {
        w.putU64(gov.devices);
        w.putU64(gov.censored);
        w.putU64(gov.met);
        w.putU64(gov.uncensored);
        w.putDouble(gov.ppwSum.sum);
        w.putDouble(gov.ppwSum.compensation);
        gov.ppw.snapshot(w);
        gov.loadTime.snapshot(w);
    }
    w.putSize(cohorts_.size());
    for (const auto &[name, acc] : cohorts_) {
        w.putString(name);
        w.putU64(acc.devices);
        w.putU64s(acc.uncensored);
        w.putU64s(acc.met);
        w.putU64s(acc.censored);
        for (const NeumaierSum &sum : acc.ppwSum) {
            w.putDouble(sum.sum);
            w.putDouble(sum.compensation);
        }
    }
    return w.finish();
}

bool
FleetShardAggregate::tryDeserialize(std::string_view bytes)
{
    SnapshotReader r(bytes);
    if (!r.checksumOk() || !r.beginSection("fagg", 1))
        return false;
    FleetShardAggregate a;
    uint8_t role;
    size_t gcount;
    if (!r.getU8(&role) || role > 1 || !r.getU64(&a.firstCell_) ||
        !r.getU64(&a.cellCount_) || !r.getU64(&a.digest_) ||
        !r.getSize(&gcount))
        return false;
    a.role_ = static_cast<Role>(role);
    a.governors_.resize(gcount);
    for (GovernorAcc &gov : a.governors_) {
        if (!r.getU64(&gov.devices) || !r.getU64(&gov.censored) ||
            !r.getU64(&gov.met) || !r.getU64(&gov.uncensored) ||
            !r.getDouble(&gov.ppwSum.sum) ||
            !r.getDouble(&gov.ppwSum.compensation) ||
            !gov.ppw.tryRestore(r) || !gov.loadTime.tryRestore(r))
            return false;
    }
    size_t cohort_count;
    if (!r.getSize(&cohort_count))
        return false;
    for (size_t i = 0; i < cohort_count; ++i) {
        std::string name;
        CohortAcc acc;
        if (!r.getString(&name) || !r.getU64(&acc.devices) ||
            !r.getU64s(&acc.uncensored) || !r.getU64s(&acc.met) ||
            !r.getU64s(&acc.censored))
            return false;
        if (acc.uncensored.size() != gcount ||
            acc.met.size() != gcount || acc.censored.size() != gcount)
            return false;
        acc.ppwSum.resize(gcount);
        for (NeumaierSum &sum : acc.ppwSum)
            if (!r.getDouble(&sum.sum) ||
                !r.getDouble(&sum.compensation))
                return false;
        a.cohorts_.emplace(std::move(name), std::move(acc));
    }
    if (!r.atEnd())
        return false;
    *this = std::move(a);
    return true;
}

} // namespace dora
