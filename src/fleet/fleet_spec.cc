#include "fleet/fleet_spec.hh"

#include <algorithm>
#include <cstdio>

#include "browser/page_corpus.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace dora
{

namespace
{

void
appendHexDouble(std::string &text, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a ", value);
    text += buf;
}

/**
 * Binning clamps. Real speed bins spread a few percent around
 * nominal; the clamps keep a fat-tailed draw from producing a
 * physically silly device (and keep every scaled voltage inside the
 * leakage model's fitted range).
 */
constexpr double kFreqScaleMin = 0.85, kFreqScaleMax = 1.20;
constexpr double kVoltScaleMin = 0.90, kVoltScaleMax = 1.12;
constexpr double kThermScaleMin = 0.60, kThermScaleMax = 1.80;

double
clampedPerturbation(Rng &rng, double sd, double lo, double hi)
{
    return std::clamp(1.0 + sd * rng.gaussian(), lo, hi);
}

const char *
corunClassName(MemIntensity cls)
{
    switch (cls) {
    case MemIntensity::None: return "none";
    case MemIntensity::Low: return "low";
    case MemIntensity::Medium: return "medium";
    case MemIntensity::High: return "high";
    }
    return "?";
}

/** Ambient band edges for the cohort key (degC). */
constexpr double kCoolBelowC = 15.0;
constexpr double kHotAboveC = 30.0;

const char *
ambientBand(double ambient_c)
{
    if (ambient_c < kCoolBelowC)
        return "cool";
    if (ambient_c > kHotAboveC)
        return "hot";
    return "mild";
}

} // namespace

std::string
fleetSpecText(const FleetSpec &spec)
{
    // "rev1": bump whenever the sampler's draw order or any clamp
    // changes — the text keys resume journals, so a silent change
    // would mix incompatible populations.
    std::string text = "fleet-spec-rev1 seed " +
        std::to_string(spec.seed) + " devices " +
        std::to_string(spec.devices) + " ";
    appendHexDouble(text, spec.freqScaleSd);
    appendHexDouble(text, spec.voltageScaleSd);
    appendHexDouble(text, spec.thermalResistanceSd);
    appendHexDouble(text, spec.ambientMinC);
    appendHexDouble(text, spec.ambientMaxC);
    appendHexDouble(text, spec.corunNoneWeight);
    appendHexDouble(text, spec.corunLowWeight);
    appendHexDouble(text, spec.corunMediumWeight);
    appendHexDouble(text, spec.corunHighWeight);
    appendHexDouble(text, spec.faultIncidence);
    return text;
}

uint64_t
fleetSpecHash(const FleetSpec &spec)
{
    return hashLabel(fleetSpecText(spec));
}

void
validateFleetSpec(const FleetSpec &spec)
{
    if (spec.devices == 0)
        fatal("FleetSpec: devices must be positive");
    if (spec.freqScaleSd < 0.0 || spec.voltageScaleSd < 0.0 ||
        spec.thermalResistanceSd < 0.0)
        fatal("FleetSpec: perturbation sds must be non-negative");
    if (spec.ambientMaxC < spec.ambientMinC)
        fatal("FleetSpec: ambient range [%g, %g] is inverted",
              spec.ambientMinC, spec.ambientMaxC);
    const double weights[] = {spec.corunNoneWeight, spec.corunLowWeight,
                              spec.corunMediumWeight,
                              spec.corunHighWeight};
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("FleetSpec: co-runner weights must be non-negative");
        total += w;
    }
    if (total <= 0.0)
        fatal("FleetSpec: co-runner weights sum to zero");
    if (spec.faultIncidence < 0.0 || spec.faultIncidence > 1.0)
        fatal("FleetSpec: faultIncidence %g outside [0, 1]",
              spec.faultIncidence);
}

std::string
DeviceSpec::label(uint64_t campaign_seed) const
{
    return "fleet" + std::to_string(campaign_seed) + "-dev" +
        std::to_string(index) + ":" + page + "+" +
        corunClassName(corun);
}

std::string
DeviceSpec::cohort() const
{
    return std::string("corun=") + corunClassName(corun) +
        " ambient=" + ambientBand(ambientC) +
        " faulty=" + (faulty ? "1" : "0");
}

size_t
fleetCohortCount()
{
    return 4 /* corun classes */ * 3 /* ambient bands */ *
        2 /* faulty */;
}

DeviceSpec
sampleDevice(const FleetSpec &spec, size_t index)
{
    validateFleetSpec(spec);
    if (index >= spec.devices)
        fatal("sampleDevice: index %zu beyond population of %zu",
              index, spec.devices);

    // Per-device stream: the label carries only (seed, index), so the
    // draw is independent of visit order, worker assignment, and every
    // other device.
    Rng rng("fleet:" + std::to_string(spec.seed) +
            ":dev:" + std::to_string(index));

    DeviceSpec d;
    d.index = index;

    // Draw order is part of the spec revision (see fleetSpecText).
    const auto &pages = PageCorpus::all();
    d.page = pages[rng.below(pages.size())].name;

    const double weights[] = {spec.corunNoneWeight, spec.corunLowWeight,
                              spec.corunMediumWeight,
                              spec.corunHighWeight};
    const double total =
        weights[0] + weights[1] + weights[2] + weights[3];
    const double pick = rng.uniform() * total;
    double edge = 0.0;
    d.corun = MemIntensity::High;
    const MemIntensity classes[] = {MemIntensity::None,
                                    MemIntensity::Low,
                                    MemIntensity::Medium,
                                    MemIntensity::High};
    for (int c = 0; c < 4; ++c) {
        edge += weights[c];
        if (pick < edge) {
            d.corun = classes[c];
            break;
        }
    }

    d.freqScale = clampedPerturbation(rng, spec.freqScaleSd,
                                      kFreqScaleMin, kFreqScaleMax);
    d.voltageScale = clampedPerturbation(rng, spec.voltageScaleSd,
                                         kVoltScaleMin, kVoltScaleMax);
    d.thermalResistanceScale = clampedPerturbation(
        rng, spec.thermalResistanceSd, kThermScaleMin, kThermScaleMax);
    d.ambientC = rng.uniform(spec.ambientMinC, spec.ambientMaxC);

    d.faulty = rng.chance(spec.faultIncidence);
    // Always drawn (not only when faulty) so flipping faultIncidence
    // perturbs no later stream and the schedule seed stays stable.
    d.faultSeed = rng.fork("fault").state().s[0];
    return d;
}

} // namespace dora
