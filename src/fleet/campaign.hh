/**
 * @file
 * FleetEngine: expand a FleetSpec population into deterministic
 * per-device work units, fan them out through every execution tier,
 * and aggregate population statistics — streamingly (DESIGN.md §5i).
 *
 * Cell grid: cell = device * |governors| + governorIndex
 * (device-major). Every cell is an independent simulation of one
 * sampled device under one governor, keyed by its grid index, so
 * results are byte-identical at any combination of
 *
 *   --jobs    thread tier (parallelMap over chunks)
 *   --workers process tier (exec/proc supervisor; crash recovery and
 *             a checksummed resume journal bound to the campaign
 *             hash)
 *   --lanes   leaf tier (LaneBatchSimulator: N cells advanced
 *             interleaved per lane batch)
 *
 * and identical again after a mid-campaign kill + resume.
 *
 * Aggregation is streaming: the campaign's cells are cut into
 * fixed-size chunks (whole devices, chunkDevices per chunk), each
 * chunk reduces into one fixed-memory FleetShardAggregate
 * (fleet/aggregate.hh), and every tier folds chunk aggregates
 * left-to-right in chunk-index order. The process tier ships one
 * aggregate per chunk instead of per-device measurements
 * (supervisor memory O(chunks in flight), not O(devices)), and the
 * supervisor's streaming hook absorbs chunks into the campaign
 * prefix as they land, writing a versioned aggregate checkpoint
 * every checkpointIntervalChunks and truncating the journal below
 * the checkpointed prefix — so resume after SIGKILL costs
 * O(checkpoint interval), not O(journal replay).
 *
 * The campaign hash covers the spec text, the base ExperimentConfig
 * protocol hash, the governor list, and the chunk width, so a stale
 * journal/checkpoint from any other campaign is refused. Lane width
 * is deliberately NOT in the hash: the lane contract makes every
 * cell's measurement lane-invariant, so a journal written at one
 * lane count resumes correctly at any other.
 */

#ifndef DORA_FLEET_CAMPAIGN_HH
#define DORA_FLEET_CAMPAIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "dora/model_bundle.hh"
#include "fleet/aggregate.hh"
#include "fleet/fleet_spec.hh"
#include "runner/experiment.hh"
#include "stats/quantile_sketch.hh"

namespace dora
{

/** Everything that identifies and shapes one fleet campaign. */
struct FleetCampaignConfig
{
    FleetSpec spec;

    /**
     * Governor registry names to roll out (see makeNamedGovernor).
     * The predictive governors need @ref models; the kernel governors
     * run model-free.
     */
    std::vector<std::string> governors = {"ondemand", "performance"};

    /**
     * Campaign-wide measurement protocol. Per-device heterogeneity
     * (freqScale/voltageScale/thermalResistanceScale/ambientC) is
     * overwritten from each DeviceSpec; everything else — deadline,
     * tick, SoC geometry — is shared, which is also what keeps the
     * fused cross-lane memory walk valid across devices.
     */
    ExperimentConfig base;

    /** Trained bundle for predictive governors (may be null). */
    std::shared_ptr<const ModelBundle> models;

    unsigned jobs = 1;    //!< thread tier width (ignored when workers > 0)
    unsigned workers = 0; //!< process tier width (0 = in-process)
    unsigned lanes = 1;   //!< cells per lane batch

    /**
     * Devices per aggregation chunk — the unit of the thread and
     * process tiers and of checkpoint granularity. Part of the
     * campaign hash (it defines the journal's unit space).
     */
    unsigned chunkDevices = 32;

    /**
     * Chunks absorbed into the campaign prefix between aggregate
     * checkpoints (process tier with a journalStem only).
     */
    unsigned checkpointIntervalChunks = 1;

    /**
     * Resume stem; completed chunks are journaled to
     * `<stem>.<campaign-hash>.jrn`, the campaign prefix aggregate is
     * checkpointed to `<stem>.<campaign-hash>.ckpt`, and a rerun
     * resumes instead of recomputing. Empty disables both. Process
     * tier only.
     */
    std::string journalStem;
};

/**
 * Identity of a campaign's results: spec text, measurement protocol,
 * governor list, and chunk width (the process-tier unit is a chunk,
 * so the journal's unit space depends on it). Lane width is excluded
 * on purpose — measurements are lane-invariant by the lane contract.
 */
uint64_t fleetCampaignHash(const FleetCampaignConfig &config);

/** Population statistics of one governor across the whole fleet. */
struct FleetGovernorStats
{
    std::string governor;
    size_t devices = 0;     //!< population size (sketch + censored)
    size_t censored = 0;    //!< loads that provably never finished
    size_t deadlineMet = 0; //!< loads inside the deadline

    /** Deadline-meet rate over ALL devices (censored = miss). */
    double meetRate = 0.0;

    /**
     * Uncensored-only distributions as mergeable fixed-memory
     * sketches (exact below QuantileSketch::kExactCap samples).
     * Query any quantile via QuantileSketch::quantile().
     */
    QuantileSketch ppw;
    QuantileSketch loadTime;

    /** Tail summaries of the sketches above (0 if all censored). */
    double meanPpw = 0.0;
    double p50Ppw = 0.0, p95Ppw = 0.0, p99Ppw = 0.0;
    double p50LoadSec = 0.0, p95LoadSec = 0.0, p99LoadSec = 0.0;
};

/** Per-cohort breakdown (vectors index-align with the governors). */
struct FleetCohortStats
{
    std::string cohort;
    size_t devices = 0;
    std::vector<double> meanPpw;
    std::vector<double> meetRate;
    std::vector<size_t> censored;
};

/** Aggregated result of one campaign. */
struct FleetReport
{
    size_t devices = 0;
    std::vector<FleetGovernorStats> byGovernor;
    /** Non-empty cohorts only, sorted by cohort key. */
    std::vector<FleetCohortStats> cohorts;
    /**
     * Order-sensitive FNV chain over the chunk digests (each chunk's
     * digest chains its cells' measurement digests): two campaigns
     * produced byte-identical populations iff the digests match. The
     * determinism/resume self-checks compare this plus
     * fleetReportText().
     */
    uint64_t populationDigest = 0;
};

/**
 * Canonical bit-exact rendering of a report (hex-float doubles), for
 * the byte-identity checks and machine consumption.
 */
std::string fleetReportText(const FleetReport &report);

/**
 * Runs fleet campaigns. Stateless between calls: run() and
 * replayDevice() derive everything from the config, which is what
 * makes any device replayable after the fact.
 */
class FleetEngine
{
  public:
    explicit FleetEngine(FleetCampaignConfig config);

    /** Run the whole campaign and aggregate. */
    FleetReport run();

    /**
     * Re-run one (device, governor) cell alone. Bit-identical to the
     * cell's in-campaign measurement at any tier combination (the
     * lane-batch contract), which the fleet determinism suite
     * enforces.
     */
    RunMeasurement replayDevice(size_t device_index,
                                const std::string &governor) const;

    /**
     * Every cell's raw measurement in grid order — what run()
     * reduces, materialized. For the determinism suite and debugging
     * tools (O(devices) memory!); campaigns want the FleetReport.
     */
    std::vector<RunMeasurement> runAllCells() const;

    const FleetCampaignConfig &config() const { return config_; }

    /** Cells per campaign and chunks per campaign (last may be short). */
    size_t cellCount() const;
    size_t chunkCount() const;

  private:
    /** Owned per-cell objects — the cell's device in a box. */
    struct DeviceCell;

    DeviceCell makeCell(size_t cell_index,
                        const DeviceSpec &sampled) const;
    std::vector<RunMeasurement> runLaneBatch(
        size_t first, size_t count,
        const std::vector<DeviceSpec> &devices,
        size_t first_device) const;
    std::vector<RunMeasurement> runBatch(size_t first,
                                         size_t count) const;
    FleetShardAggregate runChunk(size_t chunk_index) const;
    FleetShardAggregate runCampaignInProcess() const;
    FleetShardAggregate runCampaignWithWorkers() const;
    FleetReport buildReport(const FleetShardAggregate &campaign) const;

    FleetCampaignConfig config_;
};

} // namespace dora

#endif // DORA_FLEET_CAMPAIGN_HH
