/**
 * @file
 * FleetEngine: expand a FleetSpec population into deterministic
 * per-device work units, fan them out through every execution tier,
 * and aggregate population statistics.
 *
 * Cell grid: cell = device * |governors| + governorIndex
 * (device-major). Every cell is an independent simulation of one
 * sampled device under one governor, keyed by its grid index, so
 * results are byte-identical at any combination of
 *
 *   --jobs    thread tier (parallelMap over lane batches)
 *   --workers process tier (exec/proc supervisor; crash recovery and
 *             a checksummed resume journal bound to the campaign
 *             hash)
 *   --lanes   leaf tier (LaneBatchSimulator: N devices advanced
 *             interleaved per thread/worker unit)
 *
 * and identical again after a mid-campaign kill + resume. The
 * campaign hash covers the spec text, the base ExperimentConfig
 * protocol hash, the governor list, and the lane width, so a stale
 * journal from any other campaign is refused.
 *
 * Aggregation: per-governor PPW and load-time distributions
 * (EmpiricalCdf, sealed before query), p50/p95/p99 tails,
 * deadline-meet rate over the full population, censored-run counts
 * (a censored device scores 0 PPW and is counted, never averaged),
 * and per-cohort breakdowns.
 */

#ifndef DORA_FLEET_CAMPAIGN_HH
#define DORA_FLEET_CAMPAIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "dora/model_bundle.hh"
#include "fleet/fleet_spec.hh"
#include "runner/experiment.hh"
#include "stats/cdf.hh"

namespace dora
{

/** Everything that identifies and shapes one fleet campaign. */
struct FleetCampaignConfig
{
    FleetSpec spec;

    /**
     * Governor registry names to roll out (see makeNamedGovernor).
     * The predictive governors need @ref models; the kernel governors
     * run model-free.
     */
    std::vector<std::string> governors = {"ondemand", "performance"};

    /**
     * Campaign-wide measurement protocol. Per-device heterogeneity
     * (freqScale/voltageScale/thermalResistanceScale/ambientC) is
     * overwritten from each DeviceSpec; everything else — deadline,
     * tick, SoC geometry — is shared, which is also what keeps the
     * fused cross-lane memory walk valid across devices.
     */
    ExperimentConfig base;

    /** Trained bundle for predictive governors (may be null). */
    std::shared_ptr<const ModelBundle> models;

    unsigned jobs = 1;    //!< thread tier width (ignored when workers > 0)
    unsigned workers = 0; //!< process tier width (0 = in-process)
    unsigned lanes = 1;   //!< devices per lane batch

    /**
     * Resume-journal stem; completed units are journaled to
     * `<stem>.<campaign-hash>.jrn` and a rerun resumes instead of
     * recomputing. Empty disables journaling. Process tier only.
     */
    std::string journalStem;
};

/**
 * Identity of a campaign's results: spec text, measurement protocol,
 * governor list, and lane width (the process-tier unit is a lane
 * batch, so the journal's unit space depends on it).
 */
uint64_t fleetCampaignHash(const FleetCampaignConfig &config);

/** Population statistics of one governor across the whole fleet. */
struct FleetGovernorStats
{
    std::string governor;
    size_t devices = 0;     //!< population size (CDF + censored)
    size_t censored = 0;    //!< loads that provably never finished
    size_t deadlineMet = 0; //!< loads inside the deadline

    /** Deadline-meet rate over ALL devices (censored = miss). */
    double meetRate = 0.0;

    /** Uncensored-only distributions, sealed and query-ready. */
    EmpiricalCdf ppwCdf;
    EmpiricalCdf loadTimeCdf;

    /** Tail summaries of the distributions above (0 if all censored). */
    double meanPpw = 0.0;
    double p50Ppw = 0.0, p95Ppw = 0.0, p99Ppw = 0.0;
    double p50LoadSec = 0.0, p95LoadSec = 0.0, p99LoadSec = 0.0;
};

/** Per-cohort breakdown (vectors index-align with the governors). */
struct FleetCohortStats
{
    std::string cohort;
    size_t devices = 0;
    std::vector<double> meanPpw;
    std::vector<double> meetRate;
    std::vector<size_t> censored;
};

/** Aggregated result of one campaign. */
struct FleetReport
{
    size_t devices = 0;
    std::vector<FleetGovernorStats> byGovernor;
    /** Non-empty cohorts only, sorted by cohort key. */
    std::vector<FleetCohortStats> cohorts;
    /**
     * Order-sensitive FNV chain over every cell's measurement digest:
     * two campaigns produced byte-identical populations iff the
     * digests match. The determinism/resume self-checks compare this
     * plus fleetReportText().
     */
    uint64_t populationDigest = 0;
};

/**
 * Canonical bit-exact rendering of a report (hex-float doubles), for
 * the byte-identity checks and machine consumption.
 */
std::string fleetReportText(const FleetReport &report);

/**
 * Runs fleet campaigns. Stateless between calls: run() and
 * replayDevice() derive everything from the config, which is what
 * makes any device replayable after the fact.
 */
class FleetEngine
{
  public:
    explicit FleetEngine(FleetCampaignConfig config);

    /** Run the whole campaign and aggregate. */
    FleetReport run();

    /**
     * Re-run one (device, governor) cell alone. Bit-identical to the
     * cell's in-campaign measurement at any tier combination (the
     * lane-batch contract), which the fleet determinism suite
     * enforces.
     */
    RunMeasurement replayDevice(size_t device_index,
                                const std::string &governor) const;

    /**
     * Every cell's raw measurement in grid order (what run()
     * aggregates). For the determinism suite and debugging tools;
     * campaigns normally want the FleetReport.
     */
    std::vector<RunMeasurement> runAllCells() const;

    const FleetCampaignConfig &config() const { return config_; }

  private:
    /** Owned per-cell objects — the cell's device in a box. */
    struct DeviceCell;

    DeviceCell makeCell(size_t cell_index) const;
    std::vector<RunMeasurement> runBatch(size_t first,
                                         size_t count) const;
    std::vector<RunMeasurement> runBatchesInProcess(size_t n) const;
    std::vector<RunMeasurement> runBatchesWithWorkers(size_t n) const;
    FleetReport aggregate(
        const std::vector<RunMeasurement> &cells) const;

    FleetCampaignConfig config_;
};

} // namespace dora

#endif // DORA_FLEET_CAMPAIGN_HH
