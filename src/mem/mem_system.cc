#include "mem/mem_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/units.hh"
#include "mem/address_stream.hh"

namespace dora
{

MemSystemConfig::MemSystemConfig()
{
    // Defaults mirror the Nexus 5 / MSM8974 (paper Table II).
    l1.name = "l1d";
    l1.sizeBytes = 16 * 1024;
    l1.associativity = 4;
    l1.lineBytes = kCacheLineBytes;

    l2.name = "l2";
    l2.sizeBytes = 2 * 1024 * 1024;
    l2.associativity = 8;
    l2.lineBytes = kCacheLineBytes;
}

namespace
{

CacheConfig
makeL1Config(const MemSystemConfig &config, uint32_t core)
{
    CacheConfig c = config.l1;
    c.name = config.l1.name + std::to_string(core);
    c.numRequestors = 1;
    return c;
}

CacheConfig
makeL2Config(const MemSystemConfig &config)
{
    CacheConfig c = config.l2;
    c.numRequestors = config.numCores;
    return c;
}

} // namespace

MemSystem::MemSystem(const MemSystemConfig &config)
    : config_(config), l2_(makeL2Config(config)), dram_(config.dram),
      counters_(config.numCores)
{
    if (config.numCores == 0)
        fatal("MemSystem: need at least one core");
    l1s_.reserve(config.numCores);
    for (uint32_t c = 0; c < config.numCores; ++c)
        l1s_.emplace_back(makeL1Config(config, c));
}

std::vector<MemSampleResult>
MemSystem::tickSample(const std::vector<MemSampleRequest> &requests)
{
    std::vector<MemSampleResult> results;
    tickSample(requests, results);
    return results;
}

void
MemSystem::tickSample(const std::vector<MemSampleRequest> &requests,
                      std::vector<MemSampleResult> &results)
{
    // One walk-state slot per request, index-parallel: zero-sample
    // requests keep a dead slot (remaining == 0) so the result pairing
    // below is a direct index lookup instead of a pointer search.
    auto &live = liveScratch_;
    live.clear();
    live.reserve(requests.size());
    bool any = false;
    for (const auto &req : requests) {
        if (req.core >= config_.numCores)
            panic("MemSystem::tickSample: core %u out of range", req.core);
        if (req.samples > 0 && req.stream == nullptr)
            panic("MemSystem::tickSample: null stream with samples");
        live.push_back(LiveStream{&req, req.samples, 0, 0});
        any = any || req.samples > 0;
    }

    // Weighted round-robin in chunks: each pass, every still-live stream
    // issues up to interleaveChunk accesses. This approximates the
    // fine-grained interleaving of concurrently executing cores.
    const uint32_t chunk = std::max<uint32_t>(1, config_.interleaveChunk);
    while (any) {
        any = false;
        for (auto &lv : live) {
            if (lv.remaining == 0)
                continue;
            const uint32_t n = std::min(chunk, lv.remaining);
            for (uint32_t i = 0; i < n; ++i) {
                const uint64_t line = lv.req->stream->next();
                const uint32_t core = lv.req->core;
                if (!l1s_[core].access(line, 0)) {
                    ++lv.l1Misses;
                    if (!l2_.access(line, core))
                        ++lv.l2Misses;
                }
            }
            lv.remaining -= n;
            any = any || lv.remaining > 0;
        }
    }

    results.clear();
    results.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        const MemSampleRequest &req = requests[i];
        const LiveStream &lv = live[i];
        MemSampleResult res;
        res.core = req.core;
        res.samplesIssued = req.samples;
        if (req.samples > 0) {
            res.l1MissRate = static_cast<double>(lv.l1Misses) /
                static_cast<double>(req.samples);
            res.l2LocalMissRate = lv.l1Misses
                ? static_cast<double>(lv.l2Misses) /
                    static_cast<double>(lv.l1Misses)
                : 0.0;
        }
        results.push_back(res);
    }
}

void
MemSystem::commitScaled(uint32_t core, double real_accesses,
                        const MemSampleResult &result)
{
    if (core >= config_.numCores)
        panic("MemSystem::commitScaled: core %u out of range", core);
    if (real_accesses < 0.0)
        panic("MemSystem::commitScaled: negative access count");

    auto &ctr = counters_[core];
    const double l1_misses = real_accesses * result.l1MissRate;
    const double l2_misses = l1_misses * result.l2LocalMissRate;
    ctr.l1Accesses += real_accesses;
    ctr.l1Misses += l1_misses;
    ctr.l2Accesses += l1_misses;
    ctr.l2Misses += l2_misses;

    dram_.addDemand(l2_misses * kCacheLineBytes);
}

void
MemSystem::endTick(double dt_sec, double bus_mhz)
{
    dram_.endTick(dt_sec, bus_mhz);
}

const CoreMemCounters &
MemSystem::coreCounters(uint32_t core) const
{
    if (core >= counters_.size())
        panic("MemSystem::coreCounters: core %u out of range", core);
    return counters_[core];
}

CoreMemCounters
MemSystem::totalCounters() const
{
    CoreMemCounters total;
    for (const auto &ctr : counters_) {
        total.l1Accesses += ctr.l1Accesses;
        total.l1Misses += ctr.l1Misses;
        total.l2Accesses += ctr.l2Accesses;
        total.l2Misses += ctr.l2Misses;
    }
    return total;
}

const CacheModel &
MemSystem::l1(uint32_t core) const
{
    if (core >= l1s_.size())
        panic("MemSystem::l1: core %u out of range", core);
    return l1s_[core];
}

void
MemSystem::reset()
{
    for (auto &l1 : l1s_) {
        l1.flush();
        l1.resetStats();
    }
    l2_.flush();
    l2_.resetStats();
    dram_.reset();
    std::fill(counters_.begin(), counters_.end(), CoreMemCounters());
}

void
MemSystem::snapshot(SnapshotWriter &w) const
{
    w.beginSection("mems", 1);
    w.putSize(l1s_.size());
    for (const auto &l1 : l1s_)
        l1.snapshot(w);
    l2_.snapshot(w);
    dram_.snapshot(w);
    w.putSize(counters_.size());
    for (const auto &c : counters_) {
        w.putDouble(c.l1Accesses);
        w.putDouble(c.l1Misses);
        w.putDouble(c.l2Accesses);
        w.putDouble(c.l2Misses);
    }
}

bool
MemSystem::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("mems", 1))
        return false;
    size_t l1_count;
    if (!r.getSize(&l1_count) || l1_count != l1s_.size())
        return false;
    for (auto &l1 : l1s_)
        if (!l1.tryRestore(r))
            return false;
    if (!l2_.tryRestore(r) || !dram_.tryRestore(r))
        return false;
    size_t counter_count;
    if (!r.getSize(&counter_count) || counter_count != counters_.size())
        return false;
    std::vector<CoreMemCounters> counters(counters_.size());
    for (auto &c : counters)
        if (!r.getDouble(&c.l1Accesses) || !r.getDouble(&c.l1Misses) ||
            !r.getDouble(&c.l2Accesses) || !r.getDouble(&c.l2Misses))
            return false;
    counters_ = std::move(counters);
    return true;
}

} // namespace dora
