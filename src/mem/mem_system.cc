#include "mem/mem_system.hh"

#include <algorithm>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/units.hh"
#include "mem/address_stream.hh"

namespace dora
{

namespace
{

#if defined(__SSE2__)

/**
 * Bitmask of the ways in an 8-way tag row whose tag equals @p tag
 * (validity is the caller's problem). Baseline SSE2 has no 64-bit
 * equality, so each 128-bit lane pair is compared as 32-bit lanes and
 * a 64-bit way matches iff both of its movemask byte-halves are full.
 */
inline uint32_t
tagMatchMask8(const uint64_t *row, uint64_t tag)
{
    const __m128i t = _mm_set1_epi64x(static_cast<long long>(tag));
    uint32_t mask = 0;
    for (int i = 0; i < 4; ++i) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row + 2 * i));
        const int m = _mm_movemask_epi8(_mm_cmpeq_epi32(v, t));
        mask |= static_cast<uint32_t>((m & 0xFF) == 0xFF) << (2 * i);
        mask |= static_cast<uint32_t>((m >> 8) == 0xFF) << (2 * i + 1);
    }
    return mask;
}

#endif // __SSE2__

} // namespace

MemSystemConfig::MemSystemConfig()
{
    // Defaults mirror the Nexus 5 / MSM8974 (paper Table II).
    l1.name = "l1d";
    l1.sizeBytes = 16 * 1024;
    l1.associativity = 4;
    l1.lineBytes = kCacheLineBytes;

    l2.name = "l2";
    l2.sizeBytes = 2 * 1024 * 1024;
    l2.associativity = 8;
    l2.lineBytes = kCacheLineBytes;
}

namespace
{

CacheConfig
makeL1Config(const MemSystemConfig &config, uint32_t core)
{
    CacheConfig c = config.l1;
    c.name = config.l1.name + std::to_string(core);
    c.numRequestors = 1;
    return c;
}

CacheConfig
makeL2Config(const MemSystemConfig &config)
{
    CacheConfig c = config.l2;
    c.numRequestors = config.numCores;
    return c;
}

} // namespace

MemSystem::MemSystem(const MemSystemConfig &config)
    : config_(config), l2_(makeL2Config(config)), dram_(config.dram),
      counters_(config.numCores)
{
    if (config.numCores == 0)
        fatal("MemSystem: need at least one core");
    l1s_.reserve(config.numCores);
    for (uint32_t c = 0; c < config.numCores; ++c)
        l1s_.emplace_back(makeL1Config(config, c));
}

std::vector<MemSampleResult>
MemSystem::tickSample(const std::vector<MemSampleRequest> &requests)
{
    std::vector<MemSampleResult> results;
    tickSample(requests, results);
    return results;
}

void
MemSystem::tickSample(const std::vector<MemSampleRequest> &requests,
                      std::vector<MemSampleResult> &results)
{
    if (buildLive(requests)) {
        if (batchedWalk_ && batchedWalkEligible(requests))
            walkBatched(liveScratch_);
        else
            walkInterleaved(liveScratch_);
    }
    fillResults(requests, results);
}

bool
MemSystem::buildLive(const std::vector<MemSampleRequest> &requests)
{
    // One walk-state slot per request, index-parallel: zero-sample
    // requests keep a dead slot (remaining == 0) so the result pairing
    // in fillResults() is a direct index lookup, not a pointer search.
    auto &live = liveScratch_;
    live.clear();
    live.reserve(requests.size());
    bool any = false;
    for (const auto &req : requests) {
        if (req.core >= config_.numCores)
            panic("MemSystem::tickSample: core %u out of range", req.core);
        if (req.samples > 0 && req.stream == nullptr)
            panic("MemSystem::tickSample: null stream with samples");
        live.push_back(LiveStream{&req, req.samples, 0, 0});
        any = any || req.samples > 0;
    }
    return any;
}

void
MemSystem::fillResults(const std::vector<MemSampleRequest> &requests,
                       std::vector<MemSampleResult> &results) const
{
    const auto &live = liveScratch_;
    results.clear();
    results.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        const MemSampleRequest &req = requests[i];
        const LiveStream &lv = live[i];
        MemSampleResult res;
        res.core = req.core;
        res.samplesIssued = req.samples;
        if (req.samples > 0) {
            res.l1MissRate = static_cast<double>(lv.l1Misses) /
                static_cast<double>(req.samples);
            res.l2LocalMissRate = lv.l1Misses
                ? static_cast<double>(lv.l2Misses) /
                    static_cast<double>(lv.l1Misses)
                : 0.0;
        }
        results.push_back(res);
    }
}

void
MemSystem::tickSampleMany(WalkJob *jobs, size_t n)
{
    // First sweep: every system sizes its walk. Eligible batched-walk
    // systems stop after phases A+B (generation + private L1s, both
    // lane-local); the rest complete their whole walk here, exactly as
    // a standalone tickSample() would.
    for (size_t j = 0; j < n; ++j) {
        MemSystem &m = *jobs[j].mem;
        jobs[j].fused = false;
        if (m.buildLive(*jobs[j].requests)) {
            if (m.batchedWalk_ &&
                m.batchedWalkEligible(*jobs[j].requests)) {
                m.walkBatchedPrepare(m.liveScratch_);
                jobs[j].fused = true;
            } else {
                m.walkInterleaved(m.liveScratch_);
            }
        }
    }

    // Second sweep: interleave the shared-L2 drains of the fused
    // systems at round-robin pass granularity. Each system executes
    // its own passes in order — per-system results stay bit-identical
    // to tickSample() — but consecutive passes touch different
    // hierarchies, so their independent miss chains overlap in the
    // host pipeline instead of serializing lane after lane.
    bool more = true;
    for (uint64_t p = 0; more; ++p) {
        more = false;
        for (size_t j = 0; j < n; ++j) {
            MemSystem &m = *jobs[j].mem;
            if (!jobs[j].fused || p >= m.walkPasses_)
                continue;
            m.walkBatchedDrain(m.liveScratch_, p, p + 1);
            more = more || p + 1 < m.walkPasses_;
        }
    }

    for (size_t j = 0; j < n; ++j)
        jobs[j].mem->fillResults(*jobs[j].requests, *jobs[j].results);
}

void
MemSystem::walkInterleaved(std::vector<LiveStream> &live)
{
    // Weighted round-robin in chunks: each pass, every still-live stream
    // issues up to interleaveChunk accesses. This approximates the
    // fine-grained interleaving of concurrently executing cores.
    const uint32_t chunk = std::max<uint32_t>(1, config_.interleaveChunk);
    bool any = true;
    while (any) {
        any = false;
        for (auto &lv : live) {
            if (lv.remaining == 0)
                continue;
            const uint32_t n = std::min(chunk, lv.remaining);
            for (uint32_t i = 0; i < n; ++i) {
                const uint64_t line = lv.req->stream->next();
                const uint32_t core = lv.req->core;
                if (!l1s_[core].access(line, 0)) {
                    ++lv.l1Misses;
                    if (!l2_.access(line, core))
                        ++lv.l2Misses;
                }
            }
            lv.remaining -= n;
            any = any || lv.remaining > 0;
        }
    }
}

bool
MemSystem::batchedWalkEligible(
    const std::vector<MemSampleRequest> &requests) const
{
    // The kernel's phase split assumes private L1s (one stream per
    // core, so requestor cores are strictly increasing, as Soc submits
    // them) and pure-LRU replacement in both levels; anything else
    // takes the reference walk.
    if (config_.l1.policy != ReplacementPolicy::Lru ||
        config_.l2.policy != ReplacementPolicy::Lru)
        return false;
    for (size_t i = 1; i < requests.size(); ++i)
        if (requests[i].core <= requests[i - 1].core)
            return false;
    return true;
}

void
MemSystem::walkBatched(std::vector<LiveStream> &live)
{
    // Three-phase replay of walkInterleaved() with identical results
    // (DESIGN.md §5g). Phase A draws every stream's sample up front
    // (burst-run fills, same RNG draw order); phase B probes each
    // private L1 stream-at-a-time — legal because an L1 is touched
    // only by its own core, so the interleaved schedule restricted to
    // one L1 *is* stream order — collecting L1-miss index lists; phase
    // C drains those misses into the shared L2 along the legacy
    // round-robin chunk schedule, so the shared-state access order is
    // untouched. Inner loops run over hoisted raw pointers (enforced
    // by the dora-perf-lane-alias lint rule). The phase split is also
    // the fusion point for lane batches: tickSampleMany() runs phases
    // A+B per lane and interleaves the drains pass by pass.
    walkBatchedPrepare(live);
    walkBatchedDrain(live, 0, walkPasses_);
}

void
MemSystem::walkBatchedPrepare(std::vector<LiveStream> &live)
{
    const uint32_t chunk = std::max<uint32_t>(1, config_.interleaveChunk);
    const size_t n_req = live.size();

    // Slice the flat scratch: request r's lines and miss-index list
    // live at [walkOffsets_[r], walkOffsets_[r] + samples).
    walkOffsets_.resize(n_req + 1);
    size_t total = 0;
    uint32_t max_samples = 0;
    for (size_t r = 0; r < n_req; ++r) {
        walkOffsets_[r] = total;
        total += live[r].req->samples;
        max_samples = std::max(max_samples, live[r].req->samples);
    }
    walkOffsets_[n_req] = total;
    if (walkLines_.size() < total) {
        walkLines_.resize(total);
        walkMiss_.resize(total);
    }
    walkMissCount_.assign(n_req, 0);
    walkCursor_.assign(n_req, 0);
    walkPasses_ =
        (static_cast<uint64_t>(max_samples) + chunk - 1) / chunk;

    // Phase A: generation.
    for (size_t r = 0; r < n_req; ++r)
        if (live[r].req->samples > 0)
            live[r].req->stream->nextRuns(&walkLines_[walkOffsets_[r]],
                                          live[r].req->samples);

    // Phase B: private L1 probes (branchy early-exit scan beats SIMD
    // here: at typical sampled miss rates the probe usually fails all
    // four ways and the fill path dominates).
    for (size_t r = 0; r < n_req; ++r) {
        const uint32_t samples = live[r].req->samples;
        if (samples == 0)
            continue;
        CacheModel &l1 = l1s_[live[r].req->core];
        const uint64_t *lines = &walkLines_[walkOffsets_[r]];
        uint32_t *miss = &walkMiss_[walkOffsets_[r]];
        const uint32_t assoc = l1.config_.associativity;
        const uint32_t set_mask = l1.numSets_ - 1;
        uint64_t *tags = l1.tags_.data();
        uint64_t *use = l1.lastUse_.data();
        uint64_t clock = l1.accessClock_;
        uint64_t self_ev = 0;
        uint64_t invalid_fills = 0;
        uint32_t miss_count = 0;
        // dora:lane-kernel-begin
        for (uint32_t i = 0; i < samples; ++i) {
            const uint64_t line = lines[i];
            ++clock;
            const size_t base =
                (static_cast<uint32_t>(line) & set_mask) *
                static_cast<size_t>(assoc);
            uint32_t w = 0;
            for (; w < assoc; ++w)
                if (tags[base + w] == line && use[base + w] != 0)
                    break;
            if (w < assoc) {
                // Hit: the L1 has one requestor, so no ownership moves.
                use[base + w] = clock;
                continue;
            }
            uint32_t victim = 0;
            uint64_t best = use[base];
            for (uint32_t v = 1; v < assoc; ++v) {
                const bool better = use[base + v] < best;
                best = better ? use[base + v] : best;
                victim = better ? v : victim;
            }
            self_ev += best != 0;
            invalid_fills += best == 0;
            tags[base + victim] = line;
            use[base + victim] = clock;
            miss[miss_count] = i;
            ++miss_count;
        }
        // dora:lane-kernel-end
        l1.accessClock_ = clock;
        CacheStats &st = l1.stats_[0];
        st.accesses += samples;
        st.misses += miss_count;
        // Every valid L1 victim belongs to the sole requestor, and a
        // valid-victim fill leaves its owned-line count unchanged.
        st.selfEvictions += self_ev;
        l1.owned_[0] += invalid_fills;
        walkMissCount_[r] = miss_count;
        live[r].l1Misses = miss_count;
    }
}

void
MemSystem::walkBatchedDrain(std::vector<LiveStream> &live,
                            uint64_t pass_begin, uint64_t pass_end)
{
    // Phase C: shared-L2 drain along the round-robin chunk schedule.
    // Pass p admits each stream's access indices below (p+1)*chunk, in
    // request order — exactly the subsequence of the interleaved
    // schedule that reached the L2.
    const uint32_t chunk = std::max<uint32_t>(1, config_.interleaveChunk);
    const size_t n_req = live.size();
    CacheModel &l2 = l2_;
    const uint32_t assoc2 = l2.config_.associativity;
    const uint32_t set_mask2 = l2.numSets_ - 1;
    uint64_t *tags2 = l2.tags_.data();
    uint64_t *use2 = l2.lastUse_.data();
    uint32_t *owners2 = l2.owners_.data();
    uint64_t *owned2 = l2.owned_.data();
    CacheStats *stats2 = l2.stats_.data();
    uint64_t clock2 = l2.accessClock_;
    constexpr uint32_t kPrefetchDist = 8;

    for (uint64_t p = pass_begin; p < pass_end; ++p) {
        const uint64_t window_end =
            (p + 1) * static_cast<uint64_t>(chunk);
        for (size_t r = 0; r < n_req; ++r) {
            const uint32_t core = live[r].req->core;
            const uint64_t *lines = &walkLines_[walkOffsets_[r]];
            const uint32_t *miss = &walkMiss_[walkOffsets_[r]];
            const uint32_t miss_count = walkMissCount_[r];
            uint32_t cur = walkCursor_[r];
            uint64_t l2_misses = 0;
            // dora:lane-kernel-begin
            while (cur < miss_count && miss[cur] < window_end) {
                const uint64_t line = lines[miss[cur]];
                ++cur;
                if (cur + kPrefetchDist < miss_count) {
                    const uint64_t pf = lines[miss[cur + kPrefetchDist]];
                    const size_t pb =
                        (static_cast<uint32_t>(pf) & set_mask2) *
                        static_cast<size_t>(assoc2);
                    __builtin_prefetch(&tags2[pb]);
                    __builtin_prefetch(&use2[pb]);
                    __builtin_prefetch(&owners2[pb]);
                }
                ++clock2;
                const size_t base =
                    (static_cast<uint32_t>(line) & set_mask2) *
                    static_cast<size_t>(assoc2);
                uint32_t way = assoc2;
#if defined(__SSE2__)
                if (assoc2 == 8) {
                    uint32_t m = tagMatchMask8(&tags2[base], line);
                    while (m) {
                        const uint32_t w =
                            static_cast<uint32_t>(__builtin_ctz(m));
                        if (use2[base + w] != 0) {
                            way = w;
                            break;
                        }
                        m &= m - 1;
                    }
                } else
#endif
                {
                    for (uint32_t w = 0; w < assoc2; ++w)
                        if (tags2[base + w] == line &&
                            use2[base + w] != 0) {
                            way = w;
                            break;
                        }
                }
                if (way < assoc2) {
                    const uint32_t owner = owners2[base + way];
                    if (owner != core) {
                        --owned2[owner];
                        ++owned2[core];
                        owners2[base + way] = core;
                    }
                    use2[base + way] = clock2;
                    continue;
                }
                ++l2_misses;
                uint32_t victim = 0;
                uint64_t best = use2[base];
                for (uint32_t v = 1; v < assoc2; ++v) {
                    const bool better = use2[base + v] < best;
                    best = better ? use2[base + v] : best;
                    victim = better ? v : victim;
                }
                if (best != 0) {
                    const uint32_t vo = owners2[base + victim];
                    if (vo == core)
                        ++stats2[vo].selfEvictions;
                    else
                        ++stats2[vo].interferenceEvictions;
                    --owned2[vo];
                }
                ++owned2[core];
                tags2[base + victim] = line;
                owners2[base + victim] = core;
                use2[base + victim] = clock2;
            }
            // dora:lane-kernel-end
            walkCursor_[r] = cur;
            live[r].l2Misses += l2_misses;
        }
    }
    l2.accessClock_ = clock2;
    // Stats commit exactly once per walk, after the final pass (drains
    // may arrive one pass at a time through tickSampleMany()).
    if (pass_end >= walkPasses_) {
        for (size_t r = 0; r < n_req; ++r) {
            CacheStats &st = stats2[live[r].req->core];
            st.accesses += walkMissCount_[r];
            st.misses += live[r].l2Misses;
        }
    }
}

void
MemSystem::commitScaled(uint32_t core, double real_accesses,
                        const MemSampleResult &result)
{
    if (core >= config_.numCores)
        panic("MemSystem::commitScaled: core %u out of range", core);
    if (real_accesses < 0.0)
        panic("MemSystem::commitScaled: negative access count");

    auto &ctr = counters_[core];
    const double l1_misses = real_accesses * result.l1MissRate;
    const double l2_misses = l1_misses * result.l2LocalMissRate;
    ctr.l1Accesses += real_accesses;
    ctr.l1Misses += l1_misses;
    ctr.l2Accesses += l1_misses;
    ctr.l2Misses += l2_misses;

    dram_.addDemand(l2_misses * kCacheLineBytes);
}

void
MemSystem::endTick(double dt_sec, double bus_mhz)
{
    dram_.endTick(dt_sec, bus_mhz);
}

const CoreMemCounters &
MemSystem::coreCounters(uint32_t core) const
{
    if (core >= counters_.size())
        panic("MemSystem::coreCounters: core %u out of range", core);
    return counters_[core];
}

CoreMemCounters
MemSystem::totalCounters() const
{
    CoreMemCounters total;
    for (const auto &ctr : counters_) {
        total.l1Accesses += ctr.l1Accesses;
        total.l1Misses += ctr.l1Misses;
        total.l2Accesses += ctr.l2Accesses;
        total.l2Misses += ctr.l2Misses;
    }
    return total;
}

const CacheModel &
MemSystem::l1(uint32_t core) const
{
    if (core >= l1s_.size())
        panic("MemSystem::l1: core %u out of range", core);
    return l1s_[core];
}

void
MemSystem::reset()
{
    for (auto &l1 : l1s_) {
        l1.flush();
        l1.resetStats();
    }
    l2_.flush();
    l2_.resetStats();
    dram_.reset();
    std::fill(counters_.begin(), counters_.end(), CoreMemCounters());
}

void
MemSystem::snapshot(SnapshotWriter &w) const
{
    w.beginSection("mems", 1);
    w.putSize(l1s_.size());
    for (const auto &l1 : l1s_)
        l1.snapshot(w);
    l2_.snapshot(w);
    dram_.snapshot(w);
    w.putSize(counters_.size());
    for (const auto &c : counters_) {
        w.putDouble(c.l1Accesses);
        w.putDouble(c.l1Misses);
        w.putDouble(c.l2Accesses);
        w.putDouble(c.l2Misses);
    }
}

bool
MemSystem::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("mems", 1))
        return false;
    size_t l1_count;
    if (!r.getSize(&l1_count) || l1_count != l1s_.size())
        return false;
    for (auto &l1 : l1s_)
        if (!l1.tryRestore(r))
            return false;
    if (!l2_.tryRestore(r) || !dram_.tryRestore(r))
        return false;
    size_t counter_count;
    if (!r.getSize(&counter_count) || counter_count != counters_.size())
        return false;
    std::vector<CoreMemCounters> counters(counters_.size());
    for (auto &c : counters)
        if (!r.getDouble(&c.l1Accesses) || !r.getDouble(&c.l1Misses) ||
            !r.getDouble(&c.l2Accesses) || !r.getDouble(&c.l2Misses))
            return false;
    counters_ = std::move(counters);
    return true;
}

} // namespace dora
