/**
 * @file
 * LPDDR3 memory-controller model: bandwidth capacity set by the memory
 * bus frequency, and an effective access latency that inflates with bus
 * utilization (queueing).
 *
 * This is the second interference mechanism of the paper (after shared-L2
 * eviction): a memory-intensive co-runner raises bus utilization, which
 * lengthens every L2 miss the browser takes. Because the bus frequency
 * is slaved to the core-frequency group (see FreqTable), DVFS moves both
 * compute speed *and* memory bandwidth — which is why the paper builds
 * piece-wise models per bus frequency (Section III-A).
 */

#ifndef DORA_MEM_DRAM_MODEL_HH
#define DORA_MEM_DRAM_MODEL_HH

#include <cstdint>

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/** Configuration of the DRAM/bus model. */
struct DramConfig
{
    /** Unloaded access latency in nanoseconds (row activate + CAS). */
    double baseLatencyNs = 80.0;

    /** Bytes transferred per bus clock (LPDDR3 32-bit DDR channel). */
    double bytesPerBusCycle = 8.0;

    /** Achievable fraction of peak bandwidth (scheduling efficiency). */
    double efficiency = 0.62;

    /** Utilization cap used by the queueing model to stay finite. */
    double maxUtilization = 0.95;

    /** Energy cost per byte moved to/from DRAM (nanojoules). */
    double energyPerByteNj = 0.35;

    /** Background (always-on) DRAM power in watts. */
    double backgroundPowerW = 0.045;
};

/**
 * Tick-granular DRAM model.
 *
 * Per tick, components add the bytes they demanded; endTick() converts
 * demand into a utilization and an effective latency that the *next*
 * tick's core timing uses (one-tick feedback keeps the fixed point
 * trivially stable at 1 ms granularity).
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Record @p bytes of demand during the current tick. */
    void addDemand(double bytes);

    /**
     * Close the current tick.
     * @param dt_sec   tick duration in seconds
     * @param bus_mhz  memory bus frequency during the tick
     */
    void endTick(double dt_sec, double bus_mhz);

    /** Effective access latency (ns) as of the last endTick(). */
    double effectiveLatencyNs() const { return effectiveLatencyNs_; }

    /** Bus utilization in [0, maxUtilization] from the last tick. */
    double utilization() const { return utilization_; }

    /** Peak deliverable bandwidth at @p bus_mhz in bytes/second. */
    double capacityBytesPerSec(double bus_mhz) const;

    /** Energy (joules) consumed by traffic during the last tick. */
    double lastTickEnergyJ() const { return lastTickEnergyJ_; }

    /** Total bytes transferred since construction/reset. */
    double totalBytes() const { return totalBytes_; }

    /** Reset counters and latency state. */
    void reset();

    /** Serialize utilization/latency/energy state. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore a snapshot; false on section/version mismatch. */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

    const DramConfig &config() const { return config_; }

  private:
    DramConfig config_;  // dora:snapshot-exclude(construction config)
    double pendingBytes_ = 0.0;
    double utilization_ = 0.0;
    double effectiveLatencyNs_;
    double lastTickEnergyJ_ = 0.0;
    double totalBytes_ = 0.0;
};

} // namespace dora

#endif // DORA_MEM_DRAM_MODEL_HH
