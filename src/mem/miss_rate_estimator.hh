/**
 * @file
 * Adaptive reuse of converged memory-sample results.
 *
 * The Monte-Carlo cache walk (MemSystem::tickSample, up to maxSamples
 * L1/L2 probes per core per tick) dominates the simulator's per-tick
 * cost, yet once a *phase* has converged — same streams, same co-runner
 * set, same operating point, cache contents warmed to steady state —
 * every further walk re-measures the same rates.
 *
 * MissRateEstimator exploits that. Each tick the SoC builds a *phase
 * signature* — per core the (streamId, generation) of its address
 * stream and its active bit, plus the OPP index and the interleave
 * chunk — and asks the estimator whether a fresh walk is needed. A
 * fresh walk happens when
 *
 *   - the signature has no cached entry (task start/finish, stream
 *     reshape, granted-OPP change — anything that moves the signature),
 *   - the phase has not yet *converged* (see below),
 *   - the phase is being re-validated: the periodic confidence refresh
 *     is due (every refreshTicks reused ticks) or the phase just
 *     returned from dormancy (another phase ran in between, so the
 *     shared caches may have shifted under it), or
 *   - the estimator was explicitly invalidated (fault conditioning,
 *     thermal emergency), or is disabled (exact-ticks mode).
 *
 * Otherwise the cached per-core MemSampleResults are served and the
 * walk is skipped entirely.
 *
 * Convergence is *measured*, not assumed: skipping walks also freezes
 * cache warm-up (the walk's probes are what fill the modeled caches),
 * so a phase must be sampled densely while its miss rates still decay.
 * Two gates must both pass before reuse begins:
 *
 *   1. A first-principles warm-up floor. A slow cache transient drifts
 *      *below* per-walk sampling noise, so no pairwise statistical
 *      test can distinguish "converged" from "warming slowly" — and a
 *      premature freeze halts the warm-up itself, locking the error
 *      in. The estimator therefore requires each active stream's
 *      cumulative walk probes to cover its warmable cold region
 *      (~kappa * min(wsLines, l2Lines) / coldFraction) first. Warmth
 *      is tracked per (streamId, generation) — cache contents survive
 *      OPP switches, so a stream does not re-warm when only the
 *      operating point (and hence the signature) changes.
 *   2. A statistical agreement test: checkpoints over doubling windows
 *      (walk 2^k vs walk 2^(k-1)) must agree within the binomial
 *      sampling noise.
 *
 * Re-validation walks run the same agreement test against the cached
 * rates and demote the phase back to dense sampling when they drift —
 * residual transients self-heal even if a checkpoint pair agreed by
 * chance.
 *
 * OPP-sibling seeding: a governor decision renames the phase (the OPP
 * index is part of the signature) without touching the cache contents
 * — warmth is keyed on the stream, and the miss rates of a warmed
 * phase do not depend on clock frequency. Forcing every OPP rename
 * through the full dense-sampling ladder is therefore almost pure
 * waste (profiles show it dominating sampled ticks under DVFS-heavy
 * governors). When an unknown signature differs from a *converged*
 * entry only in its OPP index, the install walk doubles as a
 * revalidation against that sibling's rates: if the fresh walk agrees
 * within the usual binomial noise (and the warm-up floor is met), the
 * new phase converges immediately; if not, it falls back to the dense
 * ladder. The gate is the same statistical test as a dormancy-return
 * revalidation, so accuracy is never assumed — only transferred when
 * measurement confirms it.
 *
 * Determinism: all state is per-Soc (per experiment run), signatures
 * are compared only by equality, and eviction follows deterministic
 * tick counts — runs reproduce bit-identically at any --jobs count.
 */

#ifndef DORA_MEM_MISS_RATE_ESTIMATOR_HH
#define DORA_MEM_MISS_RATE_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "mem/mem_system.hh"

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/** Tunables of the adaptive sampling layer. */
struct MissRateEstimatorConfig
{
    /**
     * Master switch. Even when true, Soc forces the estimator off when
     * the process runs in exact-ticks mode (DORA_EXACT_TICKS=1 or
     * --exact-ticks).
     */
    bool enabled = true;

    /**
     * Periodic confidence refresh: a converged phase is re-validated
     * with a fresh walk after this many consecutive reused ticks,
     * bounding the time a drifting phase can serve stale rates.
     */
    uint32_t refreshTicks = 24;

    /**
     * Walk count of the first convergence checkpoint; subsequent
     * checkpoints double (c, 2c, 4c, ...). Smaller values converge
     * sooner on flat phases, larger values resist declaring a slow
     * transient converged off a lucky pair.
     */
    uint32_t convergeTicks = 8;

    /** Cached phases kept before evicting the least recently used. */
    uint32_t maxEntries = 16;

    /**
     * Warm-up coverage factor kappa: a stream is warm once its
     * cumulative walk probes reach kappa * warmableLines /
     * coldFraction (expected probes to touch ~90 % of the cold lines
     * that can actually be cached). Raising it trades speed for
     * fidelity on slow-transient (large working set) streams.
     */
    double warmCoverage = 2.0;
};

/**
 * Phase-keyed cache of converged per-core sample results.
 */
class MissRateEstimator
{
  public:
    MissRateEstimator(const MissRateEstimatorConfig &config,
                      bool force_disabled);

    /** True when the adaptive path is active. */
    bool enabled() const { return enabled_; }

    /**
     * Tell the estimator the shared L2's line capacity (bounds the
     * warmable portion of a working set). Soc calls this once at
     * construction; the default matches the 2 MB / 64 B MSM8974 L2.
     */
    void setL2Lines(uint64_t lines);

    /**
     * Start a tick: build the phase signature from @p requests (index-
     * parallel to cores) plus the shared-state components, and decide
     * whether this tick needs a fresh walk.
     *
     * @return true  -> caller must run MemSystem::tickSample and then
     *                  store() the results;
     *         false -> caller should fill() from the cache instead.
     *
     * Never returns false when disabled.
     */
    bool beginTick(const std::vector<MemSampleRequest> &requests,
                   uint64_t opp_index, uint32_t interleave_chunk);

    /** Record the fresh walk results for the signature of beginTick(). */
    void store(const std::vector<MemSampleResult> &results);

    /** Serve the cached results for the signature of beginTick(). */
    void fill(std::vector<MemSampleResult> &results) const;

    /**
     * Drop every cached phase (fault conditioning, thermal emergency):
     * each phase re-converges from scratch.
     */
    void invalidate();

    /** Ticks that skipped the walk since construction/reset(). */
    uint64_t reusedTicks() const { return reusedTicks_; }

    /** Ticks that ran a fresh walk since construction/reset(). */
    uint64_t sampledTicks() const { return sampledTicks_; }

    /** Re-validation walks that demoted a converged phase. */
    uint64_t demotions() const { return demotions_; }

    /** Phases converged instantly off an agreeing OPP sibling. */
    uint64_t seededPhases() const { return seededPhases_; }

    /** Explicit invalidations since construction/reset(). */
    uint64_t invalidations() const { return invalidations_; }

    /** Distinct phases currently cached. */
    size_t cachedPhases() const { return entries_.size(); }

    /** Clear all cached state and counters (new run). */
    void reset();

    /**
     * Serialize cached phases, warm-up accounts, and counters. Cached
     * signatures embed streamId()s, which are process-unique object
     * identities — a restored estimator is only meaningful in the same
     * process with the same stream objects (checkpoint/replay), never
     * across processes.
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restore a snapshot; false on section/version mismatch. */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

    const MissRateEstimatorConfig &config() const { return config_; }

  private:
    /** One core's contribution to the phase signature. */
    struct CoreKey
    {
        uint64_t streamId = 0;    //!< 0 when inactive
        uint64_t generation = 0;  //!< reshape count of the stream

        bool operator==(const CoreKey &o) const
        {
            return streamId == o.streamId && generation == o.generation;
        }
    };

    /** Full phase signature. */
    struct Signature
    {
        std::vector<CoreKey> cores;
        uint64_t oppIndex = 0;
        uint32_t interleaveChunk = 0;

        bool operator==(const Signature &o) const
        {
            return oppIndex == o.oppIndex &&
                interleaveChunk == o.interleaveChunk &&
                cores == o.cores;
        }
    };

    /** One cached phase. */
    struct Entry
    {
        Signature signature;
        /** Rates served while reusing (the freshest walk's). */
        std::vector<MemSampleResult> results;
        /** Rates at the previous doubling checkpoint. */
        std::vector<MemSampleResult> checkpoint;
        bool converged = false;
        uint32_t walks = 0;          //!< walks since (re-)convergence began
        uint32_t nextCheckWalks = 0; //!< walk count of the next checkpoint
        /**
         * Checkpoint spacing; doubles on each disagreement. Tracked
         * separately from nextCheckWalks because the warm-up floor
         * can consume arbitrarily many walks before the first real
         * agreement test — doubling the absolute walk count there
         * would schedule the next checkpoint a whole cold-window of
         * dense walks past the point where the rates settled.
         */
        uint32_t checkWindow = 0;
        uint32_t reusesSinceSample = 0;  //!< drives the refresh
        uint64_t lastUseTick = 0;        //!< recency: LRU + dormancy
    };

    /** Why the pending walk was requested (consumed by store()). */
    enum class Pending
    {
        None,        //!< no walk outstanding
        Converging,  //!< dense sampling of an unconverged phase
        Revalidate,  //!< refresh / return-from-dormancy agreement test
        Install,     //!< unknown signature: create a new entry
    };

    /** Cumulative walk-probe account of one stream generation. */
    struct StreamWarmth
    {
        CoreKey key;
        double probes = 0.0;
        double targetProbes = 0.0;
        uint64_t lastUseTick = 0;
    };

    /** Restart convergence tracking of @p entry from @p results. */
    void beginConvergence(Entry &entry,
                          const std::vector<MemSampleResult> &results);

    /**
     * Credit this tick's walk probes to each active stream and report
     * whether every active stream has met its warm-up floor. Called
     * from beginTick() on ticks that will walk.
     */
    bool creditWalkProbes(const std::vector<MemSampleRequest> &requests);

    /**
     * True when two walks of the same phase agree within the binomial
     * noise of their sample sizes (no statistically visible drift).
     */
    static bool ratesAgree(const std::vector<MemSampleResult> &a,
                           const std::vector<MemSampleResult> &b);

    MissRateEstimatorConfig config_;  // dora:snapshot-exclude(construction config)
    bool enabled_;
    uint64_t l2Lines_ = (2u * 1024 * 1024) / 64;
    std::vector<Entry> entries_;
    std::vector<StreamWarmth> warmth_;
    /** "No seed candidate" sentinel for seedFrom_. */
    static constexpr size_t kNoSeed = static_cast<size_t>(-1);

    // dora:snapshot-exclude(per-tick scratch, reused across ticks)
    Signature scratchSig_;    //!< reused across ticks (no allocation)
    size_t currentEntry_ = 0; //!< entry selected by the last beginTick
    Pending pending_ = Pending::None;
    bool pendingWarm_ = false;  //!< warm-up floor met at the last walk
    /** Converged OPP sibling to seed a pending Install from. */
    size_t seedFrom_ = kNoSeed;
    uint64_t tickSerial_ = 0;
    uint64_t reusedTicks_ = 0;
    uint64_t sampledTicks_ = 0;
    uint64_t demotions_ = 0;
    uint64_t invalidations_ = 0;
    uint64_t seededPhases_ = 0;
};

} // namespace dora

#endif // DORA_MEM_MISS_RATE_ESTIMATOR_HH
