/**
 * @file
 * Set-associative cache model with LRU replacement and per-requestor
 * statistics.
 *
 * Used for the private 16 KB L1 data caches and the 2 MB shared L2 of
 * the modeled MSM8974 (Table II of the paper). The shared L2 instance is
 * accessed by all cores; the per-requestor statistics expose both each
 * core's miss counts and how many of its resident lines were evicted by
 * *other* requestors — the direct mechanism behind the paper's memory
 * interference observations.
 *
 * Storage is structure-of-arrays: the probe loop walks a contiguous
 * run of tags (one or two cache lines for an 8-way set) and only
 * touches recency/owner metadata on the way that hits or fills. A
 * last-use stamp of 0 doubles as the invalid marker (live ways always
 * carry a stamp >= 1), which makes the LRU victim scan a single
 * branch-free min-reduction: invalid ways rank below every live way
 * and ties break to the lowest index, exactly reproducing the classic
 * invalid-first-then-LRU policy.
 */

#ifndef DORA_MEM_CACHE_MODEL_HH
#define DORA_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/** Replacement policy of a cache instance. */
enum class ReplacementPolicy
{
    Lru,       //!< true LRU (default; what the MSM8974 L2 approximates)
    TreePlru,  //!< tree pseudo-LRU (cheaper hardware approximation)
    Random     //!< random victim (deterministic xorshift sequence)
};

/** Human-readable policy name. */
const char *replacementPolicyName(ReplacementPolicy policy);

/** Geometry and identification of a cache instance. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 16 * 1024;
    uint32_t associativity = 4;
    uint32_t lineBytes = 64;
    uint32_t numRequestors = 1;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
};

/** Per-requestor cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    /** Evictions of this requestor's lines caused by other requestors. */
    uint64_t interferenceEvictions = 0;
    /** Evictions of this requestor's lines caused by itself. */
    uint64_t selfEvictions = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/**
 * A classic set-associative cache with true-LRU replacement.
 *
 * Addresses are line-granular (see AddressStream). The model tracks tag
 * contents only (no data), which is all the timing and interference
 * machinery needs.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &config);

    /**
     * Look up @p line_addr on behalf of @p requestor, allocating on miss.
     * @return true on hit.
     */
    bool access(uint64_t line_addr, uint32_t requestor);

    /** Invalidate all lines and keep statistics. */
    void flush();

    /** Reset statistics for all requestors. */
    void resetStats();

    /** Statistics for @p requestor. */
    const CacheStats &stats(uint32_t requestor) const;

    /** Aggregate statistics over all requestors. */
    CacheStats totalStats() const;

    /** Geometry this cache was built with. */
    const CacheConfig &config() const { return config_; }

    /** Number of sets. */
    uint32_t numSets() const { return numSets_; }

    /** Valid lines currently owned by @p requestor (O(1) counter). */
    uint64_t ownedLines(uint32_t requestor) const;

    /** Fraction of valid lines currently owned by @p requestor. */
    double occupancyFraction(uint32_t requestor) const;

    /**
     * Reference implementation of occupancyFraction() as a full
     * O(sets x assoc) scan of the arrays. Exists so tests can verify
     * the incremental owned-line counters against first principles;
     * never call it on a hot path.
     */
    double occupancyFractionScan(uint32_t requestor) const;

    /** Serialize tags, recency, ownership, and statistics. */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restore a snapshot taken from a cache with identical geometry.
     * False (state untouched on the failing field) on section, version,
     * or geometry mismatch.
     */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    /**
     * The batched walk kernel (MemSystem::walkBatched, DESIGN.md §5g)
     * replays access() semantics over the raw arrays with hoisted
     * pointers; it is the one sanctioned bypass of the public API and
     * its bit-identity to access() is enforced by tests/mem.
     */
    friend class MemSystem;

    /** Pick the victim way index within @p set per the policy. */
    uint32_t chooseVictim(uint32_t set);

    /** Update replacement state for a touch of (set, way). */
    void touch(uint32_t set, uint32_t way);

    CacheConfig config_;
    uint32_t numSets_;  // dora:snapshot-exclude(derived from config)
    /**
     * Way state, split by access pattern (all numSets_*associativity,
     * row-major by set): the probe loop reads tags_ only; lastUse_ is
     * the LRU stamp and the validity marker (0 = invalid); owners_ is
     * touched on ownership changes and eviction accounting.
     */
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> lastUse_;
    std::vector<uint32_t> owners_;
    /** Per-requestor count of currently valid owned lines. */
    std::vector<uint64_t> owned_;
    std::vector<CacheStats> stats_;
    std::vector<uint32_t> plruBits_;  //!< per-set PLRU tree state
    uint64_t accessClock_ = 0;
    uint64_t randState_ = 0x2545F4914F6CDD1Dull;
};

} // namespace dora

#endif // DORA_MEM_CACHE_MODEL_HH
