/**
 * @file
 * Set-associative cache model with LRU replacement and per-requestor
 * statistics.
 *
 * Used for the private 16 KB L1 data caches and the 2 MB shared L2 of
 * the modeled MSM8974 (Table II of the paper). The shared L2 instance is
 * accessed by all cores; the per-requestor statistics expose both each
 * core's miss counts and how many of its resident lines were evicted by
 * *other* requestors — the direct mechanism behind the paper's memory
 * interference observations.
 */

#ifndef DORA_MEM_CACHE_MODEL_HH
#define DORA_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dora
{

/** Replacement policy of a cache instance. */
enum class ReplacementPolicy
{
    Lru,       //!< true LRU (default; what the MSM8974 L2 approximates)
    TreePlru,  //!< tree pseudo-LRU (cheaper hardware approximation)
    Random     //!< random victim (deterministic xorshift sequence)
};

/** Human-readable policy name. */
const char *replacementPolicyName(ReplacementPolicy policy);

/** Geometry and identification of a cache instance. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 16 * 1024;
    uint32_t associativity = 4;
    uint32_t lineBytes = 64;
    uint32_t numRequestors = 1;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
};

/** Per-requestor cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    /** Evictions of this requestor's lines caused by other requestors. */
    uint64_t interferenceEvictions = 0;
    /** Evictions of this requestor's lines caused by itself. */
    uint64_t selfEvictions = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/**
 * A classic set-associative cache with true-LRU replacement.
 *
 * Addresses are line-granular (see AddressStream). The model tracks tag
 * contents only (no data), which is all the timing and interference
 * machinery needs.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &config);

    /**
     * Look up @p line_addr on behalf of @p requestor, allocating on miss.
     * @return true on hit.
     */
    bool access(uint64_t line_addr, uint32_t requestor);

    /** Invalidate all lines and keep statistics. */
    void flush();

    /** Reset statistics for all requestors. */
    void resetStats();

    /** Statistics for @p requestor. */
    const CacheStats &stats(uint32_t requestor) const;

    /** Aggregate statistics over all requestors. */
    CacheStats totalStats() const;

    /** Geometry this cache was built with. */
    const CacheConfig &config() const { return config_; }

    /** Number of sets. */
    uint32_t numSets() const { return numSets_; }

    /** Fraction of valid lines currently owned by @p requestor. */
    double occupancyFraction(uint32_t requestor) const;

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint32_t owner = 0;
        uint64_t lastUse = 0;  // global access counter for LRU
        bool valid = false;
    };

    /** Pick the victim way index within @p set per the policy. */
    uint32_t chooseVictim(uint32_t set, const Way *base);

    /** Update replacement state for a touch of (set, way). */
    void touch(uint32_t set, uint32_t way, Way &entry);

    CacheConfig config_;
    uint32_t numSets_;
    std::vector<Way> ways_;       // numSets_ * associativity, row-major
    std::vector<CacheStats> stats_;
    std::vector<uint32_t> plruBits_;  //!< per-set PLRU tree state
    uint64_t accessClock_ = 0;
    uint64_t randState_ = 0x2545F4914F6CDD1Dull;
};

} // namespace dora

#endif // DORA_MEM_CACHE_MODEL_HH
