/**
 * @file
 * The modeled memory hierarchy: private per-core L1 data caches, a shared
 * L2, and the DRAM controller, glued together by the sampled-stream
 * access path described in DESIGN.md §5.1.
 *
 * Each simulation tick, every active core submits a *sample* of its
 * reference stream. MemSystem interleaves the samples (weighted round-
 * robin in small chunks, approximating concurrent execution), walks them
 * through L1 -> shared L2, and returns per-core miss rates. The core
 * timing model then scales those rates by the core's *real* access count
 * for the tick; the scaled miss counts feed MPKI accounting and DRAM
 * bandwidth demand.
 */

#ifndef DORA_MEM_MEM_SYSTEM_HH
#define DORA_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "common/aligned.hh"
#include "mem/cache_model.hh"
#include "mem/dram_model.hh"

namespace dora
{

class AddressStream;
class SnapshotReader;
class SnapshotWriter;

/** Configuration of the full hierarchy (defaults mirror Table II). */
struct MemSystemConfig
{
    uint32_t numCores = 4;
    CacheConfig l1;        //!< per-core private L1D; name is a prefix
    CacheConfig l2;        //!< shared unified L2
    DramConfig dram;
    /** Interleave chunk: consecutive samples a core issues at once. */
    uint32_t interleaveChunk = 8;

    MemSystemConfig();
};

/** One core's sampled access request for a tick. */
struct MemSampleRequest
{
    uint32_t core = 0;
    AddressStream *stream = nullptr;  //!< non-owning; must outlive call
    uint32_t samples = 0;
};

/** Miss rates measured over one core's sample within a tick. */
struct MemSampleResult
{
    uint32_t core = 0;
    double l1MissRate = 0.0;
    /** Misses/access among this core's L2 lookups (local miss rate). */
    double l2LocalMissRate = 0.0;
    uint32_t samplesIssued = 0;
};

/** Cumulative, scaled (full-rate) memory statistics for one core. */
struct CoreMemCounters
{
    double l1Accesses = 0.0;
    double l1Misses = 0.0;
    double l2Accesses = 0.0;
    double l2Misses = 0.0;
};

/**
 * Owns the cache hierarchy and DRAM model and implements the per-tick
 * sampled access protocol.
 */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemConfig &config);

    /**
     * Issue all cores' samples for the current tick, interleaved, and
     * return per-core miss rates. Requests with zero samples yield a
     * zero-rate result.
     */
    std::vector<MemSampleResult>
    tickSample(const std::vector<MemSampleRequest> &requests);

    /**
     * Allocation-free variant for the per-tick hot path: @p results is
     * cleared and refilled (one entry per request, in request order).
     * Internal walk state lives in a member scratch buffer, so steady-
     * state ticks perform no heap allocation.
     */
    void tickSample(const std::vector<MemSampleRequest> &requests,
                    std::vector<MemSampleResult> &results);

    /**
     * Account a core's *actual* traffic for the tick, scaling the sampled
     * miss rates to the real access count. Adds L2-miss bytes to DRAM
     * demand.
     *
     * @param core           requesting core
     * @param real_accesses  number of L1 accesses the timing model
     *                       attributes to this tick
     * @param result         the sample result returned by tickSample()
     */
    void commitScaled(uint32_t core, double real_accesses,
                      const MemSampleResult &result);

    /** Close the tick: resolve DRAM utilization and effective latency. */
    void endTick(double dt_sec, double bus_mhz);

    /** Effective DRAM latency (ns) for use during the next tick. */
    double dramLatencyNs() const { return dram_.effectiveLatencyNs(); }

    /** DRAM bus utilization from the last tick. */
    double dramUtilization() const { return dram_.utilization(); }

    /** DRAM energy (J) from the last tick (traffic + background). */
    double dramLastTickEnergyJ() const { return dram_.lastTickEnergyJ(); }

    /** Scaled cumulative counters for @p core. */
    const CoreMemCounters &coreCounters(uint32_t core) const;

    /** Sum of scaled counters over all cores. */
    CoreMemCounters totalCounters() const;

    /** The shared L2 (for occupancy/interference introspection). */
    const CacheModel &l2() const { return l2_; }

    /** Private L1 of @p core. */
    const CacheModel &l1(uint32_t core) const;

    /**
     * Select the batched walk kernel for subsequent ticks. The kernel
     * generates each stream's sample up front (AddressStream::nextRuns),
     * probes the private L1s stream-at-a-time, and drains L1 misses
     * into the shared L2 along the legacy round-robin chunk schedule
     * with hoisted raw-pointer loops, SIMD tag compares, and next-miss
     * prefetch (DESIGN.md §5g). Results are bit-identical to the
     * per-access walk; ticks fall back to it automatically whenever a
     * request shape or replacement policy the kernel does not cover
     * shows up. On by default (the per-access walk remains the
     * reference implementation the bit-identity suite compares
     * against); turn off to force the reference path.
     */
    void setBatchedWalk(bool on) { batchedWalk_ = on; }

    /** True when the batched walk kernel is selected. */
    bool batchedWalk() const { return batchedWalk_; }

    /**
     * One hierarchy's walk work for tickSampleMany(): the target system
     * plus borrowed request/result buffers. @c fused is scratch the
     * call uses to remember which jobs joined the interleaved drain.
     */
    struct WalkJob
    {
        MemSystem *mem = nullptr;
        const std::vector<MemSampleRequest> *requests = nullptr;
        std::vector<MemSampleResult> *results = nullptr;
        bool fused = false;  //!< written by tickSampleMany()
    };

    /**
     * tickSample() over @p n independent hierarchies (one per lane of a
     * lane batch), with the shared-L2 drains of all batched-walk-
     * eligible systems interleaved at round-robin pass granularity.
     * Each system's own access order is exactly its tickSample() order
     * — results are bit-identical per system at any job count — but
     * consecutive drain passes come from different systems, so their
     * independent miss chains overlap in the host pipeline (cross-lane
     * memory parallelism). Systems whose knob or request shape the
     * kernel does not cover simply run their own tickSample() inline.
     */
    static void tickSampleMany(WalkJob *jobs, size_t n);

    /** Invalidate all caches and reset counters (new experiment run). */
    void reset();

    /** Serialize every cache, the DRAM model, and scaled counters. */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restore a snapshot taken from a hierarchy with identical
     * geometry; false (and partial sub-restores rolled into the next
     * mismatch) on section or shape mismatch.
     */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

    const MemSystemConfig &config() const { return config_; }

  private:
    /** Walk state for one live stream within tickSample(). */
    struct LiveStream
    {
        const MemSampleRequest *req = nullptr;
        uint32_t remaining = 0;
        uint64_t l1Misses = 0;
        uint64_t l2Misses = 0;
    };

    /** Legacy reference walk: per-access interleaved L1 -> L2 probes. */
    void walkInterleaved(std::vector<LiveStream> &live);

    /**
     * Batched walk kernel: phase-separated, raw-pointer replay of
     * walkInterleaved() with identical results (DESIGN.md §5g).
     */
    void walkBatched(std::vector<LiveStream> &live);

    /**
     * Phases A+B of walkBatched(): generate every stream's sample,
     * probe the private L1s, and size the shared-L2 drain (the pass
     * count lands in walkPasses_).
     */
    void walkBatchedPrepare(std::vector<LiveStream> &live);

    /** Phase C of walkBatched() over passes [begin, end). */
    void walkBatchedDrain(std::vector<LiveStream> &live,
                          uint64_t pass_begin, uint64_t pass_end);

    /** True when walkBatched() covers this tick's request shape. */
    bool batchedWalkEligible(
        const std::vector<MemSampleRequest> &requests) const;

    /** tickSample() head: fill liveScratch_; true if any samples. */
    bool buildLive(const std::vector<MemSampleRequest> &requests);

    /** tickSample() tail: rates from liveScratch_ into @p results. */
    void fillResults(const std::vector<MemSampleRequest> &requests,
                     std::vector<MemSampleResult> &results) const;

    MemSystemConfig config_;  // dora:snapshot-exclude(construction config)
    std::vector<CacheModel> l1s_;
    CacheModel l2_;
    DramModel dram_;
    std::vector<CoreMemCounters> counters_;
    // dora:snapshot-exclude(per-tick scratch, reused across ticks)
    std::vector<LiveStream> liveScratch_;  //!< reused across ticks
    // dora:snapshot-exclude(mode flag; both walk paths bit-identical)
    bool batchedWalk_ = true;

    // Batched-walk scratch, reused across ticks: the generated lines
    // and per-stream L1-miss index lists live in flat 64B-aligned
    // buffers sliced by walkOffsets_.
    AlignedVec<uint64_t> walkLines_;  // dora:snapshot-exclude(scratch)
    AlignedVec<uint32_t> walkMiss_;  // dora:snapshot-exclude(scratch)
    std::vector<size_t> walkOffsets_;  // dora:snapshot-exclude(scratch)
    std::vector<uint32_t> walkMissCount_;  // dora:snapshot-exclude(scratch)
    std::vector<uint32_t> walkCursor_;  // dora:snapshot-exclude(scratch)
    // dora:snapshot-exclude(scratch sizing, recomputed by prepare)
    uint64_t walkPasses_ = 0;  //!< drain passes sized by prepare
};

} // namespace dora

#endif // DORA_MEM_MEM_SYSTEM_HH
