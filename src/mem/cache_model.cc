#include "mem/cache_model.hh"

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

namespace
{

bool
isPowerOfTwo(uint64_t x)
{
    return x && !(x & (x - 1));
}

} // namespace

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru:
        return "lru";
      case ReplacementPolicy::TreePlru:
        return "tree-plru";
      case ReplacementPolicy::Random:
        return "random";
    }
    return "?";
}

CacheModel::CacheModel(const CacheConfig &config)
    : config_(config)
{
    if (config.lineBytes == 0 || config.associativity == 0)
        fatal("CacheModel %s: zero line size or associativity",
              config.name.c_str());
    const uint64_t lines = config.sizeBytes / config.lineBytes;
    if (lines == 0 || lines % config.associativity != 0)
        fatal("CacheModel %s: size %llu not divisible into %u-way sets",
              config.name.c_str(),
              static_cast<unsigned long long>(config.sizeBytes),
              config.associativity);
    numSets_ = static_cast<uint32_t>(lines / config.associativity);
    if (!isPowerOfTwo(numSets_))
        fatal("CacheModel %s: %u sets is not a power of two",
              config.name.c_str(), numSets_);
    if (config.numRequestors == 0)
        fatal("CacheModel %s: need at least one requestor",
              config.name.c_str());
    if (config.policy == ReplacementPolicy::TreePlru &&
        (!isPowerOfTwo(config.associativity) ||
         config.associativity > 32))
        fatal("CacheModel %s: tree-PLRU needs a power-of-two "
              "associativity <= 32", config.name.c_str());
    const size_t total =
        static_cast<size_t>(numSets_) * config.associativity;
    tags_.assign(total, 0);
    lastUse_.assign(total, 0);
    owners_.assign(total, 0);
    owned_.assign(config.numRequestors, 0);
    stats_.assign(config.numRequestors, CacheStats());
    if (config.policy == ReplacementPolicy::TreePlru)
        plruBits_.assign(numSets_, 0);
}

void
CacheModel::touch(uint32_t set, uint32_t way)
{
    // accessClock_ is pre-incremented in access(), so a touched way
    // always stamps >= 1: lastUse_ == 0 is reserved for invalid.
    lastUse_[static_cast<size_t>(set) * config_.associativity + way] =
        accessClock_;
    if (config_.policy != ReplacementPolicy::TreePlru)
        return;
    // Walk the PLRU tree from the root to the touched leaf, pointing
    // every node on the path *away* from it.
    uint32_t &bits = plruBits_[set];
    const uint32_t assoc = config_.associativity;
    uint32_t node = 1;  // heap-indexed internal nodes, root = 1
    uint32_t lo = 0, hi = assoc;
    while (hi - lo > 1) {
        const uint32_t mid = (lo + hi) / 2;
        if (way < mid) {
            bits |= (1u << node);  // next victim: right subtree
            node = node * 2;
            hi = mid;
        } else {
            bits &= ~(1u << node);  // next victim: left subtree
            node = node * 2 + 1;
            lo = mid;
        }
    }
}

uint32_t
CacheModel::chooseVictim(uint32_t set)
{
    const uint32_t assoc = config_.associativity;
    const uint64_t *use =
        &lastUse_[static_cast<size_t>(set) * assoc];

    if (config_.policy == ReplacementPolicy::Lru) {
        // Branch-free min-reduction over the stamps. Invalid ways carry
        // stamp 0 < any live stamp (>= 1), and the strict < keeps the
        // lowest index on ties, so this is exactly the classic
        // first-invalid-else-LRU scan without the two-pass branches.
        uint32_t victim = 0;
        uint64_t best = use[0];
        for (uint32_t w = 1; w < assoc; ++w) {
            const bool better = use[w] < best;
            best = better ? use[w] : best;
            victim = better ? w : victim;
        }
        return victim;
    }

    // Invalid ways first for the other policies.
    for (uint32_t w = 0; w < assoc; ++w)
        if (use[w] == 0)
            return w;

    switch (config_.policy) {
      case ReplacementPolicy::TreePlru: {
          const uint32_t bits = plruBits_[set];
          uint32_t node = 1;
          uint32_t lo = 0, hi = assoc;
          while (hi - lo > 1) {
              const uint32_t mid = (lo + hi) / 2;
              if (bits & (1u << node)) {
                  node = node * 2 + 1;  // right subtree is older
                  lo = mid;
              } else {
                  node = node * 2;
                  hi = mid;
              }
          }
          return lo;
      }
      case ReplacementPolicy::Random: {
          // xorshift64*: deterministic, independent of the RNG library
          // so cache behaviour is reproducible in isolation.
          randState_ ^= randState_ >> 12;
          randState_ ^= randState_ << 25;
          randState_ ^= randState_ >> 27;
          return static_cast<uint32_t>(
              (randState_ * 0x2545F4914F6CDD1Dull) % assoc);
      }
      case ReplacementPolicy::Lru:
        break;  // handled above
    }
    return 0;
}

bool
CacheModel::access(uint64_t line_addr, uint32_t requestor)
{
    if (requestor >= stats_.size())
        panic("CacheModel %s: requestor %u out of range",
              config_.name.c_str(), requestor);

    ++accessClock_;
    auto &st = stats_[requestor];
    ++st.accesses;

    const uint32_t set = static_cast<uint32_t>(line_addr) & (numSets_ - 1);
    const uint64_t tag = line_addr;  // full line address as tag is fine
    const size_t base = static_cast<size_t>(set) * config_.associativity;
    const uint64_t *tags = &tags_[base];

    // Probe loop touches only the contiguous tag run; validity is
    // checked afterwards on the single candidate.
    for (uint32_t w = 0; w < config_.associativity; ++w) {
        if (tags[w] == tag && lastUse_[base + w] != 0) {
            // A hit transfers ownership of the line to the requestor.
            uint32_t &owner = owners_[base + w];
            if (owner != requestor) {
                --owned_[owner];
                ++owned_[requestor];
                owner = requestor;
            }
            touch(set, w);
            return true;
        }
    }

    ++st.misses;
    const uint32_t victim_idx = chooseVictim(set);
    const size_t victim = base + victim_idx;
    if (lastUse_[victim] != 0) {
        const uint32_t victim_owner = owners_[victim];
        auto &victim_st = stats_[victim_owner];
        if (victim_owner == requestor)
            ++victim_st.selfEvictions;
        else
            ++victim_st.interferenceEvictions;
        --owned_[victim_owner];
    }
    ++owned_[requestor];
    tags_[victim] = tag;
    owners_[victim] = requestor;
    touch(set, victim_idx);
    return false;
}

void
CacheModel::flush()
{
    // lastUse_ == 0 *is* the invalid marker, so flushing clears the
    // stamps (and with them all ownership).
    lastUse_.assign(lastUse_.size(), 0);
    owned_.assign(owned_.size(), 0);
}

void
CacheModel::resetStats()
{
    for (auto &st : stats_)
        st = CacheStats();
}

const CacheStats &
CacheModel::stats(uint32_t requestor) const
{
    if (requestor >= stats_.size())
        panic("CacheModel %s: requestor %u out of range",
              config_.name.c_str(), requestor);
    return stats_[requestor];
}

CacheStats
CacheModel::totalStats() const
{
    CacheStats total;
    for (const auto &st : stats_) {
        total.accesses += st.accesses;
        total.misses += st.misses;
        total.interferenceEvictions += st.interferenceEvictions;
        total.selfEvictions += st.selfEvictions;
    }
    return total;
}

uint64_t
CacheModel::ownedLines(uint32_t requestor) const
{
    if (requestor >= owned_.size())
        panic("CacheModel %s: requestor %u out of range",
              config_.name.c_str(), requestor);
    return owned_[requestor];
}

double
CacheModel::occupancyFraction(uint32_t requestor) const
{
    // Fraction of total capacity (not of currently-valid lines).
    return static_cast<double>(ownedLines(requestor)) /
        static_cast<double>(tags_.size());
}

double
CacheModel::occupancyFractionScan(uint32_t requestor) const
{
    uint64_t owned = 0;
    for (size_t i = 0; i < tags_.size(); ++i)
        if (lastUse_[i] != 0 && owners_[i] == requestor)
            ++owned;
    return static_cast<double>(owned) / static_cast<double>(tags_.size());
}

void
CacheModel::snapshot(SnapshotWriter &w) const
{
    w.beginSection("cach", 1);
    // Geometry fingerprint: restore only into an identical cache.
    w.putU64(config_.sizeBytes);
    w.putU32(config_.associativity);
    w.putU32(config_.lineBytes);
    w.putU32(config_.numRequestors);
    w.putU8(static_cast<uint8_t>(config_.policy));
    w.putU64s(tags_);
    w.putU64s(lastUse_);
    w.putU32s(owners_);
    w.putU64s(owned_);
    for (const CacheStats &s : stats_) {
        w.putU64(s.accesses);
        w.putU64(s.misses);
        w.putU64(s.interferenceEvictions);
        w.putU64(s.selfEvictions);
    }
    w.putU32s(plruBits_);
    w.putU64(accessClock_);
    w.putU64(randState_);
}

bool
CacheModel::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("cach", 1))
        return false;
    uint64_t size_bytes;
    uint32_t assoc, line_bytes, requestors;
    uint8_t policy;
    if (!r.getU64(&size_bytes) || !r.getU32(&assoc) ||
        !r.getU32(&line_bytes) || !r.getU32(&requestors) ||
        !r.getU8(&policy))
        return false;
    if (size_bytes != config_.sizeBytes ||
        assoc != config_.associativity ||
        line_bytes != config_.lineBytes ||
        requestors != config_.numRequestors ||
        policy != static_cast<uint8_t>(config_.policy))
        return false;
    std::vector<uint64_t> tags, last_use, owned;
    std::vector<uint32_t> owners, plru;
    if (!r.getU64s(&tags) || !r.getU64s(&last_use) ||
        !r.getU32s(&owners) || !r.getU64s(&owned))
        return false;
    if (tags.size() != tags_.size() || last_use.size() != tags_.size() ||
        owners.size() != tags_.size() || owned.size() != owned_.size())
        return false;
    std::vector<CacheStats> stats(stats_.size());
    for (CacheStats &s : stats)
        if (!r.getU64(&s.accesses) || !r.getU64(&s.misses) ||
            !r.getU64(&s.interferenceEvictions) ||
            !r.getU64(&s.selfEvictions))
            return false;
    uint64_t clock, rand_state;
    if (!r.getU32s(&plru) || plru.size() != plruBits_.size() ||
        !r.getU64(&clock) || !r.getU64(&rand_state))
        return false;
    tags_ = std::move(tags);
    lastUse_ = std::move(last_use);
    owners_ = std::move(owners);
    owned_ = std::move(owned);
    stats_ = std::move(stats);
    plruBits_ = std::move(plru);
    accessClock_ = clock;
    randState_ = rand_state;
    return true;
}

} // namespace dora
