#include "mem/cache_model.hh"

#include "common/logging.hh"

namespace dora
{

namespace
{

bool
isPowerOfTwo(uint64_t x)
{
    return x && !(x & (x - 1));
}

} // namespace

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru:
        return "lru";
      case ReplacementPolicy::TreePlru:
        return "tree-plru";
      case ReplacementPolicy::Random:
        return "random";
    }
    return "?";
}

CacheModel::CacheModel(const CacheConfig &config)
    : config_(config)
{
    if (config.lineBytes == 0 || config.associativity == 0)
        fatal("CacheModel %s: zero line size or associativity",
              config.name.c_str());
    const uint64_t lines = config.sizeBytes / config.lineBytes;
    if (lines == 0 || lines % config.associativity != 0)
        fatal("CacheModel %s: size %llu not divisible into %u-way sets",
              config.name.c_str(),
              static_cast<unsigned long long>(config.sizeBytes),
              config.associativity);
    numSets_ = static_cast<uint32_t>(lines / config.associativity);
    if (!isPowerOfTwo(numSets_))
        fatal("CacheModel %s: %u sets is not a power of two",
              config.name.c_str(), numSets_);
    if (config.numRequestors == 0)
        fatal("CacheModel %s: need at least one requestor",
              config.name.c_str());
    if (config.policy == ReplacementPolicy::TreePlru &&
        (!isPowerOfTwo(config.associativity) ||
         config.associativity > 32))
        fatal("CacheModel %s: tree-PLRU needs a power-of-two "
              "associativity <= 32", config.name.c_str());
    ways_.assign(static_cast<size_t>(numSets_) * config.associativity,
                 Way());
    stats_.assign(config.numRequestors, CacheStats());
    if (config.policy == ReplacementPolicy::TreePlru)
        plruBits_.assign(numSets_, 0);
}

void
CacheModel::touch(uint32_t set, uint32_t way, Way &entry)
{
    entry.lastUse = accessClock_;
    if (config_.policy != ReplacementPolicy::TreePlru)
        return;
    // Walk the PLRU tree from the root to the touched leaf, pointing
    // every node on the path *away* from it.
    uint32_t &bits = plruBits_[set];
    const uint32_t assoc = config_.associativity;
    uint32_t node = 1;  // heap-indexed internal nodes, root = 1
    uint32_t lo = 0, hi = assoc;
    while (hi - lo > 1) {
        const uint32_t mid = (lo + hi) / 2;
        if (way < mid) {
            bits |= (1u << node);  // next victim: right subtree
            node = node * 2;
            hi = mid;
        } else {
            bits &= ~(1u << node);  // next victim: left subtree
            node = node * 2 + 1;
            lo = mid;
        }
    }
}

uint32_t
CacheModel::chooseVictim(uint32_t set, const Way *base)
{
    const uint32_t assoc = config_.associativity;
    // Invalid ways first, regardless of policy.
    for (uint32_t w = 0; w < assoc; ++w)
        if (!base[w].valid)
            return w;

    switch (config_.policy) {
      case ReplacementPolicy::Lru: {
          uint32_t victim = 0;
          for (uint32_t w = 1; w < assoc; ++w)
              if (base[w].lastUse < base[victim].lastUse)
                  victim = w;
          return victim;
      }
      case ReplacementPolicy::TreePlru: {
          const uint32_t bits = plruBits_[set];
          uint32_t node = 1;
          uint32_t lo = 0, hi = assoc;
          while (hi - lo > 1) {
              const uint32_t mid = (lo + hi) / 2;
              if (bits & (1u << node)) {
                  node = node * 2 + 1;  // right subtree is older
                  lo = mid;
              } else {
                  node = node * 2;
                  hi = mid;
              }
          }
          return lo;
      }
      case ReplacementPolicy::Random: {
          // xorshift64*: deterministic, independent of the RNG library
          // so cache behaviour is reproducible in isolation.
          randState_ ^= randState_ >> 12;
          randState_ ^= randState_ << 25;
          randState_ ^= randState_ >> 27;
          return static_cast<uint32_t>(
              (randState_ * 0x2545F4914F6CDD1Dull) % assoc);
      }
    }
    return 0;
}

bool
CacheModel::access(uint64_t line_addr, uint32_t requestor)
{
    if (requestor >= stats_.size())
        panic("CacheModel %s: requestor %u out of range",
              config_.name.c_str(), requestor);

    ++accessClock_;
    auto &st = stats_[requestor];
    ++st.accesses;

    const uint32_t set = static_cast<uint32_t>(line_addr) & (numSets_ - 1);
    const uint64_t tag = line_addr;  // full line address as tag is fine
    Way *base = &ways_[static_cast<size_t>(set) * config_.associativity];

    for (uint32_t w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.owner = requestor;
            touch(set, w, way);
            return true;
        }
    }

    ++st.misses;
    const uint32_t victim_idx = chooseVictim(set, base);
    Way &victim = base[victim_idx];
    if (victim.valid) {
        auto &victim_st = stats_[victim.owner];
        if (victim.owner == requestor)
            ++victim_st.selfEvictions;
        else
            ++victim_st.interferenceEvictions;
    }
    victim.valid = true;
    victim.tag = tag;
    victim.owner = requestor;
    touch(set, victim_idx, victim);
    return false;
}

void
CacheModel::flush()
{
    for (auto &way : ways_)
        way.valid = false;
}

void
CacheModel::resetStats()
{
    for (auto &st : stats_)
        st = CacheStats();
}

const CacheStats &
CacheModel::stats(uint32_t requestor) const
{
    if (requestor >= stats_.size())
        panic("CacheModel %s: requestor %u out of range",
              config_.name.c_str(), requestor);
    return stats_[requestor];
}

CacheStats
CacheModel::totalStats() const
{
    CacheStats total;
    for (const auto &st : stats_) {
        total.accesses += st.accesses;
        total.misses += st.misses;
        total.interferenceEvictions += st.interferenceEvictions;
        total.selfEvictions += st.selfEvictions;
    }
    return total;
}

double
CacheModel::occupancyFraction(uint32_t requestor) const
{
    uint64_t owned = 0;
    for (const auto &way : ways_)
        if (way.valid && way.owner == requestor)
            ++owned;
    // Fraction of total capacity (not of currently-valid lines).
    return static_cast<double>(owned) / static_cast<double>(ways_.size());
}

} // namespace dora
