/**
 * @file
 * Synthetic memory address stream generation.
 *
 * Tasks in the simulator (browser render phases, co-scheduled kernels) do
 * not execute real instructions; instead each task owns an AddressStream
 * that reproduces the *statistical* shape of its memory reference stream:
 * working-set size, spatial locality (sequential bursts), and temporal
 * locality (a hot subset that absorbs a configurable fraction of
 * references). Streams from different tasks are disjoint in the address
 * space, so all interaction between tasks happens where it does on real
 * hardware: capacity/conflict contention in the shared L2 and bandwidth
 * contention at the memory controller.
 */

#ifndef DORA_MEM_ADDRESS_STREAM_HH
#define DORA_MEM_ADDRESS_STREAM_HH

#include <cstdint>

#include "common/rng.hh"

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/**
 * Statistical description of a reference stream.
 *
 * The generator draws, per access, either from a small "hot" region
 * (temporal locality; mostly cache-resident) or from the full working
 * set, and extends each draw into a sequential burst (spatial locality).
 */
struct AddressStreamSpec
{
    /** Total working-set size in bytes (span of generated addresses). */
    uint64_t workingSetBytes = 1 << 20;

    /** Fraction of region draws that target the hot subset [0,1]. */
    double hotFraction = 0.6;

    /** Hot subset size as a fraction of the working set (0,1]. */
    double hotSetFraction = 0.05;

    /**
     * Probability that a burst continues to the next sequential line;
     * expected burst length is 1/(1-p).
     */
    double burstContinueProb = 0.5;

    /** Maximum burst length in lines (safety cap). */
    uint64_t burstCap = 64;
};

/**
 * Generates 64-bit line addresses according to an AddressStreamSpec.
 *
 * Addresses are line-granular (already divided by the cache line size)
 * and offset by a caller-provided base so concurrent streams never alias.
 */
class AddressStream
{
  public:
    /**
     * @param spec  statistical shape of the stream
     * @param base_line  address-space base, in line units; choose bases
     *                   at least workingSetBytes/64 apart across streams
     * @param rng   deterministic generator owned by the stream
     */
    AddressStream(const AddressStreamSpec &spec, uint64_t base_line,
                  Rng rng);

    /** Next line address in the stream. */
    uint64_t next();

    /**
     * Emit the next @p n line addresses into @p out — exactly the
     * sequence n successive next() calls would produce (same RNG draw
     * order and count, same final cursor/burst state), but generated
     * burst-run-at-a-time so the inner loop is a sequential fill
     * instead of a per-access call. The batched walk kernel's phase-A
     * generator (DESIGN.md §5g).
     */
    void nextRuns(uint64_t *out, uint32_t n);

    /** The spec this stream was built from. */
    const AddressStreamSpec &spec() const { return spec_; }

    /** Working-set span in lines (the range next() draws from). */
    uint64_t wsLines() const { return wsLines_; }

    /**
     * Replace the statistical shape mid-stream (used when a render task
     * transitions between phases with different locality). Bumps the
     * phase generation().
     */
    void reshape(const AddressStreamSpec &spec);

    /**
     * Process-unique identity of this stream object. Stable for the
     * stream's lifetime and never reused, so the adaptive sampling
     * layer can detect task starts/finishes (stream swaps) by value
     * without dereferencing possibly-dead pointers. Only equality of
     * ids is meaningful — the values themselves depend on allocation
     * order.
     */
    uint64_t streamId() const { return streamId_; }

    /**
     * Phase generation: starts at 0 and increments on every reshape().
     * (streamId, generation) therefore names one statistical phase of
     * one stream — the phase-signature component the MissRateEstimator
     * keys its cached sample results on.
     */
    uint64_t generation() const { return generation_; }

    /**
     * Serialize the full draw state (spec, RNG words, burst cursor).
     * streamId() is identity, not state: it is recorded only as a
     * fingerprint and never overwritten on restore.
     */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restore into this stream object (same-process replay: the
     * estimator's cached signatures reference streamId()s, which stay
     * valid only for the original objects). False on mismatch.
     */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    AddressStreamSpec spec_;
    uint64_t baseLine_;
    uint64_t wsLines_;
    uint64_t hotLines_;
    Rng rng_;
    uint64_t streamId_;
    uint64_t generation_ = 0;

    // Current burst state. Invariant: cursor_ < wsLines_, so next()
    // never needs a modulo on the emitted line.
    uint64_t cursor_ = 0;
    uint64_t burstLeft_ = 0;
};

} // namespace dora

#endif // DORA_MEM_ADDRESS_STREAM_HH
