#include "mem/dram_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

DramModel::DramModel(const DramConfig &config)
    : config_(config), effectiveLatencyNs_(config.baseLatencyNs)
{
    if (config.baseLatencyNs <= 0.0 || config.bytesPerBusCycle <= 0.0 ||
        config.efficiency <= 0.0 || config.efficiency > 1.0)
        fatal("DramModel: invalid configuration");
}

void
DramModel::addDemand(double bytes)
{
    if (bytes < 0.0)
        panic("DramModel::addDemand: negative bytes %g", bytes);
    pendingBytes_ += bytes;
}

double
DramModel::capacityBytesPerSec(double bus_mhz) const
{
    return bus_mhz * 1e6 * config_.bytesPerBusCycle * config_.efficiency;
}

void
DramModel::endTick(double dt_sec, double bus_mhz)
{
    if (dt_sec <= 0.0 || bus_mhz <= 0.0)
        panic("DramModel::endTick: dt %g s, bus %g MHz", dt_sec, bus_mhz);

    const double capacity = capacityBytesPerSec(bus_mhz) * dt_sec;
    utilization_ = std::min(pendingBytes_ / capacity,
                            config_.maxUtilization);

    // M/D/1-flavored queueing inflation: latency grows slowly at low
    // utilization and sharply as the bus saturates.
    effectiveLatencyNs_ = config_.baseLatencyNs *
        (1.0 + 0.9 * utilization_ / (1.0 - utilization_));

    lastTickEnergyJ_ = pendingBytes_ * config_.energyPerByteNj * 1e-9 +
        config_.backgroundPowerW * dt_sec;
    totalBytes_ += pendingBytes_;
    pendingBytes_ = 0.0;
}

void
DramModel::reset()
{
    pendingBytes_ = 0.0;
    utilization_ = 0.0;
    effectiveLatencyNs_ = config_.baseLatencyNs;
    lastTickEnergyJ_ = 0.0;
    totalBytes_ = 0.0;
}

void
DramModel::snapshot(SnapshotWriter &w) const
{
    w.beginSection("dram", 1);
    w.putDouble(pendingBytes_);
    w.putDouble(utilization_);
    w.putDouble(effectiveLatencyNs_);
    w.putDouble(lastTickEnergyJ_);
    w.putDouble(totalBytes_);
}

bool
DramModel::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("dram", 1))
        return false;
    double pending, util, latency, energy, total;
    if (!r.getDouble(&pending) || !r.getDouble(&util) ||
        !r.getDouble(&latency) || !r.getDouble(&energy) ||
        !r.getDouble(&total))
        return false;
    pendingBytes_ = pending;
    utilization_ = util;
    effectiveLatencyNs_ = latency;
    lastTickEnergyJ_ = energy;
    totalBytes_ = total;
    return true;
}

} // namespace dora
