#include "mem/address_stream.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/units.hh"

namespace dora
{

namespace
{

/**
 * Process-wide stream-id source. Ids are compared only for equality
 * (phase-change detection), so the allocation order dependence of the
 * raw values is harmless — two live streams never share an id.
 */
uint64_t
nextStreamId()
{
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

AddressStream::AddressStream(const AddressStreamSpec &spec,
                             uint64_t base_line, Rng rng)
    : spec_(spec), baseLine_(base_line), rng_(rng),
      streamId_(nextStreamId())
{
    reshape(spec);
    generation_ = 0;  // construction is generation 0, not a reshape
}

void
AddressStream::reshape(const AddressStreamSpec &spec)
{
    if (spec.workingSetBytes < kCacheLineBytes)
        panic("AddressStream: working set smaller than one line");
    if (spec.hotSetFraction <= 0.0 || spec.hotSetFraction > 1.0)
        panic("AddressStream: hotSetFraction %g out of (0,1]",
              spec.hotSetFraction);
    spec_ = spec;
    wsLines_ = std::max<uint64_t>(1, spec.workingSetBytes / kCacheLineBytes);
    hotLines_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(wsLines_) * spec.hotSetFraction));
    burstLeft_ = 0;
    cursor_ = 0;
    ++generation_;
}

uint64_t
AddressStream::next()
{
    if (burstLeft_ == 0) {
        // Start a new burst: draw the region and the burst length up
        // front, then pick a random line within the region. The draw
        // is < span <= wsLines_, so the cursor invariant holds.
        const bool hot = rng_.chance(spec_.hotFraction);
        const uint64_t span = hot ? hotLines_ : wsLines_;
        cursor_ = rng_.below(span);
        burstLeft_ = rng_.burstLength(spec_.burstContinueProb,
                                      spec_.burstCap);
    }
    --burstLeft_;
    // cursor_ < wsLines_ by invariant; a conditional wrap keeps it so,
    // emitting the same base + ((start + k) mod wsLines) sequence the
    // old per-access modulo produced without the divide.
    const uint64_t line = baseLine_ + cursor_;
    if (++cursor_ == wsLines_)
        cursor_ = 0;
    return line;
}

void
AddressStream::nextRuns(uint64_t *out, uint32_t n)
{
    // Mirrors next() exactly: a new burst draws region, start line, and
    // length in the same order from the same generator, and the burst
    // then advances the cursor one line per access (wrapping at the
    // working-set edge, with the burst continuing across the wrap).
    // Instead of re-entering per access, each burst is emitted as up to
    // three capped sequential fills (burst left / request left / lines
    // to the wrap), so the generator state is only touched per burst.
    uint64_t cur = cursor_;
    uint64_t left = burstLeft_;
    const uint64_t ws = wsLines_;
    const uint64_t hot = hotLines_;
    const uint64_t base = baseLine_;
    uint32_t i = 0;
    while (i < n) {
        if (left == 0) {
            const uint64_t span = rng_.chance(spec_.hotFraction) ? hot
                                                                 : ws;
            cur = rng_.below(span);
            left = rng_.burstLength(spec_.burstContinueProb,
                                    spec_.burstCap);
        }
        uint64_t k = left;
        if (k > n - i)
            k = n - i;
        if (k > ws - cur)
            k = ws - cur;
        const uint64_t first = base + cur;
        for (uint64_t j = 0; j < k; ++j)
            out[i + j] = first + j;
        i += static_cast<uint32_t>(k);
        cur += k;
        left -= k;
        if (cur == ws)
            cur = 0;
    }
    cursor_ = cur;
    burstLeft_ = left;
}

void
AddressStream::snapshot(SnapshotWriter &w) const
{
    w.beginSection("astr", 1);
    w.putU64(streamId_);
    w.putU64(spec_.workingSetBytes);
    w.putDouble(spec_.hotFraction);
    w.putDouble(spec_.hotSetFraction);
    w.putDouble(spec_.burstContinueProb);
    w.putU64(spec_.burstCap);
    w.putU64(baseLine_);
    w.putU64(wsLines_);
    w.putU64(hotLines_);
    const Rng::State rng = rng_.state();
    for (uint64_t word : rng.s)
        w.putU64(word);
    w.putU64(generation_);
    w.putU64(cursor_);
    w.putU64(burstLeft_);
}

bool
AddressStream::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("astr", 1))
        return false;
    uint64_t stream_id;
    AddressStreamSpec spec;
    uint64_t base_line, ws_lines, hot_lines;
    Rng::State rng;
    uint64_t generation, cursor, burst_left;
    if (!r.getU64(&stream_id) || stream_id != streamId_ ||
        !r.getU64(&spec.workingSetBytes) ||
        !r.getDouble(&spec.hotFraction) ||
        !r.getDouble(&spec.hotSetFraction) ||
        !r.getDouble(&spec.burstContinueProb) ||
        !r.getU64(&spec.burstCap) || !r.getU64(&base_line) ||
        !r.getU64(&ws_lines) || !r.getU64(&hot_lines))
        return false;
    for (uint64_t &word : rng.s)
        if (!r.getU64(&word))
            return false;
    if (!r.getU64(&generation) || !r.getU64(&cursor) ||
        !r.getU64(&burst_left))
        return false;
    spec_ = spec;
    baseLine_ = base_line;
    wsLines_ = ws_lines;
    hotLines_ = hot_lines;
    rng_.setState(rng);
    generation_ = generation;
    cursor_ = cursor;
    burstLeft_ = burst_left;
    return true;
}

} // namespace dora
