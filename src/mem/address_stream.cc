#include "mem/address_stream.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace dora
{

AddressStream::AddressStream(const AddressStreamSpec &spec,
                             uint64_t base_line, Rng rng)
    : spec_(spec), baseLine_(base_line), rng_(rng)
{
    reshape(spec);
}

void
AddressStream::reshape(const AddressStreamSpec &spec)
{
    if (spec.workingSetBytes < kCacheLineBytes)
        panic("AddressStream: working set smaller than one line");
    if (spec.hotSetFraction <= 0.0 || spec.hotSetFraction > 1.0)
        panic("AddressStream: hotSetFraction %g out of (0,1]",
              spec.hotSetFraction);
    spec_ = spec;
    wsLines_ = std::max<uint64_t>(1, spec.workingSetBytes / kCacheLineBytes);
    hotLines_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(wsLines_) * spec.hotSetFraction));
    burstLeft_ = 0;
}

uint64_t
AddressStream::next()
{
    if (burstLeft_ == 0) {
        // Start a new burst: pick a region, then a random line within it.
        const bool hot = rng_.chance(spec_.hotFraction);
        const uint64_t span = hot ? hotLines_ : wsLines_;
        cursor_ = rng_.below(span);
        burstLeft_ = rng_.burstLength(spec_.burstContinueProb,
                                      spec_.burstCap);
    }
    --burstLeft_;
    const uint64_t line = baseLine_ + (cursor_ % wsLines_);
    ++cursor_;
    return line;
}

} // namespace dora
