#include "mem/address_stream.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"
#include "common/units.hh"

namespace dora
{

namespace
{

/**
 * Process-wide stream-id source. Ids are compared only for equality
 * (phase-change detection), so the allocation order dependence of the
 * raw values is harmless — two live streams never share an id.
 */
uint64_t
nextStreamId()
{
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

AddressStream::AddressStream(const AddressStreamSpec &spec,
                             uint64_t base_line, Rng rng)
    : spec_(spec), baseLine_(base_line), rng_(rng),
      streamId_(nextStreamId())
{
    reshape(spec);
    generation_ = 0;  // construction is generation 0, not a reshape
}

void
AddressStream::reshape(const AddressStreamSpec &spec)
{
    if (spec.workingSetBytes < kCacheLineBytes)
        panic("AddressStream: working set smaller than one line");
    if (spec.hotSetFraction <= 0.0 || spec.hotSetFraction > 1.0)
        panic("AddressStream: hotSetFraction %g out of (0,1]",
              spec.hotSetFraction);
    spec_ = spec;
    wsLines_ = std::max<uint64_t>(1, spec.workingSetBytes / kCacheLineBytes);
    hotLines_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(wsLines_) * spec.hotSetFraction));
    burstLeft_ = 0;
    cursor_ = 0;
    ++generation_;
}

uint64_t
AddressStream::next()
{
    if (burstLeft_ == 0) {
        // Start a new burst: draw the region and the burst length up
        // front, then pick a random line within the region. The draw
        // is < span <= wsLines_, so the cursor invariant holds.
        const bool hot = rng_.chance(spec_.hotFraction);
        const uint64_t span = hot ? hotLines_ : wsLines_;
        cursor_ = rng_.below(span);
        burstLeft_ = rng_.burstLength(spec_.burstContinueProb,
                                      spec_.burstCap);
    }
    --burstLeft_;
    // cursor_ < wsLines_ by invariant; a conditional wrap keeps it so,
    // emitting the same base + ((start + k) mod wsLines) sequence the
    // old per-access modulo produced without the divide.
    const uint64_t line = baseLine_ + cursor_;
    if (++cursor_ == wsLines_)
        cursor_ = 0;
    return line;
}

} // namespace dora
