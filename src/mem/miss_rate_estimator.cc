#include "mem/miss_rate_estimator.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "mem/address_stream.hh"

namespace dora
{

namespace
{

/**
 * Agreement test for one pair of rates measured as @p a and @p b
 * successes over @p n Bernoulli trials each: the difference must be
 * within z sigma of the pooled binomial noise plus a small absolute
 * floor. @p floor_tol guards the near-zero regime where the normal
 * approximation collapses.
 */
bool
rateWithinNoise(double a, double b, double n, double floor_tol)
{
    constexpr double kZ = 2.5;
    const double p = std::clamp(0.5 * (a + b), 1e-6, 1.0 - 1e-6);
    const double sigma = std::sqrt(p * (1.0 - p) * 2.0 / n);
    return std::abs(a - b) <= floor_tol + kZ * sigma;
}

} // namespace

MissRateEstimator::MissRateEstimator(const MissRateEstimatorConfig &config,
                                     bool force_disabled)
    : config_(config), enabled_(config.enabled && !force_disabled)
{
    if (config.refreshTicks == 0)
        fatal("MissRateEstimator: refreshTicks must be >= 1");
    if (config.convergeTicks == 0)
        fatal("MissRateEstimator: convergeTicks must be >= 1");
    if (config.maxEntries == 0)
        fatal("MissRateEstimator: maxEntries must be >= 1");
    if (config.warmCoverage <= 0.0)
        fatal("MissRateEstimator: warmCoverage must be > 0");
    entries_.reserve(config.maxEntries);
}

void
MissRateEstimator::setL2Lines(uint64_t lines)
{
    if (lines == 0)
        fatal("MissRateEstimator: L2 line count must be >= 1");
    l2Lines_ = lines;
}

bool
MissRateEstimator::ratesAgree(const std::vector<MemSampleResult> &a,
                              const std::vector<MemSampleResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t c = 0; c < a.size(); ++c) {
        const MemSampleResult &ra = a[c];
        const MemSampleResult &rb = b[c];
        if ((ra.samplesIssued == 0) != (rb.samplesIssued == 0))
            return false;
        if (ra.samplesIssued == 0)
            continue;
        const double n = std::min(ra.samplesIssued, rb.samplesIssued);
        // L1 miss rate: per-sample Bernoulli over the full walk.
        if (!rateWithinNoise(ra.l1MissRate, rb.l1MissRate, n, 0.005))
            return false;
        // L2 misses per *sample* (l1 x l2local): the quantity that
        // feeds MPKI and DRAM demand, and the one whose slow decay
        // marks an still-warming cache. Tight floor: MPKI class bands
        // sit at miss-per-access levels of ~1e-3.
        const double qa = ra.l1MissRate * ra.l2LocalMissRate;
        const double qb = rb.l1MissRate * rb.l2LocalMissRate;
        if (!rateWithinNoise(qa, qb, n, 0.0005))
            return false;
    }
    return true;
}

void
MissRateEstimator::beginConvergence(
    Entry &entry, const std::vector<MemSampleResult> &results)
{
    entry.converged = false;
    entry.walks = 1;
    entry.checkWindow = std::max<uint32_t>(2, config_.convergeTicks);
    entry.nextCheckWalks = entry.checkWindow;
    entry.checkpoint = results;
    entry.results = results;
    entry.reusesSinceSample = 0;
}

bool
MissRateEstimator::creditWalkProbes(
    const std::vector<MemSampleRequest> &requests)
{
    // Warmth belongs to the cache contents a stream has accumulated, so
    // it is keyed on (streamId, generation) alone — not on the phase
    // signature. An OPP switch renames the phase but not the stream, so
    // the new phase starts warm and converges via the statistical test.
    constexpr size_t kMaxTracked = 64;
    bool all_warm = true;
    for (const MemSampleRequest &req : requests) {
        if (req.samples == 0 || req.stream == nullptr)
            continue;
        CoreKey key;
        key.streamId = req.stream->streamId();
        key.generation = req.stream->generation();
        StreamWarmth *slot = nullptr;
        for (StreamWarmth &w : warmth_) {
            if (w.key == key) {
                slot = &w;
                break;
            }
        }
        if (slot == nullptr) {
            if (warmth_.size() >= kMaxTracked) {
                size_t victim = 0;
                for (size_t i = 1; i < warmth_.size(); ++i)
                    if (warmth_[i].lastUseTick <
                        warmth_[victim].lastUseTick)
                        victim = i;
                warmth_.erase(warmth_.begin() +
                              static_cast<std::ptrdiff_t>(victim));
            }
            StreamWarmth w;
            w.key = key;
            // Cold region: the lines outside the quickly-warmed hot
            // subset that can actually stay cached (bounded by the L2).
            // Probes land there with ~(1 - hotFraction) probability, so
            // covering it takes ~lines / coldFraction probes; kappa
            // scales the coupon-collector slack.
            const AddressStreamSpec &spec = req.stream->spec();
            const double warmable = static_cast<double>(
                std::min(req.stream->wsLines(), l2Lines_));
            const double cold_frac =
                std::max(1.0 - spec.hotFraction, 0.05);
            w.targetProbes =
                config_.warmCoverage * warmable / cold_frac;
            warmth_.push_back(w);
            slot = &warmth_.back();
        }
        slot->probes += static_cast<double>(req.samples);
        slot->lastUseTick = tickSerial_;
        if (slot->probes < slot->targetProbes)
            all_warm = false;
    }
    return all_warm;
}

bool
MissRateEstimator::beginTick(const std::vector<MemSampleRequest> &requests,
                             uint64_t opp_index, uint32_t interleave_chunk)
{
    if (!enabled_)
        return true;

    ++tickSerial_;
    scratchSig_.cores.resize(requests.size());
    for (size_t c = 0; c < requests.size(); ++c) {
        CoreKey &key = scratchSig_.cores[c];
        const MemSampleRequest &req = requests[c];
        if (req.samples > 0 && req.stream != nullptr) {
            key.streamId = req.stream->streamId();
            key.generation = req.stream->generation();
        } else {
            key.streamId = 0;
            key.generation = 0;
        }
    }
    scratchSig_.oppIndex = opp_index;
    scratchSig_.interleaveChunk = interleave_chunk;

    for (size_t i = 0; i < entries_.size(); ++i) {
        Entry &entry = entries_[i];
        if (!(entry.signature == scratchSig_))
            continue;
        currentEntry_ = i;
        const bool ran_last_tick = entry.lastUseTick + 1 == tickSerial_;
        entry.lastUseTick = tickSerial_;
        if (!entry.converged) {
            pending_ = Pending::Converging;
            pendingWarm_ = creditWalkProbes(requests);
            ++sampledTicks_;
            return true;
        }
        if (!ran_last_tick ||
            entry.reusesSinceSample >= config_.refreshTicks) {
            // Confidence refresh, or the phase returns from dormancy
            // (other phases may have perturbed the shared caches):
            // walk once and test agreement with the cached rates.
            pending_ = Pending::Revalidate;
            pendingWarm_ = creditWalkProbes(requests);
            ++sampledTicks_;
            return true;
        }
        ++entry.reusesSinceSample;
        pending_ = Pending::None;
        ++reusedTicks_;
        return false;
    }

    // Unknown phase: sample, then store() installs a new entry. If a
    // converged entry differs only in its OPP index, remember it — the
    // install walk will double as a revalidation against its rates,
    // and agreement converges the new phase immediately (cache
    // contents, and hence miss rates, survive OPP switches).
    seedFrom_ = kNoSeed;
    for (size_t i = 0; i < entries_.size(); ++i) {
        const Entry &entry = entries_[i];
        if (!entry.converged ||
            entry.signature.interleaveChunk !=
                scratchSig_.interleaveChunk ||
            entry.signature.oppIndex == scratchSig_.oppIndex ||
            !(entry.signature.cores == scratchSig_.cores))
            continue;
        if (seedFrom_ == kNoSeed ||
            entry.lastUseTick > entries_[seedFrom_].lastUseTick)
            seedFrom_ = i;
    }
    pending_ = Pending::Install;
    pendingWarm_ = creditWalkProbes(requests);
    currentEntry_ = entries_.size();
    ++sampledTicks_;
    return true;
}

void
MissRateEstimator::store(const std::vector<MemSampleResult> &results)
{
    if (!enabled_ || pending_ == Pending::None)
        return;
    const Pending pending = pending_;
    pending_ = Pending::None;

    if (pending == Pending::Install) {
        // OPP-sibling seeding: test agreement before the LRU eviction
        // below can invalidate the candidate index. The warm-up floor
        // still gates the verdict — a cold stream must take the dense
        // ladder regardless of what a sibling claims.
        const bool seeded = seedFrom_ != kNoSeed && pendingWarm_ &&
            ratesAgree(entries_[seedFrom_].results, results);
        seedFrom_ = kNoSeed;
        if (entries_.size() >= config_.maxEntries) {
            // Deterministic LRU eviction.
            size_t victim = 0;
            for (size_t i = 1; i < entries_.size(); ++i)
                if (entries_[i].lastUseTick <
                    entries_[victim].lastUseTick)
                    victim = i;
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(victim));
        }
        Entry entry;
        entry.signature = scratchSig_;
        entry.lastUseTick = tickSerial_;
        beginConvergence(entry, results);
        if (seeded) {
            entry.converged = true;
            ++seededPhases_;
        }
        entries_.push_back(std::move(entry));
        currentEntry_ = entries_.size() - 1;
        return;
    }

    Entry &entry = entries_[currentEntry_];
    if (pending == Pending::Revalidate) {
        if (ratesAgree(entry.results, results)) {
            entry.results = results;
            entry.reusesSinceSample = 0;
        } else {
            // The phase drifted under its frozen rates (slow cache
            // transient, contention shift): back to dense sampling.
            ++demotions_;
            beginConvergence(entry, results);
        }
        return;
    }

    // Pending::Converging — dense sampling; compare doubling-window
    // checkpoints until two in a row agree within noise. The warm-up
    // floor gates the verdict: a slow transient drifts below per-walk
    // noise, so until the streams' cumulative probes cover their cold
    // regions a checkpoint agreement proves nothing — keep walking on
    // a short, non-doubling cadence instead.
    entry.results = results;
    entry.reusesSinceSample = 0;
    ++entry.walks;
    if (entry.walks >= entry.nextCheckWalks) {
        if (!pendingWarm_) {
            entry.checkpoint = results;
            entry.nextCheckWalks =
                entry.walks + std::max<uint32_t>(2, config_.convergeTicks);
        } else if (ratesAgree(entry.checkpoint, results)) {
            entry.converged = true;
        } else {
            // Disagreement past the floor: double the checkpoint
            // *spacing*. (Doubling the absolute walk count instead
            // would inherit however many walks the warm-up already
            // consumed and overshoot by a whole cold window.)
            entry.checkpoint = results;
            if (entry.checkWindow > (1u << 30))  // overflow guard
                entry.checkWindow = 1u << 30;
            else
                entry.checkWindow *= 2;
            entry.nextCheckWalks = entry.walks + entry.checkWindow;
        }
    }
}

void
MissRateEstimator::fill(std::vector<MemSampleResult> &results) const
{
    if (currentEntry_ >= entries_.size())
        panic("MissRateEstimator::fill without a cached entry");
    results = entries_[currentEntry_].results;
}

void
MissRateEstimator::invalidate()
{
    if (!enabled_)
        return;
    entries_.clear();
    pending_ = Pending::None;
    seedFrom_ = kNoSeed;
    ++invalidations_;
}

void
MissRateEstimator::reset()
{
    entries_.clear();
    warmth_.clear();
    pending_ = Pending::None;
    pendingWarm_ = false;
    seedFrom_ = kNoSeed;
    currentEntry_ = 0;
    tickSerial_ = 0;
    reusedTicks_ = 0;
    sampledTicks_ = 0;
    demotions_ = 0;
    invalidations_ = 0;
    seededPhases_ = 0;
}

namespace
{

void
putResults(SnapshotWriter &w,
           const std::vector<MemSampleResult> &results)
{
    w.putSize(results.size());
    for (const auto &s : results) {
        w.putU32(s.core);
        w.putDouble(s.l1MissRate);
        w.putDouble(s.l2LocalMissRate);
        w.putU32(s.samplesIssued);
    }
}

[[nodiscard]] bool
getResults(SnapshotReader &r, std::vector<MemSampleResult> *out)
{
    size_t count;
    if (!r.getSize(&count))
        return false;
    std::vector<MemSampleResult> results(count);
    for (auto &s : results)
        if (!r.getU32(&s.core) || !r.getDouble(&s.l1MissRate) ||
            !r.getDouble(&s.l2LocalMissRate) ||
            !r.getU32(&s.samplesIssued))
            return false;
    *out = std::move(results);
    return true;
}

} // namespace

void
MissRateEstimator::snapshot(SnapshotWriter &w) const
{
    w.beginSection("mre ", 2);
    w.putBool(enabled_);
    w.putU64(l2Lines_);
    w.putSize(entries_.size());
    for (const auto &e : entries_) {
        w.putSize(e.signature.cores.size());
        for (const auto &c : e.signature.cores) {
            w.putU64(c.streamId);
            w.putU64(c.generation);
        }
        w.putU64(e.signature.oppIndex);
        w.putU32(e.signature.interleaveChunk);
        putResults(w, e.results);
        putResults(w, e.checkpoint);
        w.putBool(e.converged);
        w.putU32(e.walks);
        w.putU32(e.nextCheckWalks);
        w.putU32(e.checkWindow);
        w.putU32(e.reusesSinceSample);
        w.putU64(e.lastUseTick);
    }
    w.putSize(warmth_.size());
    for (const auto &s : warmth_) {
        w.putU64(s.key.streamId);
        w.putU64(s.key.generation);
        w.putDouble(s.probes);
        w.putDouble(s.targetProbes);
        w.putU64(s.lastUseTick);
    }
    w.putSize(currentEntry_);
    w.putU8(static_cast<uint8_t>(pending_));
    w.putBool(pendingWarm_);
    w.putSize(seedFrom_);
    w.putU64(tickSerial_);
    w.putU64(reusedTicks_);
    w.putU64(sampledTicks_);
    w.putU64(demotions_);
    w.putU64(invalidations_);
    w.putU64(seededPhases_);
}

bool
MissRateEstimator::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("mre ", 2))
        return false;
    bool enabled;
    uint64_t l2_lines;
    size_t entry_count;
    if (!r.getBool(&enabled) || enabled != enabled_ ||
        !r.getU64(&l2_lines) || !r.getSize(&entry_count))
        return false;
    std::vector<Entry> entries(entry_count);
    for (auto &e : entries) {
        size_t core_count;
        if (!r.getSize(&core_count))
            return false;
        e.signature.cores.resize(core_count);
        for (auto &c : e.signature.cores)
            if (!r.getU64(&c.streamId) || !r.getU64(&c.generation))
                return false;
        if (!r.getU64(&e.signature.oppIndex) ||
            !r.getU32(&e.signature.interleaveChunk) ||
            !getResults(r, &e.results) ||
            !getResults(r, &e.checkpoint) || !r.getBool(&e.converged) ||
            !r.getU32(&e.walks) || !r.getU32(&e.nextCheckWalks) ||
            !r.getU32(&e.checkWindow) ||
            !r.getU32(&e.reusesSinceSample) ||
            !r.getU64(&e.lastUseTick))
            return false;
    }
    size_t warmth_count;
    if (!r.getSize(&warmth_count))
        return false;
    std::vector<StreamWarmth> warmth(warmth_count);
    for (auto &s : warmth)
        if (!r.getU64(&s.key.streamId) || !r.getU64(&s.key.generation) ||
            !r.getDouble(&s.probes) || !r.getDouble(&s.targetProbes) ||
            !r.getU64(&s.lastUseTick))
            return false;
    size_t current_entry, seed_from;
    uint8_t pending;
    bool pending_warm;
    uint64_t tick_serial, reused, sampled, demotions, invalidations;
    uint64_t seeded;
    if (!r.getSize(&current_entry) || !r.getU8(&pending) ||
        pending > static_cast<uint8_t>(Pending::Install) ||
        !r.getBool(&pending_warm) || !r.getSize(&seed_from) ||
        !r.getU64(&tick_serial) ||
        !r.getU64(&reused) || !r.getU64(&sampled) ||
        !r.getU64(&demotions) || !r.getU64(&invalidations) ||
        !r.getU64(&seeded))
        return false;
    if (seed_from != kNoSeed && seed_from >= entries.size())
        return false;
    l2Lines_ = l2_lines;
    entries_ = std::move(entries);
    warmth_ = std::move(warmth);
    currentEntry_ = current_entry;
    pending_ = static_cast<Pending>(pending);
    pendingWarm_ = pending_warm;
    seedFrom_ = seed_from;
    tickSerial_ = tick_serial;
    reusedTicks_ = reused;
    sampledTicks_ = sampled;
    demotions_ = demotions;
    invalidations_ = invalidations;
    seededPhases_ = seeded;
    return true;
}

} // namespace dora
