/**
 * @file
 * ThermalThrottleShim: a Governor wrapper enforcing a throttle ceiling
 * around a critical die temperature.
 *
 * Commercial SoCs override the DVFS governor when the junction nears
 * its limit (Bhat et al. document exactly these interventions); a
 * userspace policy that fights the thermal driver just thrashes. The
 * shim reproduces that last line of defense in the reproduction: once
 * the observed die temperature reaches criticalC the wrapped
 * governor's decision is clamped to the throttle-ceiling OPP, and the
 * clamp is held (hysteresis) until the die has cooled below
 * criticalC - hysteresisC — preventing limit cycling at the threshold.
 *
 * The shim trusts the temperature in the GovernorView, i.e. the
 * *sensor* path: a faulted reading degrades it exactly as it would a
 * real thermal daemon. A non-finite reading holds the previous
 * throttle state (fail-safe: a tripped shim stays tripped).
 */

#ifndef DORA_FAULT_THERMAL_THROTTLE_HH
#define DORA_FAULT_THERMAL_THROTTLE_HH

#include <cstdint>
#include <string>

#include "governor/governor.hh"

namespace dora
{

/** Throttle thresholds. */
struct ThermalThrottleConfig
{
    double criticalC = 85.0;     //!< trip temperature
    double hysteresisC = 5.0;    //!< release at criticalC - hysteresisC
    /** Highest core frequency allowed while throttled. */
    double ceilingMhz = 1190.4;
};

/**
 * Wraps any governor with the throttle ceiling. Non-owning: the inner
 * governor must outlive the shim.
 */
class ThermalThrottleShim : public Governor
{
  public:
    ThermalThrottleShim(Governor &inner,
                        const ThermalThrottleConfig &config = {});

    /** Keeps the inner governor's name so result tables read the same. */
    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override
    {
        return inner_.decisionIntervalSec();
    }
    size_t decideFrequencyIndex(const GovernorView &view) override;
    void reset() override;

    /** Currently clamping? */
    bool throttled() const { return throttled_; }

    /** Number of times the ceiling was engaged. */
    uint64_t interventions() const { return interventions_; }

    /** Highest OPP index at or under the ceiling in @p table. */
    size_t ceilingIndex(const FreqTable &table) const;

    const ThermalThrottleConfig &config() const { return config_; }

  private:
    Governor &inner_;
    ThermalThrottleConfig config_;
    std::string name_;
    bool throttled_ = false;
    uint64_t interventions_ = 0;
};

} // namespace dora

#endif // DORA_FAULT_THERMAL_THROTTLE_HH
