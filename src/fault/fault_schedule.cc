#include "fault/fault_schedule.hh"

namespace dora
{

bool
FaultSchedule::empty() const
{
    return sensorDropProb == 0.0 && sensorStuckProb == 0.0 &&
        sensorNoiseSd == 0.0 && actuatorRejectProb == 0.0 &&
        actuatorLatchProb == 0.0 && thermalSpikeProb == 0.0;
}

FaultSchedule
FaultSchedule::none()
{
    return FaultSchedule();
}

FaultSchedule
FaultSchedule::sensorDropout(uint64_t seed)
{
    FaultSchedule s;
    s.seed = seed;
    s.sensorDropProb = 0.30;
    return s;
}

FaultSchedule
FaultSchedule::stuckSensor(uint64_t seed)
{
    FaultSchedule s;
    s.seed = seed;
    s.sensorStuckProb = 0.10;
    s.sensorStuckDurationSec = 0.8;
    return s;
}

FaultSchedule
FaultSchedule::noisySensor(uint64_t seed)
{
    FaultSchedule s;
    s.seed = seed;
    s.sensorNoiseSd = 0.25;
    return s;
}

FaultSchedule
FaultSchedule::actuatorReject(uint64_t seed)
{
    FaultSchedule s;
    s.seed = seed;
    s.actuatorRejectProb = 0.40;
    s.actuatorLatchProb = 0.05;
    return s;
}

FaultSchedule
FaultSchedule::thermalEmergency(uint64_t seed)
{
    FaultSchedule s;
    s.seed = seed;
    s.thermalSpikeProb = 0.04;
    s.thermalSpikeDeltaC = 30.0;
    s.thermalSpikeDurationSec = 2.0;
    return s;
}

FaultSchedule
FaultSchedule::combined(uint64_t seed)
{
    FaultSchedule s;
    s.seed = seed;
    s.sensorDropProb = 0.15;
    s.sensorStuckProb = 0.05;
    s.sensorNoiseSd = 0.10;
    s.actuatorRejectProb = 0.20;
    s.thermalSpikeProb = 0.02;
    return s;
}

} // namespace dora
