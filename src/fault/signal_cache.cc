#include "fault/signal_cache.hh"

#include <limits>

namespace dora
{

SignalCache::SignalCache(double staleness_sec)
    : stalenessSec_(staleness_sec)
{
}

void
SignalCache::push(double now_sec, double value)
{
    lastValue_ = value;
    lastSec_ = now_sec;
    haveValue_ = true;
}

bool
SignalCache::fresh(double now_sec) const
{
    return haveValue_ && now_sec - lastSec_ <= stalenessSec_;
}

double
SignalCache::value(double now_sec, double fallback) const
{
    return fresh(now_sec) ? lastValue_ : fallback;
}

double
SignalCache::ageSec(double now_sec) const
{
    if (!haveValue_)
        return std::numeric_limits<double>::infinity();
    return now_sec - lastSec_;
}

void
SignalCache::reset()
{
    haveValue_ = false;
    lastValue_ = 0.0;
    lastSec_ = 0.0;
}

} // namespace dora
