/**
 * @file
 * FaultInjector: realizes a FaultSchedule on the signal path between
 * the simulated device and the governor.
 *
 * The injector sits exactly where real faults occur on a phone:
 *
 *   sensors --[conditionView]--> GovernorView --> governor decision
 *   decision --[actuatorAccepts]--> sysfs cpufreq write --> DVFS
 *   environment --[ambientDeltaC]--> thermal model (emergencies)
 *
 * Sensor faults (drop / stuck / noise) are drawn independently per
 * signal per decision; dropped readings are served from a
 * hold-last-good SignalCache until its staleness deadline, then from a
 * conservative fail-safe default (utilization high, MPKI zero,
 * temperature hot — each chosen so a degraded governor errs toward
 * QoS and thermal safety, never against them).
 *
 * Everything is driven by a private seeded RNG: the same schedule and
 * the same call sequence reproduce the same faults. An empty schedule
 * makes every entry point a strict no-op.
 */

#ifndef DORA_FAULT_FAULT_INJECTOR_HH
#define DORA_FAULT_FAULT_INJECTOR_HH

#include "common/rng.hh"
#include "fault/fault_schedule.hh"
#include "fault/signal_cache.hh"
#include "governor/governor.hh"

namespace dora
{

class RunTrace;

/**
 * Deterministic fault source for one experiment run.
 *
 * The harness calls reset() at the start of each run, conditionView()
 * once per governor decision, actuatorAccepts() per attempted
 * frequency write, and ambientDeltaC() per decision to learn the
 * current thermal-emergency offset.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultSchedule &schedule);

    /** False for an all-zero schedule: every hook is then a no-op. */
    bool enabled() const { return enabled_; }

    /** Restart the fault stream for a fresh run (same sequence). */
    void reset();

    /**
     * Apply sensor faults to the freshly sampled view, in place.
     * Perturbs l2Mpki, the utilization group (total / browser /
     * co-runner), and temperatureC; never touches page features,
     * frequency state, or timestamps.
     */
    void conditionView(GovernorView &view);

    /**
     * Would the DVFS write @p requested -> from @p current succeed?
     * Rejections and latch windows are counted; equal-index writes
     * always succeed (they are free on the real sysfs path too).
     */
    bool actuatorAccepts(double now_sec, size_t requested,
                         size_t current);

    /** Extra ambient temperature (degC) from an active emergency. */
    double ambientDeltaC(double now_sec);

    /** Bookkeeping hooks for the harness retry loop. */
    void noteActuatorRetry() { ++counters_.actuatorRetries; }
    void noteActuatorGiveUp() { ++counters_.actuatorGiveUps; }

    const FaultSchedule &schedule() const { return schedule_; }
    const FaultCounters &counters() const { return counters_; }

    /**
     * Attach a run trace sink (null detaches): every injected fault —
     * sensor drop/stuck/noise, actuator reject, thermal spike — then
     * emits a timestamped event. The harness attaches the sink per run
     * and MUST detach it before the RunTrace is destroyed.
     */
    void setTrace(RunTrace *trace) { trace_ = trace; }

    /** Fail-safe defaults served when a dropped signal went stale. */
    static constexpr double kFallbackUtilization = 1.0;
    static constexpr double kFallbackL2Mpki = 0.0;
    static constexpr double kFallbackTemperatureC = 80.0;

  private:
    /** Per-signal fault state (drop/stuck/noise + hold-last-good). */
    struct SensorChannel
    {
        explicit SensorChannel(double staleness_sec)
            : cache(staleness_sec)
        {
        }

        SignalCache cache;
        double stuckValue = 0.0;
        double stuckUntilSec = -1.0;
    };

    /**
     * One per-decision fault draw for a sensor group. Signals read
     * from the same counter sample (the three utilization fields)
     * share one draw, so their faults stay correlated the way a
     * single glitched read would be.
     */
    struct FaultAction
    {
        bool beginStuck = false;
        bool drop = false;
        double noiseFactor = 1.0;
    };

    /** Consume RNG state and decide this decision's fault action. */
    FaultAction drawAction();

    /**
     * Run one signal through the fault pipeline and return the value
     * the governor will see, clamped to [lo, hi] when perturbed.
     */
    double applyAction(SensorChannel &channel, const FaultAction &action,
                       double now_sec, double true_value,
                       double fallback, double lo, double hi);

    FaultSchedule schedule_;
    bool enabled_;
    Rng rng_;
    SensorChannel mpki_;
    SensorChannel util_;
    SensorChannel corunUtil_;
    SensorChannel browserUtil_;
    SensorChannel temp_;
    double actuatorLatchUntilSec_ = -1.0;
    double spikeUntilSec_ = -1.0;
    FaultCounters counters_;
    RunTrace *trace_ = nullptr;  //!< null when tracing is disabled
};

} // namespace dora

#endif // DORA_FAULT_FAULT_INJECTOR_HH
