/**
 * @file
 * Deterministic fault schedules for the resilience harness.
 *
 * On a real phone the signal path between the hardware and a userspace
 * governor daemon is not clean: perf-counter reads glitch or return
 * stale windows, sysfs cpufreq writes get rejected by the kernel or
 * latched by a firmware handshake, and ambient conditions can push the
 * die toward its junction limit. A FaultSchedule describes how often
 * (and how hard) each of those fault classes fires; a FaultInjector
 * realizes the schedule with a seeded deterministic RNG so every run
 * reproduces the same fault sequence (DESIGN §5.5 determinism rule).
 *
 * An all-zero schedule (the default) means "no faults": the injector
 * is then a strict no-op and every bench reproduces bit-identical
 * numbers.
 */

#ifndef DORA_FAULT_FAULT_SCHEDULE_HH
#define DORA_FAULT_FAULT_SCHEDULE_HH

#include <cstdint>
#include <string>

namespace dora
{

/**
 * Per-decision fault probabilities plus fault magnitudes. All
 * probabilities are evaluated once per governor decision (the cadence
 * at which a daemon samples counters and writes sysfs), not per tick.
 */
struct FaultSchedule
{
    /** Seed for the injector's private RNG stream. */
    uint64_t seed = 0;

    /**
     * Sensor faults — applied independently to each of the three
     * runtime signals (L2 MPKI, utilization, die temperature).
     */
    double sensorDropProb = 0.0;   //!< reading lost this decision
    double sensorStuckProb = 0.0;  //!< sensor latches its current value
    double sensorNoiseSd = 0.0;    //!< relative Gaussian noise sigma
    double sensorStuckDurationSec = 0.5;  //!< how long a latch lasts

    /**
     * Staleness deadline of the hold-last-good cache: a dropped
     * reading is replaced by the previous good one only if that value
     * is at most this old; beyond it the consumer gets a conservative
     * fail-safe default instead.
     */
    double sensorStalenessSec = 0.5;

    /** DVFS actuator faults (sysfs write path). */
    double actuatorRejectProb = 0.0;  //!< frequency write rejected
    double actuatorLatchProb = 0.0;   //!< actuator stuck at current OPP
    double actuatorLatchDurationSec = 0.3;

    /** Thermal emergencies: ambient spikes tripping the throttle. */
    double thermalSpikeProb = 0.0;     //!< spike begins this decision
    double thermalSpikeDeltaC = 25.0;  //!< ambient rise while active
    double thermalSpikeDurationSec = 1.5;

    /** True when every fault probability is zero (strict no-op). */
    bool empty() const;

    /** Canonical schedules for the resilience bench and tests. */
    static FaultSchedule none();
    static FaultSchedule sensorDropout(uint64_t seed);
    static FaultSchedule stuckSensor(uint64_t seed);
    static FaultSchedule noisySensor(uint64_t seed);
    static FaultSchedule actuatorReject(uint64_t seed);
    static FaultSchedule thermalEmergency(uint64_t seed);
    /** Everything at once — reporting only, not an acceptance gate. */
    static FaultSchedule combined(uint64_t seed);
};

/** Tally of injected faults, for bench reporting. */
struct FaultCounters
{
    uint64_t sensorDrops = 0;       //!< readings lost
    uint64_t sensorStuckIntervals = 0;  //!< decisions served a latched value
    uint64_t sensorNoisy = 0;       //!< readings perturbed by noise
    uint64_t staleFallbacks = 0;    //!< drops older than the deadline
    uint64_t actuatorRejects = 0;   //!< frequency writes rejected
    uint64_t actuatorRetries = 0;   //!< retry attempts issued
    uint64_t actuatorGiveUps = 0;   //!< retry budget exhausted
    uint64_t thermalSpikes = 0;     //!< ambient spikes started
};

} // namespace dora

#endif // DORA_FAULT_FAULT_SCHEDULE_HH
