#include "fault/thermal_throttle.hh"

#include <algorithm>
#include <cmath>

namespace dora
{

ThermalThrottleShim::ThermalThrottleShim(
    Governor &inner, const ThermalThrottleConfig &config)
    : inner_(inner), config_(config), name_(inner.name())
{
}

void
ThermalThrottleShim::reset()
{
    inner_.reset();
    throttled_ = false;
    interventions_ = 0;
}

size_t
ThermalThrottleShim::ceilingIndex(const FreqTable &table) const
{
    size_t idx = table.nearestIndex(config_.ceilingMhz);
    // nearestIndex may round up past the ceiling; never exceed it.
    while (idx > 0 && table.opp(idx).coreMhz > config_.ceilingMhz)
        --idx;
    return idx;
}

size_t
ThermalThrottleShim::decideFrequencyIndex(const GovernorView &view)
{
    const size_t inner_choice = inner_.decideFrequencyIndex(view);

    const double temp = view.temperatureC;
    if (std::isfinite(temp)) {
        if (!throttled_ && temp >= config_.criticalC) {
            throttled_ = true;
            ++interventions_;
        } else if (throttled_ &&
                   temp <= config_.criticalC - config_.hysteresisC) {
            throttled_ = false;
        }
    }

    if (!throttled_)
        return inner_choice;
    return std::min(inner_choice, ceilingIndex(*view.freqTable));
}

} // namespace dora
