/**
 * @file
 * Hold-last-good cache for one governor input signal.
 *
 * When a sensor reading is dropped, a deployed daemon keeps governing
 * on the previous good value — but only for so long: past a staleness
 * deadline the cached value is more dangerous than a conservative
 * default (a co-runner may have arrived since, the die may have
 * heated). SignalCache implements exactly that policy and is shared by
 * the FaultInjector's sensor path and the GovernorView hardening
 * tests.
 */

#ifndef DORA_FAULT_SIGNAL_CACHE_HH
#define DORA_FAULT_SIGNAL_CACHE_HH

namespace dora
{

/**
 * Last good value of one signal plus its timestamp.
 */
class SignalCache
{
  public:
    /** @param staleness_sec maximum age a held value may be served at */
    explicit SignalCache(double staleness_sec = 0.5);

    /** Record a good reading taken at @p now_sec. */
    void push(double now_sec, double value);

    /** True when a value no older than the deadline is available. */
    bool fresh(double now_sec) const;

    /**
     * The held value if still fresh at @p now_sec, otherwise
     * @p fallback (the conservative fail-safe default).
     */
    double value(double now_sec, double fallback) const;

    /** Age of the held value (infinity when empty). */
    double ageSec(double now_sec) const;

    /** Forget the held value. */
    void reset();

    double stalenessSec() const { return stalenessSec_; }

  private:
    double stalenessSec_;
    double lastValue_ = 0.0;
    double lastSec_ = 0.0;
    bool haveValue_ = false;
};

} // namespace dora

#endif // DORA_FAULT_SIGNAL_CACHE_HH
