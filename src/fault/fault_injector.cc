#include "fault/fault_injector.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace dora
{

FaultInjector::FaultInjector(const FaultSchedule &schedule)
    : schedule_(schedule), enabled_(!schedule.empty()),
      rng_(schedule.seed ^ 0xFA017EC7ull),
      mpki_(schedule.sensorStalenessSec),
      util_(schedule.sensorStalenessSec),
      corunUtil_(schedule.sensorStalenessSec),
      browserUtil_(schedule.sensorStalenessSec),
      temp_(schedule.sensorStalenessSec)
{
}

void
FaultInjector::reset()
{
    rng_ = Rng(schedule_.seed ^ 0xFA017EC7ull);
    mpki_.cache.reset();
    util_.cache.reset();
    corunUtil_.cache.reset();
    browserUtil_.cache.reset();
    temp_.cache.reset();
    mpki_.stuckUntilSec = -1.0;
    util_.stuckUntilSec = -1.0;
    corunUtil_.stuckUntilSec = -1.0;
    browserUtil_.stuckUntilSec = -1.0;
    temp_.stuckUntilSec = -1.0;
    actuatorLatchUntilSec_ = -1.0;
    spikeUntilSec_ = -1.0;
    counters_ = FaultCounters();
}

FaultInjector::FaultAction
FaultInjector::drawAction()
{
    FaultAction action;
    // Fixed draw order keeps the stream deterministic regardless of
    // which faults are enabled.
    action.beginStuck = rng_.chance(schedule_.sensorStuckProb);
    action.drop = rng_.chance(schedule_.sensorDropProb);
    if (schedule_.sensorNoiseSd > 0.0)
        action.noiseFactor =
            1.0 + rng_.gaussian(0.0, schedule_.sensorNoiseSd);
    return action;
}

double
FaultInjector::applyAction(SensorChannel &channel,
                           const FaultAction &action, double now_sec,
                           double true_value, double fallback,
                           double lo, double hi)
{
    // An already-latched sensor keeps serving its stuck value.
    if (now_sec < channel.stuckUntilSec)
        return channel.stuckValue;

    if (action.beginStuck) {
        channel.stuckValue = true_value;
        channel.stuckUntilSec =
            now_sec + schedule_.sensorStuckDurationSec;
        return channel.stuckValue;
    }

    if (action.drop) {
        if (!channel.cache.fresh(now_sec))
            ++counters_.staleFallbacks;
        return channel.cache.value(now_sec, fallback);
    }

    if (action.noiseFactor != 1.0) {
        const double noisy =
            std::clamp(true_value * action.noiseFactor, lo, hi);
        // The noisy value is what the daemon stores as "last good".
        channel.cache.push(now_sec, noisy);
        return noisy;
    }

    channel.cache.push(now_sec, true_value);
    return true_value;
}

void
FaultInjector::conditionView(GovernorView &view)
{
    if (!enabled_)
        return;
    const double now = view.nowSec;

    const FaultAction mpki_action = drawAction();
    const FaultAction util_action = drawAction();
    const FaultAction temp_action = drawAction();

    auto tally = [this, now](const FaultAction &a, const char *signal) {
        if (a.beginStuck) {
            ++counters_.sensorStuckIntervals;
            if (trace_)
                trace_->instant(now, "fault", "sensor_stuck",
                                {{"signal", signal}});
        } else if (a.drop) {
            ++counters_.sensorDrops;
            if (trace_)
                trace_->instant(now, "fault", "sensor_drop",
                                {{"signal", signal}});
        } else if (a.noiseFactor != 1.0) {
            ++counters_.sensorNoisy;
            if (trace_)
                trace_->instant(now, "fault", "sensor_noise",
                                {{"signal", signal},
                                 {"factor", a.noiseFactor}});
        }
    };
    tally(mpki_action, "l2_mpki");
    tally(util_action, "utilization");
    tally(temp_action, "temperature");

    view.l2Mpki = applyAction(mpki_, mpki_action, now, view.l2Mpki,
                              kFallbackL2Mpki, 0.0, 1e4);
    // The three utilization fields come from one counter read: one
    // draw, applied to each field against its own last-good cache.
    view.totalUtilization =
        applyAction(util_, util_action, now, view.totalUtilization,
                    kFallbackUtilization, 0.0, 1.0);
    view.corunUtilization =
        applyAction(corunUtil_, util_action, now,
                    view.corunUtilization, kFallbackUtilization, 0.0,
                    1.0);
    view.browserUtilization =
        applyAction(browserUtil_, util_action, now,
                    view.browserUtilization, kFallbackUtilization, 0.0,
                    1.0);
    view.temperatureC =
        applyAction(temp_, temp_action, now, view.temperatureC,
                    kFallbackTemperatureC, -40.0, 150.0);
}

bool
FaultInjector::actuatorAccepts(double now_sec, size_t requested,
                               size_t current)
{
    if (!enabled_ || requested == current)
        return true;

    const auto reject = [this, now_sec, requested, current] {
        ++counters_.actuatorRejects;
        if (trace_)
            trace_->instant(now_sec, "fault", "actuator_reject",
                            {{"requested", requested},
                             {"current", current}});
        return false;
    };
    if (now_sec < actuatorLatchUntilSec_)
        return reject();
    if (rng_.chance(schedule_.actuatorLatchProb)) {
        actuatorLatchUntilSec_ =
            now_sec + schedule_.actuatorLatchDurationSec;
        return reject();
    }
    if (rng_.chance(schedule_.actuatorRejectProb))
        return reject();
    return true;
}

double
FaultInjector::ambientDeltaC(double now_sec)
{
    if (!enabled_)
        return 0.0;
    if (now_sec < spikeUntilSec_)
        return schedule_.thermalSpikeDeltaC;
    if (rng_.chance(schedule_.thermalSpikeProb)) {
        spikeUntilSec_ = now_sec + schedule_.thermalSpikeDurationSec;
        ++counters_.thermalSpikes;
        if (trace_)
            trace_->instant(now_sec, "fault", "thermal_spike",
                            {{"delta_c", schedule_.thermalSpikeDeltaC},
                             {"duration_sec",
                              schedule_.thermalSpikeDurationSec}});
        return schedule_.thermalSpikeDeltaC;
    }
    return 0.0;
}

} // namespace dora
