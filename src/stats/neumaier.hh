/**
 * @file
 * Neumaier-compensated summation.
 *
 * The improved Kahan–Babuška variant: the compensation term also
 * absorbs the case where the incoming addend is larger in magnitude
 * than the running sum, which plain Kahan loses. Used wherever a
 * population-scale reduction must not drift (EmpiricalCdf::mean, the
 * fleet shard aggregates) — and, because the compensated pair is
 * just two doubles, the partial sums serialize and merge exactly.
 */

#ifndef DORA_STATS_NEUMAIER_HH
#define DORA_STATS_NEUMAIER_HH

#include <cmath>

namespace dora
{

/** Running compensated sum: value() == sum + compensation. */
struct NeumaierSum
{
    double sum = 0.0;
    double compensation = 0.0;

    void add(double x)
    {
        const double t = sum + x;
        if (std::abs(sum) >= std::abs(x))
            compensation += (sum - t) + x;
        else
            compensation += (x - t) + sum;
        sum = t;
    }

    /**
     * Fold another partial sum in (canonical left fold: @p next is
     * the newly finished shard). Adds the shard's sum, then its
     * compensation, through the compensated path.
     */
    void merge(const NeumaierSum &next)
    {
        add(next.sum);
        add(next.compensation);
    }

    double value() const { return sum + compensation; }
};

} // namespace dora

#endif // DORA_STATS_NEUMAIER_HH
