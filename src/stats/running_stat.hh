/**
 * @file
 * Streaming summary statistics (Welford's algorithm).
 */

#ifndef DORA_STATS_RUNNING_STAT_HH
#define DORA_STATS_RUNNING_STAT_HH

#include <cstdint>
#include <limits>

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/**
 * Accumulates count/mean/variance/min/max of a stream of doubles in O(1)
 * space using Welford's numerically stable update.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void push(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

    /** Number of observations so far. */
    uint64_t count() const { return n_; }

    /** Mean of the observations (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 with fewer than 2 observations). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    void snapshot(SnapshotWriter &w) const;
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace dora

#endif // DORA_STATS_RUNNING_STAT_HH
