#include "stats/cdf.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/neumaier.hh"

namespace dora
{

void
EmpiricalCdf::push(double x)
{
    samples_.push_back(x);
    sealed_ = false;
}

void
EmpiricalCdf::push(const std::vector<double> &xs)
{
    if (xs.empty())
        return;
    samples_.reserve(samples_.size() + xs.size());
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sealed_ = false;
}

void
EmpiricalCdf::seal()
{
    if (sealed_)
        return;
    std::sort(samples_.begin(), samples_.end());
    sealed_ = true;
}

void
EmpiricalCdf::requireSealed(const char *op) const
{
    if (!sealed_)
        panic("EmpiricalCdf::%s on an unsealed CDF — call seal() after "
              "the last push() (queries must be pure reads so a CDF "
              "can be shared across threads)",
              op);
}

double
EmpiricalCdf::fractionAtOrBelow(double x) const
{
    if (samples_.empty())
        return 0.0;
    requireSealed("fractionAtOrBelow");
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
        static_cast<double>(samples_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    if (samples_.empty())
        panic("EmpiricalCdf::quantile on empty sample set");
    requireSealed("quantile");
    if (q <= 0.0)
        return samples_.front();
    if (q >= 1.0)
        return samples_.back();
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples_.size()))) - 1;
    return samples_[std::min(rank, samples_.size() - 1)];
}

double
EmpiricalCdf::min() const
{
    if (samples_.empty())
        panic("EmpiricalCdf::min on empty sample set");
    requireSealed("min");
    return samples_.front();
}

double
EmpiricalCdf::max() const
{
    if (samples_.empty())
        panic("EmpiricalCdf::max on empty sample set");
    requireSealed("max");
    return samples_.back();
}

double
EmpiricalCdf::mean() const
{
    if (samples_.empty())
        return 0.0;
    // Neumaier-compensated: a naive accumulation loses low-order
    // bits when samples span magnitudes (e.g. PPW outliers next to
    // near-zero scores in a fleet population), and the mean then
    // depends on sample order — which breaks byte-identity between
    // aggregation orders that are otherwise equivalent.
    NeumaierSum sum;
    for (double s : samples_)
        sum.add(s);
    return sum.value() / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>>
EmpiricalCdf::series(int points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points < 2)
        return out;
    requireSealed("series");
    const double lo = samples_.front();
    const double hi = samples_.back();
    out.reserve(static_cast<size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * i / (points - 1);
        out.emplace_back(x, fractionAtOrBelow(x));
    }
    return out;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), width_((hi - lo) / bins), counts_(bins, 0)
{
    if (bins <= 0 || hi <= lo)
        panic("Histogram: invalid range [%g, %g) with %d bins", lo, hi,
              bins);
}

void
Histogram::push(double x)
{
    int idx = static_cast<int>(std::floor((x - lo_) / width_));
    idx = std::clamp(idx, 0, bins() - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

uint64_t
Histogram::binCount(int idx) const
{
    if (idx < 0 || idx >= bins())
        panic("Histogram::binCount: bin %d out of range", idx);
    return counts_[static_cast<size_t>(idx)];
}

double
Histogram::binCenter(int idx) const
{
    if (idx < 0 || idx >= bins())
        panic("Histogram::binCenter: bin %d out of range", idx);
    return lo_ + (idx + 0.5) * width_;
}

} // namespace dora
