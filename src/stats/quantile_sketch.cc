#include "stats/quantile_sketch.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

namespace
{

/** SplitMix64 finalizer: the deterministic compaction-parity seed. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

QuantileSketch::QuantileSketch(uint32_t k) : k_(k)
{
    if (k_ < 8)
        panic("QuantileSketch: k=%u below the minimum of 8", k_);
}

void
QuantileSketch::compactLevel(size_t level)
{
    if (level + 1 >= levels_.size())
        levels_.resize(level + 2);
    Level &cur = levels_[level];
    std::sort(cur.items.begin(), cur.items.end());

    // Compact an even count; with an odd buffer the smallest item
    // stays behind at its own weight so total weight is conserved.
    const size_t start = cur.items.size() % 2;
    const uint64_t seed =
        (static_cast<uint64_t>(level) << 32) ^ cur.compactions;
    const size_t parity = static_cast<size_t>(mix64(seed) & 1);
    ++cur.compactions;

    std::vector<double> &up = levels_[level + 1].items;
    for (size_t i = start + parity; i < cur.items.size(); i += 2)
        up.push_back(cur.items[i]);
    cur.items.resize(start);
}

void
QuantileSketch::compactExact()
{
    // Canonical compacted state: identical to having pushed every
    // sample one at a time through the leveled machinery. merge()
    // relies on this — folding an exact shard into a compacted
    // prefix replays its samples, so the campaign-level state is a
    // function of the global sample order alone.
    exact_ = false;
    levels_.assign(1, Level{});
    std::vector<double> replay;
    replay.swap(exactItems_);
    for (const double x : replay) {
        levels_[0].items.push_back(x);
        for (size_t l = 0; l < levels_.size(); ++l)
            while (levels_[l].items.size() >= k_)
                compactLevel(l);
    }
}

void
QuantileSketch::push(double x)
{
    ++n_;
    if (exact_) {
        exactItems_.push_back(x);
        if (exactItems_.size() > kExactCap)
            compactExact();
        return;
    }
    levels_[0].items.push_back(x);
    for (size_t l = 0; l < levels_.size(); ++l)
        while (levels_[l].items.size() >= k_)
            compactLevel(l);
}

void
QuantileSketch::merge(const QuantileSketch &next)
{
    if (k_ != next.k_)
        panic("QuantileSketch::merge: k mismatch (%u vs %u)", k_,
              next.k_);
    if (next.n_ == 0)
        return;

    if (exact_ && next.exact_) {
        // Genuine concatenation: associative and split-invariant.
        exactItems_.insert(exactItems_.end(), next.exactItems_.begin(),
                           next.exactItems_.end());
        n_ += next.n_;
        if (exactItems_.size() > kExactCap)
            compactExact();
        return;
    }
    if (!exact_ && next.exact_) {
        // Replay the shard's samples in arrival order — bit-identical
        // to having pushed them directly into this sketch.
        for (const double x : next.exactItems_)
            push(x);
        return;
    }
    if (exact_)
        compactExact();

    // compacted · compacted: append buffers level-wise then restore
    // the capacity invariant. Deterministic, but the result depends
    // on the fold shape — callers fold left-to-right in chunk order.
    n_ += next.n_;
    if (levels_.size() < next.levels_.size())
        levels_.resize(next.levels_.size());
    for (size_t l = 0; l < next.levels_.size(); ++l) {
        const Level &other = next.levels_[l];
        levels_[l].items.insert(levels_[l].items.end(),
                                other.items.begin(), other.items.end());
        levels_[l].compactions += other.compactions;
    }
    for (size_t l = 0; l < levels_.size(); ++l)
        while (levels_[l].items.size() >= k_)
            compactLevel(l);
}

double
QuantileSketch::quantile(double q) const
{
    if (n_ == 0)
        panic("QuantileSketch::quantile on an empty sketch");

    if (exact_) {
        std::vector<double> sorted = exactItems_;
        std::sort(sorted.begin(), sorted.end());
        if (q <= 0.0)
            return sorted.front();
        if (q >= 1.0)
            return sorted.back();
        const size_t rank = static_cast<size_t>(std::ceil(
                                q * static_cast<double>(sorted.size()))) -
            1;
        return sorted[std::min(rank, sorted.size() - 1)];
    }

    // Weighted nearest-rank over (item, 2^level) pairs. Total weight
    // equals count(): compaction promotes 2j items of weight w into
    // j of weight 2w and parks odd leftovers, never dropping weight.
    std::vector<std::pair<double, uint64_t>> weighted;
    weighted.reserve(storedItems());
    for (size_t l = 0; l < levels_.size(); ++l)
        for (const double x : levels_[l].items)
            weighted.emplace_back(x, 1ull << l);
    std::stable_sort(weighted.begin(), weighted.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    if (q <= 0.0)
        return weighted.front().first;
    if (q >= 1.0)
        return weighted.back().first;
    const double target_rank =
        std::ceil(q * static_cast<double>(n_));
    uint64_t cumulative = 0;
    for (const auto &[x, w] : weighted) {
        cumulative += w;
        if (static_cast<double>(cumulative) >= target_rank)
            return x;
    }
    return weighted.back().first;
}

size_t
QuantileSketch::storedItems() const
{
    if (exact_)
        return exactItems_.size();
    size_t total = 0;
    for (const Level &level : levels_)
        total += level.items.size();
    return total;
}

void
QuantileSketch::snapshot(SnapshotWriter &w) const
{
    w.beginSection("qskt", 1);
    w.putU32(k_);
    w.putU64(n_);
    w.putBool(exact_);
    w.putDoubles(exactItems_);
    w.putSize(levels_.size());
    for (const Level &level : levels_) {
        w.putDoubles(level.items);
        w.putU64(level.compactions);
    }
}

bool
QuantileSketch::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("qskt", 1))
        return false;
    uint32_t k;
    uint64_t n;
    bool exact;
    std::vector<double> exact_items;
    size_t level_count;
    if (!r.getU32(&k) || k < 8 || !r.getU64(&n) || !r.getBool(&exact) ||
        !r.getDoubles(&exact_items) || !r.getSize(&level_count))
        return false;
    // Levels grow as log2(n / k): 64 covers any physical n. A larger
    // count is a corrupted blob, not a bigger sketch — reject it
    // before sizing the vector by it.
    if (level_count > 64)
        return false;
    std::vector<Level> levels(level_count);
    for (Level &level : levels)
        if (!r.getDoubles(&level.items) ||
            !r.getU64(&level.compactions))
            return false;
    if (exact && (level_count != 0 || exact_items.size() != n ||
                  n > kExactCap))
        return false;
    if (!exact && (level_count == 0 || !exact_items.empty()))
        return false;
    k_ = k;
    n_ = n;
    exact_ = exact;
    exactItems_ = std::move(exact_items);
    levels_ = std::move(levels);
    return true;
}

std::string
QuantileSketch::stateBytes() const
{
    SnapshotWriter w;
    snapshot(w);
    return w.finish();
}

} // namespace dora
