#include "stats/running_stat.hh"

#include <cmath>

#include "common/snapshot.hh"

namespace dora
{

void
RunningStat::push(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::snapshot(SnapshotWriter &w) const
{
    w.beginSection("rstt", 1);
    w.putU64(n_);
    w.putDouble(mean_);
    w.putDouble(m2_);
    w.putDouble(min_);
    w.putDouble(max_);
}

bool
RunningStat::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("rstt", 1))
        return false;
    RunningStat s;
    if (!r.getU64(&s.n_) || !r.getDouble(&s.mean_) ||
        !r.getDouble(&s.m2_) || !r.getDouble(&s.min_) ||
        !r.getDouble(&s.max_))
        return false;
    *this = s;
    return true;
}

} // namespace dora
