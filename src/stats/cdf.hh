/**
 * @file
 * Empirical CDFs and fixed-bin histograms.
 *
 * Figure 5 (model prediction-error CDFs) and Figure 7b (per-governor load
 * time CDFs) of the paper are regenerated through EmpiricalCdf.
 */

#ifndef DORA_STATS_CDF_HH
#define DORA_STATS_CDF_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dora
{

/**
 * Exact empirical cumulative distribution over a sample set.
 *
 * Samples are accumulated with push(); seal() sorts them and freezes
 * the distribution for querying. Order-dependent queries (quantile,
 * min/max, fractionAtOrBelow, series) panic on an unsealed CDF.
 *
 * The build/query split exists for thread-safety: queries on a sealed
 * CDF are pure reads, so one sealed instance can be shared across
 * parallelMap workers with no synchronization. The previous design
 * sorted lazily under const, which was a data race in exactly that
 * sharing pattern.
 */
class EmpiricalCdf
{
  public:
    /** Add one sample (unseals). */
    void push(double x);

    /** Add many samples (unseals). */
    void push(const std::vector<double> &xs);

    /**
     * Sort the samples and freeze the distribution for querying.
     * Idempotent; a later push() unseals and requires a re-seal.
     */
    void seal();

    /** True once seal() has run with no push() after it. */
    bool sealed() const { return sealed_; }

    /** Number of samples (valid sealed or not). */
    size_t count() const { return samples_.size(); }

    /** Fraction of samples <= x (0 when empty). Requires seal(). */
    double fractionAtOrBelow(double x) const;

    /**
     * The q-quantile (q in [0,1]) using nearest-rank; q=1 returns the
     * maximum. Requires at least one sample and seal().
     */
    double quantile(double q) const;

    /** Smallest sample. Requires at least one sample and seal(). */
    double min() const;

    /** Largest sample. Requires at least one sample and seal(). */
    double max() const;

    /** Mean of the samples (0 when empty; valid sealed or not). */
    double mean() const;

    /**
     * Evaluate the CDF at @p points evenly spaced values covering
     * [min, max]; returns (x, fraction<=x) pairs for table emission.
     * Requires seal().
     */
    std::vector<std::pair<double, double>> series(int points) const;

  private:
    void requireSealed(const char *op) const;

    std::vector<double> samples_;
    bool sealed_ = true; // an empty CDF is trivially sorted
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
 * the edge bins so no observation is silently dropped.
 */
class Histogram
{
  public:
    /** Create @p bins equal-width bins spanning [lo, hi). */
    Histogram(double lo, double hi, int bins);

    /** Add one sample. */
    void push(double x);

    /** Count in bin @p idx. */
    uint64_t binCount(int idx) const;

    /** Center value of bin @p idx. */
    double binCenter(int idx) const;

    /** Number of bins. */
    int bins() const { return static_cast<int>(counts_.size()); }

    /** Total samples pushed. */
    uint64_t total() const { return total_; }

  private:
    double lo_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace dora

#endif // DORA_STATS_CDF_HH
