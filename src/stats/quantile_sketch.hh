/**
 * @file
 * Deterministic, mergeable, fixed-memory quantile sketch for
 * streaming fleet aggregation (DESIGN.md §5i).
 *
 * KLL-style leveled compaction: samples enter a level-0 buffer; a
 * full level sorts itself and promotes every second item to the next
 * level (items at level l carry weight 2^l), so memory is
 * O(k · log(n/k)) while nearest-rank quantile queries keep a bounded
 * rank error. Two properties distinguish this sketch from the
 * textbook randomized KLL:
 *
 *  - **Deterministic compaction.** The keep-odd/keep-even parity of
 *    every compaction is drawn from a counter-seeded integer hash of
 *    (level, per-level compaction count), not from an RNG, so the
 *    sketch state is a pure function of the push/merge sequence —
 *    the property the fleet tier's byte-identity contract needs.
 *
 *  - **Exact small-N mode.** Up to kExactCap samples the sketch
 *    simply stores them in arrival order and answers exactly
 *    (matching EmpiricalCdf's nearest-rank semantics). While both
 *    operands are exact, merge() is genuine concatenation — fully
 *    associative and split-invariant. Fleet shard aggregates are
 *    sized to stay exact (a chunk holds at most a few hundred
 *    samples), so merging an exact shard into the running campaign
 *    sketch is bit-identical to having pushed the shard's samples
 *    one by one: the campaign-level state depends only on the global
 *    cell order, never on how cells were chunked or which execution
 *    tier produced them.
 *
 * Once compacted, merge() appends the right operand's buffers and
 * re-compacts — still deterministic for a fixed fold shape, which is
 * why every aggregation path in the fleet engine folds shard
 * aggregates left-to-right in chunk-index order (the canonical
 * fold). Compacted·compacted merges only ever occur when restoring a
 * checkpointed campaign prefix, which preserves that fold shape.
 */

#ifndef DORA_STATS_QUANTILE_SKETCH_HH
#define DORA_STATS_QUANTILE_SKETCH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/**
 * Mergeable quantile sketch. Unlike EmpiricalCdf there is no
 * seal() step: queries are const and cheap enough for report
 * emission (they sort a bounded scratch copy), and the sketch is
 * never shared across threads mid-build.
 */
class QuantileSketch
{
  public:
    /** Samples kept verbatim before the first compaction. */
    static constexpr size_t kExactCap = 1024;

    /** @p k: per-level buffer capacity (accuracy knob, >= 8). */
    explicit QuantileSketch(uint32_t k = 200);

    /** Add one sample. */
    void push(double x);

    /**
     * Fold @p next into this sketch (canonical left fold: `this` is
     * the running prefix, @p next the newly finished shard). While
     * both sides are exact this is associative concatenation; once
     * either side is compacted the result is deterministic for a
     * fixed fold shape. Requires equal k.
     */
    void merge(const QuantileSketch &next);

    /** Total samples pushed/merged. */
    uint64_t count() const { return n_; }

    /**
     * Nearest-rank q-quantile (q in [0,1]; q=1 returns the max) over
     * the sketch's weighted items — exact while in exact mode.
     * Panics when empty.
     */
    double quantile(double q) const;

    /** True until the first compaction (answers are exact). */
    bool exact() const { return exact_; }

    /** Items currently held across all buffers (memory gauge). */
    size_t storedItems() const;

    /**
     * Serialize/restore the full sketch state ("qskt" section).
     * A restored sketch continues bit-for-bit — the campaign
     * checkpoint primitive.
     */
    void snapshot(SnapshotWriter &w) const;
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

    /**
     * Serialized state via snapshot(); two sketches are
     * bit-identical iff these bytes match (the determinism tests'
     * comparator).
     */
    std::string stateBytes() const;

  private:
    struct Level
    {
        std::vector<double> items;  //!< weight 2^level each
        uint64_t compactions = 0;   //!< parity-seed counter
    };

    void compactLevel(size_t level);
    void compactExact();

    uint32_t k_;
    uint64_t n_ = 0;
    bool exact_ = true;
    std::vector<double> exactItems_;  //!< arrival order (exact mode)
    std::vector<Level> levels_;       //!< compacted mode
};

} // namespace dora

#endif // DORA_STATS_QUANTILE_SKETCH_HH
