#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dora
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Normal};

/** Serializes emission so concurrent workers never interleave lines. */
std::mutex g_emitMutex;

void
emit(const char *prefix, const char *fmt, va_list args)
{
    // Format into a local buffer first so the lock is held only for a
    // single write and the line reaches stderr atomically even when
    // worker threads log concurrently.
    char buf[1024];
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    const char *ellipsis =
        n >= static_cast<int>(sizeof(buf)) ? "..." : "";
    std::lock_guard<std::mutex> lock(g_emitMutex);
    std::fprintf(stderr, "%s%s%s\n", prefix, buf, ellipsis);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace dora
