#include "common/logging.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace dora
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Normal};

/** Serializes emission so concurrent workers never interleave lines. */
Mutex g_emitMutex;

void
emit(const char *prefix, const char *fmt, va_list args)
{
    // Format into a local buffer first so the lock is held only for a
    // single write and the line reaches stderr atomically even when
    // worker threads log concurrently.
    char buf[1024];
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    const char *ellipsis =
        n >= static_cast<int>(sizeof(buf)) ? "..." : "";
    MutexLock lock(g_emitMutex);
    std::fprintf(stderr, "%s%s%s\n", prefix, buf, ellipsis);
}

/** Per-format-string warn() tallies, guarded by its own mutex so the
 *  suppression check never contends with the emit path's formatting. */
struct WarnTally
{
    uint64_t emitted = 0;
    uint64_t suppressed = 0;
};

Mutex g_warnMutex;
std::map<std::string, WarnTally> g_warnTallies GUARDED_BY(g_warnMutex);

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    bool last_before_mute = false;
    {
        MutexLock lock(g_warnMutex);
        WarnTally &tally = g_warnTallies[fmt];
        if (tally.emitted >= warnEmitLimit()) {
            ++tally.suppressed;
            return;
        }
        ++tally.emitted;
        last_before_mute = tally.emitted == warnEmitLimit();
    }
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
    if (last_before_mute) {
        MutexLock lock(g_emitMutex);
        std::fprintf(stderr,
                     "warn: (repeated %llu times; further instances of "
                     "this warning are suppressed and counted)\n",
                     static_cast<unsigned long long>(warnEmitLimit()));
    }
}

std::vector<WarnSuppressionEntry>
warnSuppressionEntries()
{
    std::vector<WarnSuppressionEntry> out;
    MutexLock lock(g_warnMutex);
    out.reserve(g_warnTallies.size());
    for (const auto &[key, tally] : g_warnTallies)
        out.push_back(
            WarnSuppressionEntry{key, tally.emitted, tally.suppressed});
    return out;
}

uint64_t
warnSuppressedTotal()
{
    uint64_t total = 0;
    MutexLock lock(g_warnMutex);
    for (const auto &[key, tally] : g_warnTallies)
        total += tally.suppressed;
    return total;
}

void
resetWarnSuppression()
{
    MutexLock lock(g_warnMutex);
    g_warnTallies.clear();
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace dora
