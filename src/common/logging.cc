#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace dora
{

namespace
{

LogLevel g_level = LogLevel::Normal;

void
emit(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace dora
