/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator draws from an Rng seeded from
 * the owning component's identity, so a given workload combination always
 * reproduces the same address streams, phase jitter, and measurements.
 * The generator is xoshiro256** (Blackman & Vigna), which is fast, has a
 * 2^256-1 period, and passes BigCrush.
 */

#ifndef DORA_COMMON_RNG_HH
#define DORA_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

namespace dora
{

/**
 * Deterministic xoshiro256** generator with convenience draws.
 *
 * Copyable; copies continue the sequence independently from the point of
 * the copy, which is occasionally useful for "what-if" replays in tests.
 */
class Rng
{
  public:
    /** Seed from a 64-bit value via SplitMix64 state expansion. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Seed from a string label, e.g. "page:amazon/kernel:bfs". */
    explicit Rng(std::string_view label);

    // The per-draw primitives are defined in the header: address-stream
    // generation draws once or more per modeled cache access, so the
    // sampled-walk hot path (DESIGN.md §5g) needs these inlined into
    // its burst loops rather than paying a call per draw. The
    // arithmetic is unchanged — draw sequences are bit-identical to
    // the out-of-line versions.

    /** Next raw 64-bit draw. */
    uint64_t next()
    {
        const uint64_t result = rotl_(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl_(s_[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 high bits -> double in [0, 1).
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t below(uint64_t n)
    {
        if (n == 0)
            belowZeroPanic_();
        // Modulo bias is negligible for the simulator's n << 2^64.
        return next() % n;
    }

    /** Standard normal draw (Box-Muller, one value per call). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double sd);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish burst length in [1, cap]: used by address stream
     * generators to model runs of sequential accesses.
     */
    uint64_t burstLength(double continue_prob, uint64_t cap)
    {
        uint64_t len = 1;
        while (len < cap && chance(continue_prob))
            ++len;
        return len;
    }

    /** Derive a child generator from this one plus a salt label. */
    Rng fork(std::string_view salt);

    /**
     * Serializable stream state: the four xoshiro256** words. A
     * generator restored via setState() continues the exact draw
     * sequence of the captured one — the enabling primitive for
     * checkpoint/replay of simulation state (common/snapshot.hh).
     */
    struct State
    {
        uint64_t s[4] = {0, 0, 0, 0};
    };

    /** Capture the current stream state. */
    State state() const;

    /** Resume from a captured stream state. */
    void setState(const State &state);

  private:
    static uint64_t rotl_(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Out-of-line failure path keeps logging out of this header. */
    [[noreturn]] static void belowZeroPanic_();

    uint64_t s_[4];
};

/** Stable 64-bit FNV-1a hash of a string, used for label seeding. */
uint64_t hashLabel(std::string_view label);

} // namespace dora

#endif // DORA_COMMON_RNG_HH
