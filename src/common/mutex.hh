/**
 * @file
 * Annotated mutual-exclusion primitives for clang thread-safety
 * analysis (common/thread_annotations.hh).
 *
 * libstdc++'s std::mutex and std::lock_guard carry no capability
 * attributes, so `-Wthread-safety` cannot follow them. dora::Mutex
 * wraps std::mutex in a CAPABILITY class and dora::MutexLock is the
 * SCOPED_CAPABILITY guard; fields declared GUARDED_BY(someMutex_) are
 * then provably accessed only under the lock — a violation is a
 * compile error under -DDORA_THREAD_SAFETY=ON (clang).
 *
 * Condition-variable waits use dora::CondVar
 * (std::condition_variable_any), which accepts MutexLock as its
 * BasicLockable. The analysis treats the wait call as opaque, so the
 * capability is considered held across it — which matches the caller's
 * view: wait() returns with the lock re-acquired. These primitives sit
 * on cold control paths only (batch hand-off, registry insertions,
 * log-sink serialization); hot paths stay on relaxed atomics.
 */

#ifndef DORA_COMMON_MUTEX_HH
#define DORA_COMMON_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace dora
{

/** An annotated std::mutex: the unit of GUARDED_BY declarations. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { m_.lock(); }

    void unlock() RELEASE() { m_.unlock(); }

    bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_; // NOLINT(dora-conc-mutex-unannotated): this
                   // wrapper *is* the annotated capability.
};

/**
 * RAII lock on a dora::Mutex, annotated as a scoped capability.
 *
 * Also satisfies BasicLockable (lock()/unlock()) so it can be handed
 * to CondVar::wait, which releases and re-acquires it internally; the
 * held flag keeps a manual unlock() from double-releasing in the
 * destructor.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) ACQUIRE(m) : m_(m), held_(true)
    {
        m_.lock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() RELEASE()
    {
        if (held_)
            m_.unlock();
    }

    /** Re-acquire after a manual unlock() (CondVar interop). */
    void lock() ACQUIRE()
    {
        m_.lock();
        held_ = true;
    }

    /** Release before scope exit (CondVar interop). */
    void unlock() RELEASE()
    {
        m_.unlock();
        held_ = false;
    }

  private:
    Mutex &m_;
    bool held_;
};

/** Condition variable compatible with MutexLock (BasicLockable). */
using CondVar = std::condition_variable_any;

} // namespace dora

#endif // DORA_COMMON_MUTEX_HH
