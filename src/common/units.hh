/**
 * @file
 * Unit conventions and small helpers shared across the simulator.
 *
 * The simulator standardizes on:
 *   - time      : seconds (double) for durations, Tick (uint64_t) for the
 *                 discrete simulation step counter;
 *   - frequency : MHz (double) — matches how the paper and cpufreq tables
 *                 express operating points;
 *   - voltage   : volts (double);
 *   - power     : watts (double); energy: joules (double);
 *   - temperature: degrees Celsius (double).
 *
 * Using doubles with documented units (rather than wrapper types) follows
 * the surrounding-simulator idiom (gem5 does the same); the conversion
 * helpers below keep magic constants out of call sites.
 */

#ifndef DORA_COMMON_UNITS_HH
#define DORA_COMMON_UNITS_HH

#include <cstdint>

namespace dora
{

/** Discrete simulation step counter; one tick = Simulator config dt. */
using Tick = uint64_t;

/** Cache-line size used across the memory hierarchy (bytes). */
constexpr uint64_t kCacheLineBytes = 64;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

/** Convert MHz to Hz. */
constexpr double mhzToHz(double mhz) { return mhz * kMega; }

/** Convert MHz to GHz (used for axis labels that mirror the paper). */
constexpr double mhzToGhz(double mhz) { return mhz / kKilo; }

/** Convert seconds to milliseconds. */
constexpr double secToMs(double s) { return s * kKilo; }

/** Convert milliseconds to seconds. */
constexpr double msToSec(double ms) { return ms / kKilo; }

/** Clamp helper that avoids pulling <algorithm> into every header. */
constexpr double
clampTo(double v, double lo, double hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Linear interpolation between a and b by t in [0,1]. */
constexpr double lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

} // namespace dora

#endif // DORA_COMMON_UNITS_HH
