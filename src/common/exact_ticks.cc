#include "common/exact_ticks.hh"

#include <atomic>
#include <cstring>

#include "common/cli.hh"

namespace dora
{

namespace
{

/** -1 = unresolved, 0 = adaptive, 1 = exact. */
std::atomic<int> g_exact{-1};

int
resolveFromEnv()
{
    // envNonEmpty warns when DORA_EXACT_TICKS is set-but-empty — a CI
    // matrix that meant to select a mode but exported nothing.
    const char *env = envNonEmpty("DORA_EXACT_TICKS");
    return (env && std::strcmp(env, "1") == 0) ? 1 : 0;
}

} // namespace

bool
exactTicksMode()
{
    int state = g_exact.load(std::memory_order_relaxed);
    if (state < 0) {
        state = resolveFromEnv();
        // Benign race: concurrent first readers resolve to the same
        // value; an explicit setExactTicksMode() wins via exchange
        // ordering below only if it ran first, which is the documented
        // construction-time contract anyway.
        int expected = -1;
        g_exact.compare_exchange_strong(expected, state,
                                        std::memory_order_relaxed);
        state = g_exact.load(std::memory_order_relaxed);
    }
    return state == 1;
}

void
setExactTicksMode(bool exact)
{
    g_exact.store(exact ? 1 : 0, std::memory_order_relaxed);
}

bool
parseExactTicksFlag(int argc, char **argv)
{
    if (!cliHasFlag(argc, argv, "--exact-ticks"))
        return false;
    setExactTicksMode(true);
    return true;
}

} // namespace dora
