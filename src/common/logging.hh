/**
 * @file
 * Status-message and error helpers in the gem5 spirit.
 *
 * fatal() is for user errors (bad configuration, impossible request) and
 * exits with status 1; panic() is for internal invariant violations and
 * aborts. inform()/warn() report status without stopping the run.
 */

#ifndef DORA_COMMON_LOGGING_HH
#define DORA_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace dora
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel
{
    Quiet,   //!< suppress inform(); warnings still shown
    Normal,  //!< default: inform() and warn() shown
    Verbose  //!< additionally show debugLog() messages
};

/** Set the process-wide verbosity. Thread-compatible, not thread-safe. */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Informative status message (printf-style). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Non-fatal warning about questionable conditions (printf-style).
 *
 * Repeated warnings are rate-limited per format string: after
 * warnEmitLimit() emissions of the same fmt the sink stops printing and
 * counts instead, so a parallel sweep hitting the same condition in
 * every cell cannot flood stderr. Suppression totals are queryable
 * below and surfaced by MetricsRegistry::snapshotText().
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emissions allowed per distinct warn() format string. */
constexpr uint64_t warnEmitLimit() { return 5; }

/** Suppression tally for one warn() format string. */
struct WarnSuppressionEntry
{
    std::string key;      //!< the format string
    uint64_t emitted;     //!< lines actually printed
    uint64_t suppressed;  //!< calls swallowed after the limit
};

/** Per-key tallies, sorted by key. Thread-safe. */
std::vector<WarnSuppressionEntry> warnSuppressionEntries();

/** Total warn() calls suppressed across all keys. Thread-safe. */
uint64_t warnSuppressedTotal();

/** Forget all suppression state (tests). Thread-safe. */
void resetWarnSuppression();

/** Extra-chatty diagnostics, only shown at LogLevel::Verbose. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user error: print the message and exit(1).
 * Use for bad configuration or arguments, not for library bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: print the message and abort().
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dora

#endif // DORA_COMMON_LOGGING_HH
