/**
 * @file
 * Status-message and error helpers in the gem5 spirit.
 *
 * fatal() is for user errors (bad configuration, impossible request) and
 * exits with status 1; panic() is for internal invariant violations and
 * aborts. inform()/warn() report status without stopping the run.
 */

#ifndef DORA_COMMON_LOGGING_HH
#define DORA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace dora
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel
{
    Quiet,   //!< suppress inform(); warnings still shown
    Normal,  //!< default: inform() and warn() shown
    Verbose  //!< additionally show debugLog() messages
};

/** Set the process-wide verbosity. Thread-compatible, not thread-safe. */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Informative status message (printf-style). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable conditions (printf-style). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Extra-chatty diagnostics, only shown at LogLevel::Verbose. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user error: print the message and exit(1).
 * Use for bad configuration or arguments, not for library bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: print the message and abort().
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dora

#endif // DORA_COMMON_LOGGING_HH
