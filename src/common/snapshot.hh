/**
 * @file
 * Versioned binary snapshot/restore for simulator state.
 *
 * A snapshot is a flat byte buffer: a sequence of tagged, versioned
 * sections, each written by one component (`Soc`, `MemSystem`,
 * `CacheModel`, a governor, ...), terminated by an FNV-1a checksum
 * over everything before it. Doubles are stored as raw IEEE-754 bit
 * patterns, so a snapshot -> restore -> snapshot round trip is
 * byte-identical and a restored simulation continues bit-for-bit
 * where the original left off (the contract tests/sim/snapshot_test.cc
 * enforces).
 *
 * Versioning policy (DESIGN.md §5f): every section carries its own
 * tag + version. A reader rejects unknown tags and versions instead of
 * guessing — restore is `tryRestore()` returning false, never a
 * partial state. Snapshots are same-process/same-build artifacts for
 * replay and checkpointing; they are NOT a portable interchange
 * format (byte order and type widths follow the host).
 *
 * Restore-fallibility is machine-enforced: the dora-rob-unchecked-try
 * lint rule flags any `tryRestore`/`tryDeserialize` call whose result
 * is discarded.
 */

#ifndef DORA_COMMON_SNAPSHOT_HH
#define DORA_COMMON_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dora
{

/** Appends typed fields to a growing snapshot buffer. */
class SnapshotWriter
{
  public:
    /** Open a tagged, versioned section (4-char tag, e.g. "soc "). */
    void beginSection(std::string_view tag, uint32_t version);

    void putU8(uint8_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    /** Raw IEEE-754 bit pattern: lossless, bit-exact. */
    void putDouble(double v);
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putSize(size_t v) { putU64(static_cast<uint64_t>(v)); }
    void putString(std::string_view s);
    void putDoubles(const std::vector<double> &v);
    void putU64s(const std::vector<uint64_t> &v);
    void putU32s(const std::vector<uint32_t> &v);

    /** Seal the buffer: append the checksum and return the bytes. */
    std::string finish() const;

    /** Bytes written so far (excluding the trailing checksum). */
    size_t size() const { return bytes_.size(); }

  private:
    std::string bytes_;
};

/**
 * Sequential reader over a sealed snapshot buffer. Every accessor
 * returns false on exhaustion or type/tag mismatch and leaves @p out
 * untouched; callers must check (the lint rule enforces it for the
 * tryRestore entry points).
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(std::string_view bytes) : bytes_(bytes) {}

    /**
     * Validate the trailing checksum. Call once before restoring;
     * false means the buffer is truncated or corrupt.
     */
    bool checksumOk() const;

    /** Enter a section; false on tag or version mismatch. */
    bool beginSection(std::string_view tag, uint32_t version);

    bool getU8(uint8_t *out);
    bool getU32(uint32_t *out);
    bool getU64(uint64_t *out);
    bool getDouble(double *out);
    bool getBool(bool *out);
    bool getSize(size_t *out);
    bool getString(std::string *out);
    bool getDoubles(std::vector<double> *out);
    bool getU64s(std::vector<uint64_t> *out);
    bool getU32s(std::vector<uint32_t> *out);

    /** True when every payload byte has been consumed. */
    bool atEnd() const;

  private:
    bool take(void *out, size_t n);

    std::string_view bytes_;
    size_t pos_ = 0;
};

} // namespace dora

#endif // DORA_COMMON_SNAPSHOT_HH
