/**
 * @file
 * Cache-line-aligned storage for hot-path scratch arrays.
 *
 * The lane-batched walk kernel (DESIGN.md §5g) streams through flat
 * per-lane arrays with SIMD loads; anchoring them on a 64-byte
 * boundary keeps every row load inside one cache line and lets the
 * compiler use aligned vector moves under -march=native. The
 * allocator is a thin std::allocator drop-in, so AlignedVec composes
 * with every std::vector idiom already used for scratch buffers.
 */

#ifndef DORA_COMMON_ALIGNED_HH
#define DORA_COMMON_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace dora
{

/** Minimal allocator yielding @p Align-byte-aligned storage. */
template <typename T, std::size_t Align = 64>
struct AlignedAllocator
{
    using value_type = T;

    static_assert(Align >= alignof(T), "alignment below type minimum");

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(Align)));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** std::vector whose data() is 64-byte aligned. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T, 64>>;

} // namespace dora

#endif // DORA_COMMON_ALIGNED_HH
