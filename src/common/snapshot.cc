#include "common/snapshot.hh"

#include <cstring>

#include "common/rng.hh"

namespace dora
{

namespace
{

/** Field type markers, one byte ahead of every field. */
enum : uint8_t
{
    kTagU8 = 0x01,
    kTagU32 = 0x02,
    kTagU64 = 0x03,
    kTagDouble = 0x04,
    kTagString = 0x05,
    kTagDoubles = 0x06,
    kTagU64s = 0x07,
    kTagU32s = 0x08,
    kTagSection = 0x09,
};

constexpr size_t kChecksumBytes = sizeof(uint64_t);

} // namespace

void
SnapshotWriter::beginSection(std::string_view tag, uint32_t version)
{
    bytes_.push_back(static_cast<char>(kTagSection));
    // Fixed-width 4-char tag; shorter tags are space-padded.
    char four[4] = {' ', ' ', ' ', ' '};
    std::memcpy(four, tag.data(), tag.size() < 4 ? tag.size() : 4);
    bytes_.append(four, 4);
    putU32(version);
}

void
SnapshotWriter::putU8(uint8_t v)
{
    bytes_.push_back(static_cast<char>(kTagU8));
    bytes_.push_back(static_cast<char>(v));
}

void
SnapshotWriter::putU32(uint32_t v)
{
    bytes_.push_back(static_cast<char>(kTagU32));
    bytes_.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
SnapshotWriter::putU64(uint64_t v)
{
    bytes_.push_back(static_cast<char>(kTagU64));
    bytes_.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
SnapshotWriter::putDouble(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bytes_.push_back(static_cast<char>(kTagDouble));
    bytes_.append(reinterpret_cast<const char *>(&bits), sizeof(bits));
}

void
SnapshotWriter::putString(std::string_view s)
{
    bytes_.push_back(static_cast<char>(kTagString));
    const uint64_t len = s.size();
    bytes_.append(reinterpret_cast<const char *>(&len), sizeof(len));
    bytes_.append(s.data(), s.size());
}

void
SnapshotWriter::putDoubles(const std::vector<double> &v)
{
    bytes_.push_back(static_cast<char>(kTagDoubles));
    const uint64_t len = v.size();
    bytes_.append(reinterpret_cast<const char *>(&len), sizeof(len));
    for (double d : v) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        bytes_.append(reinterpret_cast<const char *>(&bits),
                      sizeof(bits));
    }
}

void
SnapshotWriter::putU64s(const std::vector<uint64_t> &v)
{
    bytes_.push_back(static_cast<char>(kTagU64s));
    const uint64_t len = v.size();
    bytes_.append(reinterpret_cast<const char *>(&len), sizeof(len));
    if (!v.empty())
        bytes_.append(reinterpret_cast<const char *>(v.data()),
                      v.size() * sizeof(uint64_t));
}

void
SnapshotWriter::putU32s(const std::vector<uint32_t> &v)
{
    bytes_.push_back(static_cast<char>(kTagU32s));
    const uint64_t len = v.size();
    bytes_.append(reinterpret_cast<const char *>(&len), sizeof(len));
    if (!v.empty())
        bytes_.append(reinterpret_cast<const char *>(v.data()),
                      v.size() * sizeof(uint32_t));
}

std::string
SnapshotWriter::finish() const
{
    std::string out = bytes_;
    const uint64_t sum = hashLabel(out);
    out.append(reinterpret_cast<const char *>(&sum), sizeof(sum));
    return out;
}

bool
SnapshotReader::checksumOk() const
{
    if (bytes_.size() < kChecksumBytes)
        return false;
    const size_t payload = bytes_.size() - kChecksumBytes;
    uint64_t stored;
    std::memcpy(&stored, bytes_.data() + payload, sizeof(stored));
    return stored == hashLabel(bytes_.substr(0, payload));
}

bool
SnapshotReader::take(void *out, size_t n)
{
    if (bytes_.size() < kChecksumBytes ||
        pos_ + n > bytes_.size() - kChecksumBytes)
        return false;
    if (n > 0)
        std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
}

bool
SnapshotReader::beginSection(std::string_view tag, uint32_t version)
{
    const size_t saved = pos_;
    uint8_t marker;
    char four[4];
    if (!take(&marker, 1) || marker != kTagSection ||
        !take(four, 4)) {
        pos_ = saved;
        return false;
    }
    char want[4] = {' ', ' ', ' ', ' '};
    std::memcpy(want, tag.data(), tag.size() < 4 ? tag.size() : 4);
    uint32_t got_version;
    if (std::memcmp(four, want, 4) != 0 || !getU32(&got_version) ||
        got_version != version) {
        pos_ = saved;
        return false;
    }
    return true;
}

bool
SnapshotReader::getU8(uint8_t *out)
{
    const size_t saved = pos_;
    uint8_t marker, v;
    if (!take(&marker, 1) || marker != kTagU8 || !take(&v, 1)) {
        pos_ = saved;
        return false;
    }
    *out = v;
    return true;
}

bool
SnapshotReader::getU32(uint32_t *out)
{
    const size_t saved = pos_;
    uint8_t marker;
    uint32_t v;
    if (!take(&marker, 1) || marker != kTagU32 ||
        !take(&v, sizeof(v))) {
        pos_ = saved;
        return false;
    }
    *out = v;
    return true;
}

bool
SnapshotReader::getU64(uint64_t *out)
{
    const size_t saved = pos_;
    uint8_t marker;
    uint64_t v;
    if (!take(&marker, 1) || marker != kTagU64 ||
        !take(&v, sizeof(v))) {
        pos_ = saved;
        return false;
    }
    *out = v;
    return true;
}

bool
SnapshotReader::getDouble(double *out)
{
    const size_t saved = pos_;
    uint8_t marker;
    uint64_t bits;
    if (!take(&marker, 1) || marker != kTagDouble ||
        !take(&bits, sizeof(bits))) {
        pos_ = saved;
        return false;
    }
    std::memcpy(out, &bits, sizeof(bits));
    return true;
}

bool
SnapshotReader::getBool(bool *out)
{
    uint8_t v;
    if (!getU8(&v))
        return false;
    *out = v != 0;
    return true;
}

bool
SnapshotReader::getSize(size_t *out)
{
    uint64_t v;
    if (!getU64(&v))
        return false;
    *out = static_cast<size_t>(v);
    return true;
}

bool
SnapshotReader::getString(std::string *out)
{
    const size_t saved = pos_;
    uint8_t marker;
    uint64_t len;
    if (!take(&marker, 1) || marker != kTagString ||
        !take(&len, sizeof(len))) {
        pos_ = saved;
        return false;
    }
    // Bound the length against the bytes actually present before
    // allocating: a corrupted length field must fail the read, not
    // attempt a multi-gigabyte allocation.
    if (len > bytes_.size() - kChecksumBytes - pos_) {
        pos_ = saved;
        return false;
    }
    std::string s(static_cast<size_t>(len), '\0');
    if (!take(s.data(), s.size())) {
        pos_ = saved;
        return false;
    }
    *out = std::move(s);
    return true;
}

bool
SnapshotReader::getDoubles(std::vector<double> *out)
{
    const size_t saved = pos_;
    uint8_t marker;
    uint64_t len;
    if (!take(&marker, 1) || marker != kTagDoubles ||
        !take(&len, sizeof(len))) {
        pos_ = saved;
        return false;
    }
    // See getString(): reject corrupted lengths before allocating.
    if (len > (bytes_.size() - kChecksumBytes - pos_) / sizeof(double)) {
        pos_ = saved;
        return false;
    }
    std::vector<double> v(static_cast<size_t>(len));
    for (auto &d : v) {
        uint64_t bits;
        if (!take(&bits, sizeof(bits))) {
            pos_ = saved;
            return false;
        }
        std::memcpy(&d, &bits, sizeof(bits));
    }
    *out = std::move(v);
    return true;
}

bool
SnapshotReader::getU64s(std::vector<uint64_t> *out)
{
    const size_t saved = pos_;
    uint8_t marker;
    uint64_t len;
    if (!take(&marker, 1) || marker != kTagU64s ||
        !take(&len, sizeof(len))) {
        pos_ = saved;
        return false;
    }
    // See getString(): reject corrupted lengths before allocating.
    if (len >
        (bytes_.size() - kChecksumBytes - pos_) / sizeof(uint64_t)) {
        pos_ = saved;
        return false;
    }
    std::vector<uint64_t> v(static_cast<size_t>(len));
    if (!take(v.data(), v.size() * sizeof(uint64_t))) {
        pos_ = saved;
        return false;
    }
    *out = std::move(v);
    return true;
}

bool
SnapshotReader::getU32s(std::vector<uint32_t> *out)
{
    const size_t saved = pos_;
    uint8_t marker;
    uint64_t len;
    if (!take(&marker, 1) || marker != kTagU32s ||
        !take(&len, sizeof(len))) {
        pos_ = saved;
        return false;
    }
    // See getString(): reject corrupted lengths before allocating.
    if (len >
        (bytes_.size() - kChecksumBytes - pos_) / sizeof(uint32_t)) {
        pos_ = saved;
        return false;
    }
    std::vector<uint32_t> v(static_cast<size_t>(len));
    if (!take(v.data(), v.size() * sizeof(uint32_t))) {
        pos_ = saved;
        return false;
    }
    *out = std::move(v);
    return true;
}

bool
SnapshotReader::atEnd() const
{
    return bytes_.size() >= kChecksumBytes &&
        pos_ == bytes_.size() - kChecksumBytes;
}

} // namespace dora
