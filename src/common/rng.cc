#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace dora
{

namespace
{

uint64_t
splitMix64(uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

uint64_t
hashLabel(std::string_view label)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

Rng::Rng(std::string_view label)
    : Rng(hashLabel(label))
{
}

void
Rng::belowZeroPanic_()
{
    panic("Rng::below: n must be positive");
}

double
Rng::uniform(double lo, double hi)
{
    if (lo > hi)
        panic("Rng::uniform: lo (%g) > hi (%g)", lo, hi);
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian()
{
    // Box-Muller; discard the second value for simplicity.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sd)
{
    return mean + sd * gaussian();
}

Rng
Rng::fork(std::string_view salt)
{
    return Rng(next() ^ hashLabel(salt));
}

Rng::State
Rng::state() const
{
    State st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    return st;
}

void
Rng::setState(const State &state)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = state.s[i];
}

} // namespace dora
