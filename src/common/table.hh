/**
 * @file
 * Text-table and CSV emission used by the benchmark harness.
 *
 * Every figure/table bench prints its series through TextTable so the
 * output is aligned, diff-able, and (via writeCsv) machine-readable for
 * replotting against the paper.
 */

#ifndef DORA_COMMON_TABLE_HH
#define DORA_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dora
{

/**
 * A simple column-aligned text table.
 *
 * Cells are stored as strings; numeric convenience overloads format with
 * a fixed precision chosen per call.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    void beginRow();

    /** Append a string cell to the current row. */
    void add(std::string cell);

    /** Append a numeric cell formatted with @p precision decimals. */
    void add(double value, int precision = 3);

    /** Append an integer cell. */
    void add(int64_t value);

    /** Number of completed rows. */
    size_t rowCount() const { return rows_.size(); }

    /** Render the table, column-aligned, to @p os. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (headers first) to @p os. */
    void printCsv(std::ostream &os) const;

    /** Write CSV to @p path; warns and returns false on I/O failure. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (printf "%.*f"). */
std::string formatFixed(double value, int precision);

/** Print a "== title ==" section banner to @p os. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace dora

#endif // DORA_COMMON_TABLE_HH
