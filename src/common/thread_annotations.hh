/**
 * @file
 * Clang thread-safety capability attributes (no-ops elsewhere).
 *
 * These macros expose clang's `-Wthread-safety` static analysis
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) to the
 * codebase: fields carry GUARDED_BY(mutex) declarations, functions
 * declare REQUIRES/EXCLUDES contracts, and the analysis proves at
 * compile time that every guarded access happens under its lock.
 * Under GCC (the default toolchain here) every macro expands to
 * nothing, so annotations are pure documentation there; under clang
 * with -DDORA_THREAD_SAFETY=ON the build runs with
 * `-Wthread-safety -Werror` and a missing lock is a build break
 * (see tests/lint/thread_safety/ for the negative-compile proof and
 * DESIGN.md §5e for the policy).
 *
 * Use the annotated dora::Mutex / dora::MutexLock (common/mutex.hh)
 * rather than raw std::mutex for any state you annotate: libstdc++'s
 * std::mutex carries no capability attributes, so the analysis cannot
 * see its lock()/unlock() calls.
 */

#ifndef DORA_COMMON_THREAD_ANNOTATIONS_HH
#define DORA_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define DORA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DORA_THREAD_ANNOTATION(x) // no-op
#endif

/** Marks a class as a lockable capability ("mutex", "flock"...). */
#define CAPABILITY(x) DORA_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define SCOPED_CAPABILITY DORA_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read/written while holding @p x. */
#define GUARDED_BY(x) DORA_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be dereferenced while holding @p x. */
#define PT_GUARDED_BY(x) DORA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the listed capabilities exclusively. */
#define REQUIRES(...) \
    DORA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities at least shared. */
#define REQUIRES_SHARED(...) \
    DORA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and does not release it. */
#define ACQUIRE(...) \
    DORA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the capability shared. */
#define ACQUIRE_SHARED(...) \
    DORA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability. */
#define RELEASE(...) \
    DORA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases a shared capability. */
#define RELEASE_SHARED(...) \
    DORA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p b. */
#define TRY_ACQUIRE(...) \
    DORA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define EXCLUDES(...) DORA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime) that the capability is held. */
#define ASSERT_CAPABILITY(x) \
    DORA_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) DORA_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function. */
#define NO_THREAD_SAFETY_ANALYSIS \
    DORA_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // DORA_COMMON_THREAD_ANNOTATIONS_HH
