#include "common/cli.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace dora
{

std::optional<std::string>
cliFlagValue(int argc, char **argv, const std::string &flag)
{
    std::optional<std::string> value;
    const std::string inlinePrefix = flag + "=";
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (arg == nullptr)
            continue;
        if (std::strncmp(arg, inlinePrefix.c_str(),
                         inlinePrefix.size()) == 0) {
            value = arg + inlinePrefix.size();
        } else if (flag == arg) {
            if (i + 1 >= argc || argv[i + 1] == nullptr)
                fatal("%s: missing value (want '%s <value>' or "
                      "'%s=<value>')",
                      flag.c_str(), flag.c_str(), flag.c_str());
            value = argv[++i];
        }
    }
    return value;
}

bool
cliHasFlag(int argc, char **argv, const std::string &flag)
{
    bool present = false;
    const std::string inlinePrefix = flag + "=";
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (arg == nullptr)
            continue;
        if (flag == arg)
            present = true;
        else if (std::strncmp(arg, inlinePrefix.c_str(),
                              inlinePrefix.size()) == 0)
            fatal("%s: takes no value (got '%s')", flag.c_str(), arg);
    }
    return present;
}

long
cliParseInt(const std::string &text, const char *origin, long min,
            long max)
{
    char *end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("%s: malformed integer '%s'", origin, text.c_str());
    if (value < min || value > max)
        fatal("%s: %ld out of range [%ld, %ld]", origin, value, min,
              max);
    return value;
}

double
cliParseDouble(const std::string &text, const char *origin, double min,
               double max)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("%s: malformed number '%s'", origin, text.c_str());
    if (!(value >= min && value <= max))
        fatal("%s: %g out of range [%g, %g]", origin, value, min, max);
    return value;
}

const char *
envNonEmpty(const char *name)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return nullptr;
    if (*env == '\0') {
        warn("$%s is set but empty; treating it as unset", name);
        return nullptr;
    }
    return env;
}

} // namespace dora
