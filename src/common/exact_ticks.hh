/**
 * @file
 * Process-wide exact-ticks escape hatch.
 *
 * The simulator's default execution mode is *adaptive*: converged
 * memory-sample results are reused across quiescent ticks (see
 * mem/miss_rate_estimator.hh) and the harness fast-forwards between
 * event-horizon boundaries (see sim/simulator.hh). Both layers honor
 * this flag: when exact-ticks mode is on, every tick performs the full
 * Monte-Carlo cache walk and the harness runs the legacy 1-tick loop,
 * reproducing the pre-adaptive numbers bit for bit.
 *
 * The flag is resolved once from the DORA_EXACT_TICKS environment
 * variable ("1" = exact) and can be overridden programmatically (bench
 * `--exact-ticks` flags, A/B tests) *before* the components that
 * consult it are constructed — Soc reads it at construction time.
 */

#ifndef DORA_COMMON_EXACT_TICKS_HH
#define DORA_COMMON_EXACT_TICKS_HH

namespace dora
{

/**
 * True when the process runs in exact-ticks (legacy) mode: adaptive
 * sample reuse and macro-tick batching are disabled everywhere.
 */
bool exactTicksMode();

/**
 * Force exact-ticks mode on or off for the rest of the process
 * (overrides the environment). Components consult the flag at
 * construction, so call this before building a Soc/ExperimentRunner.
 */
void setExactTicksMode(bool exact);

/**
 * Scan @p argv for a `--exact-ticks` flag (benches); when present,
 * calls setExactTicksMode(true). Returns true when the flag was seen.
 * Unknown arguments are left untouched for other parsers.
 */
bool parseExactTicksFlag(int argc, char **argv);

} // namespace dora

#endif // DORA_COMMON_EXACT_TICKS_HH
