/**
 * @file
 * Shared command-line and environment parsing helpers.
 *
 * Every binary in the tree accepts a small set of long flags
 * (`--jobs`, `--workers`, `--lanes`, `--trace`, `--fleet-*`). Before
 * this helper existed each parser open-coded the scan and silently
 * ignored a trailing flag with a missing value (`dora-fleet --lanes`
 * fell through to the default lane count). Routing every flag through
 * cliFlagValue() makes a missing value a fatal diagnostic instead of
 * a silent misconfiguration.
 */

#ifndef DORA_COMMON_CLI_HH
#define DORA_COMMON_CLI_HH

#include <optional>
#include <string>

namespace dora
{

/**
 * Value of the last occurrence of @p flag in argv, accepting both the
 * separated (`--flag value`) and inline (`--flag=value`) spellings.
 *
 * Returns std::nullopt when the flag never appears. A separated
 * occurrence with no following argument (`... --flag`) is a user
 * error and fatal()s — it used to be silently ignored. The last
 * occurrence wins so wrapper scripts can append overrides.
 */
std::optional<std::string> cliFlagValue(int argc, char **argv,
                                        const std::string &flag);

/**
 * True when boolean @p flag appears in argv (exact match — a value
 * spelling like `--flag=x` is a user error and fatal()s, because a
 * boolean flag that silently accepted `--exact-ticks=0` would read as
 * disabling the mode while actually enabling it).
 */
bool cliHasFlag(int argc, char **argv, const std::string &flag);

/**
 * Parse @p text as a decimal integer in [@p min, @p max]; fatal()s
 * with @p origin (e.g. "--lanes" or "$DORA_LANES") in the diagnostic
 * on malformed or out-of-range input.
 */
long cliParseInt(const std::string &text, const char *origin, long min,
                 long max);

/** Like cliParseInt but for a finite double in [@p min, @p max]. */
double cliParseDouble(const std::string &text, const char *origin,
                      double min, double max);

/**
 * getenv() that treats an empty-but-set variable as unset — loudly.
 *
 * `export DORA_LANES=` in a CI matrix used to behave exactly like the
 * variable being absent, hiding the misconfiguration. This helper
 * warns (rate-limited via warn()) the first few times an empty-but-set
 * variable is consulted, then falls back to nullptr.
 */
const char *envNonEmpty(const char *name);

} // namespace dora

#endif // DORA_COMMON_CLI_HH
