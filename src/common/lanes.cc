#include "common/lanes.hh"

#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace dora
{

namespace
{

unsigned
parseLanes(const char *text, const char *origin)
{
    char *end = nullptr;
    const long lanes = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || lanes < 1)
        fatal("%s: malformed lane count '%s' (want a positive integer)",
              origin, text);
    return static_cast<unsigned>(lanes);
}

} // namespace

unsigned
defaultLaneCount()
{
    const char *env = std::getenv("DORA_LANES");
    if (env == nullptr || *env == '\0')
        return 1;
    return parseLanes(env, "$DORA_LANES");
}

unsigned
laneCountFromArgs(int argc, char **argv)
{
    unsigned lanes = defaultLaneCount();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--lanes" && i + 1 < argc)
            lanes = parseLanes(argv[i + 1], "--lanes");
        else if (arg.rfind("--lanes=", 0) == 0)
            lanes = parseLanes(arg.c_str() + 8, "--lanes");
    }
    return lanes;
}

} // namespace dora
