#include "common/lanes.hh"

#include "common/cli.hh"

namespace dora
{

namespace
{

// 4096 lanes is far beyond any useful batch on this simulator (lane
// state is a whole RunContext); the cap exists to catch typo'd values
// like a pasted seed, not to bound a real configuration.
constexpr long kMaxLanes = 4096;

} // namespace

unsigned
defaultLaneCount()
{
    const char *env = envNonEmpty("DORA_LANES");
    if (env == nullptr)
        return 1;
    return static_cast<unsigned>(
        cliParseInt(env, "$DORA_LANES", 1, kMaxLanes));
}

unsigned
laneCountFromArgs(int argc, char **argv)
{
    if (const auto value = cliFlagValue(argc, argv, "--lanes"))
        return static_cast<unsigned>(
            cliParseInt(*value, "--lanes", 1, kMaxLanes));
    return defaultLaneCount();
}

} // namespace dora
