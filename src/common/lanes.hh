/**
 * @file
 * Process-wide default lane count for lane-batched execution.
 *
 * Lane batching (sim/lane_batch.hh) advances N independent runs
 * interleaved on one thread so their memory-walk miss chains overlap.
 * The knob parallels the --jobs/--workers tiers: `--lanes N` on a
 * bench command line, else $DORA_LANES, else 1 (the exact legacy
 * per-run path). Results are bit-identical at every lane count, so
 * the setting is pure throughput policy, never protocol.
 */

#ifndef DORA_COMMON_LANES_HH
#define DORA_COMMON_LANES_HH

namespace dora
{

/**
 * Default lane count: $DORA_LANES when set to a positive integer,
 * else 1. A malformed value is fatal (a silent fallback would make a
 * mistyped sweep quietly run serial).
 */
unsigned defaultLaneCount();

/**
 * Scan @p argv for `--lanes N` / `--lanes=N` (benches); falls back to
 * defaultLaneCount(). Unknown arguments are left for other parsers.
 */
unsigned laneCountFromArgs(int argc, char **argv);

} // namespace dora

#endif // DORA_COMMON_LANES_HH
