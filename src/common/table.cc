#include "common/table.hh"

#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace dora
{

std::string
formatFixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::beginRow()
{
    rows_.emplace_back();
}

void
TextTable::add(std::string cell)
{
    if (rows_.empty())
        panic("TextTable::add before beginRow");
    if (rows_.back().size() >= headers_.size())
        panic("TextTable::add: row already has %zu cells", headers_.size());
    rows_.back().push_back(std::move(cell));
}

void
TextTable::add(double value, int precision)
{
    add(formatFixed(value, precision));
}

void
TextTable::add(int64_t value)
{
    add(std::to_string(value));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << cell;
            if (c + 1 < headers_.size())
                os << std::string(widths[c] - cell.size() + 2, ' ');
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

namespace
{

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(cells[c]);
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

bool
TextTable::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("TextTable::writeCsv: cannot open %s", path.c_str());
        return false;
    }
    printCsv(out);
    return static_cast<bool>(out);
}

} // namespace dora
