/**
 * @file
 * Fixed-size worker pool and deterministic parallel-for / parallel-map
 * primitives for the experiment engine.
 *
 * Every figure and training campaign in this reproduction is a set of
 * independent, deterministic simulations (each run constructs its own
 * SoC, power model, RNG streams, and fault injector). The primitives
 * here fan such sets out across a fixed number of worker threads while
 * guaranteeing that
 *
 *   - results are delivered in index order (results[i] == fn(i)), so a
 *     parallel sweep assembles the *same* tables as the serial loop;
 *   - a job count of 1 executes the exact legacy serial path in the
 *     calling thread — no pool, no atomics, no reordering;
 *   - exceptions thrown by the body are captured and the one from the
 *     lowest index is rethrown in the calling thread after every index
 *     has been attempted (deterministic propagation).
 *
 * The job count is taken from, in order of precedence: an explicit
 * argument, the `--jobs N` command-line flag (benches), the DORA_JOBS
 * environment variable, and finally std::thread::hardware_concurrency.
 *
 * Determinism contract: the body must not touch shared mutable state.
 * What little the codebase has (log sinks, the bundle-cache file) is
 * made thread-safe separately; simulations themselves are self-
 * contained, which is what makes jobs=N bit-identical to jobs=1 (see
 * DESIGN.md §5a and bench/ext_parallel_scaling, which enforces it).
 */

#ifndef DORA_EXEC_THREAD_POOL_HH
#define DORA_EXEC_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace dora
{

/** Hardware thread count, never less than 1. */
unsigned hardwareJobs();

/**
 * The process-default job count: $DORA_JOBS when set to a positive
 * integer (with a warning on garbage), else hardwareJobs().
 */
unsigned defaultJobCount();

/**
 * Job count for a bench binary: honours `--jobs N` / `--jobs=N` on the
 * command line, falling back to defaultJobCount(). Unknown arguments
 * are ignored (benches have no other flags). fatal() on a malformed
 * or non-positive value.
 */
unsigned jobCountFromArgs(int argc, char **argv);

/**
 * A fixed-size pool of worker threads executing index-based batches.
 *
 * The pool owns jobs-1 threads; the thread calling forEach()
 * participates as the jobs-th worker, so `ThreadPool(1)` spawns
 * nothing and forEach() degenerates to a plain serial loop.
 */
class ThreadPool
{
  public:
    /** @param jobs total parallelism (clamped to >= 1). */
    explicit ThreadPool(unsigned jobs);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Total parallelism (worker threads + the calling thread). */
    unsigned jobs() const { return jobs_; }

    /**
     * Execute fn(i) for every i in [0, n), distributing indices across
     * the pool; blocks until all n indices have been attempted. If any
     * invocation throws, the exception from the lowest index is
     * rethrown here after the batch drains.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn)
        EXCLUDES(mutex_);

  private:
    /** One forEach() invocation in flight. */
    struct Batch
    {
        size_t n = 0;
        const std::function<void(size_t)> *fn = nullptr;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        /**
         * Workers currently in runBatch. Guarded by the owning pool's
         * mutex_ — a cross-object invariant the capability attributes
         * cannot name from this nested struct, so it stays a comment.
         */
        unsigned workersInside = 0;
        Mutex errorMutex;
        size_t errorIndex GUARDED_BY(errorMutex) = 0;
        std::exception_ptr error GUARDED_BY(errorMutex);
    };

    void workerLoop() EXCLUDES(mutex_);

    /** Pull and run indices until the batch is exhausted. */
    void runBatch(Batch &batch) EXCLUDES(mutex_);

    unsigned jobs_;
    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar workCv_;  //!< wakes workers for a batch
    CondVar doneCv_;  //!< wakes the caller on drain
    /** Current batch; null when idle. */
    Batch *batch_ GUARDED_BY(mutex_) = nullptr;
    /** Bumped per forEach(). */
    uint64_t generation_ GUARDED_BY(mutex_) = 0;
    bool stopping_ GUARDED_BY(mutex_) = false;
};

/**
 * Run fn(i) for i in [0, n) on a transient pool of @p jobs workers
 * (0 = defaultJobCount()). jobs <= 1 or n <= 1 runs the exact serial
 * loop in the calling thread.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 unsigned jobs = 0);

/**
 * Map [0, n) through @p fn with deterministic result ordering:
 * result[i] == fn(i) regardless of thread count or completion order.
 * R must be default-constructible. Exception semantics as forEach().
 */
template <typename R>
std::vector<R>
parallelMap(size_t n, const std::function<R(size_t)> &fn,
            unsigned jobs = 0)
{
    std::vector<R> results(n);
    parallelFor(
        n, [&results, &fn](size_t i) { results[i] = fn(i); }, jobs);
    return results;
}

} // namespace dora

#endif // DORA_EXEC_THREAD_POOL_HH
