/**
 * @file
 * Append-only, fsync'd, checksummed results journal for campaign
 * sweeps (DESIGN.md §5f).
 *
 * Layout:
 *
 *   header   magic u64 'DORAJRN1' | version u32 | campaignHash u64 |
 *            unitCount u64 | fnv u64 (over the preceding fields)
 *   records  magic u32 'JREC' | unit u64 | len u32 | payload |
 *            fnv u64 (over unit..payload), repeated
 *
 * Every append() is written with a single write() and fsync'd before
 * returning, so a SIGKILL at any instant leaves at most one partial
 * record at the tail. open() on an existing file verifies the header
 * (campaign hash + unit count — resuming a journal from a *different*
 * sweep is refused, not guessed at), loads every intact record, and
 * truncates a torn/corrupt tail so appends continue from the last
 * durable record.
 */

#ifndef DORA_EXEC_PROC_JOURNAL_HH
#define DORA_EXEC_PROC_JOURNAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dora
{

/**
 * One journal file, opened for resume + append. Not thread-safe; the
 * supervisor is the single writer.
 */
class ResultsJournal
{
  public:
    ResultsJournal() = default;
    ~ResultsJournal();

    ResultsJournal(const ResultsJournal &) = delete;
    ResultsJournal &operator=(const ResultsJournal &) = delete;

    /**
     * Open @p path, creating it with a fresh header when absent or
     * empty. An existing journal is validated and its intact records
     * loaded (see loaded()); a corrupt or partial tail is truncated.
     *
     * @return false when the file cannot be used at all: I/O error,
     *         unrecognizable header, version mismatch, or a campaign
     *         hash / unit count that does not match @p campaign_hash /
     *         @p unit_count (resuming across different sweeps). The
     *         reason is in error().
     */
    [[nodiscard]] bool open(const std::string &path,
                            uint64_t campaign_hash, uint64_t unit_count);

    /** Records recovered by open(), in journal order. */
    const std::vector<std::pair<uint64_t, std::string>> &loaded() const
    {
        return loaded_;
    }

    /** True when open() had to truncate a torn/corrupt tail. */
    bool truncatedTail() const { return truncatedTail_; }

    /**
     * Durably append one completed unit: single write + fsync.
     * @return false on I/O failure (reason in error()).
     */
    [[nodiscard]] bool append(uint64_t unit, std::string_view payload);

    /**
     * High-water-mark truncation: atomically rewrite the journal
     * without the records whose unit index is below @p floor — used
     * once those units are durable in a campaign aggregate
     * checkpoint, so resume replays O(checkpoint interval) records
     * instead of the whole journal. Write path: temp file + fsync +
     * rename, so a kill mid-compaction leaves either the old or the
     * new journal, never a hybrid.
     * @return false on I/O failure (reason in error(); the old
     *         journal stays in effect).
     */
    [[nodiscard]] bool compactBelow(uint64_t floor);

    /** Human-readable reason of the last failure. */
    const std::string &error() const { return error_; }

    /** True between a successful open() and close(). */
    bool isOpen() const { return fd_ >= 0; }

    /** Flush and close the file (also runs at destruction). */
    void close();

  private:
    int fd_ = -1;
    std::string path_;
    std::string header_;
    std::string error_;
    std::vector<std::pair<uint64_t, std::string>> loaded_;
    bool truncatedTail_ = false;
};

} // namespace dora

#endif // DORA_EXEC_PROC_JOURNAL_HH
