#include "exec/proc/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/rng.hh"

namespace dora
{

namespace
{

constexpr uint64_t kJournalMagic = 0x314E524A41524F44ull;  // "DORAJRN1"
constexpr uint32_t kJournalVersion = 1;
constexpr uint32_t kRecordMagic = 0x4345524Au;             // "JREC"
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;
constexpr size_t kRecordHeadBytes = 4 + 8 + 4;
constexpr size_t kChecksumBytes = 8;
/** Records larger than this are treated as tail corruption (64 MiB). */
constexpr uint32_t kMaxRecordPayload = 64u * 1024 * 1024;

void
putRaw(std::string &out, const void *p, size_t n)
{
    out.append(static_cast<const char *>(p), n);
}

std::string
encodeHeader(uint64_t campaign_hash, uint64_t unit_count)
{
    std::string out;
    out.reserve(kHeaderBytes);
    putRaw(out, &kJournalMagic, sizeof(kJournalMagic));
    putRaw(out, &kJournalVersion, sizeof(kJournalVersion));
    putRaw(out, &campaign_hash, sizeof(campaign_hash));
    putRaw(out, &unit_count, sizeof(unit_count));
    const uint64_t fnv =
        hashLabel(std::string_view(out.data(), out.size()));
    putRaw(out, &fnv, sizeof(fnv));
    return out;
}

std::string
encodeRecord(uint64_t unit, std::string_view payload)
{
    std::string out;
    out.reserve(kRecordHeadBytes + payload.size() + kChecksumBytes);
    putRaw(out, &kRecordMagic, sizeof(kRecordMagic));
    putRaw(out, &unit, sizeof(unit));
    const uint32_t len = static_cast<uint32_t>(payload.size());
    putRaw(out, &len, sizeof(len));
    out.append(payload.data(), payload.size());
    const uint64_t fnv = hashLabel(std::string_view(
        out.data() + sizeof(kRecordMagic),
        out.size() - sizeof(kRecordMagic)));
    putRaw(out, &fnv, sizeof(fnv));
    return out;
}

bool
writeAll(int fd, const char *p, size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
readWhole(int fd, std::string *out)
{
    char buf[64 * 1024];
    for (;;) {
        const ssize_t r = ::read(fd, buf, sizeof(buf));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return true;
        out->append(buf, static_cast<size_t>(r));
    }
}

} // namespace

ResultsJournal::~ResultsJournal()
{
    close();
}

void
ResultsJournal::close()
{
    if (fd_ >= 0) {
        ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ResultsJournal::open(const std::string &path, uint64_t campaign_hash,
                     uint64_t unit_count)
{
    close();
    loaded_.clear();
    truncatedTail_ = false;
    error_.clear();
    path_ = path;
    header_ = encodeHeader(campaign_hash, unit_count);

    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        error_ = "open(" + path + "): " + std::strerror(errno);
        return false;
    }

    std::string bytes;
    if (!readWhole(fd_, &bytes)) {
        error_ = "read(" + path + "): " + std::strerror(errno);
        close();
        return false;
    }

    if (bytes.empty()) {
        // Fresh journal: write and sync the header.
        const std::string &header = header_;
        if (!writeAll(fd_, header.data(), header.size()) ||
            ::fsync(fd_) != 0) {
            error_ = "write header(" + path + "): " +
                std::strerror(errno);
            close();
            return false;
        }
        return true;
    }

    // Existing journal: the header must match this campaign exactly.
    if (bytes.size() < kHeaderBytes ||
        bytes.compare(0, kHeaderBytes, header_) != 0) {
        error_ = "journal " + path +
            " does not match this campaign (different sweep, config, "
            "or build?); refusing to resume from it";
        close();
        return false;
    }

    // Walk records; stop at the first torn/corrupt one and truncate.
    size_t pos = kHeaderBytes;
    size_t good_end = pos;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < kRecordHeadBytes)
            break;
        uint32_t magic, len;
        uint64_t unit;
        std::memcpy(&magic, bytes.data() + pos, sizeof(magic));
        std::memcpy(&unit, bytes.data() + pos + 4, sizeof(unit));
        std::memcpy(&len, bytes.data() + pos + 12, sizeof(len));
        if (magic != kRecordMagic || len > kMaxRecordPayload)
            break;
        const size_t total = kRecordHeadBytes + len + kChecksumBytes;
        if (bytes.size() - pos < total)
            break;
        uint64_t fnv;
        std::memcpy(&fnv, bytes.data() + pos + kRecordHeadBytes + len,
                    sizeof(fnv));
        const uint64_t expect = hashLabel(std::string_view(
            bytes.data() + pos + sizeof(kRecordMagic),
            kRecordHeadBytes - sizeof(kRecordMagic) + len));
        if (fnv != expect)
            break;
        loaded_.emplace_back(
            unit, bytes.substr(pos + kRecordHeadBytes, len));
        pos += total;
        good_end = pos;
    }

    if (good_end < bytes.size()) {
        truncatedTail_ = true;
        warn("ResultsJournal: %s has a torn/corrupt tail (%zu bytes "
             "after the last intact record); truncating and resuming",
             path.c_str(), bytes.size() - good_end);
        if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0 ||
            ::fsync(fd_) != 0) {
            error_ = "truncate(" + path + "): " + std::strerror(errno);
            close();
            return false;
        }
    }

    if (::lseek(fd_, 0, SEEK_END) < 0) {
        error_ = "seek(" + path + "): " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
ResultsJournal::append(uint64_t unit, std::string_view payload)
{
    if (fd_ < 0) {
        error_ = "append on closed journal";
        return false;
    }
    const std::string record = encodeRecord(unit, payload);
    if (!writeAll(fd_, record.data(), record.size())) {
        error_ = std::string("append: ") + std::strerror(errno);
        return false;
    }
    if (::fsync(fd_) != 0) {
        error_ = std::string("fsync: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
ResultsJournal::compactBelow(uint64_t floor)
{
    if (fd_ < 0) {
        error_ = "compactBelow on closed journal";
        return false;
    }

    // Re-read the live file: the journal keeps no in-memory copy of
    // appended payloads (that would defeat the memory bound the
    // compaction exists to preserve).
    if (::lseek(fd_, 0, SEEK_SET) < 0) {
        error_ = std::string("seek: ") + std::strerror(errno);
        return false;
    }
    std::string bytes;
    if (!readWhole(fd_, &bytes)) {
        error_ = std::string("read: ") + std::strerror(errno);
        return false;
    }

    std::string out = header_;
    size_t pos = kHeaderBytes;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < kRecordHeadBytes)
            break;
        uint32_t magic, len;
        uint64_t unit;
        std::memcpy(&magic, bytes.data() + pos, sizeof(magic));
        std::memcpy(&unit, bytes.data() + pos + 4, sizeof(unit));
        std::memcpy(&len, bytes.data() + pos + 12, sizeof(len));
        if (magic != kRecordMagic || len > kMaxRecordPayload)
            break;
        const size_t total = kRecordHeadBytes + len + kChecksumBytes;
        if (bytes.size() - pos < total)
            break;
        if (unit >= floor)
            out.append(bytes, pos, total);
        pos += total;
    }

    const std::string tmp = path_ + ".compact";
    const int tfd =
        ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
               0644);
    if (tfd < 0) {
        error_ = "open(" + tmp + "): " + std::strerror(errno);
        return false;
    }
    if (!writeAll(tfd, out.data(), out.size()) || ::fsync(tfd) != 0) {
        error_ = "write(" + tmp + "): " + std::strerror(errno);
        ::close(tfd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        error_ = "rename(" + tmp + "): " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }

    // Swap the append fd to the compacted file.
    const int nfd =
        ::open(path_.c_str(), O_RDWR | O_APPEND | O_CLOEXEC, 0644);
    if (nfd < 0) {
        error_ = "reopen(" + path_ + "): " + std::strerror(errno);
        return false;
    }
    ::close(fd_);
    fd_ = nfd;
    return true;
}

} // namespace dora
